"""News-copying scenario: fusing event reports from correlated outlets.

Simulates the paper's Demonstrations dataset: online news domains report
whether extracted protest events are real, but many outlets syndicate the
same feed — their errors are correlated, which misleads methods that
assume independent sources.  The script compares plain (feature-less)
SLiMFast-EM against the Appendix D copying extension and prints the source
pairs the model flags as copiers.

Run:  python examples/copying_detection.py
"""

from repro import SLiMFast
from repro.core import CopyingSLiMFast
from repro.data import generate_demos
from repro.fusion import object_value_accuracy


def main() -> None:
    dataset = generate_demos(n_sources=200, n_objects=800, n_copy_groups=15, seed=0)
    print(
        f"Dataset: {dataset.n_sources} news domains, {dataset.n_objects} "
        f"events, {dataset.n_observations} reports\n"
    )

    print(f"{'TD':>5s}  {'w. copying':>10s}  {'w.o. copying':>12s}")
    copying_model = None
    for fraction in (0.01, 0.05, 0.10):
        split = dataset.split(fraction, seed=0)
        test = list(split.test_objects)

        copying_model = CopyingSLiMFast(learner="em").fit(dataset, split.train_truth)
        with_copy = object_value_accuracy(
            copying_model.predict().values, dataset.ground_truth, test
        )
        plain = SLiMFast(learner="em", use_features=False).fit_predict(dataset, split.train_truth)
        without = object_value_accuracy(plain.values, dataset.ground_truth, test)
        print(f"{fraction:5.0%}  {with_copy:10.3f}  {without:12.3f}")

    print("\nStrongest copying pairs (positive weight = likely copying):")
    pairs = sorted(copying_model.pair_weights().items(), key=lambda kv: -kv[1])[:6]
    for (a, b), weight in pairs:
        print(f"  {a:28s} <-> {b:28s}  w = {weight:+.3f}")

    print(
        f"\nCandidate pairs considered: {len(copying_model.pairs_)} "
        f"(selected by agreement z-score)"
    )


if __name__ == "__main__":
    main()
