"""The EM/ERM tradeoff and the optimizer's information-units model.

Reproduces a slice of the paper's Section 4 analysis on synthetic data:

* sweeps density and average accuracy to show when EM beats ERM and
  vice versa (Figures 4 and 5);
* shows the optimizer's internals: the Theorem-1 bound, the estimated
  average source accuracy (agreement matrix completion), and the
  information units assigned to each algorithm;
* checks the theoretical error bounds against the measured errors.

Run:  python examples/optimizer_tradeoff.py
"""

import numpy as np

from repro import SLiMFast
from repro.core import decide, em_accuracy_bound, erm_generalization_bound
from repro.data import SyntheticConfig, generate
from repro.fusion import object_value_accuracy


def main() -> None:
    base = SyntheticConfig(n_sources=400, n_objects=400, name="tradeoff")

    print("EM vs ERM accuracy across the tradeoff space:")
    print(f"{'density':>8s} {'avg acc':>8s} {'TD':>5s} {'EM':>6s} {'ERM':>6s} {'optimizer':>9s}")
    for density in (0.005, 0.02):
        for avg_accuracy in (0.55, 0.8):
            for fraction in (0.02, 0.4):
                instance = generate(base, density=density, avg_accuracy=avg_accuracy, seed=1)
                dataset = instance.dataset
                split = dataset.split(fraction, seed=0)
                scores = {}
                for learner in ("em", "erm"):
                    result = SLiMFast(learner=learner, use_features=False).fit_predict(
                        dataset, split.train_truth
                    )
                    scores[learner] = object_value_accuracy(
                        result.values, dataset.ground_truth, split.test_objects
                    )
                decision = decide(dataset, split.train_truth, n_features=0, tau=0.0)
                print(
                    f"{density:8.3f} {avg_accuracy:8.2f} {fraction:5.0%} "
                    f"{scores['em']:6.3f} {scores['erm']:6.3f} {decision.algorithm:>9s}"
                )

    # Optimizer internals on one instance.
    instance = generate(base, density=0.01, avg_accuracy=0.7, seed=2)
    dataset = instance.dataset
    split = dataset.split(0.05, seed=0)
    decision = decide(dataset, split.train_truth, n_features=10, tau=0.1)
    true_avg = float(np.mean(instance.true_accuracies))
    print("\nOptimizer internals at 5% training data:")
    print(f"  Theorem-1 bound sqrt(|K|/|G|)log|G| : {decision.bound:.3f}")
    print(f"  estimated avg accuracy (agreement)  : {decision.estimated_accuracy:.3f}"
          f"  (true: {true_avg:.3f})")
    print(f"  ERM information units               : {decision.erm_units:.1f}")
    print(f"  EM information units                : {decision.em_units:.1f}")
    print(f"  decision                            : {decision.algorithm.upper()}")

    # Theory vs measurement.
    print("\nTheoretical rates (constants = 1):")
    for n_labels in (20, 80, 320):
        print(f"  ERM bound at |G|={n_labels:4d}: " f"{erm_generalization_bound(10, n_labels):.3f}")
    print(
        f"  EM bound (S=400, O=400, p=0.01, delta=0.4, K=10): "
        f"{em_accuracy_bound(400, 400, 0.01, 0.4, 10):.3f}"
    )


if __name__ == "__main__":
    main()
