"""Knowledge-base curation: guarantees, abstention, and source budgeting.

The paper's motivating user (Example 1) builds a medical knowledge base
for patient diagnosis and needs *guaranteed* output quality.  This script
walks that workflow with the library's extension modules:

1. fuse the (simulated) genomics literature with SLiMFast;
2. check posterior **calibration** and find the confidence threshold that
   delivers a target precision (the "margin of error" dial);
3. enable **open-world semantics** so the model can abstain instead of
   forcing a value when no source is credible;
4. use estimated source accuracies for **budgeted source selection**
   ("which journals should we license next year?");
5. show the **streaming** fuser ingesting the same claims one at a time.

Run:  python examples/knowledge_curation.py
"""


from repro import SLiMFast
from repro.data import generate_genomics
from repro.extensions import (
    UNKNOWN,
    OpenWorldSLiMFast,
    confidence_threshold_for_precision,
    coverage_at_threshold,
    expected_calibration_error,
    greedy_select,
    replay_dataset,
)
from repro.fusion import object_value_accuracy


def main() -> None:
    dataset = generate_genomics(n_sources=1200, n_objects=400, seed=3)
    split = dataset.split(0.15, seed=0)
    test_truth = {obj: dataset.ground_truth[obj] for obj in split.test_objects}

    # 1. Fuse.
    fuser = SLiMFast()
    result = fuser.fit_predict(dataset, split.train_truth)
    accuracy = object_value_accuracy(result.values, dataset.ground_truth, split.test_objects)
    print(f"Fused {dataset.n_observations} claims; test accuracy = {accuracy:.3f}")

    # 2. Calibration and precision targeting.
    ece = expected_calibration_error(result.posteriors, test_truth)
    print(f"Expected calibration error: {ece:.3f}")
    for target in (0.90, 0.95):
        threshold = confidence_threshold_for_precision(result.posteriors, test_truth, target)
        if threshold is None:
            print(f"  precision {target:.0%}: unreachable")
            continue
        coverage, precision = coverage_at_threshold(result.posteriors, test_truth, threshold)
        print(
            f"  precision {target:.0%}: accept posteriors >= {threshold:.2f} "
            f"-> keep {coverage:.0%} of objects at {precision:.1%} precision"
        )

    # 3. Open-world abstention.
    open_world = OpenWorldSLiMFast(theta=1.5).predict(dataset, fuser.model_, split.train_truth)
    n_abstained = len(open_world.abstained)
    resolved = {
        obj: value
        for obj, value in open_world.result.values.items()
        if value != UNKNOWN and obj in test_truth
    }
    resolved_accuracy = object_value_accuracy(resolved, dataset.ground_truth, list(resolved))
    print(
        f"\nOpen-world mode (theta=1.5): abstained on {n_abstained} objects; "
        f"accuracy on resolved objects = {resolved_accuracy:.3f}"
    )

    # 4. Source budgeting from the estimated accuracies.
    trace = greedy_select(dataset, result.source_accuracies, budget=5)
    print("\nTop-5 sources to license (greedy marginal utility):")
    for step in trace:
        accuracy_estimate = result.source_accuracies[step.source]
        print(
            f"  {step.source}: est. accuracy {accuracy_estimate:.2f}, "
            f"marginal utility +{step.marginal_gain:.1f} objects"
        )

    # 5. Streaming ingestion of the same corpus.
    streaming = replay_dataset(dataset, split.train_truth, seed=0)
    streaming_accuracy = object_value_accuracy(
        streaming.values, dataset.ground_truth, split.test_objects
    )
    print(
        f"\nStreaming single-pass fusion: accuracy = {streaming_accuracy:.3f} "
        f"(batch: {accuracy:.3f})"
    )


if __name__ == "__main__":
    main()
