"""Quickstart: fuse conflicting claims with SLiMFast.

Builds the paper's Figure 1 scenario — three articles making conflicting
gene-disease claims — plus a handful of extra observations, runs SLiMFast
end to end, and prints the estimated true values and source accuracies.

Run:  python examples/quickstart.py
"""

from repro import FusionDataset, SLiMFast


def main() -> None:
    # Observations: (source, object, claimed value).  Articles 1 and 3 say
    # GIGYF2 is NOT associated with Parkinson's; article 2 disagrees.
    observations = [
        ("article-1", "GIGYF2/Parkinson", "false"),
        ("article-2", "GIGYF2/Parkinson", "true"),
        ("article-3", "GIGYF2/Parkinson", "false"),
        ("article-1", "GBA/Parkinson", "true"),
        ("article-3", "GBA/Parkinson", "true"),
        ("article-2", "SNCA/Parkinson", "true"),
        ("article-1", "SNCA/Parkinson", "true"),
        ("article-2", "LRRK2/Crohn", "true"),
        ("article-3", "LRRK2/Crohn", "false"),
    ]

    # Domain-specific features describing the *sources* (Section 3.1):
    # anything indicative of an article's reliability.
    source_features = {
        "article-1": {"citations": 128, "year": 2012, "study": "knockout"},
        "article-2": {"citations": 3, "year": 2008, "study": "GWAS"},
        "article-3": {"citations": 70, "year": 2014, "study": "knockout"},
    }

    dataset = FusionDataset(
        observations,
        source_features=source_features,
        name="quickstart",
    )

    # A little ground truth goes a long way (the paper's headline): here we
    # know one association for certain.
    train_truth = {"GBA/Parkinson": "true"}

    fuser = SLiMFast()  # learner="auto": the optimizer picks ERM or EM
    result = fuser.fit_predict(dataset, train_truth)

    print(f"Learner chosen by the optimizer: {fuser.chosen_learner_}\n")
    print("Estimated true values:")
    for obj in dataset.objects:
        posterior = result.posteriors[obj]
        confidence = posterior[result.values[obj]]
        print(f"  {obj:18s} -> {result.values[obj]:6s} (p = {confidence:.2f})")

    print("\nEstimated source accuracies:")
    for source, accuracy in sorted(result.source_accuracies.items()):
        print(f"  {source}: {accuracy:.3f}")


if __name__ == "__main__":
    main()
