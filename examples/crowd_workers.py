"""Crowdsourcing scenario: aggregating noisy worker labels.

Simulates the CrowdFlower weather-sentiment task from the paper's
evaluation: ~100 workers label ~1000 tweets (20 judgements each) into four
sentiment classes, with average worker accuracy barely above 0.5.  The
script shows:

* unsupervised EM aggregation beating majority vote;
* the optimizer switching from EM to ERM as labels accumulate
  (the paper's Crowd crossover, Table 4);
* the lasso path identifying the labor channel as the predictive worker
  feature (Figure 9).

Run:  python examples/crowd_workers.py
"""

from repro import MajorityVote, SLiMFast
from repro.core import lasso_path
from repro.data import generate_crowd
from repro.fusion import object_value_accuracy


def main() -> None:
    dataset = generate_crowd(seed=0)
    print(
        f"Dataset: {dataset.n_sources} workers, {dataset.n_objects} tweets, "
        f"{dataset.n_observations} judgements\n"
    )

    # 1. Unsupervised aggregation: EM vs majority vote.
    majority = MajorityVote().fit_predict(dataset)
    em = SLiMFast(learner="em").fit_predict(dataset)
    print("Unsupervised aggregation accuracy:")
    print(f"  majority vote: {majority.accuracy(dataset):.3f}")
    print(f"  SLiMFast (EM): {em.accuracy(dataset):.3f}\n")

    # 2. The EM/ERM crossover as ground truth accumulates.
    print("Optimizer decisions as labels accumulate:")
    for fraction in (0.001, 0.01, 0.05, 0.20):
        split = dataset.split(fraction, seed=0)
        fuser = SLiMFast()
        result = fuser.fit_predict(dataset, split.train_truth)
        accuracy = object_value_accuracy(result.values, dataset.ground_truth, split.test_objects)
        decision = fuser.decision_
        print(
            f"  TD={fraction:6.1%}  choice={fuser.chosen_learner_.upper():3s} "
            f"(ERM units={decision.erm_units:7.1f}, EM units={decision.em_units:7.1f}) "
            f"accuracy={accuracy:.3f}"
        )

    # 3. Which worker features predict accuracy?  (Figure 9.)
    path = lasso_path(dataset, n_penalties=20)
    print("\nEarliest-activating worker features (most predictive):")
    for rank, label in enumerate(path.activation_order()[:5], start=1):
        print(f"  {rank}. {label}")


if __name__ == "__main__":
    main()
