"""Genomics scenario: fusing gene-disease claims from sparse literature.

This is the paper's motivating application (Example 1): thousands of
articles, each contributing roughly one claim, with conflicts to resolve
before the knowledge base can be used for patient diagnosis.  Per-source
conflict signal is almost nonexistent at ~1.1 observations per article, so
domain features (study design, journal tier, citations, recency) carry the
weight — exactly where SLiMFast's discriminative model shines.

The script compares SLiMFast against its feature-less variant and the
Counts baseline at several ground-truth budgets, then inspects which
features the model found informative.

Run:  python examples/genomics_fusion.py
"""

from repro import Counts, SLiMFast
from repro.data import generate_genomics
from repro.fusion import object_value_accuracy


def main() -> None:
    dataset = generate_genomics(seed=0)
    stats = dataset.stats()
    print(
        f"Dataset: {stats.n_sources} articles, {stats.n_objects} gene-disease "
        f"pairs, {stats.n_observations} claims "
        f"({stats.avg_observations_per_source:.2f} claims/article)\n"
    )

    print(f"{'TD':>5s}  {'SLiMFast':>9s}  {'Sources-EM':>10s}  {'Counts':>7s}")
    for fraction in (0.01, 0.05, 0.20):
        split = dataset.split(fraction, seed=0)
        test = list(split.test_objects)

        slimfast = SLiMFast().fit_predict(dataset, split.train_truth)
        feature_less = SLiMFast(learner="em", use_features=False).fit_predict(
            dataset, split.train_truth
        )
        counts = Counts().fit_predict(dataset, split.train_truth)

        row = [
            object_value_accuracy(r.values, dataset.ground_truth, test)
            for r in (slimfast, feature_less, counts)
        ]
        print(f"{fraction:5.0%}  {row[0]:9.3f}  {row[1]:10.3f}  {row[2]:7.3f}")

    # Which article properties predict reliability?  Fit once with plenty
    # of labels and inspect the learned feature weights.
    split = dataset.split(0.5, seed=0)
    fuser = SLiMFast(learner="erm")
    fuser.fit(dataset, split.train_truth)
    weights = fuser.model_.feature_weight_map()
    print("\nStudy-design and venue feature weights:")
    for label, weight in sorted(weights.items(), key=lambda kv: -abs(kv[1])):
        if label.startswith(("study=", "journal=")):
            print(f"  {label:28s} {weight:+.3f}")

    # The long-tailed per-author one-hots are individually strong for the
    # few articles they touch but useless as a feature *class*; averaging
    # absolute weight per raw feature shows the real ranking.
    by_name = {}
    for label, weight in weights.items():
        name = label.split("=")[0]
        by_name.setdefault(name, []).append(abs(weight))
    print("\nMean |weight| per raw feature:")
    for name, values in sorted(by_name.items(), key=lambda kv: -sum(kv[1]) / len(kv[1])):
        print(f"  {name:12s} {sum(values) / len(values):.3f}  ({len(values)} columns)")

    # Predict the accuracy of a brand-new article from metadata alone
    # (source-quality initialization, Section 5.3.2).
    from repro.core import ERMConfig, ERMLearner

    model = ERMLearner(ERMConfig(intercept=True)).fit(dataset, split.train_truth)
    fresh = {"journal": "tier1", "citations": 250, "pub_year": 2015, "study": "knockout"}
    weak = {"journal": "tier4", "citations": 1, "pub_year": 1998, "study": "GWAS"}
    print("\nPredicted accuracy of unseen articles:")
    print(f"  strong article {fresh}: {model.predict_accuracy(fresh):.3f}")
    print(f"  weak article   {weak}: {model.predict_accuracy(weak):.3f}")


if __name__ == "__main__":
    main()
