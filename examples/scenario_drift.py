"""Drift scenarios: flat vs decayed vs re-anchored streaming trust.

Generates a step-drift workload with ``repro.data.drift_scenario`` (half
the sources are trusted-then-broken, half mediocre-but-stable), replays
it through ``repro.experiments.scenario`` under three streaming trust
policies plus the batch baselines, and prints the figure-style report:
flat Beta counts keep trusting the broken sources, while a decay
half-life (or sliding effective-sample-size window) forgets the stale
evidence and tracks the new regime.

Run:  PYTHONPATH=src python examples/scenario_drift.py
"""

from repro.data import drift_scenario
from repro.experiments import scenario
from repro.extensions import DecayConfig

scn = drift_scenario(n_sources=12, objects_per_step=10, n_steps=16, seed=7)
report = scenario(
    scn,
    methods=("stream-flat", "stream-decayed", "stream-windowed", "batch-em", "majority"),
    decay=DecayConfig(half_life=15.0),
    window_decay=DecayConfig(window=30.0),
    eval_window=4,
)

print(report.table())
print()
flat = report.series["stream-flat"]
decayed = report.series["stream-decayed"]
print(
    f"post-drift trailing accuracy: decayed {decayed.tail()['accuracy']:.3f} "
    f"vs flat {flat.tail()['accuracy']:.3f}"
)
print(f"best method by final held-out accuracy: {report.best()}")

assert decayed.tail()["accuracy"] > flat.tail()["accuracy"], (
    "decayed trust should track the step drift"
)
