"""Serve a drifting stream: ingest -> publish snapshots -> query live.

Simulates a claim feed whose source reliabilities drift mid-stream (one
sensor silently degrades), pushes it through the background writer loop
of a ``repro.serve.FusionServer`` with periodic snapshot publishes, and
queries the published snapshots while ingest continues — the serving
contract is that queries never wait on the stream.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

from repro.data import as_generator
from repro.serve import FusionServer

DOMAIN = ["a", "b", "c", "d"]
#: (source, accuracy before the drift, accuracy after the drift).
SOURCES = [
    ("curated-db", 0.95, 0.95),
    ("crowd-feed", 0.70, 0.70),
    ("sensor-7", 0.90, 0.25),  # the drifter: goes bad halfway through
]


def make_batch(rng, batch_index, n_objects, accuracies):
    """Fresh objects, each claimed once by every source at its accuracy."""
    batch, truth = [], {}
    for slot in range(n_objects):
        obj = f"fact-{batch_index}-{slot}"
        truth[obj] = DOMAIN[rng.integers(len(DOMAIN))]
        for (source, _, _), accuracy in zip(SOURCES, accuracies):
            if rng.random() < accuracy:
                value = truth[obj]
            else:
                wrong = [v for v in DOMAIN if v != truth[obj]]
                value = wrong[rng.integers(len(wrong))]
            batch.append((source, obj, value))
    return batch, truth


def report(label, server, truth):
    snapshot = server.snapshot
    correct = sum(server.value(obj) == value for obj, value in truth.items())
    print(f"{label}: snapshot v{snapshot.version}, {snapshot.n_objects} objects, "
          f"MAP accuracy {correct / len(truth):.2f}")
    for source, accuracy in sorted(server.source_accuracies().items()):
        print(f"  {source:12s} estimated accuracy {accuracy:.2f}")


def main() -> None:
    rng = as_generator(7)
    n_batches, drift_at = 12, 6

    # decay discounts old Beta evidence, so reliability estimates track
    # the *recent* stream; publish_every keeps served snapshots fresh.
    server = FusionServer(decay=0.9, publish_every=3).start()

    truth = {}
    for index in range(n_batches):
        era = 0 if index < drift_at else 1
        accuracies = [before if era == 0 else after for (_, before, after) in SOURCES]
        batch, batch_truth = make_batch(rng, index, 8, accuracies)
        truth.update(batch_truth)
        server.ingest(batch)
        if index == drift_at - 1:
            server.flush()
            report("before drift", server, truth)
            # Readers keep getting answers from the published snapshot
            # while the second era streams in behind them.
            truth = {}

    server.flush()
    server.stop(publish=True)
    report("after drift", server, truth)

    print("\nmost conflicted objects (lowest MAP margin):")
    for entry in server.top_conflicts(3):
        print(f"  {entry.object}: {entry.map_value!r} over {entry.runner_up!r} "
              f"by {entry.margin:.2f}")
    print(f"\nserved {server.metrics.query_count} queries across "
          f"{server.metrics.swap_count} snapshot swaps "
          f"({server.metrics.ingest_batches} batches ingested)")


if __name__ == "__main__":
    main()
