"""RA4 — cache-version honesty: featurizer edits must bump a version.

``repro.featurize`` persists computed feature blocks in a
``FeatureCache`` keyed by ``(group name, group version,
FEATURIZER_VERSION, data fingerprint)``.  The key is only honest if the
versions actually move when the code they describe changes — otherwise
a stale cache silently serves features computed by old code.

This rule pins that contract with a lock file
(``tools/repro_analysis/versions.lock``, JSON) mapping each *entity* to
a ``(version, source digest)`` pair:

* every ``class`` defined in ``src/repro/featurize/groups.py`` that is
  (or derives from) ``FeatureGroup``, versioned by its class-level
  ``version = N`` literal;
* ``featurize.stats`` — the whole kernel module
  ``src/repro/featurize/stats.py`` (every group calls into it), which
  is versioned by ``FEATURIZER_VERSION`` in ``pipeline.py``.

The digest is ``sha256`` of the normalized source segment (trailing
whitespace stripped, blank lines dropped), truncated to 16 hex chars.
If a digest moved but its version did not, the rule fails with "bump
the version"; once the version is bumped (or an entity is added or
removed), ``--update-lock`` rewrites the lock.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .core import META_RULE, Finding, Project, rule

RULE_ID = "RA4"

GROUPS_PATH = "src/repro/featurize/groups.py"
STATS_PATH = "src/repro/featurize/stats.py"
PIPELINE_PATH = "src/repro/featurize/pipeline.py"
LOCK_NAME = "versions.lock"

#: The aggregate entity for the shared statistic kernels.
STATS_ENTITY = "featurize.stats"


def lock_path(root: Path) -> Path:
    return Path(root) / "tools" / "repro_analysis" / LOCK_NAME


def _digest(lines: List[str]) -> str:
    normalized = [line.rstrip() for line in lines]
    payload = "\n".join(line for line in normalized if line)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _segment(lines: List[str], node: ast.AST) -> List[str]:
    start = min([node.lineno] + [dec.lineno for dec in getattr(node, "decorator_list", [])])
    end = node.end_lineno or node.lineno
    return lines[start - 1 : end]


def _class_version(node: ast.ClassDef) -> Optional[int]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if "version" in targets and isinstance(stmt.value, ast.Constant):
                value = stmt.value.value
                return value if isinstance(value, int) else None
    return None


def _module_constant(tree: ast.Module, name: str) -> Optional[int]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if name in targets and isinstance(stmt.value, ast.Constant):
                value = stmt.value.value
                return value if isinstance(value, int) else None
    return None


def compute_entities(root: Path) -> Tuple[Dict[str, Dict[str, object]], List[Finding]]:
    """``{entity: {"version": int, "digest": str}}`` for the live tree.

    Layout-relative so tests can point ``root`` at a miniature tree with
    the same ``src/repro/featurize`` paths.
    """
    root = Path(root)
    entities: Dict[str, Dict[str, object]] = {}
    problems: List[Finding] = []

    groups_file = root / GROUPS_PATH
    if groups_file.is_file():
        text = groups_file.read_text()
        lines = text.splitlines()
        try:
            tree = ast.parse(text)
        except SyntaxError as error:
            problems.append(
                Finding(META_RULE, GROUPS_PATH, error.lineno or 1, f"does not parse: {error.msg}")
            )
        else:
            group_classes = {"FeatureGroup"}
            # One pass in file order is enough: subclasses are defined
            # below their base in this module.
            for node in tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
                if node.name != "FeatureGroup" and not (bases & group_classes):
                    continue
                group_classes.add(node.name)
                version = _class_version(node)
                if version is None:
                    problems.append(
                        Finding(
                            RULE_ID,
                            GROUPS_PATH,
                            node.lineno,
                            f"{node.name} needs a class-level integer `version = N` "
                            f"literal so FeatureCache keys can track it",
                        )
                    )
                    continue
                entities[f"groups.{node.name}"] = {
                    "version": version,
                    "digest": _digest(_segment(lines, node)),
                }
    else:
        problems.append(Finding(META_RULE, GROUPS_PATH, 1, "file not found"))

    stats_file = root / STATS_PATH
    pipeline_file = root / PIPELINE_PATH
    if stats_file.is_file() and pipeline_file.is_file():
        version = None
        try:
            version = _module_constant(ast.parse(pipeline_file.read_text()), "FEATURIZER_VERSION")
        except SyntaxError as error:
            problems.append(
                Finding(META_RULE, PIPELINE_PATH, error.lineno or 1, f"does not parse: {error.msg}")
            )
        if version is None:
            problems.append(
                Finding(
                    RULE_ID,
                    PIPELINE_PATH,
                    1,
                    "FEATURIZER_VERSION must be a module-level integer literal",
                )
            )
        else:
            entities[STATS_ENTITY] = {
                "version": version,
                "digest": _digest(stats_file.read_text().splitlines()),
            }
    else:
        problems.append(Finding(META_RULE, STATS_PATH, 1, "stats.py/pipeline.py not found"))

    return entities, problems


def read_lock(root: Path) -> Optional[Dict[str, Dict[str, object]]]:
    path = lock_path(root)
    if not path.is_file():
        return None
    data = json.loads(path.read_text())
    return data.get("entities", {})


def update_lock(root: Path) -> Tuple[Dict[str, Dict[str, object]], List[Finding]]:
    """Recompute digests and rewrite the lock file; returns (entities, problems)."""
    entities, problems = compute_entities(Path(root))
    payload = {
        "comment": (
            "Pinned (version, source digest) per featurizer entity; "
            "regenerate with `python -m tools.repro_analysis --update-lock`."
        ),
        "entities": {name: entities[name] for name in sorted(entities)},
    }
    lock_path(root).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return entities, problems


@rule(RULE_ID, "cache-version honesty: featurizer source changes bump versions")
def check(project: Project) -> List[Finding]:
    entities, findings = compute_entities(project.root)
    locked = read_lock(project.root)
    lock_rel = f"tools/repro_analysis/{LOCK_NAME}"
    if locked is None:
        findings.append(
            Finding(
                RULE_ID,
                lock_rel,
                1,
                "versions.lock missing — generate it with "
                "`python -m tools.repro_analysis --update-lock`",
            )
        )
        return findings

    for name in sorted(entities):
        current = entities[name]
        pinned = locked.get(name)
        where = STATS_PATH if name == STATS_ENTITY else GROUPS_PATH
        if pinned is None:
            findings.append(
                Finding(
                    RULE_ID,
                    lock_rel,
                    1,
                    f"new entity {name!r} is not pinned — run --update-lock",
                )
            )
            continue
        digest_moved = current["digest"] != pinned.get("digest")
        version_moved = current["version"] != pinned.get("version")
        if digest_moved and not version_moved:
            findings.append(
                Finding(
                    RULE_ID,
                    where,
                    1,
                    f"source of {name!r} changed but its version is still "
                    f"{current['version']} — bump the version so FeatureCache "
                    f"keys change, then run --update-lock",
                )
            )
        elif digest_moved or version_moved:
            findings.append(
                Finding(
                    RULE_ID,
                    lock_rel,
                    1,
                    f"{name!r} was re-versioned (now v{current['version']}) — "
                    f"refresh the pin with --update-lock",
                )
            )
    for name in sorted(set(locked) - set(entities)):
        findings.append(
            Finding(
                RULE_ID,
                lock_rel,
                1,
                f"pinned entity {name!r} no longer exists — run --update-lock",
            )
        )
    findings.sort(key=lambda f: (f.path, f.line))
    return findings
