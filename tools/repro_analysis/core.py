"""Shared visitor/reporting core for the ``repro_analysis`` rules.

The pieces every rule family uses:

* :class:`SourceFile` — one parsed module: text, AST, and the
  ``# repro-analysis:`` comment annotations (``ignore[RULE]``
  suppressions and ``holds[lock]`` assertions), resolved to line spans.
* :class:`Project` — the repo layout the rules walk (``src/repro``,
  ``examples``, ``tests``), parsed once and shared.
* The rule registry — rule modules register a
  ``func(project) -> [Finding]`` under an id via :func:`rule`; the
  runner applies suppressions centrally so every rule gets the same
  comment syntax for free.
* :class:`Report` — partitioned results (live findings, suppressed
  findings, unused suppressions) with text and JSON renderings.

Suppression scope: an ``ignore[RULE]`` comment matches findings on its
own line and the line directly below it (so it can sit above a
statement), and when it sits on — or directly above — a ``def`` /
``class`` header it covers the whole body.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

#: Rule id for tool-level diagnostics (unparseable file, malformed
#: annotation, unused suppression under ``--strict``).  Not suppressible.
META_RULE = "RA0"

_ANNOTATION_RE = re.compile(r"#\s*repro-analysis:\s*(ignore|holds)\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class SourceFile:
    """One parsed python module plus its ``repro-analysis`` annotations."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.parse_error: Optional[str] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text)
        except SyntaxError as error:
            self.tree = None
            self.parse_error = f"{error.msg} (line {error.lineno})"
        #: line -> rules ignored on that line (directly annotated lines).
        self.ignores: Dict[int, Set[str]] = {}
        #: line -> lock names asserted held (annotated ``def`` lines).
        self.holds: Dict[int, Set[str]] = {}
        for number, line in enumerate(self.lines, 1):
            for kind, payload in _ANNOTATION_RE.findall(line):
                names = {part.strip() for part in payload.split(",") if part.strip()}
                target = self.ignores if kind == "ignore" else self.holds
                target.setdefault(number, set()).update(names)
        #: (start, end, rules) spans from annotated def/class headers.
        self.ignore_spans: List[Tuple[int, int, Set[str]]] = []
        if self.tree is not None:
            for node in ast.walk(self.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                header = min(
                    [node.lineno] + [dec.lineno for dec in node.decorator_list]
                )
                rules: Set[str] = set()
                for line in (header, header - 1):
                    rules |= self.ignores.get(line, set())
                if rules:
                    self.ignore_spans.append((header, node.end_lineno or header, rules))

    def held_locks_for(self, node: ast.AST) -> Set[str]:
        """Locks a ``holds[...]`` annotation asserts for a function node."""
        header = min(
            [node.lineno] + [dec.lineno for dec in getattr(node, "decorator_list", [])]
        )
        held: Set[str] = set()
        for line in (header, header - 1):
            held |= self.holds.get(line, set())
        return held

    def suppressors_at(self, line: int, rule: str) -> List[int]:
        """Annotation lines whose ``ignore[rule]`` covers ``line``."""
        matches = []
        for candidate in (line, line - 1):
            if rule in self.ignores.get(candidate, set()):
                matches.append(candidate)
        for start, end, rules in self.ignore_spans:
            if rule in rules and start <= line <= end:
                for candidate in (start, start - 1):
                    if rule in self.ignores.get(candidate, set()):
                        matches.append(candidate)
        return matches


class Project:
    """The repo layout the rules analyze, parsed once.

    ``src_files`` covers ``src/repro`` (the package under contract),
    ``example_files`` the runnable ``examples/``; ``test_files`` are
    read as text only (RA3 greps them for parity coverage but does not
    lint them).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self.src_files = self._parse_tree(self.root / "src" / "repro")
        self.example_files = self._parse_tree(self.root / "examples")
        self.test_files: Dict[str, str] = {}
        tests = self.root / "tests"
        if tests.is_dir():
            for path in sorted(tests.rglob("*.py")):
                rel = path.relative_to(self.root).as_posix()
                self.test_files[rel] = path.read_text()

    def _parse_tree(self, base: Path) -> List[SourceFile]:
        files = []
        if not base.is_dir():
            return files
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(self.root).as_posix()
            files.append(SourceFile(path, rel, path.read_text()))
        return files

    @property
    def lintable_files(self) -> List[SourceFile]:
        return self.src_files + self.example_files

    def parse_failures(self) -> List[Finding]:
        return [
            Finding(META_RULE, f.rel, 1, f"file does not parse: {f.parse_error}")
            for f in self.lintable_files
            if f.parse_error is not None
        ]


#: Registered rules: id -> (title, func(project) -> [Finding]).
RULES: Dict[str, Tuple[str, Callable[[Project], List[Finding]]]] = {}


def rule(rule_id: str, title: str):
    """Register a rule function under ``rule_id`` (decorator)."""

    def register(func: Callable[[Project], List[Finding]]):
        RULES[rule_id] = (title, func)
        return func

    return register


@dataclass
class Report:
    """Partitioned analysis results plus render helpers."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    unused_suppressions: List[Finding] = field(default_factory=list)
    rules: List[str] = field(default_factory=list)
    n_files: int = 0

    def failed(self, strict: bool = False) -> bool:
        if self.findings:
            return True
        return strict and bool(self.unused_suppressions)

    def to_text(self, strict: bool = False) -> str:
        out = []
        for finding in self.findings:
            out.append(finding.format())
        if strict or not self.findings:
            for finding in self.suppressed:
                out.append(f"{finding.format()} [suppressed]")
        if strict:
            for finding in self.unused_suppressions:
                out.append(finding.format())
        out.append(
            f"{len(self.findings)} finding(s), {len(self.suppressed)} suppressed, "
            f"{len(self.unused_suppressions)} unused suppression(s); "
            f"{self.n_files} files, rules: {', '.join(self.rules)}"
        )
        return "\n".join(out)

    def to_json(self) -> Dict[str, object]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "unused_suppressions": [f.as_dict() for f in self.unused_suppressions],
            "rules": list(self.rules),
            "n_files": self.n_files,
        }


def _file_index(project: Project) -> Dict[str, SourceFile]:
    return {f.rel: f for f in project.lintable_files}


def run_rules(project: Project, rule_ids: Optional[Sequence[str]] = None) -> Report:
    """Run the selected rules and partition findings by suppression."""
    # Import for side effect: rule modules self-register on import.
    from . import backends, determinism, locks, versions  # noqa: F401

    selected = list(rule_ids) if rule_ids else sorted(RULES)
    unknown = [rid for rid in selected if rid not in RULES]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)} (have {sorted(RULES)})")

    files = _file_index(project)
    report = Report(rules=selected, n_files=len(project.lintable_files))
    report.findings.extend(project.parse_failures())

    used: Set[Tuple[str, int]] = set()
    for rule_id in selected:
        _, func = RULES[rule_id]
        for finding in func(project):
            source = files.get(finding.path)
            suppressors = (
                source.suppressors_at(finding.line, finding.rule) if source else []
            )
            if suppressors:
                for line in suppressors:
                    used.add((finding.path, line))
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)

    for source in project.lintable_files:
        for line, rules in sorted(source.ignores.items()):
            relevant = rules & set(selected)
            if relevant and (source.rel, line) not in used:
                report.unused_suppressions.append(
                    Finding(
                        META_RULE,
                        source.rel,
                        line,
                        f"suppression ignore[{','.join(sorted(relevant))}] no longer "
                        f"matches any finding — remove it",
                    )
                )

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
