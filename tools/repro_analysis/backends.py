"""RA3 — backend parity: every dispatch handles both backends, with a test.

The reproduction ships paired implementations — a paper-faithful
``"reference"`` path and a ``"vectorized"`` production path — selected
by ``backend=`` at runtime.  The bug class this rule targets is the
half-dispatch: an ``if backend == "vectorized":`` whose other arm
silently falls through, so ``backend="reference"`` *runs the vectorized
code* (or nothing) and the differential suites stop comparing anything.

A comparison is *backend-ish* when one side names a backend (a name or
attribute ending in ``backend``, or a call to such a function, e.g.
``check_backend(backend)``) and the other side is one of the literals
``"vectorized"`` / ``"reference"`` / ``"auto"``.

Checked per ``if``/``elif`` chain whose tests contain a backend-ish
comparison.  A chain is **well-formed** when any of:

* it ends in a final ``else`` (every value gets a branch);
* the equality literals across its tests cover both ``"vectorized"``
  and ``"reference"``;
* every backend-testing branch body ends in ``return`` / ``raise``
  (the fallthrough *is* the other backend's path).

Chains whose backend branches all end in ``raise`` are validation
guards — exempt, and not counted as dispatch.  Comparisons outside
``if`` tests (boolean assignments, ternaries) always bind both
outcomes, so they are fine — but they do mark the module as
*dispatching*, and every dispatching module must have a parity test: a
file under ``tests/`` that mentions the module's stem and contains both
backend literals.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import List, Optional, Set, Tuple

from .core import Finding, Project, SourceFile, rule

RULE_ID = "RA3"

#: The backend vocabulary; "auto" resolves to one of the other two.
BACKEND_LITERALS = {"vectorized", "reference", "auto"}

#: Both of these must be claimed by some dispatch arm (or an else).
REQUIRED = {"vectorized", "reference"}


def _is_backend_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id.lower().endswith("backend")
    if isinstance(node, ast.Attribute):
        return node.attr.lower().endswith("backend")
    if isinstance(node, ast.Call):
        return _is_backend_expr(node.func)
    return False


def _literal_set(node: ast.AST) -> Optional[Set[str]]:
    """The backend literals in a constant (or tuple/set/list of them)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value} if node.value in BACKEND_LITERALS else None
    if isinstance(node, (ast.Tuple, ast.Set, ast.List)):
        values = set()
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            values.add(element.value)
        return values if values & BACKEND_LITERALS else None
    return None


def _backend_comparison(node: ast.Compare) -> Optional[Set[str]]:
    """``None`` if not backend-ish, else the equality-claimed literals.

    ``backend == "vectorized"`` claims ``{"vectorized"}``;
    ``backend in ("reference", "auto")`` claims both; negative forms
    (``!=`` / ``not in``) are backend-ish but claim nothing — their
    *body* runs for every other value, so they can't prove coverage.
    """
    if len(node.ops) != 1:
        return None
    left, right, op = node.left, node.comparators[0], node.ops[0]
    if isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
        for expr, other in ((left, right), (right, left)):
            if _is_backend_expr(expr):
                literals = _literal_set(other)
                if literals is not None:
                    return literals if isinstance(op, (ast.Eq, ast.In)) else set()
    return None


def _test_backend_literals(test: ast.expr) -> Optional[Set[str]]:
    """Claimed literals if the test contains a backend comparison."""
    claimed: Optional[Set[str]] = None
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            literals = _backend_comparison(node)
            if literals is not None:
                claimed = (claimed or set()) | literals
    return claimed


def _chain(head: ast.If) -> Tuple[List[Tuple[ast.expr, List[ast.stmt]]], List[ast.stmt]]:
    """Flatten an if/elif chain into (test, body) arms plus the else body."""
    arms = []
    node = head
    while True:
        arms.append((node.test, node.body))
        if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
            node = node.orelse[0]
        else:
            return arms, node.orelse


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1], (ast.Return, ast.Raise))


def _check_file(source: SourceFile) -> Tuple[List[Finding], bool]:
    """Findings for one module, plus whether it dispatches on backends."""
    findings: List[Finding] = []
    dispatches = False
    if source.tree is None:
        return findings, dispatches

    elif_nodes = {
        id(node.orelse[0])
        for node in ast.walk(source.tree)
        if isinstance(node, ast.If)
        and len(node.orelse) == 1
        and isinstance(node.orelse[0], ast.If)
    }
    tested: Set[int] = set()  # Compare nodes consumed by if-chain tests

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.If) or id(node) in elif_nodes:
            continue
        arms, orelse = _chain(node)
        backend_arms = []  # (test, body, claimed literals)
        for test, body in arms:
            claimed = _test_backend_literals(test)
            for sub in ast.walk(test):
                if isinstance(sub, ast.Compare) and _backend_comparison(sub) is not None:
                    tested.add(id(sub))
            if claimed is not None:
                backend_arms.append((test, body, claimed))
        if not backend_arms:
            continue
        if all(_terminates(body) and isinstance(body[-1], ast.Raise) for _, body, _ in backend_arms):
            continue  # validation guard, not a dispatch
        dispatches = True
        claimed_union = set().union(*(claimed for _, _, claimed in backend_arms))
        well_formed = (
            bool(orelse)
            or REQUIRED <= claimed_union
            or all(_terminates(body) for _, body, _ in backend_arms)
        )
        if not well_formed:
            handled = ", ".join(sorted(claimed_union)) or "a negative match only"
            findings.append(
                Finding(
                    RULE_ID,
                    source.rel,
                    node.lineno,
                    f"backend dispatch handles {handled} and silently falls "
                    f"through for the other backend(s): add an else / a "
                    f"'reference' and 'vectorized' arm / make each backend "
                    f"branch return or raise",
                )
            )

    # Comparisons outside if-chain tests (boolean assignments, ternary
    # tests) bind both outcomes — fine, but they are still dispatch.
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Compare)
            and id(node) not in tested
            and _backend_comparison(node) is not None
        ):
            dispatches = True
    return findings, dispatches


def _parity_candidates(project: Project) -> List[Tuple[str, str]]:
    """Test files exercising both backend literals, as (rel, haystack)."""
    candidates = []
    for rel, text in project.test_files.items():
        lowered = text.lower()
        if (
            ('"vectorized"' in lowered or "'vectorized'" in lowered)
            and ('"reference"' in lowered or "'reference'" in lowered)
        ):
            candidates.append((rel, rel.lower() + "\n" + lowered))
    return candidates


@rule(RULE_ID, "backend parity: complete dispatch + a vectorized-vs-reference test")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    candidates = _parity_candidates(project)
    for source in project.src_files:
        file_findings, dispatches = _check_file(source)
        findings.extend(file_findings)
        if not dispatches:
            continue
        stem = PurePosixPath(source.rel).stem.lstrip("_")
        if not stem or stem == "init":
            stem = PurePosixPath(source.rel).parent.name
        pattern = re.compile(rf"(?<![a-z0-9]){re.escape(stem.lower())}(?![a-z0-9])")
        if not any(pattern.search(haystack) for _, haystack in candidates):
            findings.append(
                Finding(
                    RULE_ID,
                    source.rel,
                    1,
                    f"module dispatches on backend= but no parity test under "
                    f"tests/ mentions {stem!r} while exercising both "
                    f"\"vectorized\" and \"reference\"",
                )
            )
    findings.sort(key=lambda f: (f.path, f.line))
    return findings
