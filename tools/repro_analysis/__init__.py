"""Repo-aware static analysis for the SLiMFast reproduction.

``python -m tools.repro_analysis`` runs four rule families over the tree
(zero dependencies, pure ``ast``), each enforcing an invariant the
runtime differential suites otherwise catch only as flaky failures:

* **RA1 — determinism.**  No ad-hoc RNG construction in ``src/repro`` or
  ``examples``: every generator flows through
  :func:`repro._rng.as_generator` / ``spawn_generators`` (re-exported by
  ``repro.data.simulators``), so seeds stay process-fan-out
  reproducible.
* **RA2 — lock discipline.**  Modules that declare a ``GUARDED_BY``
  table (``repro.serve``) get a guarded-attribute race check: each
  listed attribute may only be touched inside ``with self.<lock>:`` (or
  in ``__init__``/``__new__``, or in a function annotated
  ``# repro-analysis: holds[<lock>]``).
* **RA3 — backend parity.**  Backend dispatch sites must handle both
  ``"vectorized"`` and ``"reference"`` (an untaken branch must fall
  through to nothing is the bug class), and every dispatching module
  needs a parity test under ``tests/`` that exercises both literals.
* **RA4 — cache-version honesty.**  The source of every
  ``FeatureGroup`` subclass and of the ``featurize.stats`` kernels is
  digested into ``versions.lock``; editing one without bumping its
  ``version`` / ``FEATURIZER_VERSION`` fails, keeping ``FeatureCache``
  keys honest.  ``--update-lock`` refreshes the lock.

Per-line suppression: ``# repro-analysis: ignore[RA2]`` on the flagged
line, the line above it, or the ``def``/``class`` header (covers the
whole body).  ``--strict`` additionally fails on suppressions that no
longer match anything.  See ``docs/analysis.md`` for the full catalog.
"""

from .core import Finding, Project, Report, run_rules  # noqa: F401

__all__ = ["Finding", "Project", "Report", "run_rules"]
