"""RA1 — determinism: all RNGs flow through ``repro._rng``.

The reproduction's cross-process contracts (chunked featurizer
statistics, sharded E-steps, scenario streams replayed in ``spawn``
workers) hold only when every random stream is derived from an explicit
seed through ``SeedSequence`` — which is exactly what
:func:`repro._rng.as_generator` / ``spawn_generators`` do.  This rule
flags the constructions that bypass that chokepoint in ``src/repro``
and ``examples``:

* ``np.random.default_rng(...)`` — even seeded: ad-hoc construction
  skips the ``Generator``-passthrough and ``RandomState`` rejection of
  ``as_generator``, and unseeded calls are silently irreproducible;
* legacy module-level ``np.random.*`` calls (``seed``, ``rand``,
  ``RandomState()``, ...) — hidden global state;
* stdlib ``random`` module calls and ``from numpy.random import ...``
  aliases of the above.

Allowlisted: ``src/repro/_rng.py`` itself (the definition site is the
one place allowed to call ``default_rng``).  Genuinely
entropy-by-design sites must carry ``# repro-analysis: ignore[RA1]``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .core import Finding, Project, SourceFile, rule

RULE_ID = "RA1"

#: Files allowed to construct generators directly: the chokepoint itself.
ALLOWLIST = {"src/repro/_rng.py"}

#: ``numpy.random`` attributes that are fine to *reference* (types used
#: in annotations / isinstance checks, and the seeding machinery).
_NUMPY_RANDOM_OK = {"Generator", "SeedSequence", "BitGenerator", "PCG64"}

#: stdlib ``random`` members whose call implies drawing from (or
#: seeding) the hidden global stream.
_STDLIB_RANDOM = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}


def _numpy_random_attr(node: ast.AST, numpy_aliases: Set[str], random_aliases: Set[str]) -> Optional[str]:
    """The ``X`` of an ``np.random.X`` / ``<numpy.random alias>.X`` access."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in numpy_aliases
    ):
        return node.attr
    if isinstance(value, ast.Name) and value.id in random_aliases:
        return node.attr
    return None


def _check_file(source: SourceFile) -> List[Finding]:
    tree = source.tree
    if tree is None:
        return []
    numpy_aliases: Set[str] = set()  # names bound to the numpy module
    npr_aliases: Set[str] = set()  # names bound to numpy.random
    stdlib_random_aliases: Set[str] = set()  # names bound to stdlib random
    from_random_names: Set[str] = set()  # sampling funcs imported from random
    findings: List[Finding] = []

    def flag(node: ast.AST, message: str) -> None:
        findings.append(Finding(RULE_ID, source.rel, node.lineno, message))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy":
                    numpy_aliases.add(bound)
                elif alias.name == "numpy.random":
                    npr_aliases.add(alias.asname or "numpy")
                    if alias.asname:
                        npr_aliases.add(alias.asname)
                elif alias.name == "random":
                    stdlib_random_aliases.add(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy" and node.level == 0:
                for alias in node.names:
                    if alias.name == "random":
                        npr_aliases.add(alias.asname or "random")
            elif node.module == "numpy.random" and node.level == 0:
                for alias in node.names:
                    if alias.name not in _NUMPY_RANDOM_OK:
                        flag(
                            node,
                            f"import of numpy.random.{alias.name}: route seeds "
                            f"through repro._rng.as_generator/spawn_generators "
                            f"(re-exported by repro.data.simulators)",
                        )
            elif node.module == "random" and node.level == 0:
                for alias in node.names:
                    if alias.name in _STDLIB_RANDOM:
                        from_random_names.add(alias.asname or alias.name)
                        flag(
                            node,
                            f"import of stdlib random.{alias.name}: draws from "
                            f"hidden global state; use a numpy Generator from "
                            f"repro._rng.as_generator",
                        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        attr = _numpy_random_attr(func, numpy_aliases, npr_aliases)
        if attr == "default_rng":
            flag(
                node,
                "ad-hoc np.random.default_rng(): call "
                "repro._rng.as_generator(seed) (or spawn_generators) so seeds "
                "keep the cross-process determinism contract",
            )
        elif attr is not None and attr not in _NUMPY_RANDOM_OK:
            flag(
                node,
                f"legacy module-level np.random.{attr}() call: hidden global "
                f"RNG state breaks reproducibility; use a Generator from "
                f"repro._rng.as_generator",
            )
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in stdlib_random_aliases
            and func.attr in _STDLIB_RANDOM
        ):
            flag(
                node,
                f"stdlib random.{func.attr}() call: draws from hidden global "
                f"state; use a numpy Generator from repro._rng.as_generator",
            )
        elif isinstance(func, ast.Name) and func.id in from_random_names:
            flag(
                node,
                f"stdlib random.{func.id}() call: draws from hidden global "
                f"state; use a numpy Generator from repro._rng.as_generator",
            )
    return findings


@rule(RULE_ID, "determinism: RNGs flow through repro._rng")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.lintable_files:
        if source.rel in ALLOWLIST:
            continue
        findings.extend(_check_file(source))
    return findings
