"""CLI for the repro static-analysis suite.

Exit codes: 0 clean, 1 findings (or, with ``--strict``, unused
suppressions), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .core import RULES, Project, run_rules
from .versions import update_lock


def _parse_rules(spec: str) -> List[str]:
    return [part.strip().upper() for part in spec.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_analysis",
        description="Repo-aware static analysis: determinism (RA1), lock "
        "discipline (RA2), backend parity (RA3), cache-version honesty (RA4).",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repository root to analyze (default: this checkout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RA1,RA2,...",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppression comments that no longer match anything",
    )
    parser.add_argument(
        "--update-lock",
        action="store_true",
        help="recompute featurizer digests and rewrite versions.lock, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    # Rule modules self-register on import; pull them in for --list-rules
    # the same way run_rules does.
    from . import backends, determinism, locks, versions  # noqa: F401

    if args.list_rules:
        for rule_id in sorted(RULES):
            title, _ = RULES[rule_id]
            print(f"{rule_id}  {title}")
        return 0

    root = args.root.resolve()
    if not (root / "src" / "repro").is_dir():
        print(f"error: {root} does not look like the repo root (no src/repro)", file=sys.stderr)
        return 2

    if args.update_lock:
        entities, problems = update_lock(root)
        for finding in problems:
            print(finding.format(), file=sys.stderr)
        print(f"pinned {len(entities)} entities in tools/repro_analysis/versions.lock")
        return 2 if problems else 0

    rule_ids = _parse_rules(args.rules) if args.rules else None
    try:
        report = run_rules(Project(root), rule_ids)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.to_text(strict=args.strict))
    return 1 if report.failed(strict=args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
