"""RA2 — lock discipline: ``GUARDED_BY`` attributes stay under their lock.

The serving layer (``repro.serve``) publishes snapshots to concurrent
reader threads; its correctness argument is "every mutable field is
only touched under the lock named next to it".  This rule makes that
argument checkable: a module opts in by declaring a literal table

.. code-block:: python

    GUARDED_BY = {"_published": "_swap_lock", "_version": "_write_lock"}

and every ``self.<attr>`` access to a listed attribute must then occur

* inside a ``with self.<lock>:`` block for the declared lock,
* inside ``__init__`` / ``__new__`` (the object is not yet shared), or
* inside a function annotated ``# repro-analysis: holds[<lock>]`` on
  its ``def`` line — the caller-holds-the-lock contract.

Nested functions do **not** inherit the enclosing scope's held locks:
a closure may run after the block exits (thread target, callback), so
each ``def`` starts from only its own ``holds[...]`` annotation.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .core import META_RULE, Finding, Project, SourceFile, rule

RULE_ID = "RA2"

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Functions whose body runs before the object can be shared.
_CONSTRUCTORS = {"__init__", "__new__"}


def _guarded_by_table(source: SourceFile) -> Tuple[Optional[Dict[str, str]], List[Finding]]:
    """The module-level ``GUARDED_BY`` literal, if declared."""
    if source.tree is None:
        return None, []
    for node in source.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "GUARDED_BY" not in targets:
            continue
        if isinstance(node.value, ast.Dict):
            table: Dict[str, str] = {}
            ok = True
            for key, value in zip(node.value.keys, node.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    table[key.value] = value.value
                else:
                    ok = False
            if ok:
                return table, []
        return None, [
            Finding(
                META_RULE,
                source.rel,
                node.lineno,
                "GUARDED_BY must be a literal {\"attr\": \"lock\"} dict of "
                "string constants so the analyzer can read it",
            )
        ]
    return None, []


def _with_locks(node: ast.AST) -> Set[str]:
    """Lock names acquired by a ``with`` statement (``with self.<lock>:``)."""
    locks: Set[str] = set()
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Attribute)
                and isinstance(ctx.value, ast.Name)
                and ctx.value.id == "self"
            ):
                locks.add(ctx.attr)
    return locks


class _FunctionChecker(ast.NodeVisitor):
    """Walks one function body tracking the set of held locks."""

    def __init__(
        self,
        source: SourceFile,
        table: Dict[str, str],
        held: Set[str],
        findings: List[Finding],
        pending: List[Tuple[ast.AST, Set[str]]],
    ) -> None:
        self.source = source
        self.table = table
        self.held = held
        self.findings = findings
        self.pending = pending
        self.lock_names = set(table.values())

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Closures don't inherit held locks: they may outlive the block.
        self.pending.append((node, self.source.held_locks_for(node)))

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.pending.append((node, set()))

    def visit_With(self, node: ast.With) -> None:
        # Only release what this statement newly acquired, so re-entering
        # a with for an already-held lock doesn't drop it on exit.
        acquired = (_with_locks(node) & self.lock_names) - self.held
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held |= acquired
        for stmt in node.body:
            self.visit(stmt)
        self.held -= acquired

    visit_AsyncWith = visit_With

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.table
        ):
            lock = self.table[node.attr]
            if lock not in self.held:
                self.findings.append(
                    Finding(
                        RULE_ID,
                        self.source.rel,
                        node.lineno,
                        f"self.{node.attr} is GUARDED_BY {lock!r} but accessed "
                        f"without holding it — wrap in `with self.{lock}:` or "
                        f"annotate the def with `# repro-analysis: holds[{lock}]`",
                    )
                )
        self.generic_visit(node)


def _check_file(source: SourceFile) -> List[Finding]:
    table, findings = _guarded_by_table(source)
    if table is None or source.tree is None:
        return findings
    # Seed the work queue with every top-level-of-its-scope function;
    # nested defs are queued by the checker with a fresh held set.
    pending: List[Tuple[ast.AST, Set[str]]] = []

    def collect(body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, _FUNC_NODES):
                pending.append((stmt, source.held_locks_for(stmt)))
            elif isinstance(stmt, ast.ClassDef):
                collect(stmt.body)

    collect(source.tree.body)
    while pending:
        node, held = pending.pop()
        name = getattr(node, "name", "<lambda>")
        if name in _CONSTRUCTORS:
            continue
        checker = _FunctionChecker(source, table, set(held), findings, pending)
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            checker.visit(stmt)
    return findings


@rule(RULE_ID, "lock discipline: GUARDED_BY attributes accessed under their lock")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.lintable_files:
        findings.extend(_check_file(source))
    findings.sort(key=lambda f: (f.path, f.line))
    return findings
