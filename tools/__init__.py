"""Repo tooling namespace (static analysis, maintenance scripts)."""
