"""Ablation: ERM objective — correctness (Definition 7) vs conditional
(Equation 4).

DESIGN.md calls this choice out: the correctness objective is plain
logistic regression on per-observation labels, while the conditional
objective maximizes the object-level posterior directly.  Both are convex;
they should land on similar accuracies, with the correctness objective
cheaper per iteration.
"""


from repro.core import ERMConfig, ERMLearner
from repro.core.inference import map_assignment, posteriors
from repro.experiments import format_table
from repro.fusion import object_value_accuracy

from conftest import publish


def _fit_and_score(dataset, objective, fraction=0.10, seed=0):
    split = dataset.split(fraction, seed=seed)
    model = ERMLearner(ERMConfig(objective=objective)).fit(dataset, split.train_truth)
    values = map_assignment(posteriors(dataset, model, clamp=split.train_truth))
    return object_value_accuracy(values, dataset.ground_truth, split.test_objects)


def test_ablation_erm_objectives(benchmark, paper_datasets):
    def run():
        rows = []
        for name in ("stocks", "crowd", "genomics"):
            dataset = paper_datasets[name]
            rows.append(
                [
                    name,
                    _fit_and_score(dataset, "correctness"),
                    _fit_and_score(dataset, "conditional"),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "Correctness obj.", "Conditional obj."],
        rows,
        title="Ablation: ERM objective choice (accuracy at 10% TD)",
    )
    publish("ablation_objectives", text)

    for name, correctness, conditional in rows:
        assert abs(correctness - conditional) < 0.1, (
            f"{name}: objectives diverge ({correctness:.3f} vs {conditional:.3f})"
        )
