"""Out-of-core scale benchmark: the ragged posterior store at ~1M observations.

Builds a deliberately *skewed* workload — one hub object whose candidate
domain is tens of thousands of values wide, plus a long tail of narrow
objects — where the retired dense ``(n_objects, max_domain)`` posterior
matrix would cost ``n_objects * max_domain`` cells (tens of GiB at full
scale) while the ragged :class:`repro.fusion.posterior_store.PosteriorStore`
holds one row per *candidate* (a few MiB).  The case:

* fits semi-supervised EM end to end under the ragged store, sharded
  (``EMConfig.n_shards``) so no step ever touches a dense matrix;
* asserts the shard-count invariance contract in-case (``n_shards=1`` vs
  ``n_shards=4``: value codes bit-identical, posterior probabilities and
  source accuracies within ``atol=1e-10``);
* demonstrates that the dense path *cannot* run: projected dense cells
  exceed ``DENSE_MAX_CELLS`` and ``posterior_matrix`` materialization is
  refused with ``MemoryError``;
* records wall time, process peak RSS, and the ragged-vs-dense memory
  footprint in a ``BENCH_scale.json`` artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # smoke (~240k obs)
    PYTHONPATH=src python benchmarks/bench_scale.py --full     # scale_1m (~1M obs)

``REPRO_BENCH_SCALE=full`` (the ``run_all.py --full`` convention) also
selects the full size.  Exits nonzero when any contract assertion fails,
so the nightly workflow gates on it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_scale.json"

#: Shard-count invariance tolerance (the cross-shard reduce reorders
#: float additions; everything else is bit-identical — see
#: ``repro/fusion/sharding.py``).
PROB_ATOL = 1e-10

SIZES = {
    # A (source, object) pair may claim at most once, so the hub's domain
    # width equals the source count: every source contributes one distinct
    # hub value.  dense cells = (n_tail + 1) * hub_domain.
    "smoke": dict(n_tail=45_000, hub_domain=5_000, obs_per_tail=3),
    "scale_1m": dict(n_tail=245_000, hub_domain=10_000, obs_per_tail=4),
}


def _peak_rss_kb():
    """Process peak RSS in KiB, or ``None`` where ``resource`` is absent."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS, KiB on Linux
        peak //= 1024
    return int(peak)


def build_skewed_dataset(n_tail: int, hub_domain: int, obs_per_tail: int):
    """Hub-and-tail fusion workload with one very wide candidate domain.

    The hub object receives one *distinct* claim from every source (a
    source may claim an object at most once, so its candidate row count
    is ``hub_domain == n_sources``); each tail object receives
    ``obs_per_tail`` claims from distinct sources, drawn from a 3-value
    candidate pool with source accuracy around 0.7.  Deterministic in
    its arguments.
    """
    import numpy as np

    from repro.fusion import FusionDataset

    rng = np.random.default_rng(11)
    n_sources = hub_domain
    sources = [f"s{i}" for i in range(n_sources)]
    observations = [(sources[v], "hub", f"hub-v{v}") for v in range(hub_domain)]
    truth = {"hub": "hub-v0"}

    # Distinct sources per tail object without per-object sampling loops:
    # a random base source plus a fixed stride of consecutive offsets.
    base_source = rng.integers(0, n_sources, size=n_tail)
    tail_truth_codes = rng.integers(0, 3, size=n_tail)
    correct = rng.random((n_tail, obs_per_tail)) < 0.7
    noise = rng.integers(0, 3, size=(n_tail, obs_per_tail))
    for o in range(n_tail):
        obj = f"o{o}"
        truth[obj] = f"v{tail_truth_codes[o]}"
        for j in range(obs_per_tail):
            code = tail_truth_codes[o] if correct[o, j] else noise[o, j]
            source = sources[(base_source[o] + j) % n_sources]
            observations.append((source, obj, f"v{code}"))
    return FusionDataset(observations, ground_truth=truth)


def run_case(full: bool, output: Path) -> int:
    import numpy as np

    from repro.core.em import EMConfig
    from repro.core.slimfast import SLiMFast
    from repro.fusion.posterior_store import DENSE_MAX_CELLS

    name = "scale_1m" if full else "smoke"
    size = SIZES[name]
    print(f"building {name} workload {size} ...", file=sys.stderr)
    started = time.perf_counter()
    dataset = build_skewed_dataset(**size)
    build_seconds = time.perf_counter() - started
    train = dataset.split(0.10, seed=0).train_truth
    print(
        f"dataset: {dataset.n_sources} sources, {dataset.n_objects} objects, "
        f"{dataset.n_observations} observations ({build_seconds:.1f}s)",
        file=sys.stderr,
    )

    failures = []
    fits = {}
    results = {}
    for n_shards in (1, 4):
        started = time.perf_counter()
        model = SLiMFast(
            em_config=EMConfig(
                solver="lbfgs-warm",
                max_iterations=3,
                tolerance=0.0,
                n_shards=n_shards,
            )
        )
        result = model.fit(dataset, train).predict()
        seconds = time.perf_counter() - started
        fits[n_shards] = {"seconds": seconds, "peak_rss_kb": _peak_rss_kb()}
        results[n_shards] = (result, model.model_.accuracies())
        print(f"n_shards={n_shards}: fit+predict {seconds:.1f}s", file=sys.stderr)

    # Shard-count invariance, asserted at the equivalence contract.
    result_1, acc_1 = results[1]
    result_4, acc_4 = results[4]
    store_1 = result_1.posterior_store
    store_4 = result_4.posterior_store
    codes_identical = bool(np.array_equal(store_1.value_codes, store_4.value_codes))
    prob_delta = float(np.max(np.abs(store_1.probs - store_4.probs), initial=0.0))
    acc_delta = float(np.max(np.abs(acc_1 - acc_4), initial=0.0))
    if not codes_identical:
        failures.append("shard invariance: value codes differ between n_shards=1 and 4")
    if prob_delta > PROB_ATOL:
        failures.append(f"shard invariance: prob delta {prob_delta:.2e} > {PROB_ATOL:.0e}")
    if acc_delta > PROB_ATOL:
        failures.append(f"shard invariance: accuracy delta {acc_delta:.2e} > {PROB_ATOL:.0e}")

    # The dense posterior matrix must be impossible here: the projection
    # overflows the materialization guard, and the store refuses it.
    dense_cells = store_1.dense_cells()
    dense_refused = False
    try:
        result_1.posterior_matrix
    except MemoryError:
        dense_refused = True
    if dense_cells <= DENSE_MAX_CELLS:
        failures.append(
            f"workload too small: projected dense cells {dense_cells:,} fit under "
            f"DENSE_MAX_CELLS={DENSE_MAX_CELLS:,}; the case no longer exercises "
            "the out-of-core path"
        )
    if not dense_refused:
        failures.append("dense materialization was not refused")

    ragged_mib = store_1.nbytes / 2**20
    dense_mib = store_1.dense_nbytes() / 2**20
    print(
        f"ragged store {ragged_mib:.1f} MiB vs projected dense {dense_mib:.0f} MiB "
        f"({dense_cells:,} cells); dense refused: {dense_refused}; "
        f"codes identical: {codes_identical}; prob delta {prob_delta:.1e}",
        file=sys.stderr,
    )

    report = {
        "benchmark": "scale",
        "case": name,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "dataset": {
            "n_sources": dataset.n_sources,
            "n_objects": dataset.n_objects,
            "n_observations": dataset.n_observations,
            "max_domain": int(store_1.max_domain),
            "build_seconds": build_seconds,
        },
        "store": {
            "n_rows": int(store_1.n_rows),
            "ragged_bytes": int(store_1.nbytes),
            "projected_dense_bytes": int(store_1.dense_nbytes()),
            "projected_dense_cells": int(dense_cells),
            "dense_refused": dense_refused,
        },
        "fits": {f"n_shards={k}": v for k, v in fits.items()},
        "invariance": {
            "codes_identical": codes_identical,
            "max_prob_delta": prob_delta,
            "max_accuracy_delta": acc_delta,
            "atol": PROB_ATOL,
        },
        "failures": failures,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}", file=sys.stderr)

    if failures:
        print("SCALE BENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="scale_1m size (~1M observations; default is a CI-sized smoke)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON artifact (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    full = args.full or os.environ.get("REPRO_BENCH_SCALE") == "full"
    return run_case(full, args.output)


if __name__ == "__main__":
    sys.exit(main())
