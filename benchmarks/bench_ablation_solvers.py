"""Ablation: learning algorithm — L-BFGS (library default) vs SGD (paper).

The paper learns weights with SGD over DeepDive's sampler; our default is
deterministic L-BFGS.  This ablation verifies the two land on equivalent
models (accuracy within a point) so the solver choice is an engineering
detail, not a modeling one.
"""


from repro.core import ERMConfig, ERMLearner
from repro.core.inference import map_assignment, posteriors
from repro.experiments import format_table
from repro.fusion import object_value_accuracy

from conftest import publish


def test_ablation_lbfgs_vs_sgd(benchmark, paper_datasets):
    def run():
        rows = []
        for name in ("stocks", "crowd"):
            dataset = paper_datasets[name]
            split = dataset.split(0.10, seed=0)
            scores = {}
            for solver in ("lbfgs", "sgd"):
                model = ERMLearner(
                    ERMConfig(solver=solver, sgd_epochs=60)
                ).fit(dataset, split.train_truth)
                values = map_assignment(posteriors(dataset, model, clamp=split.train_truth))
                scores[solver] = object_value_accuracy(
                    values, dataset.ground_truth, split.test_objects
                )
            rows.append([name, scores["lbfgs"], scores["sgd"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "L-BFGS", "SGD"],
        rows,
        title="Ablation: solver choice (ERM accuracy at 10% TD)",
    )
    publish("ablation_solvers", text)

    for name, lbfgs_acc, sgd_acc in rows:
        assert abs(lbfgs_acc - sgd_acc) < 0.02, (
            f"{name}: solvers diverge ({lbfgs_acc:.3f} vs {sgd_acc:.3f})"
        )
