"""Benchmark the reliability featurizer: stats kernel, cache, and accuracy.

Three sections:

1. **Ratio cases** (gated like the engine benchmark's):
   ``featurize_stats`` compares the vectorized chunkable statistics pass
   (:func:`repro.featurize.compute_source_stats`) against a pure-Python
   per-observation reference loop computing the same accumulators, and
   ``featurize_cache`` compares a cold featurization against a
   content+version-keyed cache hit of the same dataset.
2. **Accuracy artifact**: featurized vs unfeaturized SLiMFast on the
   adversarial scenario generators.  Drift and copier-clique streams run
   the ERM path on the scenario dataset with the stream's revealed truth
   (scarce supervision — where reliability features pool information
   across sources), scored on the held-out objects and averaged over
   seeds; a synthetic instance reports the EM path for reference.
3. **Gates**: the bench **fails** (exit 1) when the featurized mean
   accuracy falls below the unfeaturized mean on the drift or copier
   scenarios — the "features computed from the data itself must pay for
   themselves" contract of the featurizer pipeline.

Usage::

    PYTHONPATH=src python benchmarks/bench_featurize.py                # full (5 seeds)
    PYTHONPATH=src python benchmarks/bench_featurize.py --smoke        # CI-sized (3 seeds)
    PYTHONPATH=src python benchmarks/bench_featurize.py --smoke \
        --check-against benchmarks/BENCH_inference.json                # regression gate
    PYTHONPATH=src python benchmarks/bench_featurize.py --smoke \
        --merge-into benchmarks/BENCH_inference.json                   # refresh committed baseline

``--check-against`` reuses the engine benchmark's ``check_regression``
(>20% speedup / >25% peak-RSS gates, matched by case name);
``--merge-into`` splices this benchmark's cases and its ``featurize``
section into the shared committed baseline without touching the other
benchmarks' cases.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
from collections import Counter, defaultdict
from pathlib import Path

from bench_vectorized_engine import (
    _generate,
    _median_time,
    _peak_rss_kb,
    check_regression,
)

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_featurize.json"
BASELINE_PATH = Path(__file__).parent / "BENCH_inference.json"

#: Accuracy cases where the featurized mean must not fall below the
#: unfeaturized mean (strict, no tolerance: the means are multi-seed).
GATED_SCENARIOS = ("drift", "copier")


def _reference_stats(dataset, half_life: float):
    """Pure-Python per-source statistics — the loop the kernel replaces.

    Mirrors :func:`repro.featurize.compute_source_stats` semantics (same
    consensus tie-break, same normalized entropy) one dict update at a
    time, the way a straightforward implementation would.
    """
    votes = defaultdict(Counter)
    order = {}
    for row, obs in enumerate(dataset.observations):
        votes[obs.obj][obs.value] += 1
        order[(obs.source, obs.obj)] = row

    consensus = {}
    entropy = {}
    for obj, counter in votes.items():
        first_seen = list(counter)  # insertion order = first-claim order
        consensus[obj] = max(
            first_seen,
            # Bind the loop state as defaults (B023: no loop-var closure).
            key=lambda v, c=counter, fs=first_seen: (c[v], -fs.index(v)),
        )
        total = sum(counter.values())
        h = -sum((c / total) * math.log(c / total) for c in counter.values() if c)
        entropy[obj] = h / math.log(max(len(counter), 2))

    stats = {
        source: {
            "n_claims": 0,
            "n_solo": 0,
            "n_consensus": 0,
            "n_contradicted": 0,
            "sum_domain": 0.0,
            "sum_coclaim": 0.0,
            "sum_agree": 0.0,
            "sum_entropy": 0.0,
            "sum_row": 0.0,
            "first_row": None,
            "last_row": -1,
            "decayed_volume": 0.0,
            "decayed_agree": 0.0,
        }
        for source in dataset.sources.items
    }
    for obs in dataset.observations:
        row = order[(obs.source, obs.obj)]
        counter = votes[obs.obj]
        claims = sum(counter.values())
        entry = stats[obs.source]
        entry["n_claims"] += 1
        entry["n_solo"] += claims == 1
        entry["n_consensus"] += obs.value == consensus[obs.obj]
        entry["n_contradicted"] += counter[obs.value] < claims
        entry["sum_domain"] += len(counter)
        entry["sum_coclaim"] += claims - 1
        entry["sum_agree"] += counter[obs.value] - 1
        entry["sum_entropy"] += entropy[obs.obj]
        entry["sum_row"] += row
        if entry["first_row"] is None or row < entry["first_row"]:
            entry["first_row"] = row
        entry["last_row"] = max(entry["last_row"], row)
    for obs in dataset.observations:
        row = order[(obs.source, obs.obj)]
        entry = stats[obs.source]
        weight = 2.0 ** ((row - entry["last_row"]) / half_life)
        entry["decayed_volume"] += weight
        entry["decayed_agree"] += weight * (votes[obs.obj][obs.value] - 1)
    return stats


def _scenario_datasets(name: str, seeds):
    from repro.data import copier_clique_scenario, drift_scenario

    for seed in seeds:
        if name == "drift":
            scn = drift_scenario(n_sources=20, objects_per_step=12, n_steps=25, seed=seed)
        else:
            scn = copier_clique_scenario(
                n_sources=18,
                n_cliques=2,
                clique_size=4,
                objects_per_step=12,
                n_steps=25,
                seed=seed,
            )
        yield scn.to_dataset(), scn.revealed_truth()


def _fit_accuracy(dataset, train_truth, learner: str, featurizer) -> float:
    from repro import SLiMFast

    result = SLiMFast(learner=learner, featurizer=featurizer).fit_predict(dataset, train_truth)
    test = [obj for obj in dataset.ground_truth if obj not in train_truth]
    hits = sum(result.values.get(obj) == dataset.ground_truth[obj] for obj in test)
    return hits / max(len(test), 1)


def run_benchmarks(smoke: bool, n_observations: int, repeats: int) -> dict:
    import numpy as np

    from repro.featurize import FeaturizerPipeline, compute_source_stats
    from repro.featurize.pipeline import _resolve_source

    failures = []
    cases = []

    def case(name, reference_fn, vectorized_fn):
        reference_seconds = _median_time(reference_fn, repeats)
        vectorized_seconds = _median_time(vectorized_fn, repeats)
        entry = {
            "name": name,
            "reference_seconds": reference_seconds,
            "vectorized_seconds": vectorized_seconds,
            "speedup": reference_seconds / vectorized_seconds,
            "peak_rss_kb": _peak_rss_kb(),
        }
        cases.append(entry)
        print(
            f"{name}: reference {reference_seconds * 1e3:.2f}ms "
            f"vectorized {vectorized_seconds * 1e3:.2f}ms "
            f"speedup {entry['speedup']:.1f}x"
        )

    # Ratio case 1: statistics kernel vs the pure-Python loop.
    dataset = _generate(60, 500 if smoke else 2500, n_observations, seed=0)
    pipeline = FeaturizerPipeline()
    view = _resolve_source(dataset)
    case(
        "featurize_stats",
        lambda: _reference_stats(dataset, pipeline.half_life),
        lambda: compute_source_stats(view.arrays, view.n_sources, half_life=pipeline.half_life),
    )

    # Ratio case 2: cold featurization vs a warm cache hit.
    pipeline.featurize(dataset)  # prime the memo

    def cold():
        FeaturizerPipeline().featurize(dataset)

    case("featurize_cache", cold, lambda: pipeline.featurize(dataset))

    # Sanity: the kernel and the reference loop agree on a spot-checked
    # source (guards the ratio case against benchmarking different math).
    reference = _reference_stats(dataset, pipeline.half_life)
    kernel = compute_source_stats(view.arrays, view.n_sources, half_life=pipeline.half_life)
    probe = view.source_ids[0]
    entry = reference[probe]
    for field_name in ("n_claims", "n_consensus", "n_contradicted"):
        if int(getattr(kernel, field_name)[0]) != int(entry[field_name]):
            failures.append(
                f"reference loop and kernel disagree on {field_name} for {probe!r}: "
                f"{entry[field_name]} vs {int(getattr(kernel, field_name)[0])}"
            )
    if not np.isclose(float(kernel.decayed_agree[0]), entry["decayed_agree"], atol=1e-6):
        failures.append(f"reference loop and kernel disagree on decayed_agree for {probe!r}")

    # Accuracy artifact: featurized vs unfeaturized, averaged over seeds.
    seeds = (0, 1, 3) if smoke else (0, 1, 2, 3, 7)
    accuracy = {"seeds": list(seeds), "scenarios": []}
    for scenario_name in GATED_SCENARIOS:
        plain_accs, feat_accs = [], []
        for ds, train_truth in _scenario_datasets(scenario_name, seeds):
            plain_accs.append(_fit_accuracy(ds, train_truth, "erm", None))
            feat_accs.append(_fit_accuracy(ds, train_truth, "erm", FeaturizerPipeline()))
        plain_mean = sum(plain_accs) / len(plain_accs)
        feat_mean = sum(feat_accs) / len(feat_accs)
        accuracy["scenarios"].append(
            {
                "name": scenario_name,
                "learner": "erm",
                "unfeaturized_mean": plain_mean,
                "featurized_mean": feat_mean,
                "unfeaturized": plain_accs,
                "featurized": feat_accs,
                "gated": True,
            }
        )
        print(
            f"{scenario_name}: unfeaturized {plain_mean:.4f} "
            f"featurized {feat_mean:.4f} ({feat_mean - plain_mean:+.4f})"
        )
        if feat_mean < plain_mean:
            failures.append(
                f"featurized ERM mean accuracy {feat_mean:.4f} fell below the "
                f"unfeaturized mean {plain_mean:.4f} on the {scenario_name} scenario"
            )

    # Reference-only synthetic case (EM path, metadata available): reported
    # in the artifact but not gated — featurized augments real metadata here.
    plain = _fit_accuracy(dataset, {}, "em", None)
    feat = _fit_accuracy(dataset, {}, "em", FeaturizerPipeline())
    accuracy["scenarios"].append(
        {
            "name": "synthetic",
            "learner": "em",
            "unfeaturized_mean": plain,
            "featurized_mean": feat,
            "unfeaturized": [plain],
            "featurized": [feat],
            "gated": False,
        }
    )
    print(f"synthetic (em, ungated): unfeaturized {plain:.4f} featurized {feat:.4f}")

    return {
        "benchmark": "featurize",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "dataset": {
            "n_sources": dataset.n_sources,
            "n_objects": dataset.n_objects,
            "n_observations": dataset.n_observations,
            "version_key": pipeline.version_key,
        },
        "cases": cases,
        "featurize": accuracy,
        "failures": failures,
    }


def merge_into_baseline(report: dict, baseline_path: Path) -> None:
    """Splice this benchmark's cases + featurize section into the baseline.

    Other benchmarks' cases are untouched; featurize cases are replaced
    by name (or appended on first merge) and the accuracy figures land
    under their own ``featurize`` key, so one committed
    ``BENCH_inference.json`` carries every benchmark's gates.
    """
    baseline = json.loads(baseline_path.read_text())
    merged = {case["name"]: case for case in baseline.get("cases", [])}
    for case in report["cases"]:
        merged[case["name"]] = case
    baseline["cases"] = list(merged.values())
    baseline["featurize"] = report["featurize"]
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"merged featurize cases into {baseline_path}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run: 2000 observations, 3 seeds"
    )
    parser.add_argument(
        "--observations",
        type=int,
        default=None,
        help="observation count for the ratio cases (default: 10000, smoke: 2000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per ratio case (default 5)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON artifact (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        default=None,
        help="baseline BENCH_inference.json to gate the ratio cases against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional speedup regression vs the baseline (default 0.20)",
    )
    parser.add_argument(
        "--max-rss-regression",
        type=float,
        default=0.25,
        help="allowed fractional peak-RSS growth vs the baseline (default 0.25)",
    )
    parser.add_argument(
        "--merge-into",
        type=Path,
        default=None,
        help="splice featurize cases + figures into this committed baseline",
    )
    args = parser.parse_args(argv)

    n_observations = args.observations or (2000 if args.smoke else 10000)
    report = run_benchmarks(args.smoke, n_observations, args.repeats)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    exit_code = 0
    if report["failures"]:
        print("FEATURIZE BENCHMARK FAILURES:", file=sys.stderr)
        for failure in report["failures"]:
            print(f"  - {failure}", file=sys.stderr)
        exit_code = 1

    if args.check_against is not None:
        if not args.check_against.exists():
            print(
                f"baseline {args.check_against} not found; generate one with "
                f"--merge-into {args.check_against}",
                file=sys.stderr,
            )
            return 1
        exit_code = max(
            exit_code,
            check_regression(
                report, args.check_against, args.max_regression, args.max_rss_regression
            ),
        )

    if args.merge_into is not None and exit_code == 0:
        merge_into_baseline(report, args.merge_into)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
