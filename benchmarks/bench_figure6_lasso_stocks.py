"""Figure 6: lasso path of the Stocks domain features.

The paper's insight: daily usage statistics (bounce rate, time on site)
predict a web source's accuracy, while "TotalSitesLinkingIn" — a PageRank
proxy — does not.  The simulator encodes exactly that ground truth, so the
lasso path must rediscover it: usage features activate early with large
weights, the PageRank proxy activates late (or with small weight).
"""


from repro.experiments import lasso_figure

from conftest import publish


def test_figure6_lasso_path_stocks(benchmark, paper_datasets):
    report = benchmark.pedantic(
        lambda: lasso_figure(paper_datasets["stocks"], n_penalties=25),
        rounds=1,
        iterations=1,
    )
    publish("figure6_lasso_stocks", report.text)

    path = report.path
    final = path.final_weights()

    def feature_strength(name):
        return max(
            (abs(w) for label, w in final.items() if label.startswith(f"{name}=")),
            default=0.0,
        )

    # Usage statistics carry the signal...
    assert feature_strength("BounceRate") > feature_strength("TotalSitesLinkingIn")
    assert feature_strength("DailyTimeOnSite") > 0.1

    # ... and the earliest activations come from informative features.
    order = path.activation_order()
    early_names = {label.split("=")[0] for label in order[:4]}
    assert early_names & {"BounceRate", "DailyTimeOnSite"}
