"""Benchmark the serving layer: lookup latency under a live write stream.

Measures the ``repro.serve`` snapshot-swap front-end over a synthetic
fusion workload in three steps:

1. **Ratio cases** (gated like the engine benchmark's): ``serve_lookup``
   compares a posterior lookup against the published snapshot with the
   same query answered by the live streaming engine's softmax path, and
   ``serve_topk`` compares the publish-time conflict index against
   recomputing the MAP margins per query.  Both are single-threaded
   medians via the engine benchmark's ``_median_time``.
2. **Read-only phase**: ``--readers`` threads hammer the full serving
   path (``FusionServer.posterior``/``value``/``top_conflicts``) with raw
   per-op latency samples — exact p50/p99, no histogram quantization.
3. **Write-load phase**: the same reader pool runs while a writer thread
   streams the second half of the workload through ``append`` with
   periodic snapshot publishes.  The report records queries/sec and
   p50/p99 for both phases plus snapshot build/swap latency figures.

The bench **fails** (exit 1) when the under-write lookup p99 exceeds
``--max-p99-ratio`` (default 2.0) times the read-only p99 — the
"readers never block on ingest" contract, measured end to end.  Note the
phases share one interpreter: even on a multi-core box the GIL serializes
reader and writer bytecode, so the ratio bounds scheduler interference,
not just lock contention.  ``sys.setswitchinterval`` is lowered to 0.5 ms
for the phases (recorded in the report), the same tuning the operations
guide recommends for serving processes.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py                # full (10k observations)
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke        # CI-sized
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke \
        --check-against benchmarks/BENCH_inference.json            # regression gate
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke \
        --merge-into benchmarks/BENCH_inference.json               # refresh committed baseline

``--check-against`` reuses the engine benchmark's ``check_regression``
(>20% speedup / >25% peak-RSS gates, matched by case name); ``--merge-into``
splices this benchmark's cases and its ``serve`` section into the shared
committed baseline without touching the engine cases.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from bench_vectorized_engine import (
    _generate,
    _median_time,
    _peak_rss_kb,
    check_regression,
)

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_serve.json"
BASELINE_PATH = Path(__file__).parent / "BENCH_inference.json"

#: Switch interval for the threaded phases: with the CPython default
#: (5 ms) a busy writer may hold the GIL for whole milliseconds between
#: checks, which measures the scheduler, not the serving layer.
SWITCH_INTERVAL = 5e-4


def _reader_phase(server, keys, n_readers, min_ops, writer_done=None):
    """Run reader threads against the serving path, collecting raw latencies.

    Each reader issues a 7:1 mix of point lookups (``posterior`` +
    ``value``) and ``top_conflicts(10)`` scans.  Readers run at least
    ``min_ops`` iterations and keep going until ``writer_done`` (when
    given) is set, so the write-load phase samples the entire stream.
    Returns ``(latencies, wall_seconds)``.
    """
    import numpy as np

    samples = [[] for _ in range(n_readers)]

    def reader(index):
        local = samples[index]
        record = local.append
        clock = time.perf_counter
        i = 0
        while True:
            key = keys[(i * 7 + index) % len(keys)]
            started = clock()
            if i % 8 == 7:
                server.top_conflicts(10)
            else:
                server.posterior(key)
                server.value(key)
            record(clock() - started)
            i += 1
            if i >= min_ops and (writer_done is None or writer_done.is_set()):
                return

    threads = [
        threading.Thread(target=reader, args=(index,)) for index in range(n_readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return np.concatenate([np.asarray(chunk) for chunk in samples]), wall


def run_benchmarks(
    smoke: bool, n_observations: int, repeats: int, n_readers: int, max_p99_ratio: float
) -> dict:
    import numpy as np

    from repro.serve import FusionServer
    from repro.serve.snapshot import build_conflict_index

    n_objects = 500 if smoke else 2500
    dataset = _generate(60, n_objects, n_observations, seed=0)
    rng = np.random.default_rng(0)
    observations = [
        dataset.observations[int(index)]
        for index in rng.permutation(dataset.n_observations)
    ]
    preload = len(observations) // 2
    batch_size = 64
    publish_every = 4

    server = FusionServer(publish_every=publish_every)
    for start in range(0, preload, batch_size):
        server.append(observations[start : min(start + batch_size, preload)])
    server.publish()
    snapshot = server.snapshot
    fuser = server.fuser
    keys = [
        snapshot.object_ids[int(index)]
        for index in rng.integers(0, snapshot.n_objects, 512)
    ]

    failures = []
    cases = []

    def case(name, reference_fn, vectorized_fn):
        reference_seconds = _median_time(reference_fn, repeats)
        vectorized_seconds = _median_time(vectorized_fn, repeats)
        entry = {
            "name": name,
            "reference_seconds": reference_seconds,
            "vectorized_seconds": vectorized_seconds,
            "speedup": reference_seconds / vectorized_seconds,
            "peak_rss_kb": _peak_rss_kb(),
        }
        cases.append(entry)
        print(
            f"{name}: reference {reference_seconds * 1e6:.1f}us "
            f"vectorized {vectorized_seconds * 1e6:.1f}us "
            f"speedup {entry['speedup']:.1f}x"
        )

    # Ratio case 1: published-snapshot lookup vs the live engine's
    # per-query softmax (what answering without a published snapshot
    # costs).
    reference_keys = itertools.cycle(keys)
    snapshot_keys = itertools.cycle(keys)
    case(
        "serve_lookup",
        lambda: fuser.posterior(next(reference_keys)),
        lambda: snapshot.posterior(next(snapshot_keys)),
    )
    # Ratio case 2: publish-time conflict index vs recomputing the MAP
    # margins on every top-k query.
    case(
        "serve_topk",
        lambda: build_conflict_index(snapshot.store),
        lambda: snapshot.top_conflicts(10),
    )

    # Threaded phases: raw-sample latencies through the full serving path.
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(SWITCH_INTERVAL)
    try:
        min_ops = 2000 if smoke else 4000
        read_samples, read_wall = _reader_phase(server, keys, n_readers, min_ops)
        read_p50, read_p99 = np.percentile(read_samples, [50, 99])

        swaps_before = server.metrics.swap_count
        writer_done = threading.Event()
        write_errors = []

        def writer():
            try:
                for start in range(preload, len(observations), batch_size // 2):
                    server.append(observations[start : start + batch_size // 2])
            except Exception as error:  # pragma: no cover - surfaced as failure
                write_errors.append(repr(error))
            finally:
                writer_done.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        write_samples, write_wall = _reader_phase(
            server, keys, n_readers, min_ops // 4, writer_done
        )
        writer_thread.join()
        write_p50, write_p99 = np.percentile(write_samples, [50, 99])
    finally:
        sys.setswitchinterval(previous_interval)

    if write_errors:
        failures.append(f"write stream failed: {write_errors[0]}")
    p99_ratio = float(write_p99 / read_p99)
    if p99_ratio > max_p99_ratio:
        failures.append(
            f"lookup p99 under write load {write_p99 * 1e6:.1f}us is "
            f"{p99_ratio:.2f}x the read-only p99 {read_p99 * 1e6:.1f}us "
            f"(limit {max_p99_ratio:.1f}x) — readers are blocking on ingest"
        )

    serve = {
        "readers": n_readers,
        "switch_interval_seconds": SWITCH_INTERVAL,
        "batch_size": batch_size,
        "publish_every": publish_every,
        "read_only": {
            "ops": int(read_samples.shape[0]),
            "queries_per_second": float(read_samples.shape[0] / read_wall),
            "p50_seconds": float(read_p50),
            "p99_seconds": float(read_p99),
        },
        "under_write": {
            "ops": int(write_samples.shape[0]),
            "queries_per_second": float(write_samples.shape[0] / write_wall),
            "p50_seconds": float(write_p50),
            "p99_seconds": float(write_p99),
            "stream_observations": len(observations) - preload,
            "snapshot_swaps": server.metrics.swap_count - swaps_before,
        },
        "p99_write_over_read_ratio": p99_ratio,
        "snapshot_build": server.metrics.publish_latency.as_dict(),
        "snapshot_swap": server.metrics.swap_latency.as_dict(),
    }
    print(
        f"read-only: {serve['read_only']['queries_per_second']:.0f} qps "
        f"(p50 {read_p50 * 1e6:.1f}us, p99 {read_p99 * 1e6:.1f}us); "
        f"under write: {serve['under_write']['queries_per_second']:.0f} qps "
        f"(p50 {write_p50 * 1e6:.1f}us, p99 {write_p99 * 1e6:.1f}us); "
        f"p99 ratio {p99_ratio:.2f}x over "
        f"{serve['under_write']['snapshot_swaps']} swaps"
    )

    return {
        "benchmark": "serve",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "dataset": {
            "n_sources": dataset.n_sources,
            "n_objects": dataset.n_objects,
            "n_observations": dataset.n_observations,
            "preload_observations": preload,
        },
        "cases": cases,
        "serve": serve,
        "failures": failures,
    }


def merge_into_baseline(report: dict, baseline_path: Path) -> None:
    """Splice this benchmark's cases + serve section into the shared baseline.

    Engine cases are untouched; serve cases are replaced by name (or
    appended on first merge) and the ``serve`` figures land under their
    own key, so one committed ``BENCH_inference.json`` carries both
    benchmarks' gates.
    """
    baseline = json.loads(baseline_path.read_text())
    merged = {case["name"]: case for case in baseline.get("cases", [])}
    for case in report["cases"]:
        merged[case["name"]] = case
    baseline["cases"] = list(merged.values())
    baseline["serve"] = report["serve"]
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"merged serve cases into {baseline_path}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run: 2000 observations"
    )
    parser.add_argument(
        "--observations",
        type=int,
        default=None,
        help="observation count (default: 10000, smoke: 2000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per ratio case (default 5)"
    )
    parser.add_argument(
        "--readers",
        type=int,
        default=4,
        help="concurrent reader threads for the latency phases (default 4)",
    )
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=2.0,
        help="allowed under-write p99 as a multiple of read-only p99 (default 2.0)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON artifact (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        default=None,
        help="baseline BENCH_inference.json to gate the ratio cases against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional speedup regression vs the baseline (default 0.20)",
    )
    parser.add_argument(
        "--max-rss-regression",
        type=float,
        default=0.25,
        help="allowed fractional peak-RSS growth vs the baseline (default 0.25)",
    )
    parser.add_argument(
        "--merge-into",
        type=Path,
        default=None,
        help="splice serve cases + figures into this committed baseline",
    )
    args = parser.parse_args(argv)

    n_observations = args.observations or (2000 if args.smoke else 10000)
    report = run_benchmarks(
        args.smoke, n_observations, args.repeats, args.readers, args.max_p99_ratio
    )

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    exit_code = 0
    if report["failures"]:
        print("SERVE BENCHMARK FAILURES:", file=sys.stderr)
        for failure in report["failures"]:
            print(f"  - {failure}", file=sys.stderr)
        exit_code = 1

    if args.check_against is not None:
        if not args.check_against.exists():
            print(
                f"baseline {args.check_against} not found; generate one with "
                f"--merge-into {args.check_against}",
                file=sys.stderr,
            )
            return 1
        exit_code = max(
            exit_code,
            check_regression(
                report, args.check_against, args.max_regression, args.max_rss_regression
            ),
        )

    if args.merge_into is not None and exit_code == 0:
        merge_into_baseline(report, args.merge_into)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
