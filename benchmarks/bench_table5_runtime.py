"""Table 5: end-to-end wall-clock runtime of every method.

Absolute numbers differ from the paper (their stack runs DeepDive +
PostgreSQL; ours is in-process numpy), but the qualitative ordering should
hold: simple counting baselines are fastest, iterative/EM methods cost
more than one-shot ERM fits.
"""

import pytest

from repro.experiments import CellKey, run_sweep, table5

from conftest import SEEDS, publish

METHODS = ["slimfast", "slimfast-erm", "slimfast-em", "counts", "accu", "catd", "sstf"]
FRACTIONS = (0.01, 0.10)


@pytest.fixture(scope="module")
def sweep_report(paper_datasets):
    return run_sweep(paper_datasets, methods=METHODS, fractions=FRACTIONS, seeds=SEEDS)


def test_table5_runtimes(benchmark, sweep_report, paper_datasets):
    text = benchmark.pedantic(lambda: table5(sweep_report), rounds=1, iterations=1)
    publish("table5_runtime", text)

    cells = sweep_report.cells

    def runtime(dataset, method, fraction):
        return cells[CellKey(paper_datasets[dataset].name, method, fraction)].runtime_seconds

    # Counting is the cheapest approach on every dataset.
    for dataset in ("stocks", "demos", "crowd", "genomics"):
        assert runtime(dataset, "counts", 0.10) <= runtime(dataset, "slimfast-em", 0.10)

    # EM costs at least as much as the one-shot ERM fit.
    assert runtime("demos", "slimfast-em", 0.10) >= runtime("demos", "slimfast-erm", 0.10)
