"""Table 5: end-to-end wall-clock runtime of every method.

Absolute numbers differ from the paper (their stack runs DeepDive +
PostgreSQL; ours is in-process numpy), but the qualitative ordering should
hold: simple counting baselines are fastest, iterative/EM methods cost
more than one-shot ERM fits.
"""

import pytest

from repro.experiments import CellKey, run_sweep, table5

from conftest import SEEDS, publish

METHODS = ["slimfast", "slimfast-erm", "slimfast-em", "counts", "accu", "catd", "sstf"]
FRACTIONS = (0.01, 0.10)


@pytest.fixture(scope="module")
def sweep_report(paper_datasets):
    # Isolated mode keeps runtime_seconds on the paper's independent
    # cold-fit protocol; batched warm-start timings are not comparable.
    return run_sweep(
        paper_datasets, methods=METHODS, fractions=FRACTIONS, seeds=SEEDS, mode="isolated"
    )


def test_table5_runtimes(benchmark, sweep_report, paper_datasets):
    text = benchmark.pedantic(lambda: table5(sweep_report), rounds=1, iterations=1)
    publish("table5_runtime", text)

    cells = sweep_report.cells

    def runtime(dataset, method, fraction):
        return cells[CellKey(paper_datasets[dataset].name, method, fraction)].runtime_seconds

    # The paper's "counting is cheapest" no longer holds against the
    # accelerated EM path (fused E-step + cached objective undercut the
    # Counts baseline on stocks/crowd); the invariants that survive are
    # that counting beats Bayesian fusion and the full optimizer pipeline.
    for dataset in ("stocks", "demos", "crowd", "genomics"):
        assert runtime(dataset, "counts", 0.10) <= runtime(dataset, "accu", 0.10)
        assert runtime(dataset, "counts", 0.10) <= runtime(dataset, "slimfast", 0.10)

    # EM costs at least as much as the one-shot ERM fit.
    assert runtime("demos", "slimfast-em", 0.10) >= runtime("demos", "slimfast-erm", 0.10)
