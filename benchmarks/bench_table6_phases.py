"""Table 6: end-to-end vs learning-and-inference-only runtime (Genomics).

The paper uses this table to show most of SLiMFast's wall-clock goes into
compilation (loading data into DeepDive and building the factor graph)
rather than learning/inference.  Our compilation is in-process feature
encoding, so the split is much cheaper, but the breakdown itself — and the
fact that learning+inference is a fraction of end-to-end — reproduces.
"""

from repro.experiments import table6

from conftest import publish


def test_table6_phase_breakdown(benchmark, paper_datasets):
    text = benchmark.pedantic(
        lambda: table6(paper_datasets["genomics"], fractions=(0.01, 0.10, 0.20)),
        rounds=1,
        iterations=1,
    )
    publish("table6_phases", text)
    assert "e2e" in text and "learn+inf" in text
