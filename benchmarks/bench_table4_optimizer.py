"""Table 4: the optimizer's EM-vs-ERM decisions, plus the tau-robustness
sweep of Section 5.2.3.

Shape checks: the optimizer must pick the better-performing algorithm (or
be within the tie margin) in the vast majority of cells — the paper
reports one mistake across 20 cells.
"""


from repro.experiments import table4

from conftest import FRACTIONS, SEEDS, publish


def test_table4_optimizer_decisions(benchmark, paper_datasets):
    # At default bench scale only one seed runs per cell, so accuracy
    # differences below ~0.6 points are seed noise; such cells count as
    # ties (the paper's Table 4 likewise has 0.0%-difference tie cells).
    rows, text = benchmark.pedantic(
        lambda: table4(
            paper_datasets,
            fractions=FRACTIONS,
            seeds=SEEDS,
            tau=0.1,
            tie_margin=0.006,
        ),
        rounds=1,
        iterations=1,
    )
    publish("table4_optimizer", text)

    n_correct = sum(1 for row in rows if row.correct)
    assert n_correct >= int(0.75 * len(rows)), (
        f"optimizer correct in only {n_correct}/{len(rows)} cells"
    )


def test_table4_tau_robustness(benchmark, paper_datasets):
    """Vary tau in {0.01, 0.1, 0.5, 1.0} (paper Section 5.2.3)."""
    datasets = {k: paper_datasets[k] for k in ("stocks", "crowd")}

    def sweep_tau():
        lines = []
        for tau in (0.01, 0.1, 0.5, 1.0):
            rows, _ = table4(datasets, fractions=(0.01, 0.10), seeds=SEEDS, tau=tau)
            decisions = ", ".join(f"{r.dataset}@{r.train_fraction:g}:{r.decision}" for r in rows)
            correct = sum(1 for r in rows if r.correct)
            lines.append(f"tau={tau}: {correct}/{len(rows)} correct  [{decisions}]")
        return "\n".join(lines)

    text = benchmark.pedantic(sweep_tau, rounds=1, iterations=1)
    publish("table4_tau_robustness", text)
    assert "tau=0.1" in text
