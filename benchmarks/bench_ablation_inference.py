"""Ablation: inference backend — closed form vs factor-graph Gibbs.

The paper runs Gibbs sampling over DeepDive; this library's fast path is
the exact per-object softmax.  The two must agree on MAP assignments
(up to sampling noise), with the closed form orders of magnitude faster.
"""

import time

import pytest

from repro.core import ERMLearner, map_assignment, posteriors
from repro.data import generate_stocks
from repro.experiments import format_table
from repro.factorgraph import GibbsSampler, compile_dataset

from conftest import publish


@pytest.fixture(scope="module")
def fitted():
    dataset = generate_stocks(n_objects=150, seed=0)
    split = dataset.split(0.3, seed=0)
    model = ERMLearner().fit(dataset, split.train_truth)
    return dataset, model


def test_ablation_inference_backends(benchmark, fitted):
    dataset, model = fitted

    def run():
        started = time.perf_counter()
        exact = posteriors(dataset, model)
        exact_time = time.perf_counter() - started

        started = time.perf_counter()
        compiled = compile_dataset(dataset)
        compiled.set_weights_from_model(model)
        gibbs = GibbsSampler(n_samples=400, burn_in=100, seed=0).run(compiled.graph)
        gibbs_time = time.perf_counter() - started
        return exact, exact_time, gibbs, gibbs_time

    exact, exact_time, gibbs, gibbs_time = benchmark.pedantic(run, rounds=1, iterations=1)

    exact_map = map_assignment(exact)
    gibbs_map = {obj: gibbs.marginals[("T", obj)] for obj in dataset.objects}
    agreements = sum(
        1
        for obj, dist in gibbs_map.items()
        if max(dist, key=dist.get) == exact_map[obj]
    )
    agreement_rate = agreements / dataset.n_objects

    text = format_table(
        ["Backend", "Time (s)", "MAP agreement"],
        [
            ["closed form", exact_time, 1.0],
            ["factor graph + Gibbs", gibbs_time, agreement_rate],
        ],
        title="Ablation: inference backend",
    )
    publish("ablation_inference", text)

    assert agreement_rate > 0.95
    assert exact_time < gibbs_time
