"""Figure 4: EM vs ERM on the synthetic instance (Example 6).

Three sweeps on the 1000-source x 1000-object instance (reduced to
400x400 at default bench scale):

* (a) accuracy vs training-data fraction — ERM rises with labels;
* (b) accuracy vs observation density — EM rises with density, ERM flat;
* (c) accuracy vs average source accuracy — EM rises, ERM flat.
"""


from repro.experiments import figure4a, figure4b, figure4c, series

from conftest import FULL_SCALE, publish

# The source count stays at the paper's 1000 so observations-per-object
# (and hence the EM dynamics) match; only the object count is reduced for
# speed at default bench scale.
N_SOURCES = 1000
N_OBJECTS = 1000 if FULL_SCALE else 400
SEEDS = (0, 1) if FULL_SCALE else (0,)
# Paper Figure 4(b) fixes training data at 400 *source observations* on the
# 1000x1000 instance; scale that budget with the object count so the
# labeled-object fraction sweep matches the paper's.
TRAIN_OBSERVATIONS = max(int(400 * N_OBJECTS / 1000), 20)


def _render(points, x_label):
    em = {p.x: p.em_accuracy for p in points}
    erm = {p.x: p.erm_accuracy for p in points}
    return (
        series(em, x_label, "EM accuracy", title="EM")
        + "\n\n"
        + series(erm, x_label, "ERM accuracy", title="ERM")
    )


def test_figure4a_training_data(benchmark):
    fractions = (0.01, 0.10, 0.20, 0.40, 0.60)

    def run():
        plain = figure4a(
            train_fractions=fractions,
            n_sources=N_SOURCES,
            n_objects=N_OBJECTS,
            seeds=SEEDS,
        )
        with_intercept = figure4a(
            train_fractions=fractions,
            n_sources=N_SOURCES,
            n_objects=N_OBJECTS,
            seeds=SEEDS,
            erm_intercept=True,
        )
        return plain, with_intercept

    plain, with_intercept = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        _render(plain, "training fraction")
        + "\n\nERM (shared intercept)\n"
        + "\n".join(f"{p.x:g}  {p.erm_accuracy:.3f}" for p in with_intercept)
    )
    publish("figure4a_training_data", text)

    erm = {p.x: p.erm_accuracy for p in plain}
    em = {p.x: p.em_accuracy for p in plain}
    erm_bias = {p.x: p.erm_accuracy for p in with_intercept}

    # Paper shape 1: the Equation-3 ERM improves markedly with labels.
    assert erm[0.60] > erm[0.01] + 0.03
    # Paper shape 2: EM is roughly flat in the training fraction.
    assert abs(em[0.60] - em[0.01]) < 0.08
    # Paper shape 3: with enough labels ERM matches EM — our sparse
    # instance needs the shared-intercept variant for that (see
    # EXPERIMENTS.md deviation note).
    assert erm_bias[0.60] >= em[0.60] - 0.03


def test_figure4b_density(benchmark):
    points = benchmark.pedantic(
        lambda: figure4b(
            densities=(0.005, 0.010, 0.015, 0.020),
            n_sources=N_SOURCES,
            n_objects=N_OBJECTS,
            train_observations=TRAIN_OBSERVATIONS,
            seeds=SEEDS,
        ),
        rounds=1,
        iterations=1,
    )
    publish("figure4b_density", _render(points, "density"))

    em = {p.x: p.em_accuracy for p in points}
    erm = {p.x: p.erm_accuracy for p in points}
    # EM benefits from denser observations (paper Figure 4b).
    assert em[0.020] > em[0.005]
    # ERM stays comparatively flat.
    assert abs(erm[0.020] - erm[0.005]) < abs(em[0.020] - em[0.005]) + 0.05


def test_figure4c_average_accuracy(benchmark):
    points = benchmark.pedantic(
        lambda: figure4c(
            accuracies=(0.5, 0.6, 0.7, 0.8),
            n_sources=N_SOURCES,
            n_objects=N_OBJECTS,
            seeds=SEEDS,
        ),
        rounds=1,
        iterations=1,
    )
    publish("figure4c_accuracy", _render(points, "avg source accuracy"))

    em = {p.x: p.em_accuracy for p in points}
    # EM gains sharply as sources get more accurate (paper Figure 4c).
    assert em[0.8] > em[0.5] + 0.1
    # At high accuracy EM beats ERM at this small label budget.
    erm = {p.x: p.erm_accuracy for p in points}
    assert em[0.8] >= erm[0.8] - 0.02
