"""Extension benchmarks: streaming vs batch, open-world abstention,
budgeted source selection.

These cover the paper's extension remarks (Sections 2 and 6 and the
data-acquisition motivation in the introduction) rather than specific
tables; the assertions pin the qualitative behaviour a user relies on.
"""

from repro.core import SLiMFast
from repro.experiments import format_table
from repro.extensions import (
    UNKNOWN,
    OpenWorldSLiMFast,
    evaluate_selection,
    greedy_select,
    replay_dataset,
)
from repro.fusion import object_value_accuracy

from conftest import publish


def test_extension_streaming_vs_batch(benchmark, paper_datasets):
    dataset = paper_datasets["crowd"]

    def run():
        rows = []
        for fraction in (0.05, 0.20):
            split = dataset.split(fraction, seed=0)
            test = list(split.test_objects)
            batch = SLiMFast(learner="em", use_features=False).fit_predict(
                dataset, split.train_truth
            )
            stream = replay_dataset(dataset, split.train_truth, seed=0)
            rows.append(
                [
                    f"{fraction * 100:g}",
                    object_value_accuracy(batch.values, dataset.ground_truth, test),
                    object_value_accuracy(stream.values, dataset.ground_truth, test),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["TD (%)", "Batch EM", "Streaming"],
        rows,
        title="Extension: single-pass streaming vs batch EM (Crowd)",
    )
    publish("extension_streaming", text)

    for _, batch_acc, stream_acc in rows:
        # Streaming gives up some accuracy but must stay in the same league
        # (well above the ~0.25 random-guess floor of the 4-class task).
        assert stream_acc > 0.6
        assert batch_acc >= stream_acc - 0.02


def test_extension_open_world_abstention(benchmark, paper_datasets):
    dataset = paper_datasets["genomics"]
    split = dataset.split(0.15, seed=0)

    def run():
        fuser = SLiMFast().fit(dataset, split.train_truth)
        rows = []
        for theta in (-2.0, 1.0, 3.0):
            out = OpenWorldSLiMFast(theta=theta).predict(dataset, fuser.model_, split.train_truth)
            resolved = {
                obj: value
                for obj, value in out.result.values.items()
                if value != UNKNOWN and obj in set(split.test_objects)
            }
            accuracy = object_value_accuracy(
                resolved, dataset.ground_truth, list(resolved)
            ) if resolved else float("nan")
            rows.append([theta, len(out.abstained), accuracy])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["theta", "abstained", "accuracy on resolved"],
        rows,
        title="Extension: open-world abstention sweep (Genomics)",
    )
    publish("extension_open_world", text)

    abstentions = [row[1] for row in rows]
    assert abstentions == sorted(abstentions)  # higher theta -> more abstention
    # Abstaining on the murkiest objects should not hurt resolved accuracy.
    assert rows[1][2] >= rows[0][2] - 0.02


def test_extension_source_selection(benchmark, paper_datasets):
    dataset = paper_datasets["stocks"]
    split = dataset.split(0.10, seed=0)

    def run():
        result = SLiMFast().fit_predict(dataset, split.train_truth)
        accuracies = result.source_accuracies
        trace = greedy_select(dataset, accuracies, budget=8)
        chosen = [step.source for step in trace]
        worst = sorted(accuracies, key=accuracies.get)[: len(chosen)]
        def factory():
            return SLiMFast(learner="em", use_features=False)

        return (
            evaluate_selection(dataset, chosen, factory, seed=0),
            evaluate_selection(dataset, worst, factory, seed=0),
            chosen,
        )

    chosen_acc, worst_acc, chosen = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Selection", "Fusion accuracy"],
        [["greedy top-8", chosen_acc], ["worst-8 (control)", worst_acc]],
        title="Extension: budgeted source selection (Stocks)",
    )
    publish("extension_selection", text)
    assert chosen_acc > worst_acc
