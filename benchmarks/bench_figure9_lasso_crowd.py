"""Figure 9: lasso path of the Crowd features.

Paper insight: the labor channel a worker is hired through predicts their
accuracy (channel features activate first), while city and coverage are
uninformative.  The simulator encodes that structure; the lasso path must
recover it.
"""

from repro.experiments import lasso_figure

from conftest import publish


def test_figure9_lasso_path_crowd(benchmark, paper_datasets):
    report = benchmark.pedantic(
        lambda: lasso_figure(paper_datasets["crowd"], n_penalties=25),
        rounds=1,
        iterations=1,
    )
    publish("figure9_lasso_crowd", report.text)

    path = report.path
    order = path.activation_order()
    early_names = [label.split("=")[0] for label in order[:3]]

    # Channel (and possibly country) activate first; city never leads.
    assert "channel" in early_names
    assert early_names[0] != "city"

    final = path.final_weights()
    channel_strength = max(abs(w) for label, w in final.items() if label.startswith("channel="))
    city_strength = max(
        (abs(w) for label, w in final.items() if label.startswith("city=")),
        default=0.0,
    )
    assert channel_strength > city_strength
