"""Scenario benchmarks: drifting, copying, and open-world streams.

Replays the adversarial scenario generators in :mod:`repro.data.scenarios`
through the figure-style driver ``repro.experiments.scenario`` and pins
the qualitative claims the scenario test suite relies on, at bench scale:

* step drift — decayed trust beats flat Beta counts post-drift;
* copier cliques — planted pairs dominate the copying detector's ranking;
* open-world growth — streaming ingest survives growing domains and still
  beats majority vote.

Smoke scale by default; ``REPRO_BENCH_SCALE=full`` (the ``run_all.py
--full`` convention) runs paper-scale streams.
"""

from repro.core import find_candidate_pairs
from repro.data import copier_clique_scenario, drift_scenario, open_world_scenario
from repro.experiments import format_table, scenario
from repro.extensions import DecayConfig

from conftest import FULL_SCALE, publish

if FULL_SCALE:
    SCALE = {"n_steps": 40, "objects_per_step": 14}
else:
    SCALE = {"n_steps": 14, "objects_per_step": 8}


def test_scenario_drift_decay(benchmark):
    scn = drift_scenario(n_sources=14, seed=11, **SCALE)

    def run():
        return scenario(
            scn,
            methods=("stream-flat", "stream-decayed", "stream-windowed", "batch-em", "majority"),
            decay=DecayConfig(half_life=scn.n_observations / (8 * scn.n_sources)),
            eval_window=4,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("scenario_drift", report.table())

    flat = report.series["stream-flat"]
    decayed = report.series["stream-decayed"]
    assert decayed.tail()["accuracy"] > flat.tail()["accuracy"]
    assert decayed.trust_error[-1] < flat.trust_error[-1]


def test_scenario_copier_cliques(benchmark):
    scn = copier_clique_scenario(
        n_sources=18,
        n_cliques=2,
        clique_size=4,
        objects_per_step=SCALE["objects_per_step"],
        n_steps=SCALE["n_steps"],
        seed=11,
    )

    def run():
        return find_candidate_pairs(scn.to_dataset(), z_threshold=0.0, max_pairs=500)

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    planted = set()
    for clique in scn.cliques:
        for i, a in enumerate(clique):
            for b in clique[i + 1 :]:
                planted.add(frozenset((a, b)))
    ranked = sorted(pairs, key=lambda p: p.z_score, reverse=True)
    top = ranked[: len(planted)]
    hits = sum(frozenset((p.first, p.second)) in planted for p in top)
    rows = [
        [
            p.first,
            p.second,
            f"{p.z_score:.2f}",
            "planted" if frozenset((p.first, p.second)) in planted else "",
        ]
        for p in ranked[:12]
    ]
    publish(
        "scenario_copiers",
        format_table(
            ["first", "second", "z", "clique"],
            rows,
            title=f"Copier detection: {hits}/{len(planted)} planted pairs in top-{len(planted)}",
        ),
    )
    assert hits >= int(0.75 * len(planted))


def test_scenario_open_world_stream(benchmark):
    # heterogeneous reliabilities: learned trust weighting must beat the
    # unweighted majority vote once feedback separates good from bad
    scn = open_world_scenario(
        n_sources=14,
        initial_objects=SCALE["objects_per_step"] * 2,
        new_objects_per_step=5,
        n_steps=SCALE["n_steps"],
        growth_rate=0.3,
        accuracy=0.52,
        accuracy_spread=0.3,
        claim_rate=0.25,
        initial_domain=3,
        reveal_fraction=0.4,
        seed=11,
    )

    def run():
        return scenario(scn, methods=("stream-flat", "majority"), eval_window=5)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("scenario_open_world", report.table())
    assert report.series["stream-flat"].final_accuracy > report.series["majority"].final_accuracy
