"""Ablation: optimizer accuracy estimation — matrix completion vs oracle.

The optimizer needs the average source accuracy without labels.  This
bench compares its agreement-matrix estimate (paper Section 4.3) and the
domain-corrected variant against the true average, and verifies the
decisions are robust to the estimation method.
"""

import numpy as np
import pytest

from repro.core import decide, estimate_average_accuracy
from repro.experiments import format_table
from repro.fusion.features import build_design_matrix

from conftest import publish


def test_ablation_accuracy_estimation(benchmark, paper_datasets):
    def run():
        rows = []
        for name in ("stocks", "demos", "crowd"):
            dataset = paper_datasets[name]
            true_avg = float(np.mean([dataset.true_accuracies[s] for s in dataset.sources]))
            paper = estimate_average_accuracy(dataset, method="paper")
            corrected = estimate_average_accuracy(dataset, method="domain-corrected")
            rows.append([name, true_avg, paper, corrected])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "True avg", "Paper estimate", "Domain-corrected"],
        rows,
        title="Ablation: average-accuracy estimation",
    )
    publish("ablation_optimizer_estimates", text)

    by_name = {row[0]: row for row in rows}
    # Binary demos: the paper estimator is already accurate.
    assert abs(by_name["demos"][2] - by_name["demos"][1]) < 0.08
    # 4-valued crowd: the domain-corrected estimate must be closer.
    crowd = by_name["crowd"]
    assert abs(crowd[3] - crowd[1]) <= abs(crowd[2] - crowd[1]) + 0.01


def test_ablation_vote_threshold(benchmark, paper_datasets):
    """EM-units under the two majority-vote readings of Algorithm 1.

    The printed pseudo-code uses a ``m/|D_o|`` plurality threshold; the
    paper's Example 8 (and its reported Table 4 decisions) imply a plain
    ``m/2`` majority.  This ablation shows how different the unit counts
    are on multi-valued datasets — identical on binary ones.
    """
    from repro.core import em_information_units, estimate_average_accuracy

    def run():
        rows = []
        for name in ("stocks", "demos", "crowd"):
            dataset = paper_datasets[name]
            accuracy = estimate_average_accuracy(dataset, method="domain-corrected")
            rows.append(
                [
                    name,
                    accuracy,
                    em_information_units(dataset, accuracy, vote_threshold="majority"),
                    em_information_units(dataset, accuracy, vote_threshold="paper"),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "Est. accuracy", "Units (majority m/2)", "Units (printed m/|Do|)"],
        rows,
        title="Ablation: Algorithm 1 vote-threshold reading",
    )
    publish("ablation_vote_threshold", text)

    by_name = {row[0]: row for row in rows}
    # Binary demos: identical under both readings.
    assert by_name["demos"][2] == pytest.approx(by_name["demos"][3], rel=1e-9)
    # Multi-valued crowd: the plurality reading inflates the units.
    assert by_name["crowd"][3] >= by_name["crowd"][2]


def test_ablation_decisions_with_oracle_accuracy(benchmark, paper_datasets):
    """Decisions with estimated vs oracle average accuracy."""

    def run():
        rows = []
        for name in ("stocks", "crowd", "demos"):
            dataset = paper_datasets[name]
            design, _ = build_design_matrix(dataset)
            split = dataset.split(0.05, seed=0)
            true_avg = float(np.mean([dataset.true_accuracies[s] for s in dataset.sources]))
            estimated = decide(dataset, split.train_truth, design.shape[1], tau=0.0)
            oracle = decide(
                dataset,
                split.train_truth,
                design.shape[1],
                tau=0.0,
                avg_accuracy=true_avg,
            )
            rows.append([name, estimated.algorithm, oracle.algorithm])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "Estimated-acc decision", "Oracle-acc decision"],
        rows,
        title="Ablation: optimizer decision vs oracle accuracy",
    )
    publish("ablation_optimizer_decisions", text)
    assert all(row[1] in ("em", "erm") for row in rows)
