"""Append a benchmark run's speedups to the cross-run trajectory artifact.

The CI bench job gates each run against the *committed* baseline, which
only catches regressions versus the last refresh.  This script maintains
``BENCH_trajectory.json`` — a rolling list of per-run smoke speedups keyed
by commit — which CI carries across runs (actions/cache) and uploads as an
artifact, so drift is visible across a whole sequence of PRs rather than
only against the single committed snapshot.

Usage (what the CI job runs)::

    python benchmarks/append_trajectory.py \
        --report benchmarks/results/BENCH_inference.json \
        --trajectory benchmarks/results/BENCH_trajectory.json \
        --commit "$GITHUB_SHA" --run-id "$GITHUB_RUN_ID"
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

MAX_ENTRIES = 200


def build_entry(report: dict, commit: str, run_id: str) -> dict:
    """One trajectory row: identifying metadata plus every case speedup."""
    return {
        "commit": commit,
        "run_id": run_id,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": report.get("mode"),
        "python": report.get("environment", {}).get("python"),
        "speedups": {
            case["name"]: round(float(case["speedup"]), 3)
            for case in report.get("cases", [])
        },
        "posteriors_em_median_speedup": report.get("summary", {}).get(
            "posteriors_em_median_speedup"
        ),
    }


def append(report_path: Path, trajectory_path: Path, commit: str, run_id: str) -> dict:
    report = json.loads(report_path.read_text())
    trajectory = []
    if trajectory_path.exists():
        try:
            trajectory = json.loads(trajectory_path.read_text())
        except json.JSONDecodeError:
            print(
                f"warning: {trajectory_path} is corrupt, starting fresh",
                file=sys.stderr,
            )
    if not isinstance(trajectory, list):
        trajectory = []
    entry = build_entry(report, commit, run_id)
    # Re-runs of the same commit replace their previous row instead of
    # duplicating it (CI retries should not pollute the trajectory).
    trajectory = [row for row in trajectory if row.get("commit") != commit]
    trajectory.append(entry)
    trajectory = trajectory[-MAX_ENTRIES:]
    trajectory_path.parent.mkdir(parents=True, exist_ok=True)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--report", type=Path, required=True, help="benchmark report JSON")
    parser.add_argument(
        "--trajectory",
        type=Path,
        required=True,
        help="trajectory JSON to append to (created when missing)",
    )
    parser.add_argument("--commit", default="unknown", help="commit SHA of this run")
    parser.add_argument("--run-id", default="local", help="CI run identifier")
    args = parser.parse_args(argv)

    if not args.report.exists():
        print(f"report {args.report} not found", file=sys.stderr)
        return 2
    entry = append(args.report, args.trajectory, args.commit, args.run_id)
    print(
        f"appended {entry['commit'][:12]} (summary "
        f"{entry['posteriors_em_median_speedup']}) to {args.trajectory}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
