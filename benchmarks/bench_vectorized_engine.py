"""Benchmark the vectorized inference engine against the reference loops.

Times the hot paths that the dense-encoding layer (``repro.fusion.encoding``)
rewrote — posterior queries, array-native fusion-result packaging, the EM
E-step and full EM/ERM fits (including the warm-started second-order
M-step) — under both backends, plus two engine-vs-engine cases:
``sweep_16`` (a 16-point EM sweep run by the batched ``SweepRunner``
versus sequential isolated fits), ``sweep_16_par`` (the same sweep fanned
out across ``--sweep-jobs`` worker processes versus serial batched) and
``stream_append`` (the vectorized streaming fuser over an incremental
encoding versus the reference dict-per-observation replay).  Writes a
``BENCH_inference.json`` trajectory artifact with
per-case median runtimes and speedups.  The per-factor reference Gibbs
comparison runs only in full (non-smoke) mode; its equivalence is covered
by the test suite.

Usage::

    PYTHONPATH=src python benchmarks/bench_vectorized_engine.py            # full (10k observations)
    PYTHONPATH=src python benchmarks/bench_vectorized_engine.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_vectorized_engine.py --smoke \
        --check-against benchmarks/BENCH_inference.json                    # regression gate

The regression gate compares *speedup ratios* (vectorized vs reference on
the same machine), which are stable across hardware, and exits nonzero when
any case regresses by more than ``--max-regression`` (default 20%) against
the committed baseline.  Each case also records the process peak RSS
(``resource.getrusage``) observed after it ran; the gate fails memory
regressions past ``--max-rss-regression`` (default 25%) at matching case
positions.  ``sweep_16_par`` is *always* gated: the check fails outright
when the runner reports fewer than two CPUs (a single-core box cannot
measure parallel speedup), and until the committed baseline itself comes
from a multi-core runner the case must clear an absolute
``PARALLEL_ARMING_FLOOR`` instead of a baseline ratio.  Refresh the
baseline locally with::

    PYTHONPATH=src python benchmarks/bench_vectorized_engine.py --smoke \
        --output benchmarks/BENCH_inference.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_inference.json"
BASELINE_PATH = Path(__file__).parent / "BENCH_inference.json"

#: Cases whose regression gate never disarms: a missing or single-core
#: measurement is a CI failure, not a skip.  sweep_16_par exists to prove
#: multi-core fan-out pays for itself; letting it silently skip on a
#: 1-core runner is how a broken pool ships.
ALWAYS_GATED = ("sweep_16_par",)

#: Absolute speedup floor for ALWAYS_GATED cases while the committed
#: baseline still comes from a single-core box (where the parallel ratio
#: is meaningless).  2.0x is the gate's usual materiality threshold;
#: the floor is that minus the standard 20% tolerance.  Once a multi-core
#: runner refreshes the baseline, the normal ratio gate takes over.
PARALLEL_ARMING_FLOOR = 1.6


def _peak_rss_kb():
    """Process peak RSS in KiB, or ``None`` where ``resource`` is absent.

    ``ru_maxrss`` is the process-lifetime high-water mark, so per-case
    values are nondecreasing down the case list; the regression gate
    compares matching positions, which keeps the monotonicity harmless.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        peak //= 1024
    return int(peak)


def _median_time(fn, repeats: int, min_sample_seconds: float = 0.05) -> float:
    """Median per-call runtime, timeit-style.

    Sub-millisecond calls are batched until each timed sample lasts at
    least ``min_sample_seconds``, keeping speedup ratios out of the timer
    noise floor (the regression gate compares ratios across CI runs).
    """
    started = time.perf_counter()
    fn()
    first = time.perf_counter() - started
    calls = max(1, int(min_sample_seconds / max(first, 1e-9)))
    times = [first] if first >= min_sample_seconds else []
    while len(times) < repeats:
        started = time.perf_counter()
        for _ in range(calls):
            fn()
        times.append((time.perf_counter() - started) / calls)
    return float(statistics.median(times))


def _generate(n_sources: int, n_objects: int, n_observations: int, seed: int = 0):
    from repro.data import SyntheticConfig, generate

    density = min(n_observations / (n_sources * n_objects), 1.0)
    config = SyntheticConfig(
        n_sources=n_sources,
        n_objects=n_objects,
        density=density,
        avg_accuracy=0.72,
        n_features=8,
        n_informative=4,
        seed=seed,
        name=f"bench-{n_observations}",
    )
    return generate(config).dataset


def run_benchmarks(smoke: bool, n_observations: int, repeats: int, sweep_jobs: int = 4) -> dict:
    import numpy as np

    from repro.core.em import EMLearner
    from repro.core.erm import ERMLearner
    from repro.core.inference import (
        expected_correctness,
        map_assignment,
        map_rows,
        posterior_rows,
        posteriors,
    )
    from repro.core.structure import build_pair_structure
    from repro.fusion.encoding import encode_dataset
    from repro.fusion.result import FusionResult

    dataset = _generate(
        n_sources=max(30, n_observations // 33),
        n_objects=max(50, n_observations // 4),
        n_observations=n_observations,
        seed=0,
    )
    # The paper's largest semi-supervised regime (20% revealed truth).
    truth = dataset.split(0.20, seed=0).train_truth

    print(
        f"dataset: {dataset.n_sources} sources, {dataset.n_objects} objects, "
        f"{dataset.n_observations} observations, {len(truth)} labels",
        file=sys.stderr,
    )

    started = time.perf_counter()
    encoding = encode_dataset(dataset)
    encode_seconds = time.perf_counter() - started
    model = ERMLearner().fit(dataset, truth)
    trust = model.trust_scores()

    structure_ref = build_pair_structure(dataset, backend="reference")
    structure_vec = build_pair_structure(dataset, backend="vectorized")
    label_rows = structure_vec.label_rows(truth)

    cases = []

    def case(name: str, reference, vectorized, case_repeats=None) -> None:
        ref_s = _median_time(reference, case_repeats or repeats)
        vec_s = _median_time(vectorized, case_repeats or repeats)
        cases.append(
            {
                "name": name,
                "reference_seconds": ref_s,
                "vectorized_seconds": vec_s,
                "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
                "peak_rss_kb": _peak_rss_kb(),
            }
        )
        print(
            f"{name:>18}: reference {ref_s * 1e3:8.2f} ms | "
            f"vectorized {vec_s * 1e3:8.2f} ms | {ref_s / vec_s:6.1f}x",
            file=sys.stderr,
        )

    case(
        "structure_compile",
        lambda: build_pair_structure(dataset, backend="reference"),
        lambda: build_pair_structure(dataset, backend="vectorized"),
    )

    def _query_reference():
        # End-to-end MAP query exactly as the pre-vectorization facade ran
        # it: re-walk the dataset into a structure, package per-object
        # dicts, scan them for the argmax.
        structure = build_pair_structure(dataset, backend="reference")
        return map_assignment(
            posteriors(
                dataset,
                model,
                structure=structure,
                clamp=truth,
                backend="reference",
            )
        )

    def _query_vectorized():
        structure = build_pair_structure(dataset, backend="vectorized")
        return map_rows(structure, posterior_rows(structure, model), clamp=truth)

    case("posterior_query", _query_reference, _query_vectorized)
    # Full fusion-output packaging: the reference walks per-object dicts,
    # the array-native path scatters the flat row probabilities into a
    # FusionResult (value codes + dense posterior matrix) with no
    # per-object Python loop; the dict views stay unmaterialized.
    accuracies = model.accuracies()
    case(
        "posterior_package",
        lambda: posteriors(
            dataset,
            model,
            structure=structure_ref,
            clamp=truth,
            backend="reference",
        ),
        lambda: FusionResult.from_rows(
            structure_vec,
            posterior_rows(structure_vec, model),
            clamp=truth,
            accuracy_vector=accuracies,
            source_ids=model.source_ids,
        ),
    )
    case(
        "em_estep",
        lambda: expected_correctness(structure_ref, trust, label_rows, backend="reference"),
        lambda: expected_correctness(structure_vec, trust, label_rows, backend="vectorized"),
    )

    em_rounds = 3 if smoke else 5
    case(
        "em_fit",
        lambda: EMLearner(
            max_iterations=em_rounds, tolerance=0.0, backend="reference"
        ).fit(dataset, truth),
        lambda: EMLearner(
            max_iterations=em_rounds, tolerance=0.0, backend="vectorized"
        ).fit(dataset, truth),
    )
    # Warm-started second-order M-step vs the original scipy-per-round
    # reference path: the headline end-to-end EM comparison.
    case(
        "em_fit_warm",
        lambda: EMLearner(
            max_iterations=em_rounds, tolerance=0.0, backend="reference"
        ).fit(dataset, truth),
        lambda: EMLearner(
            max_iterations=em_rounds,
            tolerance=0.0,
            backend="vectorized",
            solver="lbfgs-warm",
        ).fit(dataset, truth),
    )
    case(
        "erm_fit",
        lambda: ERMLearner(backend="reference").fit(dataset, truth),
        lambda: ERMLearner(backend="vectorized").fit(dataset, truth),
    )

    # 16-point EM sweep (train fractions x ridge strengths) over one
    # dataset: the batched SweepRunner (shared encoding/structure, cached
    # label/clamp plans, cached re-reduced objective, warm-start handoff,
    # contracted lbfgs-warm M-step) versus sequential isolated fits on the
    # existing per-fit path.  Multi-second arms, so fewer timing repeats.
    from repro.experiments.sweeps import FitSpec, SweepRunner

    sweep_rounds = 3
    sweep_specs = [
        FitSpec(
            name=f"em@{fraction}:l2={l2}",
            learner="em",
            train_truth=dataset.split(fraction, seed=0).train_truth,
            overrides={
                "max_iterations": sweep_rounds,
                "tolerance": 0.0,
                "l2_sources": l2,
            },
        )
        for fraction in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40)
        for l2 in (2.0, 4.0)
    ]
    case(
        "sweep_16",
        lambda: SweepRunner(dataset, mode="isolated").run(sweep_specs),
        lambda: SweepRunner(dataset, mode="batched").run(sweep_specs),
        case_repeats=min(repeats, 3),
    )

    # The same 16-point sweep fanned out across worker processes: serial
    # batched ("reference" column) versus `n_jobs` workers sharing the
    # shipped compile.  The worker count is pinned via --sweep-jobs /
    # BENCH_SWEEP_JOBS so the speedup ratio is comparable across machines
    # (CI sets it explicitly to the runner's core count).
    case(
        "sweep_16_par",
        lambda: SweepRunner(dataset, mode="batched").run(sweep_specs),
        lambda: SweepRunner(dataset, mode="batched", n_jobs=sweep_jobs).run(sweep_specs),
        case_repeats=min(repeats, 3),
    )

    # Streaming ingest: incremental encoding + vectorized batch scatters
    # versus the reference dict-per-observation replay of the same stream
    # (same random order, same truth reveal).
    from repro.extensions.streaming import replay_dataset

    case(
        "stream_append",
        lambda: replay_dataset(dataset, truth, seed=0, backend="reference"),
        lambda: replay_dataset(dataset, truth, seed=0, backend="vectorized", batch_size=256),
        case_repeats=min(repeats, 3),
    )

    if not smoke:
        # The per-factor reference Gibbs sampler is retired from the CI
        # smoke run (its equivalence is asserted in the test suite); the
        # full benchmark keeps it for the occasional deep comparison.
        from repro.factorgraph import GibbsSampler, compile_dataset

        gibbs_dataset = _generate(
            n_sources=30,
            n_objects=150,
            n_observations=1200,
            seed=1,
        )
        gibbs_truth = gibbs_dataset.split(0.10, seed=0).train_truth
        gibbs_model = ERMLearner().fit(gibbs_dataset, gibbs_truth)
        compiled = compile_dataset(gibbs_dataset, evidence=gibbs_truth)
        compiled.set_weights_from_model(gibbs_model)
        n_gibbs = 200
        case(
            "gibbs_marginals",
            lambda: GibbsSampler(
                n_samples=n_gibbs, burn_in=n_gibbs // 5, seed=0, backend="reference"
            ).run(compiled.graph),
            lambda: GibbsSampler(
                n_samples=n_gibbs, burn_in=n_gibbs // 5, seed=0, backend="vectorized"
            ).run(compiled.graph),
        )

    core_cases = ("posterior_query", "posterior_package", "em_estep", "em_fit", "em_fit_warm")
    core_speedup = float(statistics.median(c["speedup"] for c in cases if c["name"] in core_cases))
    return {
        "benchmark": "vectorized_engine",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            # Parallel-case context: a sweep_16_par ratio is only
            # meaningful relative to the cores/workers it ran with.
            "cpu_count": os.cpu_count(),
            "sweep_jobs": sweep_jobs,
        },
        "dataset": {
            "n_sources": dataset.n_sources,
            "n_objects": dataset.n_objects,
            "n_observations": dataset.n_observations,
            "n_labels": len(truth),
            "encode_seconds": encode_seconds,
        },
        "cases": cases,
        "summary": {"posteriors_em_median_speedup": core_speedup},
    }


def check_regression(
    report: dict,
    baseline_path: Path,
    max_regression: float,
    max_rss_regression: float = 0.25,
) -> int:
    """Compare speedup ratios against a baseline report; 0 when within budget."""
    baseline = json.loads(baseline_path.read_text())
    baseline_cases = {c["name"]: c for c in baseline.get("cases", [])}
    baseline_cpus = baseline.get("environment", {}).get("cpu_count") or 0
    report_cpus = report.get("environment", {}).get("cpu_count") or 0
    failures = []
    for current in report["cases"]:
        reference = baseline_cases.get(current["name"])
        if reference is None:
            continue
        if current["name"] in ALWAYS_GATED:
            # Armed multi-core gate: no escape hatch.  A runner that
            # cannot exercise parallelism fails loudly instead of
            # vacuously passing.
            if report_cpus < 2:
                failures.append(
                    f"{current['name']}: runner reports cpu_count={report_cpus}; "
                    "the parallel gate requires a multi-core runner"
                )
                continue
            if baseline_cpus < 2:
                # Baseline measured single-core: its ratio is meaningless,
                # so hold the case to the absolute arming floor until a
                # multi-core runner refreshes the committed baseline.
                floor = PARALLEL_ARMING_FLOOR
                context = f"absolute arming floor, baseline cpu_count={baseline_cpus}"
            else:
                floor = min(reference["speedup"] * (1.0 - max_regression), 10.0)
                context = (
                    f"baseline {reference['speedup']:.2f}x "
                    f"- {max_regression:.0%} tolerance"
                )
            if current["speedup"] < floor:
                failures.append(
                    f"{current['name']}: speedup {current['speedup']:.2f}x fell "
                    f"below {floor:.2f}x ({context})"
                )
            continue
        # Near-1x cases (solver/packaging overhead bound) swing more than
        # 20% with machine load, so only the summary gate covers them; and
        # order-of-magnitude cases only fail when they collapse: a
        # 700x -> 500x swing is timer noise, 700x -> 8x is a regression.
        if reference["speedup"] < 2.0:
            continue
        floor = min(reference["speedup"] * (1.0 - max_regression), 10.0)
        if current["speedup"] < floor:
            failures.append(
                f"{current['name']}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {reference['speedup']:.2f}x "
                f"- {max_regression:.0%} tolerance)"
            )
    # Memory gate: peak RSS per case position, current vs baseline.
    # ru_maxrss is a process-lifetime high-water mark, so both columns are
    # nondecreasing down the case list and position-wise ratios compare
    # like with like.
    for current in report["cases"]:
        reference = baseline_cases.get(current["name"])
        if reference is None:
            continue
        current_rss = current.get("peak_rss_kb")
        baseline_rss = reference.get("peak_rss_kb")
        if not current_rss or not baseline_rss:
            continue
        ceiling = baseline_rss * (1.0 + max_rss_regression)
        if current_rss > ceiling:
            failures.append(
                f"{current['name']}: peak RSS {current_rss / 1024:.1f} MiB exceeded "
                f"{ceiling / 1024:.1f} MiB (baseline {baseline_rss / 1024:.1f} MiB "
                f"+ {max_rss_regression:.0%} tolerance)"
            )
    # Reports without the engine summary (e.g. bench_serve, which reuses
    # this gate for its ratio cases) skip the summary check entirely.
    current_summary = report.get("summary", {}).get("posteriors_em_median_speedup")
    baseline_summary = baseline.get("summary", {}).get("posteriors_em_median_speedup")
    if current_summary is not None and baseline_summary is not None:
        floor = baseline_summary * (1.0 - max_regression)
        if current_summary < floor:
            failures.append(
                f"summary posteriors+EM speedup {current_summary:.2f}x fell below "
                f"{floor:.2f}x (baseline {baseline_summary:.2f}x)"
            )
    if failures:
        print("BENCHMARK REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    summary_note = (
        f"posteriors+EM speedup {current_summary:.1f}x, "
        f"baseline {baseline_summary if baseline_summary is not None else 'n/a'}"
        if current_summary is not None
        else f"{len(report['cases'])} gated cases"
    )
    print(f"no regression vs {baseline_path} ({summary_note})", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 2000 observations, fewer repeats",
    )
    parser.add_argument(
        "--observations",
        type=int,
        default=None,
        help="observation count (default: 10000, smoke: 2000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repeats per case (median is reported; default 5)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON artifact (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--sweep-jobs",
        type=int,
        default=int(os.environ.get("BENCH_SWEEP_JOBS", "4")),
        help="worker processes for the sweep_16_par case (default: "
        "BENCH_SWEEP_JOBS or 4; pin it in CI so runner-core variance "
        "does not flap the regression gate)",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        default=None,
        help="baseline BENCH_inference.json to gate speedups against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional speedup regression vs the baseline (default 0.20)",
    )
    parser.add_argument(
        "--max-rss-regression",
        type=float,
        default=0.25,
        help="allowed fractional peak-RSS growth vs the baseline (default 0.25)",
    )
    args = parser.parse_args(argv)

    n_observations = args.observations or (2000 if args.smoke else 10000)

    report = run_benchmarks(args.smoke, n_observations, args.repeats, sweep_jobs=args.sweep_jobs)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    summary = report["summary"]["posteriors_em_median_speedup"]
    print(f"posteriors+EM median speedup: {summary:.1f}x")

    if args.check_against is not None:
        if not args.check_against.exists():
            print(
                f"baseline {args.check_against} not found; generate one with "
                f"--output {args.check_against}",
                file=sys.stderr,
            )
            return 2
        return check_regression(
            report,
            args.check_against,
            args.max_regression,
            max_rss_regression=args.max_rss_regression,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
