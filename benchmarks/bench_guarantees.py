"""Theory vs measurement: do the Section 4 rates hold empirically?

Two checks:

* **Theorem 2 rate** — the source-accuracy estimation error of ERM should
  fall roughly like ``1/sqrt(|G|)`` as ground truth grows.  We fit ERM on
  geometrically growing label budgets and verify the measured error decays
  accordingly (ratio test between budget quadruplings).
* **Empirical Rademacher complexity** — the Monte-Carlo estimate on the
  actual design rows should follow the ``sqrt(|K|/n)`` scaling the
  Appendix A bounds assume.
"""

import numpy as np

from repro.core import ERMConfig, ERMLearner, empirical_rademacher_linear
from repro.data import SyntheticConfig, generate
from repro.experiments import format_table
from repro.fusion import mean_accuracy_kl

from conftest import publish


def test_guarantee_theorem2_rate(benchmark):
    instance = generate(
        SyntheticConfig(
            n_sources=120,
            n_objects=2000,
            density=0.05,
            avg_accuracy=0.7,
            accuracy_spread=0.15,
            seed=0,
        )
    )
    dataset = instance.dataset
    true_accuracies = {source: dataset.true_accuracies[source] for source in dataset.sources}

    def run():
        rows = []
        for fraction in (0.02, 0.08, 0.32):
            errors = []
            for seed in (0, 1, 2):
                split = dataset.split(fraction, seed=seed)
                model = ERMLearner(ERMConfig(use_features=False)).fit(dataset, split.train_truth)
                errors.append(mean_accuracy_kl(model.accuracy_map(), true_accuracies))
            n_labels = int(round(fraction * dataset.n_objects))
            rows.append([n_labels, float(np.mean(errors))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["|G| (labels)", "mean KL(A_s || A*_s)"],
        rows,
        title="Theorem 2 check: ERM accuracy error vs ground-truth size",
    )
    publish("guarantee_theorem2_rate", text)

    errors = [error for _, error in rows]
    # Error must decrease with |G| ...
    assert errors[2] < errors[0]
    # ... and a 16x label increase should cut the KL error by at least 2x
    # (the sqrt rate predicts 4x on the dominant term).
    assert errors[2] < errors[0] / 2.0


def test_guarantee_rademacher_scaling(benchmark):
    rng = np.random.default_rng(0)

    def run():
        rows = []
        for n_samples in (100, 400, 1600):
            for n_features in (5, 20):
                features = (rng.random((n_samples, n_features)) < 0.5).astype(float)
                estimate = empirical_rademacher_linear(features, n_draws=100)
                rows.append([n_samples, n_features, estimate])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["n samples", "|K|", "empirical Rademacher"],
        rows,
        title="Appendix A check: Rademacher complexity scaling",
    )
    publish("guarantee_rademacher", text)

    by_key = {(n, k): value for n, k, value in rows}
    # halves (roughly) when n quadruples
    assert by_key[(400, 5)] < by_key[(100, 5)] / 1.5
    assert by_key[(1600, 20)] < by_key[(400, 20)] / 1.5
    # grows with the feature count at fixed n
    assert by_key[(400, 20)] > by_key[(400, 5)]