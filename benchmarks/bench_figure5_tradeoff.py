"""Figure 5: the ERM/EM tradeoff grid.

Reproduces the qualitative winner map over (training data, average
accuracy, density): abundant labels favor ERM; scarce labels with high
accuracy and density favor EM.
"""

from repro.experiments import figure5_grid, format_table

from conftest import FULL_SCALE, publish

N_SOURCES = 1000
N_OBJECTS = 600 if FULL_SCALE else 250


def test_figure5_tradeoff_grid(benchmark):
    cells = benchmark.pedantic(
        lambda: figure5_grid(
            train_fractions=(0.02, 0.40),
            accuracies=(0.55, 0.80),
            densities=(0.005, 0.02),
            n_sources=N_SOURCES,
            n_objects=N_OBJECTS,
            seeds=(0,),
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{c.train_fraction:g}",
            f"{c.avg_accuracy:g}",
            f"{c.density:g}",
            c.winner,
            c.em_accuracy,
            c.erm_accuracy,
        ]
        for c in cells
    ]
    text = format_table(
        ["TD", "Avg acc", "Density", "Winner", "EM", "ERM"],
        rows,
        title="Figure 5: EM/ERM tradeoff grid",
    )
    publish("figure5_tradeoff", text)

    by_key = {(c.train_fraction, c.avg_accuracy, c.density): c for c in cells}
    # Paper Figure 5, top row: with ample ground truth ERM is competitive.
    # We check the high-accuracy columns; in the low-accuracy, sparse
    # corner our semi-supervised EM keeps an edge even at 40% labels
    # because it additionally consumes the unlabeled conflicts (deviation
    # documented in EXPERIMENTS.md).
    for density in (0.005, 0.02):
        cell = by_key[(0.40, 0.80, density)]
        assert cell.erm_accuracy >= cell.em_accuracy - 0.05

    # Bottom-right corner: scarce labels + high accuracy + high density -> EM.
    corner = by_key[(0.02, 0.80, 0.02)]
    assert corner.em_accuracy >= corner.erm_accuracy - 0.005

    # In the high-accuracy columns (where EM dominates at scarce labels)
    # the EM-minus-ERM gap must shrink as labels grow — the core of the
    # tradeoff.  Low-accuracy columns are excluded: there both algorithms
    # are label-starved and the gap is noise-dominated.
    for density in (0.005, 0.02):
        scarce = by_key[(0.02, 0.80, density)]
        ample = by_key[(0.40, 0.80, density)]
        scarce_gap = scarce.em_accuracy - scarce.erm_accuracy
        ample_gap = ample.em_accuracy - ample.erm_accuracy
        assert ample_gap <= scarce_gap + 0.02
