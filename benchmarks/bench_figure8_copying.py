"""Figure 8: detecting source copying on Demonstrations.

Compares SLiMFast with and without the Appendix D copying features (no
domain features, matching the paper's setup) over small training
fractions, and lists the highest-weight copying pairs.  Paper shape:
copying features help (or match) at small training data, and the top
copying weights land on genuinely correlated sources.
"""

import pytest

from repro.core import CopyingSLiMFast, SLiMFast
from repro.data import generate_demos
from repro.experiments import format_table
from repro.fusion import object_value_accuracy

from conftest import FULL_SCALE, publish

N_OBJECTS = 3105 if FULL_SCALE else 800
N_SOURCES = 522 if FULL_SCALE else 200


@pytest.fixture(scope="module")
def demos():
    return generate_demos(n_objects=N_OBJECTS, n_sources=N_SOURCES, n_copy_groups=15, seed=0)


def test_figure8_copying_detection(benchmark, demos):
    fractions = (0.01, 0.05, 0.10, 0.20)

    def run():
        rows = []
        last = None
        for fraction in fractions:
            split = demos.split(fraction, seed=0)
            test = list(split.test_objects)
            copying = CopyingSLiMFast(learner="em").fit(demos, split.train_truth)
            with_copy = object_value_accuracy(copying.predict().values, demos.ground_truth, test)
            plain = SLiMFast(learner="em", use_features=False).fit_predict(demos, split.train_truth)
            without = object_value_accuracy(plain.values, demos.ground_truth, test)
            rows.append([f"{fraction * 100:g}", with_copy, without])
            last = copying
        return rows, last

    rows, model = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["TD (%)", "w. Copying", "w.o. Copying"],
        rows,
        title="Figure 8: copying detection on Demonstrations",
    )
    weights = sorted(model.pair_weights().items(), key=lambda kv: -kv[1])[:6]
    pair_table = format_table(
        ["Source 1", "Source 2", "Copying weight"],
        [[a, b, w] for (a, b), w in weights],
        title="Examples of correlated sources",
    )
    publish("figure8_copying", table + "\n\n" + pair_table)

    # Copying features help (or at worst match) at small training data.
    small_td = rows[0]
    assert small_td[1] >= small_td[2] - 0.01

    # The strongest copying weights are positive.
    assert weights[0][1] > 0.0
