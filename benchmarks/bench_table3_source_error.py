"""Table 3: weighted error of source-accuracy estimates.

Only the probabilistic methods participate (CATD and SSTF are omitted, as
in the paper); Genomics is excluded because per-source accuracies cannot
be estimated reliably from ~1 observation per source (paper's "Omitted
Comparison" note).

Shape checks: SLiMFast's error stays below 0.1 everywhere, and beats
Counts clearly at the smallest training fraction (2-10x in the paper).
"""

import pytest

from repro.experiments import CellKey, TABLE3_METHODS, run_sweep, table3

from conftest import FRACTIONS, SEEDS, publish


@pytest.fixture(scope="module")
def sweep_report(paper_datasets):
    datasets = {k: v for k, v in paper_datasets.items() if k != "genomics"}
    return run_sweep(
        datasets,
        methods=TABLE3_METHODS,
        fractions=FRACTIONS,
        seeds=SEEDS,
    )


def test_table3_source_accuracy_error(benchmark, sweep_report, paper_datasets):
    text = benchmark.pedantic(lambda: table3(sweep_report), rounds=1, iterations=1)
    publish("table3_source_error", text)

    cells = sweep_report.cells

    def err(dataset, method, fraction):
        return cells[CellKey(paper_datasets[dataset].name, method, fraction)].source_error

    # SLiMFast's weighted error stays below 0.1 once any usable amount of
    # ground truth exists.  (At 0.1% TD our optimizer chooses ERM on
    # Stocks — one labeled object — where the paper's chose EM; see
    # EXPERIMENTS.md for the deviation note.)
    for dataset in ("stocks", "crowd"):
        for fraction in FRACTIONS:
            if fraction >= 0.01:
                assert err(dataset, "slimfast", fraction) < 0.1, (dataset, fraction)

    # The paper's core Table 3 claim: discriminative models estimate
    # accuracies with far lower error than label-counting at tiny TD.
    assert err("stocks", "sources-em", 0.001) < err("stocks", "counts", 0.001) / 2
    assert err("crowd", "sources-em", 0.001) < err("crowd", "counts", 0.001) / 2

    # Per-learner trend: the supervised estimate sharpens with ground
    # truth.  (The "slimfast" column itself can tick up when the optimizer
    # switches learners between fractions, so the trend is asserted on the
    # fixed-learner variant.)
    for dataset in ("stocks", "crowd", "demos"):
        assert err(dataset, "sources-erm", 0.20) < err(dataset, "sources-erm", 0.001)
