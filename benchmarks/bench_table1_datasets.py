"""Table 1: parameters of the evaluation datasets.

Regenerates the dataset-statistics table from the four simulators and
checks the headline Table 1 properties (source/object counts, Stocks'
sub-0.5 average accuracy, Genomics' hidden accuracy).
"""

from repro.experiments import table1

from conftest import publish


def test_table1_dataset_statistics(benchmark, paper_datasets):
    text = benchmark.pedantic(lambda: table1(paper_datasets), rounds=1, iterations=1)
    publish("table1_datasets", text)

    stocks = paper_datasets["stocks"].stats()
    assert stocks.n_sources == 34
    assert stocks.n_objects == 907
    assert stocks.avg_source_accuracy < 0.5

    demos = paper_datasets["demos"].stats()
    assert demos.n_sources == 522
    assert abs(demos.avg_source_accuracy - 0.604) < 0.05

    crowd = paper_datasets["crowd"].stats()
    assert crowd.n_observations == crowd.n_objects * 20

    genomics = paper_datasets["genomics"].stats()
    assert genomics.avg_source_accuracy is None  # too sparse to estimate
    assert genomics.avg_observations_per_source < 2.0
