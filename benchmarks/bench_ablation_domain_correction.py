"""Ablation: the multi-valued domain correction in Equation 4.

Our posterior adds a ``log(|D_o| - 1)`` offset per vote (the
discriminative counterpart of spreading error mass uniformly over the
wrong alternatives; a no-op on binary domains).  This ablation shows it
matters on the 4-valued Crowd dataset — EM without the correction
systematically under-weights the claimed values' evidence and loses
accuracy — while binary Demonstrations is untouched.
"""

import numpy as np
import pytest

from repro.core import EMConfig, EMLearner, build_pair_structure
from repro.core.inference import pair_scores
from repro.experiments import format_table
from repro.fusion import object_value_accuracy
from repro.optim.objectives import segment_softmax

from conftest import publish


def _map_values(dataset, model, domain_correction):
    structure = build_pair_structure(dataset)
    scores = pair_scores(structure, model.trust_scores(), domain_correction=domain_correction)
    probs = segment_softmax(scores, structure.pair_object_pos, structure.n_objects)
    values = {}
    for position, obj in enumerate(structure.object_ids):
        rows = structure.rows_of(position)
        block = probs[rows.start : rows.stop]
        values[obj] = structure.pair_values[rows.start + int(np.argmax(block))]
    return values


def test_ablation_domain_correction(benchmark, paper_datasets):
    def run():
        rows = []
        for name in ("crowd", "demos"):
            dataset = paper_datasets[name]
            model = EMLearner(EMConfig(use_features=False)).fit(dataset, {})
            with_corr = object_value_accuracy(
                _map_values(dataset, model, True), dataset.ground_truth
            )
            without = object_value_accuracy(
                _map_values(dataset, model, False), dataset.ground_truth
            )
            rows.append([name, with_corr, without])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "With correction", "Without"],
        rows,
        title="Ablation: multi-valued domain correction (unsupervised EM)",
    )
    publish("ablation_domain_correction", text)

    by_name = {row[0]: row for row in rows}
    # Binary demos: the correction is a no-op.
    assert by_name["demos"][1] == pytest.approx(by_name["demos"][2], abs=1e-9)
    # 4-valued crowd: the correction must not hurt (it usually helps the
    # posterior calibration; MAP accuracy stays equal or improves).
    assert by_name["crowd"][1] >= by_name["crowd"][2] - 1e-9
