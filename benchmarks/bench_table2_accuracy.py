"""Table 2: object-value accuracy of all methods across datasets.

Sweeps the full method lineup over the four simulated datasets and the
paper's training-data fractions, rendering both Panel A (per-dataset
accuracy) and Panel B (average relative difference vs SLiMFast).

Shape checks (paper Section 5.2.1):

* SLiMFast beats the feature-less and generative baselines on the sparse,
  feature-driven Genomics dataset by a clear margin;
* SLiMFast dominates Counts on Demonstrations (correlated sources);
* ACCU stays competitive on Crowd (truly independent workers).
"""

import pytest

from repro.experiments import (
    CellKey,
    TABLE2_METHODS,
    run_sweep,
    table2,
    table2_panel_b,
)

from conftest import FRACTIONS, SEEDS, publish


@pytest.fixture(scope="module")
def sweep_report(paper_datasets):
    return run_sweep(
        paper_datasets,
        methods=TABLE2_METHODS,
        fractions=FRACTIONS,
        seeds=SEEDS,
    )


def test_table2_panel_a(benchmark, sweep_report, paper_datasets):
    text = benchmark.pedantic(lambda: table2(sweep_report), rounds=1, iterations=1)
    publish("table2_accuracy_panel_a", text)

    cells = sweep_report.cells

    def acc(dataset, method, fraction):
        return cells[CellKey(paper_datasets[dataset].name, method, fraction)].object_accuracy

    # Genomics: domain features are the only usable signal.
    assert acc("genomics", "slimfast", 0.05) > acc("genomics", "sources-erm", 0.05) + 0.05
    assert acc("genomics", "slimfast", 0.05) > acc("genomics", "counts", 0.05) + 0.05

    # Demonstrations: correlated sources break Counts.
    assert acc("demos", "slimfast", 0.01) > acc("demos", "counts", 0.01)

    # Crowd: independent workers keep ACCU competitive (within 2 points).
    assert acc("crowd", "accu", 0.01) > acc("crowd", "slimfast", 0.01) - 0.02

    # Small ground truth already yields > 0.9 on Stocks (paper headline).
    assert acc("stocks", "slimfast", 0.01) > 0.9


def test_table2_panel_b(benchmark, sweep_report):
    text = benchmark.pedantic(lambda: table2_panel_b(sweep_report), rounds=1, iterations=1)
    publish("table2_accuracy_panel_b", text)
    assert "slimfast" in text
