"""Regenerate every paper artifact without pytest.

Convenience runner for users who want the tables/figures as plain files:

    python benchmarks/run_all.py [--full]

Equivalent to ``pytest benchmarks/ --benchmark-only`` minus the benchmark
timing machinery; writes the same ``benchmarks/results/*.txt`` artifacts.
A failing step is reported but does not stop the remaining steps; the exit
status is nonzero when any step failed, so CI can gate on this script.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale sweeps (slower)")
    args = parser.parse_args(argv)
    if args.full:
        os.environ["REPRO_BENCH_SCALE"] = "full"

    from repro.data import (
        generate_crowd,
        generate_demos,
        generate_genomics,
        generate_stocks,
    )
    from repro.experiments import (
        TABLE2_METHODS,
        figure4a,
        figure4b,
        figure4c,
        figure7,
        figure8,
        lasso_figure,
        run_sweep,
        series,
        table1,
        table2,
        table2_panel_b,
        table3,
        table4,
        table5,
        table6,
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    seeds = (0, 1, 2) if args.full else (0,)
    fractions = (0.001, 0.01, 0.05, 0.10, 0.20)
    failures = []

    def publish(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    def step(name: str, fn) -> None:
        """Run one artifact step; record (but don't propagate) failures."""
        print(f"running {name} ...", file=sys.stderr)
        try:
            fn()
        except Exception:
            failures.append(name)
            print(f"FAILED: {name}", file=sys.stderr)
            traceback.print_exc()

    started = time.perf_counter()
    print("generating datasets ...", file=sys.stderr)
    datasets = {
        "stocks": generate_stocks(seed=0),
        "demos": generate_demos(seed=0),
        "crowd": generate_crowd(seed=0),
        "genomics": generate_genomics(seed=0),
    }

    step("table1", lambda: publish("table1_datasets", table1(datasets)))

    def tables_2_3() -> None:
        # Accuracy tables: the batched sweep engine is pinned equivalent
        # to per-fit runs, so take the fast path.
        report = run_sweep(datasets, TABLE2_METHODS, fractions, seeds)
        publish("table2_accuracy_panel_a", table2(report))
        publish("table2_accuracy_panel_b", table2_panel_b(report))
        publish("table3_source_error", table3(report))

    step("table2/3 sweep", tables_2_3)

    def table5_step() -> None:
        # Runtime table: isolated mode keeps the paper's independent
        # cold-fit timing protocol (batched warm-start timings are not
        # comparable; see paper_tables.table5).
        report = run_sweep(datasets, TABLE2_METHODS, fractions, seeds, mode="isolated")
        publish("table5_runtime", table5(report))

    step("table5", table5_step)

    def table4_step() -> None:
        _, table4_text = table4(datasets, fractions=fractions, seeds=seeds, tie_margin=0.006)
        publish("table4_optimizer", table4_text)

    step("table4", table4_step)
    step("table6", lambda: publish("table6_phases", table6(datasets["genomics"])))

    n_objects = 1000 if args.full else 400

    def figure4_step() -> None:
        for name, points in (
            ("figure4a_training_data", figure4a(n_objects=n_objects, seeds=seeds)),
            (
                "figure4b_density",
                figure4b(
                    n_objects=n_objects,
                    train_observations=max(int(400 * n_objects / 1000), 20),
                    seeds=seeds,
                ),
            ),
            ("figure4c_accuracy", figure4c(n_objects=n_objects, seeds=seeds)),
        ):
            em = {p.x: p.em_accuracy for p in points}
            erm = {p.x: p.erm_accuracy for p in points}
            publish(
                name,
                series(em, "x", "EM", title="EM")
                + "\n\n"
                + series(erm, "x", "ERM", title="ERM"),
            )

    step("figure4/5 sweeps", figure4_step)
    step(
        "figure6",
        lambda: publish("figure6_lasso_stocks", lasso_figure(datasets["stocks"]).text),
    )
    step(
        "figure9",
        lambda: publish("figure9_lasso_crowd", lasso_figure(datasets["crowd"]).text),
    )

    def figure7_step() -> None:
        _, figure7_text = figure7(
            {k: datasets[k] for k in ("stocks", "demos", "crowd")},
            seeds=seeds[:2] or (0,),
        )
        publish("figure7_initialization", figure7_text)

    step("figure7", figure7_step)

    def figure8_step() -> None:
        demos_small = generate_demos(n_objects=800, n_sources=200, n_copy_groups=15, seed=0)
        publish("figure8_copying", figure8(demos_small, seeds=(0,)).text)

    step("figure8", figure8_step)

    def scenario_step() -> None:
        from repro.data import drift_scenario
        from repro.experiments import scenario
        from repro.extensions import DecayConfig

        scn = drift_scenario(
            n_sources=14,
            objects_per_step=14 if args.full else 8,
            n_steps=40 if args.full else 14,
            seed=11,
        )
        report = scenario(
            scn,
            methods=("stream-flat", "stream-decayed", "stream-windowed", "batch-em", "majority"),
            decay=DecayConfig(half_life=scn.n_observations / (8 * scn.n_sources)),
            eval_window=4,
        )
        publish("scenario_drift", report.table())

    step("scenario drift", scenario_step)

    print(
        f"done in {time.perf_counter() - started:.0f}s; artifacts in {RESULTS_DIR}",
        file=sys.stderr,
    )
    if failures:
        print(f"{len(failures)} step(s) failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
