"""Figure 7: source-quality initialization (unseen sources).

Train SLiMFast on {25, 40, 50, 75}% of the sources and predict the
accuracy of the held-out sources from their domain features alone.  Paper
shape: the error decreases as more sources are available, and Crowd is
predictable even from 25% of workers.
"""


from repro.experiments import figure7

from conftest import FULL_SCALE, publish

SEEDS = (0, 1, 2) if FULL_SCALE else (0, 1)


def test_figure7_unseen_source_error(benchmark, paper_datasets):
    datasets = {k: paper_datasets[k] for k in ("stocks", "demos", "crowd")}
    curves, text = benchmark.pedantic(
        lambda: figure7(datasets, fractions=(0.25, 0.40, 0.50, 0.75), seeds=SEEDS),
        rounds=1,
        iterations=1,
    )
    publish("figure7_initialization", text)

    for name, curve in curves.items():
        # trend: more sources -> no worse predictions
        assert curve[0.75] <= curve[0.25] + 0.05, name
        # all errors stay well below the uninformed 0.25-ish baseline
        assert curve[0.75] < 0.2, name

    # Crowd is reliably predictable even from 25% of workers (paper text).
    assert curves["crowd"][0.25] < 0.15
