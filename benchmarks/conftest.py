"""Shared fixtures and output plumbing for the paper benchmarks.

Every benchmark regenerates one paper table or figure and writes the
rendered rows to ``benchmarks/results/<artifact>.txt`` (also echoed to
stdout, visible with ``pytest -s``).  EXPERIMENTS.md collects the outputs
and compares them with the paper's numbers.

Scales are reduced relative to the paper (fewer seeds, smaller synthetic
grids) so the full bench suite finishes in minutes; the dataset simulators
themselves run at full Table 1 size unless noted.  Set
``REPRO_BENCH_SCALE=full`` for paper-scale sweeps.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"

#: Training-data fractions mirroring the paper's {0.1, 1, 5, 10, 20}%.
FRACTIONS = (0.001, 0.01, 0.05, 0.10, 0.20)
SEEDS = (0, 1, 2) if FULL_SCALE else (0,)


def publish(name: str, text: str) -> None:
    """Write an artifact's rendered rows to disk and stdout."""
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    sys.stdout.write(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def paper_datasets():
    """The four simulated evaluation datasets at Table 1 scale."""
    from repro.data import (
        generate_crowd,
        generate_demos,
        generate_genomics,
        generate_stocks,
    )

    return {
        "stocks": generate_stocks(seed=0),
        "demos": generate_demos(seed=0),
        "crowd": generate_crowd(seed=0),
        "genomics": generate_genomics(seed=0),
    }
