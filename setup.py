"""Setuptools shim.

All project metadata and tool configuration live in pyproject.toml; this
file exists so that ``pip install -e .`` works on environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package
available offline).
"""

from setuptools import setup

setup()
