#!/usr/bin/env python
"""Zero-dependency docs builder and smoke-checker.

Three jobs, stdlib only:

1. **Symbol validation** — every ``repro.*`` dotted name written in
   backticks in the README or the docs pages must import and carry a
   docstring, so the reference cannot drift from the code.  For the
   modules in ``COVERAGE_MODULES`` the inverse also holds: every
   ``__all__`` name must be documented somewhere, so new public surface
   cannot ship undocumented.
2. **Code-block smoke** — every fenced ``python`` block in the README and
   docs is executed in a fresh subprocess (with ``src`` on the path), as
   are the example scripts in ``EXAMPLE_SCRIPTS``; the quickstart a new
   user copy-pastes is therefore tested on every CI run.
3. **Rendering** — a minimal Markdown-to-HTML pass writes browsable pages
   to ``docs/_build/`` (headings, fenced code, lists, tables, block
   quotes, inline code/bold/links).

Usage::

    python docs/build.py           # validate symbols + render docs/_build/
    python docs/build.py --check   # validate symbols + run code blocks (CI)
"""

from __future__ import annotations

import argparse
import html
import importlib
import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"
SOURCES = [
    ROOT / "README.md",
    DOCS / "index.md",
    DOCS / "api.md",
    DOCS / "features.md",
    DOCS / "performance.md",
    DOCS / "serving.md",
    DOCS / "scenarios.md",
    DOCS / "analysis.md",
]

#: Example scripts executed (like code blocks) in --check mode.
EXAMPLE_SCRIPTS = [
    ROOT / "examples" / "serve_demo.py",
    ROOT / "examples" / "scenario_drift.py",
]

#: Modules whose *entire* public surface (``__all__``) must be named in
#: the docs — the inverse of symbol validation: not "everything written
#: resolves" but "everything public is written somewhere".  A symbol
#: documented under a re-export path counts for every module that
#: exports the same object (matched by identity, see
#: :func:`check_public_coverage`).
COVERAGE_MODULES = [
    "repro",
    "repro.baselines",
    "repro.core",
    "repro.data",
    "repro.experiments",
    "repro.extensions",
    "repro.factorgraph",
    "repro.featurize",
    "repro.fusion",
    "repro.optim",
    "repro.serve",
]

SYMBOL_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")


# ----------------------------------------------------------------------
# Symbol validation
# ----------------------------------------------------------------------
def collect_symbols(paths) -> dict:
    """Dotted ``repro.*`` names per source file (from inline code spans)."""
    found = {}
    for path in paths:
        names = sorted(set(SYMBOL_RE.findall(path.read_text())))
        if names:
            found[path] = names
    return found


def resolve(dotted: str):
    """Import the longest module prefix of ``dotted``, getattr the rest."""
    parts = dotted.split(".")
    module = None
    for stop in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:stop]))
        except ImportError:
            continue
        break
    if module is None:
        raise ImportError(f"no importable prefix of {dotted!r}")
    obj = module
    for attr in parts[stop:]:
        obj = getattr(obj, attr)
    return obj


def check_symbols(paths) -> list:
    """Return a list of human-readable failures (empty = all good)."""
    failures = []
    for path, names in collect_symbols(paths).items():
        for name in names:
            try:
                obj = resolve(name)
            except (ImportError, AttributeError) as error:
                failures.append(f"{path.name}: {name} does not resolve ({error})")
                continue
            if type(obj).__module__ == "typing":
                continue  # type aliases (Union[...] etc.) cannot carry docstrings
            docstring = getattr(obj, "__doc__", None)
            if callable(obj) or isinstance(obj, type) or hasattr(obj, "__file__"):
                if not (docstring and docstring.strip()):
                    failures.append(f"{path.name}: {name} has no docstring")
    return failures


def check_public_coverage(paths) -> list:
    """Every ``__all__`` name of the coverage modules must be documented.

    A public symbol counts as documented when its dotted name (e.g.
    ``repro.serve.FusionServer``) appears in an inline code span in at
    least one docs source, **or** when some documented name resolves to
    the very same object — the facade re-exports (``repro.SLiMFast`` is
    ``repro.core.SLiMFast``) are one object with many public paths, and
    documenting one path documents them all.  Identity matching is
    restricted to classes/functions/modules: primitive constants (an
    ``int`` version, a tuple of backend names) share identity by
    interning, so they must be named explicitly.  Resolvability and
    docstrings are then covered by :func:`check_symbols` like any other
    documented name.
    """
    documented = set()
    for names in collect_symbols(paths).values():
        documented.update(names)
    documented_ids = set()
    for dotted in documented:
        try:
            obj = resolve(dotted)
        except (ImportError, AttributeError):
            continue  # check_symbols reports unresolvable names
        if callable(obj) or isinstance(obj, type) or hasattr(obj, "__file__"):
            documented_ids.add(id(obj))
    failures = []
    for module_name in COVERAGE_MODULES:
        module = importlib.import_module(module_name)
        for public in module.__all__:
            dotted = f"{module_name}.{public}"
            if dotted in documented:
                continue
            obj = getattr(module, public)
            identity_ok = (
                callable(obj) or isinstance(obj, type) or hasattr(obj, "__file__")
            ) and id(obj) in documented_ids
            if not identity_ok:
                failures.append(
                    f"{dotted} is public (in {module_name}.__all__) but never "
                    f"documented — name it (or a re-export of the same object) "
                    f"in docs/ or the README"
                )
    return failures


# ----------------------------------------------------------------------
# Code-block smoke
# ----------------------------------------------------------------------
def python_blocks(path: Path) -> list:
    """(start line, code) of each fenced ``python`` block in ``path``."""
    blocks = []
    lines = path.read_text().splitlines()
    inside = None
    start = 0
    chunk: list = []
    for number, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line)
        if inside is None:
            if fence and fence.group(1) == "python":
                inside, start, chunk = "python", number, []
            elif fence:
                inside = "other"
        elif fence:
            if inside == "python":
                blocks.append((start, "\n".join(chunk)))
            inside = None
        elif inside == "python":
            chunk.append(line)
    return blocks


def run_blocks(paths) -> list:
    """Execute every python block in a clean subprocess; return failures."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    failures = []
    for path in paths:
        for start, code in python_blocks(path):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(ROOT),
                timeout=600,
            )
            label = f"{path.name}:{start}"
            if proc.returncode != 0:
                failures.append(f"{label} failed:\n{proc.stderr.strip()}")
            else:
                print(f"  ran {label} ok")
    return failures


def run_examples(paths) -> list:
    """Execute example scripts end to end; return failures."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    failures = []
    for path in paths:
        proc = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(ROOT),
            timeout=600,
        )
        label = str(path.relative_to(ROOT))
        if proc.returncode != 0:
            failures.append(f"{label} failed:\n{proc.stderr.strip()}")
        else:
            print(f"  ran {label} ok")
    return failures


# ----------------------------------------------------------------------
# Minimal Markdown -> HTML
# ----------------------------------------------------------------------
def _inline(text: str) -> str:
    text = html.escape(text, quote=False)
    text = re.sub(r"`([^`]+)`", r"<code>\1</code>", text)
    text = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", text)
    text = re.sub(
        r"\[([^\]]+)\]\(([^)]+)\)",
        lambda m: f'<a href="{m.group(2).replace(".md", ".html")}">{m.group(1)}</a>',
        text,
    )
    return text


def render_markdown(text: str) -> str:
    out = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        fence = FENCE_RE.match(line)
        if fence:
            code = []
            i += 1
            while i < len(lines) and not FENCE_RE.match(lines[i]):
                code.append(lines[i])
                i += 1
            out.append(f"<pre><code>{html.escape(chr(10).join(code))}</code></pre>")
        elif line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            out.append(f"<h{level}>{_inline(line.lstrip('# '))}</h{level}>")
        elif line.startswith("|"):
            rows = []
            while i < len(lines) and lines[i].startswith("|"):
                cells = [c.strip() for c in lines[i].strip("|").split("|")]
                if not all(set(c) <= {"-", " ", ":"} for c in cells):
                    rows.append(cells)
                i += 1
            i -= 1
            body = []
            for row in rows:
                cells_html = "".join(f"<td>{_inline(c)}</td>" for c in row)
                body.append(f"<tr>{cells_html}</tr>")
            out.append("<table>" + "".join(body) + "</table>")
        elif line.startswith(("- ", "* ")):
            items = []
            bullet_or_wrap = ("- ", "* ", "  ")
            while i < len(lines) and lines[i].startswith(bullet_or_wrap):
                if lines[i].startswith(("- ", "* ")):
                    items.append(lines[i][2:])
                elif items:
                    items[-1] += " " + lines[i].strip()
                i += 1
            i -= 1
            items_html = "".join(f"<li>{_inline(item)}</li>" for item in items)
            out.append(f"<ul>{items_html}</ul>")
        elif line.startswith(">"):
            quote = []
            while i < len(lines) and lines[i].startswith(">"):
                quote.append(lines[i].lstrip("> "))
                i += 1
            i -= 1
            out.append(f"<blockquote><p>{_inline(' '.join(quote))}</p></blockquote>")
        elif line.strip():
            paragraph = [line]
            block_starts = ("#", "|", "- ", "* ", ">", "```")
            while (
                i + 1 < len(lines)
                and lines[i + 1].strip()
                and not lines[i + 1].startswith(block_starts)
            ):
                i += 1
                paragraph.append(lines[i])
            out.append(f"<p>{_inline(' '.join(paragraph))}</p>")
        i += 1
    return "\n".join(out)


PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
body {{ max-width: 46rem; margin: 2rem auto; padding: 0 1rem;
       font: 16px/1.6 system-ui, sans-serif; color: #1a1a1a; }}
pre {{ background: #f6f8fa; padding: 0.8rem; overflow-x: auto; border-radius: 6px; }}
code {{ background: #f6f8fa; padding: 0.1rem 0.25rem; border-radius: 4px;
        font-size: 0.9em; }}
pre code {{ padding: 0; }}
table {{ border-collapse: collapse; }}
td {{ border: 1px solid #d0d7de; padding: 0.3rem 0.6rem; }}
blockquote {{ border-left: 4px solid #d0d7de; margin-left: 0; padding-left: 1rem;
              color: #57606a; }}
</style></head><body>
{body}
</body></html>
"""


def render(paths, output: Path) -> None:
    output.mkdir(parents=True, exist_ok=True)
    for path in paths:
        text = path.read_text()
        title = next(
            (line.lstrip("# ") for line in text.splitlines() if line.startswith("#")),
            path.stem,
        )
        target = output / f"{path.stem.lower()}.html"
        target.write_text(PAGE.format(title=html.escape(title), body=render_markdown(text)))
        print(f"  rendered {target.relative_to(ROOT)}")


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Build and smoke-check the docs.")
    parser.add_argument(
        "--check",
        action="store_true",
        help="also execute the README/docs python code blocks (CI mode)",
    )
    parser.add_argument(
        "--output", type=Path, default=DOCS / "_build", help="HTML output directory"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    print("validating documented symbols...")
    failures = check_symbols(SOURCES)
    print("checking public-surface coverage...")
    failures += check_public_coverage(SOURCES)
    if args.check:
        print("running documentation code blocks...")
        failures += run_blocks(SOURCES)
        print("running example scripts...")
        failures += run_examples(EXAMPLE_SCRIPTS)
    else:
        render(SOURCES, args.output)

    if failures:
        print("\nDOCS BUILD FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
