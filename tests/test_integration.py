"""End-to-end integration tests across the whole library."""

import pytest

from repro import Counts, FusionDataset, SLiMFast
from repro.core import CopyingSLiMFast, lasso_path
from repro.data import (
    SyntheticConfig,
    generate,
    generate_genomics,
    generate_stocks,
    load_dataset,
    save_dataset,
)
from repro.experiments import run_method


class TestPaperHeadlines:
    """The paper's headline claims, verified end-to-end at reduced scale."""

    def test_features_unlock_sparse_datasets(self):
        """Genomics-like sparsity: SLiMFast with features must clearly beat
        the feature-less variants and Counts (paper Table 2, Genomics)."""
        ds = generate_genomics(n_sources=800, n_objects=200, seed=1)
        split = ds.split(0.1, seed=0)
        slimfast = SLiMFast(learner="em").fit_predict(ds, split.train_truth)
        sources_only = SLiMFast(learner="em", use_features=False).fit_predict(ds, split.train_truth)
        counts = Counts().fit_predict(ds, split.train_truth)
        test = list(split.test_objects)
        assert slimfast.accuracy(ds, test) > sources_only.accuracy(ds, test) + 0.03
        assert slimfast.accuracy(ds, test) > counts.accuracy(ds, test) + 0.03

    def test_small_ground_truth_high_accuracy(self):
        """Paper: ~1% of labels can already give > 0.9 accuracy."""
        ds = generate_stocks(seed=2)
        split = ds.split(0.01, seed=0)
        result = SLiMFast().fit_predict(ds, split.train_truth)
        assert result.accuracy(ds, list(split.test_objects)) > 0.9

    def test_source_accuracy_error_low(self):
        """Paper Table 3: SLiMFast's weighted accuracy error < 0.1."""
        ds = generate_stocks(seed=3)
        split = ds.split(0.05, seed=0)
        result = SLiMFast().fit_predict(ds, split.train_truth)
        assert result.source_error(ds) < 0.1

    def test_optimizer_picks_winner_on_extremes(self):
        """Plenty of labels -> ERM; no labels -> EM."""
        ds = generate(SyntheticConfig(n_sources=80, n_objects=150, density=0.1, seed=5)).dataset
        rich = SLiMFast(learner="auto")
        rich.fit(ds, ds.ground_truth)
        assert rich.chosen_learner_ == "erm"
        poor = SLiMFast(learner="auto")
        poor.fit(ds, {})
        assert poor.chosen_learner_ == "em"


class TestCrossModuleFlows:
    def test_save_load_fuse(self, tmp_path, small_dataset):
        save_dataset(small_dataset, tmp_path)
        loaded = load_dataset(tmp_path, name="reloaded")
        split = loaded.split(0.2, seed=0)
        result = SLiMFast(learner="erm").fit_predict(loaded, split.train_truth)
        assert result.accuracy(loaded, list(split.test_objects)) > 0.5

    def test_harness_matches_direct_call(self, small_dataset):
        harness = run_method(small_dataset, "slimfast-erm", 0.2, seed=0)
        split = small_dataset.split(0.2, seed=0)
        direct = SLiMFast(learner="erm").fit_predict(small_dataset, split.train_truth)
        assert harness.object_accuracy == pytest.approx(
            direct.accuracy(small_dataset, list(split.test_objects))
        )

    def test_lasso_then_refit_on_selected_features(self, small_synthetic):
        """Feature selection via lasso, then a dense refit — a realistic
        analyst workflow over the public API."""
        ds = small_synthetic.dataset
        path = lasso_path(ds, n_penalties=10)
        selected = path.important_features(top=4)
        assert selected
        result = SLiMFast(learner="erm").fit_predict(ds, ds.split(0.3, 0).train_truth)
        assert result.source_accuracies is not None

    def test_copying_pipeline_on_copy_heavy_data(self):
        instance = generate(
            SyntheticConfig(
                n_sources=50,
                n_objects=120,
                density=0.15,
                avg_accuracy=0.62,
                copy_groups=4,
                copy_group_size=5,
                copy_fidelity=0.95,
                seed=6,
            )
        )
        ds = instance.dataset
        split = ds.split(0.15, seed=0)
        copying = CopyingSLiMFast(em_rounds=2, z_threshold=2.0).fit(ds, split.train_truth)
        with_copy = copying.predict().accuracy(ds, list(split.test_objects))
        plain = (
            SLiMFast(learner="erm", use_features=False)
            .fit_predict(ds, split.train_truth)
            .accuracy(ds, list(split.test_objects))
        )
        # copying features must not hurt, and usually help
        assert with_copy >= plain - 0.05


class TestRobustness:
    def test_single_source_dataset(self):
        ds = FusionDataset(
            [("solo", f"o{i}", "v") for i in range(5)],
            ground_truth={f"o{i}": "v" for i in range(5)},
        )
        result = SLiMFast(learner="erm").fit_predict(ds, {"o0": "v"})
        assert result.values["o1"] == "v"

    def test_object_with_single_claim(self):
        ds = FusionDataset(
            [("s1", "lonely", "x"), ("s1", "o", "a"), ("s2", "o", "b")],
            ground_truth={"lonely": "x", "o": "a"},
        )
        result = SLiMFast(learner="em").fit_predict(ds, {})
        assert result.values["lonely"] == "x"

    def test_all_sources_agree(self):
        ds = FusionDataset([(f"s{i}", "o", "same") for i in range(5)], ground_truth={"o": "same"})
        result = SLiMFast(learner="em").fit_predict(ds, {})
        assert result.values["o"] == "same"

    def test_conflicting_unanimous_pairs(self):
        """Two sources, total disagreement, no labels: must not crash and
        must produce a valid distribution."""
        ds = FusionDataset(
            [("s1", f"o{i}", "a") for i in range(4)]
            + [("s2", f"o{i}", "b") for i in range(4)]
        )
        result = SLiMFast(learner="em").fit_predict(ds, {})
        for dist in result.posteriors.values():
            assert sum(dist.values()) == pytest.approx(1.0)
