"""Property-based tests (hypothesis): every generated scenario encodes.

Scenario generators must only emit datasets that satisfy the invariants
:func:`repro.fusion.encode_dataset` compiles against — non-empty domains,
consistent CSR layouts, and (when ``ensure_truth_claimed`` is on) a claim
of the true value for every object.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import copier_clique_scenario, drift_scenario, open_world_scenario
from repro.fusion import encode_dataset


def _check_encoding_invariants(scn, ensure_truth_claimed=False):
    dataset = scn.to_dataset()
    encoding = encode_dataset(dataset)
    # no empty domains: every object carries at least one claimed value
    assert np.all(encoding.domain_sizes >= 1)
    assert encoding.pair_offsets[-1] == encoding.domain_sizes.sum()
    assert np.all(np.diff(encoding.pair_offsets) == encoding.domain_sizes)
    # every observation votes for a candidate row of its own object
    assert np.array_equal(
        encoding.pair_object_idx[encoding.obs_pair_idx], encoding.obs_object_idx
    )
    # value codes stay inside their object's domain
    assert np.all(encoding.obs_value_code < encoding.domain_sizes[encoding.obs_object_idx])
    # offsets cover the object-sorted observations exactly
    assert encoding.obs_offsets[0] == 0
    assert encoding.obs_offsets[-1] == dataset.n_observations
    if ensure_truth_claimed:
        for obj, value in scn.truth.items():
            assert value in dataset.domain(obj), (obj, value)


class TestDriftScenarioEncodes:
    @settings(max_examples=25, deadline=None)
    @given(
        n_sources=st.integers(min_value=2, max_value=12),
        objects_per_step=st.integers(min_value=1, max_value=8),
        n_steps=st.integers(min_value=1, max_value=8),
        density=st.floats(min_value=0.05, max_value=1.0),
        domain_size=st.integers(min_value=2, max_value=4),
        reveal_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_encodes(
        self, n_sources, objects_per_step, n_steps, density, domain_size, reveal_fraction, seed
    ):
        scn = drift_scenario(
            n_sources=n_sources,
            objects_per_step=objects_per_step,
            n_steps=n_steps,
            density=density,
            domain_size=domain_size,
            reveal_fraction=reveal_fraction,
            ensure_truth_claimed=True,
            seed=seed,
        )
        _check_encoding_invariants(scn, ensure_truth_claimed=True)


class TestCopierScenarioEncodes:
    @settings(max_examples=25, deadline=None)
    @given(
        n_cliques=st.integers(min_value=1, max_value=3),
        clique_size=st.integers(min_value=2, max_value=4),
        extra_honest=st.integers(min_value=0, max_value=6),
        copy_rate=st.floats(min_value=0.0, max_value=1.0),
        n_steps=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_encodes(self, n_cliques, clique_size, extra_honest, copy_rate, n_steps, seed):
        scn = copier_clique_scenario(
            n_sources=n_cliques * clique_size + extra_honest,
            n_cliques=n_cliques,
            clique_size=clique_size,
            copy_rate=copy_rate,
            objects_per_step=6,
            n_steps=n_steps,
            seed=seed,
        )
        _check_encoding_invariants(scn, ensure_truth_claimed=True)


class TestOpenWorldScenarioEncodes:
    @settings(max_examples=25, deadline=None)
    @given(
        n_sources=st.integers(min_value=2, max_value=10),
        initial_objects=st.integers(min_value=1, max_value=12),
        new_objects_per_step=st.integers(min_value=0, max_value=5),
        n_steps=st.integers(min_value=1, max_value=8),
        claim_rate=st.floats(min_value=0.05, max_value=0.6),
        growth_rate=st.floats(min_value=0.0, max_value=0.8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_encodes(
        self,
        n_sources,
        initial_objects,
        new_objects_per_step,
        n_steps,
        claim_rate,
        growth_rate,
        seed,
    ):
        scn = open_world_scenario(
            n_sources=n_sources,
            initial_objects=initial_objects,
            new_objects_per_step=new_objects_per_step,
            n_steps=n_steps,
            claim_rate=claim_rate,
            growth_rate=growth_rate,
            seed=seed,
        )
        _check_encoding_invariants(scn, ensure_truth_claimed=True)
