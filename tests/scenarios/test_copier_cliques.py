"""Copier-clique scenarios vs the copying detector in :mod:`repro.core.copying`.

The generator plants leader+copier cliques; the detector — written long
before the generator — must recover exactly those pairs. This is a
differential check in both directions: planted structure is found, and
honest sources are not implicated.
"""

import pytest

from repro.core import CopyingSLiMFast, find_candidate_pairs
from repro.data import copier_clique_scenario


@pytest.fixture(scope="module")
def scn():
    return copier_clique_scenario(
        n_sources=18,
        n_cliques=2,
        clique_size=4,
        copy_rate=0.92,
        leader_accuracy=0.5,
        honest_accuracy=0.78,
        objects_per_step=14,
        n_steps=10,
        seed=3,
    )


@pytest.fixture(scope="module")
def pairs(scn):
    return find_candidate_pairs(scn.to_dataset(), z_threshold=2.0)


def _intra_clique(scn):
    """All unordered source pairs inside any planted clique."""
    planted = set()
    for clique in scn.cliques:
        for i, a in enumerate(clique):
            for b in clique[i + 1 :]:
                planted.add(frozenset((a, b)))
    return planted


class TestDetectionParity:
    def test_every_copier_is_flagged(self, scn, pairs):
        """Each copier appears in at least one strong pair with a clique mate."""
        flagged = {frozenset((p.first, p.second)) for p in pairs}
        for clique in scn.cliques:
            leader, copiers = clique[0], clique[1:]
            for copier in copiers:
                mates = {leader, *(c for c in copiers if c != copier)}
                assert any(
                    frozenset((copier, mate)) in flagged for mate in mates
                ), f"{copier} not linked to clique of {leader}"

    def test_planted_pairs_separate_from_honest_agreement(self, scn):
        """Copier z-scores clearly exceed honest truth-driven agreement.

        Honest accurate sources agree through the truth, so some clear a
        fixed z threshold — the parity claim is separation: every planted
        pair out-scores the typical honest pair by a wide margin.
        """
        all_pairs = find_candidate_pairs(scn.to_dataset(), z_threshold=0.0, max_pairs=500)
        planted = _intra_clique(scn)
        planted_z = [p.z_score for p in all_pairs if frozenset((p.first, p.second)) in planted]
        honest_z = [p.z_score for p in all_pairs if frozenset((p.first, p.second)) not in planted]
        assert len(planted_z) == len(planted)
        mean_honest = sum(honest_z) / len(honest_z)
        assert min(planted_z) > mean_honest + 2.0
        assert sum(planted_z) / len(planted_z) > 2.0 * max(mean_honest, 1.0)

    def test_planted_pairs_score_higher(self, scn):
        """Ranking parity: planted pairs dominate the z-score ordering."""
        all_pairs = find_candidate_pairs(scn.to_dataset(), z_threshold=0.0, max_pairs=500)
        planted = _intra_clique(scn)
        scored = sorted(all_pairs, key=lambda p: p.z_score, reverse=True)
        top = scored[: len(planted)]
        hits = sum(frozenset((p.first, p.second)) in planted for p in top)
        assert hits >= int(0.8 * len(planted))


class TestCopyingModelParity:
    def test_pair_weights_concentrate_on_planted_pairs(self, scn):
        dataset = scn.to_dataset()
        model = CopyingSLiMFast(z_threshold=1.0).fit(dataset, scn.revealed_truth())
        planted = _intra_clique(scn)
        planted_w, other_w = [], []
        for pair, weight in zip(model.pairs_, model.pair_weights_):
            (planted_w if frozenset((pair.first, pair.second)) in planted else other_w).append(
                weight
            )
        assert planted_w, "no planted pair survived candidate selection"
        mean_planted = sum(planted_w) / len(planted_w)
        mean_other = sum(other_w) / len(other_w) if other_w else 0.0
        assert mean_planted > 5 * mean_other
        assert mean_planted > 0.01
