"""Differential pins for :class:`repro.extensions.DecayConfig`.

Three exact (bit-level, ``==``) equivalences anchor the decayed-trust
machinery to code that is already trusted:

* a flat ``DecayConfig()`` must leave the fuser identical to one built
  with no decay arguments at all;
* ``half_life=h`` must match the legacy ``decay=2**(-1/h)`` factor;
* under either decay mode, a vectorized fuser fed one observation at a
  time must reproduce the reference dict-loop engine exactly.
"""

import numpy as np
import pytest

from repro.data import drift_scenario
from repro.extensions import DecayConfig, StreamingFuser


def _scenario():
    return drift_scenario(n_sources=10, objects_per_step=8, n_steps=10, seed=5)


def _replay(fuser, scn, one_by_one=False):
    scn.replay(fuser, one_by_one=one_by_one)
    return fuser


def _assert_same_state(a: StreamingFuser, b: StreamingFuser) -> None:
    acc_a, acc_b = a.source_accuracies(), b.source_accuracies()
    assert set(acc_a) == set(acc_b)
    for source in acc_a:
        assert acc_a[source] == acc_b[source], source
    for obj in _scenario().eval_objects():
        post_a, post_b = a.posterior(obj), b.posterior(obj)
        assert set(post_a) == set(post_b)
        for value in post_a:
            assert post_a[value] == post_b[value], (obj, value)
        assert a.current_value(obj) == b.current_value(obj)


class TestDecayConfigValidation:
    def test_rejects_both_modes(self):
        with pytest.raises(ValueError, match="at most one of half_life and window"):
            DecayConfig(half_life=10.0, window=5.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="half_life"):
            DecayConfig(half_life=0.0)
        with pytest.raises(ValueError, match="window"):
            DecayConfig(window=-3.0)

    def test_rejects_double_decay_spelling(self):
        with pytest.raises(ValueError, match="not both"):
            StreamingFuser(decay=0.99, trust_decay=DecayConfig(half_life=10.0))

    def test_rejects_window_below_prior(self):
        with pytest.raises(ValueError, match="window must be at least prior_total"):
            StreamingFuser(trust_decay=DecayConfig(window=1.0))

    def test_factor(self):
        assert DecayConfig().factor == 1.0
        assert DecayConfig(window=8.0).factor == 1.0
        assert DecayConfig(half_life=1.0).factor == pytest.approx(0.5)
        assert DecayConfig().is_flat
        assert not DecayConfig(half_life=4.0).is_flat
        assert not DecayConfig(window=8.0).is_flat


class TestFlatEquivalence:
    """decay=1.0 / DecayConfig() must be bit-identical to no decay at all."""

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_flat_config_is_identity(self, backend):
        scn = _scenario()
        plain = _replay(StreamingFuser(backend=backend), scn)
        flat = _replay(StreamingFuser(backend=backend, trust_decay=DecayConfig()), _scenario())
        _assert_same_state(plain, flat)

    def test_legacy_decay_one_is_identity(self):
        plain = _replay(StreamingFuser(), _scenario())
        legacy = _replay(StreamingFuser(decay=1.0), _scenario())
        _assert_same_state(plain, legacy)


class TestHalfLifeEquivalence:
    def test_half_life_matches_legacy_factor(self):
        half_life = 25.0
        modern = _replay(StreamingFuser(trust_decay=DecayConfig(half_life=half_life)), _scenario())
        legacy = _replay(StreamingFuser(decay=2.0 ** (-1.0 / half_life)), _scenario())
        _assert_same_state(modern, legacy)


class TestBackendParity:
    """Size-1 vectorized batches must reproduce the reference engine."""

    @pytest.mark.parametrize(
        "trust_decay",
        [None, DecayConfig(half_life=30.0), DecayConfig(window=12.0)],
        ids=["flat", "half-life", "window"],
    )
    def test_one_by_one_replay_matches_reference(self, trust_decay):
        reference = _replay(
            StreamingFuser(backend="reference", trust_decay=trust_decay, self_training=True),
            _scenario(),
        )
        vectorized = _replay(
            StreamingFuser(backend="vectorized", trust_decay=trust_decay, self_training=True),
            _scenario(),
            one_by_one=True,
        )
        _assert_same_state(reference, vectorized)


class TestWindowSemantics:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_window_caps_effective_sample_size(self, backend):
        window = 10.0
        fuser = _replay(
            StreamingFuser(backend=backend, trust_decay=DecayConfig(window=window)),
            _scenario(),
        )
        if backend == "vectorized":
            totals = fuser._total[: len(fuser.source_accuracies())]
        else:
            totals = np.array([state.total for state in fuser._sources.values()])
        assert np.all(totals <= window + 1e-9)
        # the busy sources actually hit the cap
        assert np.any(totals > window - 1.0)

    def test_window_is_identity_until_saturation(self):
        """Before any source accumulates `window` counts, windowing is a no-op."""
        scn = drift_scenario(n_sources=12, objects_per_step=3, n_steps=2, seed=2)
        plain = _replay(StreamingFuser(self_training=False), scn)
        windowed = _replay(
            StreamingFuser(self_training=False, trust_decay=DecayConfig(window=500.0)),
            drift_scenario(n_sources=12, objects_per_step=3, n_steps=2, seed=2),
        )
        _assert_same_state(plain, windowed)
