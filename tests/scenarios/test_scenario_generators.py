"""Scenario generators: shapes, invariants, and seed determinism.

The cross-process determinism contract (same int seed => same scenario in
a fork or spawn worker) is pinned by regenerating a scenario in a fresh
subprocess and comparing content digests.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.data import (
    DriftSchedule,
    copier_clique_scenario,
    drift_scenario,
    open_world_scenario,
)
from repro.fusion import DatasetError

GENERATORS = {
    "drift": lambda seed: drift_scenario(
        n_sources=8, objects_per_step=6, n_steps=8, seed=seed
    ),
    "copier": lambda seed: copier_clique_scenario(
        n_sources=12, n_cliques=2, clique_size=3, objects_per_step=8, n_steps=6, seed=seed
    ),
    "open-world": lambda seed: open_world_scenario(
        n_sources=8, initial_objects=10, new_objects_per_step=3, n_steps=6, seed=seed
    ),
}


def scenario_digest(scn) -> str:
    """Content digest over the full stream, reveals, and latent state."""
    lines = [scn.name]
    for step in scn.steps:
        for obs in step.observations:
            lines.append(f"{step.index}|{obs.source}|{obs.obj}|{obs.value}")
        for obj in sorted(step.reveal):
            lines.append(f"reveal|{step.index}|{obj}|{step.reveal[obj]}")
    for obj in sorted(scn.truth):
        lines.append(f"truth|{obj}|{scn.truth[obj]}")
    lines.append(np.array2string(scn.true_accuracy, precision=17))
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestDriftSchedule:
    def test_shapes(self):
        step = DriftSchedule.step(0.9, 0.2, at=0.5)
        assert step.accuracy(0.0) == pytest.approx(0.9)
        assert step.accuracy(0.49) == pytest.approx(0.9)
        assert step.accuracy(0.5) == pytest.approx(0.2)
        ramp = DriftSchedule.ramp(0.2, 0.8)
        assert ramp.accuracy(0.5) == pytest.approx(0.5)
        sine = DriftSchedule.sine(0.6, amplitude=0.2, cycles=1.0)
        assert sine.accuracy(0.25) == pytest.approx(0.8)
        assert sine.accuracy(0.75) == pytest.approx(0.4)
        assert DriftSchedule.constant(0.7).accuracy(0.9) == pytest.approx(0.7)

    def test_clipping(self):
        wild = DriftSchedule.sine(0.9, amplitude=0.5)
        assert wild.accuracy(0.25) == pytest.approx(0.98)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown drift kind"):
            DriftSchedule(kind="teleport")
        with pytest.raises(ValueError, match="accuracy"):
            DriftSchedule(kind="step", start=1.2)
        with pytest.raises(ValueError, match="`at`"):
            DriftSchedule(kind="step", at=1.5)


class TestScenarioStructure:
    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_stream_shape(self, kind):
        scn = GENERATORS[kind](0)
        assert scn.n_steps == len(scn.steps)
        assert scn.n_observations == len(scn.observations())
        assert scn.true_accuracy.shape == (scn.n_steps, scn.n_sources)
        # every observed object has truth and a birth step
        for obs in scn.observations():
            assert obs.obj in scn.truth
            assert obs.obj in scn.object_step
        # reveals only name generated objects, after their birth step
        for step in scn.steps:
            for obj in step.reveal:
                assert scn.object_step[obj] <= step.index
                assert step.reveal[obj] == scn.truth[obj]

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_no_duplicate_claims(self, kind):
        """Each (source, object) pair claims at most once across the stream."""
        scn = GENERATORS[kind](1)
        seen = set()
        for obs in scn.observations():
            key = (obs.source, obs.obj)
            assert key not in seen
            seen.add(key)

    def test_eval_objects_windowing(self):
        scn = GENERATORS["drift"](2)
        revealed = scn.revealed_truth()
        all_eval = scn.eval_objects()
        assert all_eval and not (set(all_eval) & set(revealed))
        tail = scn.eval_objects(at_step=scn.n_steps - 1, window=2)
        assert set(tail) <= set(all_eval)
        for obj in tail:
            assert scn.object_step[obj] >= scn.n_steps - 2

    def test_to_dataset_roundtrip(self):
        scn = GENERATORS["drift"](3)
        dataset = scn.to_dataset()
        assert dataset.n_observations == scn.n_observations
        assert dict(dataset.ground_truth) == scn.truth
        # time-averaged true accuracies ride along for source-error metrics
        assert set(dataset.true_accuracies) == set(scn.source_ids)

    def test_copier_scenario_records_cliques(self):
        scn = GENERATORS["copier"](4)
        assert len(scn.cliques) == 2
        assert all(len(clique) == 3 for clique in scn.cliques)
        members = [s for clique in scn.cliques for s in clique]
        assert len(set(members)) == len(members)

    def test_open_world_domains_grow(self):
        """Later batches introduce values absent from every earlier batch."""
        scn = open_world_scenario(
            n_sources=10,
            initial_objects=12,
            new_objects_per_step=2,
            n_steps=10,
            growth_rate=0.5,
            claim_rate=0.3,
            seed=5,
        )
        seen_values = {}
        grew = False
        for step in scn.steps:
            for obs in step.observations:
                first = seen_values.setdefault(obs.obj, (step.index, {obs.value}))
                if step.index > first[0] and obs.value not in first[1]:
                    grew = True
                first[1].add(obs.value)
        assert grew
        # and the object universe itself grows
        births = sorted(set(scn.object_step.values()))
        assert len(births) > 1

    def test_validation_errors(self):
        with pytest.raises(DatasetError, match="DriftSchedule per source"):
            drift_scenario(n_sources=4, schedules=[DriftSchedule.constant(0.7)])
        with pytest.raises(DatasetError, match="n_steps"):
            drift_scenario(n_steps=0)
        with pytest.raises(DatasetError, match="clique_size"):
            copier_clique_scenario(clique_size=1)
        with pytest.raises(DatasetError, match="exceed n_sources"):
            copier_clique_scenario(n_sources=4, n_cliques=2, clique_size=3)
        with pytest.raises(DatasetError, match="initial_domain"):
            open_world_scenario(initial_domain=1)


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_same_seed_same_stream(self, kind):
        assert scenario_digest(GENERATORS[kind](7)) == scenario_digest(GENERATORS[kind](7))
        assert scenario_digest(GENERATORS[kind](7)) != scenario_digest(GENERATORS[kind](8))

    def test_generator_seed_matches_int_seed(self):
        """as_generator(seed) is the entry point, so these must agree."""
        by_int = drift_scenario(n_sources=6, objects_per_step=4, n_steps=5, seed=11)
        by_gen = drift_scenario(
            n_sources=6, objects_per_step=4, n_steps=5, seed=np.random.default_rng(11)
        )
        assert scenario_digest(by_int) == scenario_digest(by_gen)

    def test_live_generator_advances(self):
        rng = np.random.default_rng(0)
        first = drift_scenario(n_sources=6, objects_per_step=4, n_steps=5, seed=rng)
        second = drift_scenario(n_sources=6, objects_per_step=4, n_steps=5, seed=rng)
        assert scenario_digest(first) != scenario_digest(second)

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_deterministic_across_process_boundary(self, kind):
        """A fresh interpreter reproduces the parent's scenario bit for bit."""
        src = Path(repro.__file__).resolve().parents[1]
        here = Path(__file__).resolve().parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src), str(here)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        code = (
            "from test_scenario_generators import GENERATORS, scenario_digest; "
            f"print(scenario_digest(GENERATORS[{kind!r}](7)))"
        )
        child = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert child.stdout.strip() == scenario_digest(GENERATORS[kind](7))
