"""Drift tracking through :func:`repro.experiments.scenario`.

Pins the headline qualitative claim: on a step-drift workload, decayed
trust strictly beats flat Beta counts on trailing-window accuracy, and a
post-drift re-fit re-anchors the accuracy vector toward the new regime.
"""

import numpy as np
import pytest

from repro.data import DriftSchedule, default_drift_schedules, drift_scenario
from repro.experiments import scenario as run_scenario
from repro.extensions import DecayConfig


def _step_drift(seed=5):
    # half the sources collapse from 0.9 to 0.1 halfway through the stream
    return drift_scenario(
        n_sources=10,
        objects_per_step=8,
        n_steps=16,
        schedules=default_drift_schedules(10, drift_start=0.9, drift_end=0.1),
        seed=seed,
    )


@pytest.fixture(scope="module")
def report():
    return run_scenario(
        _step_drift(),
        methods=("stream-flat", "stream-decayed", "stream-windowed", "batch-em", "majority"),
        decay=DecayConfig(half_life=12.0),
        window_decay=DecayConfig(window=24.0),
        eval_window=4,
    )


class TestScenarioReport:
    def test_report_shape(self, report):
        assert set(report.series) == {
            "stream-flat",
            "stream-decayed",
            "stream-windowed",
            "batch-em",
            "majority",
        }
        for series in report.series.values():
            assert len(series.steps) == len(series.accuracy) == len(series.trust_error)
            assert series.steps[-1] == report.n_steps - 1
        assert report.n_observations == _step_drift().n_observations

    def test_table_and_best(self, report):
        table = report.table()
        assert "stream-decayed" in table and "final acc" in table
        best_method = report.best()
        assert report.series[best_method].final_accuracy == max(
            s.final_accuracy for s in report.series.values()
        )

    def test_decayed_strictly_beats_flat_on_step_drift(self, report):
        """The acceptance-criteria pin: decayed trust tracks the drift."""
        flat = report.series["stream-flat"]
        decayed = report.series["stream-decayed"]
        windowed = report.series["stream-windowed"]
        assert decayed.final_accuracy > flat.final_accuracy
        assert decayed.tail()["accuracy"] > flat.tail()["accuracy"]
        assert windowed.tail()["accuracy"] > flat.tail()["accuracy"]
        # and it does so by tracking true accuracies more closely post-drift
        assert decayed.trust_error[-1] < flat.trust_error[-1]

    def test_flat_stream_and_batch_em_mislead_by_stale_trust(self, report):
        """Flat counts average over the drift, so post-drift accuracy suffers."""
        flat = report.series["stream-flat"]
        decayed = report.series["stream-decayed"]
        batch = report.series["batch-em"]
        assert decayed.tail()["accuracy"] > batch.tail()["accuracy"]
        # flat streaming should be no better than the decayed variant anywhere
        # in the post-drift half
        post = [i for i, s in enumerate(flat.steps) if s >= report.n_steps // 2 + 2]
        flat_post = np.nanmean([flat.accuracy[i] for i in post])
        decayed_post = np.nanmean([decayed.accuracy[i] for i in post])
        assert decayed_post > flat_post


class TestRefitArm:
    def test_refit_arm_runs_and_reanchors(self):
        scn = _step_drift(seed=9)
        report = run_scenario(
            scn,
            methods=("stream-flat", "stream-refit"),
            refit_every=scn.n_observations // 3,
            refit_overrides={"max_iterations": 8},
            eval_window=4,
        )
        refit = report.series["stream-refit"]
        assert len(refit.accuracy) == len(report.series["stream-flat"].accuracy)
        assert np.isfinite(refit.final_accuracy)


class TestSinusoidalAndRamp:
    @pytest.mark.slow
    def test_decay_tracks_continuous_drift(self):
        """Same ordering on the non-step drift kinds (long replay)."""
        schedules = [DriftSchedule.ramp(0.95, 0.05) for _ in range(4)]
        schedules += [DriftSchedule.sine(0.5, amplitude=0.45, cycles=1.0) for _ in range(3)]
        schedules += [DriftSchedule.constant(0.65) for _ in range(5)]
        scn = drift_scenario(
            n_sources=12,
            objects_per_step=10,
            n_steps=30,
            schedules=schedules,
            name="continuous-drift",
            seed=17,
        )
        report = run_scenario(
            scn,
            methods=("stream-flat", "stream-decayed"),
            decay=DecayConfig(half_life=20.0),
            eval_window=5,
        )
        flat = report.series["stream-flat"]
        decayed = report.series["stream-decayed"]
        assert decayed.tail()["accuracy"] >= flat.tail()["accuracy"]
        assert decayed.trust_error[-1] < flat.trust_error[-1]
