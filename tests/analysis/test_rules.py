"""Good/bad fixture snippets for each rule family RA1-RA4.

Each rule must demonstrably fail on its bad fixture and stay silent on
the good one — this is the suite that keeps the analyzers honest.
"""

import pytest

from tools.repro_analysis import Project, run_rules
from tools.repro_analysis.versions import update_lock


def findings_for(root, rules):
    report = run_rules(Project(root), rules)
    return report.findings


def rule_lines(findings, rule):
    return [(f.path, f.line) for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# RA1 — determinism
# ----------------------------------------------------------------------
class TestRA1Determinism:
    def test_flags_adhoc_default_rng(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import numpy as np

                def draw(seed):
                    rng = np.random.default_rng(seed)
                    return rng.random()
                """
            }
        )
        findings = findings_for(root, ["RA1"])
        assert rule_lines(findings, "RA1") == [("src/repro/mod.py", 5)]
        assert "as_generator" in findings[0].message

    def test_flags_legacy_module_level_numpy(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import numpy as np

                def reset():
                    np.random.seed(0)
                    return np.random.rand(3)
                """
            }
        )
        assert len(rule_lines(findings_for(root, ["RA1"]), "RA1")) == 2

    def test_flags_stdlib_random_calls_and_imports(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import random
                from random import shuffle

                def pick(items):
                    shuffle(items)
                    return random.choice(items)
                """
            }
        )
        # import-from, shuffle() call, random.choice() call.
        assert len(rule_lines(findings_for(root, ["RA1"]), "RA1")) == 3

    def test_flags_numpy_random_importfrom(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                from numpy.random import default_rng
                """
            }
        )
        assert len(rule_lines(findings_for(root, ["RA1"]), "RA1")) == 1

    def test_good_fixture_is_clean(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import numpy as np
                from repro._rng import as_generator, spawn_generators

                def draw(seed):
                    rng = as_generator(seed)
                    children = spawn_generators(seed, 2)
                    assert isinstance(rng, np.random.Generator)
                    return rng.random(), children
                """
            }
        )
        assert findings_for(root, ["RA1"]) == []

    def test_allowlists_the_rng_module_itself(self, make_tree):
        root = make_tree(
            {
                "src/repro/_rng.py": """
                import numpy as np

                def as_generator(seed):
                    return np.random.default_rng(seed)
                """
            }
        )
        assert findings_for(root, ["RA1"]) == []

    def test_examples_are_in_scope(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": "X = 1\n",
                "examples/demo.py": """
                import numpy as np

                rng = np.random.default_rng()
                """,
            }
        )
        assert rule_lines(findings_for(root, ["RA1"]), "RA1") == [("examples/demo.py", 4)]


# ----------------------------------------------------------------------
# RA2 — lock discipline
# ----------------------------------------------------------------------
_GUARDED_HEADER = """
import threading

GUARDED_BY = {"_published": "_swap_lock", "_count": "_swap_lock"}


class Store:
    def __init__(self):
        self._swap_lock = threading.Lock()
        self._published = None
        self._count = 0
"""


class TestRA2LockDiscipline:
    def test_flags_unlocked_access(self, make_tree):
        root = make_tree(
            {
                "src/repro/serve_mod.py": _GUARDED_HEADER
                + """
    def peek(self):
        return self._published
                """
            }
        )
        lines = rule_lines(findings_for(root, ["RA2"]), "RA2")
        assert len(lines) == 1
        assert lines[0][0] == "src/repro/serve_mod.py"

    def test_with_lock_is_clean(self, make_tree):
        root = make_tree(
            {
                "src/repro/serve_mod.py": _GUARDED_HEADER
                + """
    def peek(self):
        with self._swap_lock:
            return self._published, self._count
                """
            }
        )
        assert findings_for(root, ["RA2"]) == []

    def test_access_after_with_block_is_flagged(self, make_tree):
        root = make_tree(
            {
                "src/repro/serve_mod.py": _GUARDED_HEADER
                + """
    def swap(self, value):
        with self._swap_lock:
            self._published = value
        self._count += 1
                """
            }
        )
        assert len(rule_lines(findings_for(root, ["RA2"]), "RA2")) == 1

    def test_holds_annotation_discharges(self, make_tree):
        root = make_tree(
            {
                "src/repro/serve_mod.py": _GUARDED_HEADER
                + """
    def _publish_locked(self, value):  # repro-analysis: holds[_swap_lock]
        self._published = value
        self._count += 1
                """
            }
        )
        assert findings_for(root, ["RA2"]) == []

    def test_init_is_exempt(self, make_tree):
        # _GUARDED_HEADER's __init__ assigns both attributes unlocked.
        root = make_tree({"src/repro/serve_mod.py": _GUARDED_HEADER})
        assert findings_for(root, ["RA2"]) == []

    def test_nested_function_does_not_inherit_lock(self, make_tree):
        root = make_tree(
            {
                "src/repro/serve_mod.py": _GUARDED_HEADER
                + """
    def deferred(self):
        with self._swap_lock:
            def later():
                return self._published
            return later
                """
            }
        )
        assert len(rule_lines(findings_for(root, ["RA2"]), "RA2")) == 1

    def test_non_literal_table_is_a_meta_finding(self, make_tree):
        root = make_tree(
            {
                "src/repro/serve_mod.py": """
                LOCK = "_lock"
                GUARDED_BY = {"_published": LOCK}
                """
            }
        )
        findings = findings_for(root, ["RA2"])
        assert [f.rule for f in findings] == ["RA0"]

    def test_modules_without_table_are_out_of_scope(self, make_tree):
        root = make_tree(
            {
                "src/repro/plain.py": """
                class Store:
                    def peek(self):
                        return self._published
                """
            }
        )
        assert findings_for(root, ["RA2"]) == []


# ----------------------------------------------------------------------
# RA3 — backend parity
# ----------------------------------------------------------------------
_PARITY_TEST = """
import pytest

@pytest.mark.parametrize("backend", ["vectorized", "reference"])
def test_mymod_backends(backend):
    assert backend in ("vectorized", "reference")
"""


class TestRA3BackendParity:
    def test_flags_half_dispatch(self, make_tree):
        root = make_tree(
            {
                "src/repro/mymod.py": """
                def run(data, backend="vectorized"):
                    out = data
                    if backend == "vectorized":
                        out = data * 2
                    return out
                """,
                "tests/test_mymod_parity.py": _PARITY_TEST,
            }
        )
        lines = rule_lines(findings_for(root, ["RA3"]), "RA3")
        assert lines == [("src/repro/mymod.py", 4)]

    def test_else_branch_is_clean(self, make_tree):
        root = make_tree(
            {
                "src/repro/mymod.py": """
                def run(data, backend="vectorized"):
                    if backend == "vectorized":
                        out = data * 2
                    else:
                        out = sum([d * 2 for d in data])
                    return out
                """,
                "tests/test_mymod_parity.py": _PARITY_TEST,
            }
        )
        assert findings_for(root, ["RA3"]) == []

    def test_both_literals_handled_is_clean(self, make_tree):
        root = make_tree(
            {
                "src/repro/mymod.py": """
                def run(data, backend):
                    out = data
                    if backend == "vectorized":
                        out = data * 2
                    elif backend == "reference":
                        out = sum(data)
                    return out
                """,
                "tests/test_mymod_parity.py": _PARITY_TEST,
            }
        )
        assert findings_for(root, ["RA3"]) == []

    def test_terminating_branches_are_clean(self, make_tree):
        root = make_tree(
            {
                "src/repro/mymod.py": """
                def run(data, backend):
                    if backend == "reference":
                        return sum(data)
                    return data * 2
                """,
                "tests/test_mymod_parity.py": _PARITY_TEST,
            }
        )
        assert findings_for(root, ["RA3"]) == []

    def test_validation_guard_is_exempt(self, make_tree):
        # A raise-only guard is not a dispatch: no parity test required.
        root = make_tree(
            {
                "src/repro/mymod.py": """
                def check(backend):
                    if backend not in ("vectorized", "reference", "auto"):
                        raise ValueError(backend)
                    return backend
                """
            }
        )
        assert findings_for(root, ["RA3"]) == []

    def test_boolean_assignment_requires_parity_test(self, make_tree):
        root = make_tree(
            {
                "src/repro/mymod.py": """
                def run(data, backend):
                    vectorized = backend == "vectorized"
                    return data * 2 if vectorized else sum(data)
                """
            }
        )
        findings = findings_for(root, ["RA3"])
        assert len(findings) == 1
        assert "parity test" in findings[0].message

    def test_parity_test_must_mention_module_and_both_literals(self, make_tree):
        files = {
            "src/repro/mymod.py": """
            def run(data, backend):
                if backend == "reference":
                    return sum(data)
                return data * 2
            """,
            # Mentions the module but only one backend literal.
            "tests/test_mymod.py": """
            def test_mymod_fast():
                assert "vectorized"
            """,
        }
        root = make_tree(files)
        findings = findings_for(root, ["RA3"])
        assert len(findings) == 1
        assert "parity test" in findings[0].message


# ----------------------------------------------------------------------
# RA4 — cache-version honesty
# ----------------------------------------------------------------------
_FEATURIZE_TREE = {
    "src/repro/featurize/groups.py": """
    class FeatureGroup:
        version = 1

    class VolumeGroup(FeatureGroup):
        version = 1

        def compute(self, stats):
            return stats.volume()
    """,
    "src/repro/featurize/stats.py": """
    def volume(counts):
        return counts.sum(axis=1)
    """,
    "src/repro/featurize/pipeline.py": """
    FEATURIZER_VERSION = 1
    """,
}


class TestRA4CacheVersionHonesty:
    def test_missing_lock_is_flagged(self, make_tree):
        root = make_tree(dict(_FEATURIZE_TREE))
        findings = findings_for(root, ["RA4"])
        assert len(findings) == 1
        assert "--update-lock" in findings[0].message

    def test_update_lock_round_trip(self, make_tree):
        root = make_tree(dict(_FEATURIZE_TREE))
        entities, problems = update_lock(root)
        assert problems == []
        assert set(entities) == {
            "groups.FeatureGroup",
            "groups.VolumeGroup",
            "featurize.stats",
        }
        assert findings_for(root, ["RA4"]) == []

    def test_source_change_without_bump_fails(self, make_tree):
        root = make_tree(dict(_FEATURIZE_TREE))
        update_lock(root)
        groups = root / "src/repro/featurize/groups.py"
        groups.write_text(groups.read_text().replace("stats.volume()", "stats.volume() * 2"))
        findings = findings_for(root, ["RA4"])
        assert len(findings) == 1
        assert "bump the version" in findings[0].message
        assert "groups.VolumeGroup" in findings[0].message

    def test_bumped_version_asks_for_lock_refresh(self, make_tree):
        root = make_tree(dict(_FEATURIZE_TREE))
        update_lock(root)
        groups = root / "src/repro/featurize/groups.py"
        source = groups.read_text().replace("stats.volume()", "stats.volume() * 2")
        source = source.replace("    version = 1\n\n    def compute", "    version = 2\n\n    def compute")
        groups.write_text(source)
        findings = findings_for(root, ["RA4"])
        assert len(findings) == 1
        assert "refresh" in findings[0].message
        # And --update-lock clears it.
        update_lock(root)
        assert findings_for(root, ["RA4"]) == []

    def test_stats_change_requires_featurizer_version_bump(self, make_tree):
        root = make_tree(dict(_FEATURIZE_TREE))
        update_lock(root)
        stats = root / "src/repro/featurize/stats.py"
        stats.write_text(stats.read_text().replace("axis=1", "axis=-1"))
        findings = findings_for(root, ["RA4"])
        assert len(findings) == 1
        assert "featurize.stats" in findings[0].message
        pipeline = root / "src/repro/featurize/pipeline.py"
        pipeline.write_text("FEATURIZER_VERSION = 2\n")
        (refresh,) = findings_for(root, ["RA4"])
        assert "refresh" in refresh.message

    def test_whitespace_only_edits_do_not_trip(self, make_tree):
        root = make_tree(dict(_FEATURIZE_TREE))
        update_lock(root)
        stats = root / "src/repro/featurize/stats.py"
        stats.write_text(stats.read_text().replace("\n", "\n\n", 1) + "\n\n")
        assert findings_for(root, ["RA4"]) == []

    def test_new_and_removed_entities_point_at_update_lock(self, make_tree):
        root = make_tree(dict(_FEATURIZE_TREE))
        update_lock(root)
        groups = root / "src/repro/featurize/groups.py"
        groups.write_text(
            groups.read_text()
            + "\n\nclass BreadthGroup(FeatureGroup):\n    version = 1\n"
        )
        findings = findings_for(root, ["RA4"])
        assert len(findings) == 1
        assert "new entity" in findings[0].message
        groups.write_text(
            "class FeatureGroup:\n    version = 1\n"
        )
        messages = [f.message for f in findings_for(root, ["RA4"])]
        assert any("no longer exists" in m for m in messages)

    def test_missing_version_attribute_is_flagged(self, make_tree):
        tree = dict(_FEATURIZE_TREE)
        tree["src/repro/featurize/groups.py"] = """
        class FeatureGroup:
            version = 1

        class VolumeGroup(FeatureGroup):
            def compute(self, stats):
                return stats.volume()
        """
        root = make_tree(tree)
        update_lock(root)
        findings = findings_for(root, ["RA4"])
        assert any("version = N" in f.message for f in findings)


# ----------------------------------------------------------------------
# Cross-rule: selection
# ----------------------------------------------------------------------
def test_unknown_rule_id_raises(make_tree):
    root = make_tree({"src/repro/mod.py": "X = 1\n"})
    with pytest.raises(ValueError, match="unknown rule"):
        run_rules(Project(root), ["RA9"])
