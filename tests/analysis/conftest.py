"""Fixtures for the static-analysis suite: throwaway mini repo trees."""

import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relpath: source}`` under a temp root with the repo layout.

    Sources are dedented so fixtures can be written inline as indented
    triple-quoted strings.  Returns the tree root (a ``Path``).
    """

    def build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        (tmp_path / "tools" / "repro_analysis").mkdir(parents=True, exist_ok=True)
        return tmp_path

    return build
