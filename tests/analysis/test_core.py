"""Suppression machinery, report rendering, CLI, and live-tree self-checks."""

import json
import subprocess
import sys

from tools.repro_analysis import Project, run_rules

from .conftest import REPO_ROOT

_VIOLATION = """
import numpy as np

def draw():
    return np.random.default_rng().random()
"""


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_suppression(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().random()  # repro-analysis: ignore[RA1]
                """
            }
        )
        report = run_rules(Project(root), ["RA1"])
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.unused_suppressions == []

    def test_line_above_suppression(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import numpy as np

                def draw():
                    # repro-analysis: ignore[RA1]
                    return np.random.default_rng().random()
                """
            }
        )
        report = run_rules(Project(root), ["RA1"])
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_def_header_suppression_covers_body(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import numpy as np

                def draw():  # repro-analysis: ignore[RA1]
                    first = np.random.default_rng().random()
                    second = np.random.default_rng().random()
                    return first + second
                """
            }
        )
        report = run_rules(Project(root), ["RA1"])
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_suppression_is_rule_specific(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().random()  # repro-analysis: ignore[RA2]
                """
            }
        )
        report = run_rules(Project(root), ["RA1"])
        assert len(report.findings) == 1

    def test_unused_suppression_fails_only_strict(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                X = 1  # repro-analysis: ignore[RA1]
                """
            }
        )
        report = run_rules(Project(root), ["RA1"])
        assert report.findings == []
        assert len(report.unused_suppressions) == 1
        assert report.unused_suppressions[0].rule == "RA0"
        assert not report.failed(strict=False)
        assert report.failed(strict=True)

    def test_suppression_for_unselected_rule_is_not_unused(self, make_tree):
        root = make_tree(
            {
                "src/repro/mod.py": """
                X = 1  # repro-analysis: ignore[RA2]
                """
            }
        )
        report = run_rules(Project(root), ["RA1"])
        assert report.unused_suppressions == []

    def test_syntax_error_is_a_meta_finding(self, make_tree):
        root = make_tree({"src/repro/mod.py": "def broken(:\n"})
        report = run_rules(Project(root), ["RA1"])
        assert [f.rule for f in report.findings] == ["RA0"]
        assert report.failed()


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------
class TestReport:
    def test_text_and_json_shapes(self, make_tree):
        root = make_tree({"src/repro/mod.py": _VIOLATION})
        report = run_rules(Project(root), ["RA1"])
        text = report.to_text()
        assert "src/repro/mod.py:5: RA1:" in text
        assert "1 finding(s)" in text
        payload = report.to_json()
        assert payload["rules"] == ["RA1"]
        assert payload["findings"][0]["rule"] == "RA1"
        assert json.loads(json.dumps(payload)) == payload

    def test_findings_sorted_by_location(self, make_tree):
        root = make_tree(
            {
                "src/repro/b.py": _VIOLATION,
                "src/repro/a.py": _VIOLATION,
            }
        )
        report = run_rules(Project(root), ["RA1"])
        assert [f.path for f in report.findings] == ["src/repro/a.py", "src/repro/b.py"]


# ----------------------------------------------------------------------
# Live tree: the repo must satisfy its own analyzers
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_repo_is_clean_including_strict(self):
        report = run_rules(Project(REPO_ROOT))
        assert report.rules == ["RA1", "RA2", "RA3", "RA4"]
        assert report.findings == [], "\n" + report.to_text()
        assert report.unused_suppressions == [], "\n" + report.to_text(strict=True)

    def test_every_live_suppression_carries_a_rationale(self):
        # Suppressions in the shipped tree must explain themselves: a
        # non-empty comment line above, or prose after the annotation.
        project = Project(REPO_ROOT)
        for source in project.lintable_files:
            for line in source.ignores:
                above = source.lines[line - 2].strip() if line >= 2 else ""
                assert above.startswith("#") and len(above) > 1, (
                    f"{source.rel}:{line}: suppression without a rationale "
                    f"comment above it"
                )

    def test_versions_lock_matches_live_tree(self):
        from tools.repro_analysis.versions import compute_entities, read_lock

        entities, problems = compute_entities(REPO_ROOT)
        assert problems == []
        locked = read_lock(REPO_ROOT)
        assert locked == entities


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "tools.repro_analysis", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
    )


class TestCLI:
    def test_json_run_on_live_tree_exits_zero(self):
        proc = _cli("--format=json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["rules"] == ["RA1", "RA2", "RA3", "RA4"]

    def test_findings_exit_one(self, make_tree):
        root = make_tree({"src/repro/mod.py": _VIOLATION})
        proc = _cli("--root", str(root))
        assert proc.returncode == 1
        assert "RA1" in proc.stdout

    def test_rules_subset_and_list(self):
        proc = _cli("--rules", "RA1", "--format=json")
        assert proc.returncode == 0
        assert json.loads(proc.stdout)["rules"] == ["RA1"]
        listing = _cli("--list-rules")
        assert listing.returncode == 0
        assert all(rid in listing.stdout for rid in ("RA1", "RA2", "RA3", "RA4"))

    def test_bad_root_exits_two(self, tmp_path):
        proc = _cli("--root", str(tmp_path))
        assert proc.returncode == 2
        assert "src/repro" in proc.stderr

    def test_update_lock_writes_lock(self, make_tree):
        root = make_tree(
            {
                "src/repro/featurize/groups.py": "class FeatureGroup:\n    version = 1\n",
                "src/repro/featurize/stats.py": "def volume(c):\n    return c\n",
                "src/repro/featurize/pipeline.py": "FEATURIZER_VERSION = 1\n",
            }
        )
        proc = _cli("--root", str(root), "--update-lock")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        lock = json.loads((root / "tools/repro_analysis/versions.lock").read_text())
        assert "groups.FeatureGroup" in lock["entities"]
