"""Failure-injection and pathological-input robustness tests."""

import numpy as np
import pytest

from repro import Accu, Counts, FusionDataset, MajorityVote, SLiMFast
from repro.core import estimate_average_accuracy


class TestPathologicalDatasets:
    def test_adversarial_majority(self):
        """Most sources systematically wrong: supervised SLiMFast must
        recover the truth by learning negative trust."""
        observations = []
        truth = {}
        for i in range(30):
            truth[f"o{i}"] = "right"
            observations.append(("honest", f"o{i}", "right"))
            for j in range(3):
                observations.append((f"liar{j}", f"o{i}", "wrong"))
        ds = FusionDataset(observations, ground_truth=truth)
        split = ds.split(0.5, seed=0)
        result = SLiMFast(learner="erm", use_features=False).fit_predict(ds, split.train_truth)
        assert result.accuracy(ds, list(split.test_objects)) > 0.9
        # ridge shrinkage (~4 pseudo-observations) keeps the estimates off
        # the extremes, but the ordering must be stark
        assert result.source_accuracies["honest"] > 0.7
        assert result.source_accuracies["liar0"] < 0.3

    def test_huge_domain_object(self):
        """An object where every source claims a distinct value."""
        observations = [(f"s{i}", "chaos", f"v{i}") for i in range(25)]
        observations += [("s0", "anchor", "x"), ("s1", "anchor", "x")]
        ds = FusionDataset(observations, ground_truth={"chaos": "v0", "anchor": "x"})
        result = SLiMFast(learner="em").fit_predict(ds, {})
        assert result.values["chaos"] in {f"v{i}" for i in range(25)}
        dist = result.posteriors["chaos"]
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_unicode_and_mixed_type_identifiers(self):
        observations = [
            ("πηγή-1", ("gene", 42), "ναι"),
            ("πηγή-2", ("gene", 42), "όχι"),
            (7, "obj-int-source", 3.14),
        ]
        ds = FusionDataset(observations, ground_truth={("gene", 42): "ναι", "obj-int-source": 3.14})
        result = SLiMFast(learner="erm").fit_predict(ds, ds.ground_truth)
        assert result.values[("gene", 42)] == "ναι"

    def test_degenerate_single_observation_dataset(self):
        ds = FusionDataset([("s", "o", "v")], ground_truth={"o": "v"})
        for method in (MajorityVote(), Counts(), Accu()):
            result = method.fit_predict(ds, {})
            assert result.values["o"] == "v"

    def test_all_unanimous_dataset_em(self):
        observations = [(f"s{i}", f"o{j}", "same") for i in range(4) for j in range(10)]
        ds = FusionDataset(observations, ground_truth={f"o{j}": "same" for j in range(10)})
        result = SLiMFast(learner="em").fit_predict(ds, {})
        assert all(v == "same" for v in result.values.values())

    def test_extremely_skewed_source_sizes(self):
        """One source with hundreds of claims next to singletons."""
        observations = [("whale", f"o{i}", "t") for i in range(200)]
        observations += [(f"minnow{i}", f"o{i}", "f") for i in range(30)]
        ds = FusionDataset(observations, ground_truth={f"o{i}": "t" for i in range(200)})
        split = ds.split(0.1, seed=0)
        result = SLiMFast(learner="erm", use_features=False).fit_predict(ds, split.train_truth)
        assert result.accuracy(ds, list(split.test_objects)) > 0.85

    def test_agreement_estimation_on_disjoint_sources(self):
        """Sources that never overlap: estimator falls back gracefully."""
        observations = [(f"s{i}", f"o{i}", "v") for i in range(20)]
        ds = FusionDataset(observations)
        estimate = estimate_average_accuracy(ds, fallback=0.7)
        assert estimate == 0.7

    def test_feature_only_sources_without_observations_ignored(self):
        """Features for sources that never observe anything are harmless."""
        ds = FusionDataset(
            [("s1", "o", "a"), ("s2", "o", "b")],
            ground_truth={"o": "a"},
            source_features={"s1": {"x": 1}, "ghost": {"x": 99}},
        )
        result = SLiMFast(learner="erm").fit_predict(ds, ds.ground_truth)
        assert "ghost" not in result.source_accuracies

    def test_truth_value_never_claimed(self):
        """Ground truth outside every claimed domain must not crash ERM."""
        ds = FusionDataset(
            [("s1", "o1", "a"), ("s2", "o1", "b"), ("s1", "o2", "x")],
            ground_truth={"o1": "never-claimed", "o2": "x"},
        )
        result = SLiMFast(learner="erm").fit_predict(ds, ds.ground_truth)
        # the clamped training label is reported verbatim
        assert result.values["o1"] == "never-claimed"

    def test_zero_training_fraction_auto(self):
        ds = FusionDataset(
            [("s1", "o1", "a"), ("s2", "o1", "b"), ("s1", "o2", "x"), ("s2", "o2", "x")],
            ground_truth={"o1": "a", "o2": "x"},
        )
        fuser = SLiMFast(learner="auto")
        result = fuser.fit_predict(ds, {})
        assert fuser.chosen_learner_ == "em"
        assert set(result.values) == {"o1", "o2"}


class TestNumericalStability:
    def test_extreme_weights_finite_posteriors(self):
        from repro.core.model import AccuracyModel
        from repro.core.inference import posteriors

        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b")])
        model = AccuracyModel(
            w_sources=np.array([500.0, -500.0]),
            w_features=np.zeros(0),
            design=np.zeros((2, 0)),
            source_ids=ds.sources.items,
        )
        dist = posteriors(ds, model)["o"]
        assert np.isfinite(list(dist.values())).all()
        assert dist["a"] > 0.999

    def test_many_values_softmax_stable(self):
        observations = [(f"s{i}", "o", f"v{i % 40}") for i in range(200)]
        ds = FusionDataset([(s, o, v) for (s, o, v) in observations if True][:40])
        result = MajorityVote().fit_predict(ds)
        assert sum(result.posteriors["o"].values()) == pytest.approx(1.0)
