"""Tests for the synthetic instance generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticConfig, generate
from repro.fusion import DatasetError


class TestConfigValidation:
    def test_bad_density(self):
        with pytest.raises(DatasetError):
            generate(SyntheticConfig(density=0.0))

    def test_bad_accuracy(self):
        with pytest.raises(DatasetError):
            generate(SyntheticConfig(avg_accuracy=1.0))

    def test_bad_domain_range(self):
        with pytest.raises(DatasetError):
            generate(SyntheticConfig(domain_size_range=(1, 2)))
        with pytest.raises(DatasetError):
            generate(SyntheticConfig(domain_size_range=(3, 2)))

    def test_informative_exceeds_features(self):
        with pytest.raises(DatasetError):
            generate(SyntheticConfig(n_features=2, n_informative=3))

    def test_overrides_kwargs(self):
        instance = generate(n_sources=10, n_objects=20, density=0.3, seed=1)
        assert instance.dataset.n_objects == 20


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = generate(n_sources=30, n_objects=40, density=0.2, seed=5)
        b = generate(n_sources=30, n_objects=40, density=0.2, seed=5)
        assert a.dataset.observations == b.dataset.observations
        assert np.allclose(a.true_accuracies, b.true_accuracies)

    def test_different_seed_differs(self):
        a = generate(n_sources=30, n_objects=40, density=0.2, seed=5)
        b = generate(n_sources=30, n_objects=40, density=0.2, seed=6)
        assert a.dataset.observations != b.dataset.observations


class TestInstanceProperties:
    def test_every_object_observed(self):
        instance = generate(n_sources=20, n_objects=50, density=0.02, seed=2)
        ds = instance.dataset
        assert ds.n_objects == 50
        for o_idx in range(ds.n_objects):
            assert ds.object_observation_rows(o_idx).shape[0] >= 1

    def test_truth_always_claimed(self):
        instance = generate(n_sources=20, n_objects=60, density=0.08, avg_accuracy=0.55, seed=3)
        ds = instance.dataset
        for obj, truth in ds.ground_truth.items():
            assert truth in ds.domain(obj)

    def test_mean_accuracy_near_target(self):
        instance = generate(n_sources=200, n_objects=50, density=0.1, avg_accuracy=0.65, seed=4)
        assert float(np.mean(instance.true_accuracies)) == pytest.approx(0.65, abs=0.02)

    def test_empirical_accuracy_tracks_configured(self):
        instance = generate(
            n_sources=40,
            n_objects=400,
            density=0.2,
            avg_accuracy=0.7,
            accuracy_spread=0.05,
            seed=5,
        )
        ds = instance.dataset
        empirical = ds.empirical_accuracies()
        for i, source in enumerate(ds.sources):
            assert empirical[source] == pytest.approx(instance.true_accuracies[i], abs=0.15)

    def test_features_predict_accuracy(self):
        instance = generate(
            n_sources=300,
            n_objects=30,
            density=0.1,
            n_features=6,
            n_informative=4,
            feature_strength=2.0,
            accuracy_spread=0.2,
            seed=6,
        )
        score = instance.feature_matrix @ instance.feature_weights
        corr = np.corrcoef(score, instance.true_accuracies)[0, 1]
        assert corr > 0.6

    def test_domain_sizes_respected(self):
        instance = generate(
            n_sources=30,
            n_objects=60,
            density=0.3,
            domain_size_range=(3, 5),
            avg_accuracy=0.55,
            seed=7,
        )
        ds = instance.dataset
        for o_idx in range(ds.n_objects):
            # claimed domain cannot exceed the candidate pool (truth + wrongs)
            assert len(ds.domain_by_index(o_idx)) <= 5

    def test_copy_groups_recorded(self):
        instance = generate(
            n_sources=40,
            n_objects=60,
            density=0.2,
            copy_groups=3,
            copy_group_size=4,
            seed=8,
        )
        assert len(instance.copy_groups) == 3
        for group in instance.copy_groups:
            assert len(group) == 4

    def test_copiers_agree_more_than_strangers(self):
        instance = generate(
            n_sources=40,
            n_objects=200,
            density=0.25,
            copy_groups=3,
            copy_group_size=4,
            copy_fidelity=0.95,
            avg_accuracy=0.6,
            seed=9,
        )
        ds = instance.dataset
        from repro.core import agreement_matrix

        matrix = agreement_matrix(ds)
        copier_scores = []
        for group in instance.copy_groups:
            leader = ds.sources.index(group[0])
            for member in group[1:]:
                score = matrix.scores[leader, ds.sources.index(member)]
                if not np.isnan(score):
                    copier_scores.append(score)
        mask = matrix.observed_pairs()
        overall = float(np.nanmean(matrix.scores[mask]))
        assert float(np.mean(copier_scores)) > overall + 0.2

    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=0.55, max_value=0.9),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_property_valid_dataset_for_any_accuracy_seed(self, accuracy, seed):
        instance = generate(
            n_sources=15, n_objects=25, density=0.2, avg_accuracy=accuracy, seed=seed
        )
        ds = instance.dataset
        assert ds.n_observations >= 25  # every object covered
        assert set(ds.ground_truth) == set(ds.objects.items)
