"""Tests for CSV dataset persistence."""

import pytest

from repro.data import load_dataset, save_dataset
from repro.fusion import DatasetError, FusionDataset


class TestRoundTrip:
    def test_observations_preserved(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path)
        loaded = load_dataset(tmp_path)
        assert [
            (o.source, o.obj, o.value) for o in loaded.observations
        ] == [(o.source, o.obj, o.value) for o in tiny_dataset.observations]

    def test_ground_truth_preserved(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path)
        loaded = load_dataset(tmp_path)
        assert loaded.ground_truth == tiny_dataset.ground_truth

    def test_features_parsed_back(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path)
        loaded = load_dataset(tmp_path)
        assert loaded.source_features["a1"]["citations"] == 34
        assert loaded.source_features["a1"]["year"] == 2009

    def test_accuracies_preserved(self, tmp_path):
        ds = FusionDataset([("s", "o", "v")], true_accuracies={"s": 0.875})
        save_dataset(ds, tmp_path)
        loaded = load_dataset(tmp_path)
        assert loaded.true_accuracies["s"] == pytest.approx(0.875)

    def test_bool_and_float_features(self, tmp_path):
        ds = FusionDataset(
            [("s", "o", "v")],
            source_features={"s": {"flag": True, "rate": 0.25, "label": "xyz"}},
        )
        save_dataset(ds, tmp_path)
        loaded = load_dataset(tmp_path)
        feats = loaded.source_features["s"]
        assert feats["flag"] is True
        assert feats["rate"] == 0.25
        assert feats["label"] == "xyz"

    def test_optional_files_absent(self, tmp_path):
        ds = FusionDataset([("s", "o", "v")])
        save_dataset(ds, tmp_path)
        loaded = load_dataset(tmp_path)
        assert loaded.ground_truth == {}
        assert loaded.source_features == {}

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="missing"):
            load_dataset(tmp_path / "nonexistent")

    def test_name_assigned(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path)
        assert load_dataset(tmp_path, name="renamed").name == "renamed"

    def test_simulator_round_trip(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path)
        loaded = load_dataset(tmp_path)
        assert loaded.n_observations == small_dataset.n_observations
        assert loaded.n_sources == small_dataset.n_sources
        assert set(loaded.ground_truth.values()) == set(small_dataset.ground_truth.values())
