"""Tests for the four paper-dataset simulators (Table 1 fidelity)."""

import numpy as np
import pytest

from repro.data import (
    as_generator,
    generate_crowd,
    generate_demos,
    generate_genomics,
    generate_stocks,
    spawn_generators,
)


@pytest.fixture(scope="module")
def stocks():
    return generate_stocks(seed=0)


@pytest.fixture(scope="module")
def demos():
    return generate_demos(seed=0)


@pytest.fixture(scope="module")
def crowd():
    return generate_crowd(seed=0)


@pytest.fixture(scope="module")
def genomics():
    return generate_genomics(seed=0)


class TestStocks:
    def test_table1_shape(self, stocks):
        stats = stocks.stats()
        assert stats.n_sources == 34
        assert stats.n_objects == 907
        assert stats.n_domain_features == 7
        assert 25 < stats.avg_observations_per_object < 36

    def test_low_average_accuracy(self, stocks):
        """Table 1 reports avg accuracy < 0.5 for Stocks."""
        assert stocks.stats().avg_source_accuracy < 0.5

    def test_small_claimed_domains(self, stocks):
        sizes = [len(stocks.domain_by_index(i)) for i in range(stocks.n_objects)]
        assert max(sizes) <= 3  # truth + at most two alternatives
        assert np.mean(sizes) > 1.5  # real conflicts exist

    def test_pagerank_proxy_uninformative(self, stocks):
        """TotalSitesLinkingIn must not correlate with accuracy (Figure 6)."""
        levels = [int(stocks.source_features[s]["TotalSitesLinkingIn"][1:]) for s in stocks.sources]
        accs = [stocks.true_accuracies[s] for s in stocks.sources]
        assert abs(np.corrcoef(levels, accs)[0, 1]) < 0.4

    def test_bounce_rate_informative(self, stocks):
        levels = [int(stocks.source_features[s]["BounceRate"][1:]) for s in stocks.sources]
        accs = [stocks.true_accuracies[s] for s in stocks.sources]
        assert np.corrcoef(levels, accs)[0, 1] < -0.3  # high bounce = bad

    def test_deterministic(self):
        a = generate_stocks(n_objects=50, seed=3)
        b = generate_stocks(n_objects=50, seed=3)
        assert a.observations == b.observations


class TestDemos:
    def test_table1_shape(self, demos):
        stats = demos.stats()
        assert stats.n_sources == 522
        assert stats.n_objects == 3105
        assert 20000 < stats.n_observations < 36000
        assert stats.avg_source_accuracy == pytest.approx(0.604, abs=0.03)

    def test_binary_domains(self, demos):
        for i in range(0, demos.n_objects, 101):
            assert set(demos.domain_by_index(i).items) <= {"real", "spurious"}

    def test_copying_structure_present(self, demos):
        """Copier groups must create unusually high pairwise agreement."""
        from repro.core import find_candidate_pairs

        pairs = find_candidate_pairs(demos, min_overlap=10, min_agreement=0.9)
        assert len(pairs) > 5


class TestCrowd:
    def test_table1_shape(self, crowd):
        stats = crowd.stats()
        assert stats.n_sources == 102
        assert stats.n_objects == 992
        assert stats.n_observations == 992 * 20
        assert stats.avg_source_accuracy == pytest.approx(0.54, abs=0.03)

    def test_exact_panel_size(self, crowd):
        for i in range(0, crowd.n_objects, 37):
            assert crowd.object_observation_rows(i).shape[0] == 20

    def test_four_sentiments(self, crowd):
        values = {obs.value for obs in crowd.observations}
        assert values <= {"positive", "negative", "neutral", "not_weather"}

    def test_channel_informative(self, crowd):
        by_channel = {}
        for source in crowd.sources:
            channel = crowd.source_features[source]["channel"]
            by_channel.setdefault(channel, []).append(crowd.true_accuracies[source])
        means = {c: np.mean(v) for c, v in by_channel.items()}
        assert means["elite"] > means["clixsense"]

    def test_workers_conditionally_independent(self, crowd):
        """No copying: top pairwise agreements stay moderate."""
        from repro.core import find_candidate_pairs

        pairs = find_candidate_pairs(crowd, min_overlap=30, min_agreement=0.9)
        assert len(pairs) == 0


class TestGenomics:
    def test_table1_shape(self, genomics):
        stats = genomics.stats()
        assert stats.n_sources == 2750
        assert stats.n_objects == 571
        assert stats.avg_observations_per_source < 2.0

    def test_extreme_sparsity_hides_avg_accuracy(self, genomics):
        assert genomics.stats().avg_source_accuracy is None

    def test_features_dominate_accuracy(self, genomics):
        by_study = {}
        for source in genomics.sources:
            study = genomics.source_features[source]["study"]
            by_study.setdefault(study, []).append(genomics.true_accuracies[source])
        means = {s: np.mean(v) for s, v in by_study.items()}
        assert means["knockout"] > means["GWAS"] + 0.1

    def test_every_object_conflictable(self, genomics):
        """The GAD extract keeps objects with >= 2 observations."""
        for i in range(0, genomics.n_objects, 29):
            assert genomics.object_observation_rows(i).shape[0] >= 2

    def test_author_long_tail(self, genomics):
        authors = {genomics.source_features[s]["author"] for s in genomics.sources}
        assert len(authors) > 500


class TestRngPlumbing:
    """Generators accept np.random.Generator seeds (see data.simulators)."""

    def test_generator_seed_matches_int_seed(self):
        by_int = generate_stocks(seed=3)
        by_gen = generate_stocks(seed=np.random.default_rng(3))
        assert by_int.observations == by_gen.observations
        assert by_int.true_accuracies == by_gen.true_accuracies

    def test_live_generator_advances_state(self):
        rng = np.random.default_rng(0)
        first = generate_crowd(seed=rng)
        second = generate_crowd(seed=rng)
        assert first.observations != second.observations

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(42)
        a = generate_demos(seed=np.random.SeedSequence(42))
        b = generate_demos(seed=ss)
        assert a.observations == b.observations

    def test_legacy_random_state_rejected(self):
        with pytest.raises(TypeError, match="RandomState"):
            as_generator(np.random.RandomState(0))
        with pytest.raises(TypeError):
            as_generator(0.5)

    def test_spawn_generators_independent_and_deterministic(self):
        """The documented fork/spawn contract: children are reproducible."""
        first = spawn_generators(7, 3)
        second = spawn_generators(7, 3)
        assert len(first) == 3
        draws_first = [g.random(4).tolist() for g in first]
        draws_second = [g.random(4).tolist() for g in second]
        assert draws_first == draws_second
        # distinct child streams
        assert draws_first[0] != draws_first[1] != draws_first[2]

    def test_spawned_child_reproducible_across_process_boundary(self):
        """A worker process re-deriving child 1 of seed 7 sees the parent's stream."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        code = (
            "from repro.data import spawn_generators; "
            "print(repr(spawn_generators(7, 3)[1].random(4).tolist()))"
        )
        child = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True, check=True
        )
        assert child.stdout.strip() == repr(spawn_generators(7, 3)[1].random(4).tolist())

    @pytest.mark.parametrize(
        "generator", [generate_stocks, generate_demos, generate_crowd, generate_genomics]
    )
    def test_all_simulators_accept_generator_seeds(self, generator):
        dataset = generator(seed=np.random.default_rng(1))
        assert dataset.n_observations > 0
