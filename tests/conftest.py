"""Shared fixtures: small hand-built and generated fusion datasets."""

from __future__ import annotations

import pytest

from repro.data import SyntheticConfig, generate
from repro.fusion import FusionDataset, Observation


@pytest.fixture
def tiny_dataset() -> FusionDataset:
    """Three sources, two binary objects, fully hand-checkable.

    Mirrors the paper's Figure 1 example: two articles say (GIGYF2,
    Parkinson) is false, one says true; two articles say (GBA, Parkinson)
    is true.  Ground truth: false and true respectively.
    """
    observations = [
        Observation("a1", "gigyf2", "false"),
        Observation("a2", "gigyf2", "true"),
        Observation("a3", "gigyf2", "false"),
        Observation("a1", "gba", "true"),
        Observation("a3", "gba", "true"),
    ]
    return FusionDataset(
        observations,
        ground_truth={"gigyf2": "false", "gba": "true"},
        source_features={
            "a1": {"citations": 34, "year": 2009},
            "a2": {"citations": 128, "year": 2008},
            "a3": {"citations": 70, "year": 2012},
        },
        name="tiny",
    )


@pytest.fixture
def small_synthetic():
    """A 60-source / 120-object synthetic instance with informative features."""
    return generate(
        SyntheticConfig(
            n_sources=60,
            n_objects=120,
            density=0.12,
            avg_accuracy=0.72,
            accuracy_spread=0.15,
            n_features=8,
            n_informative=4,
            seed=7,
            name="small-synth",
        )
    )


@pytest.fixture
def small_dataset(small_synthetic) -> FusionDataset:
    return small_synthetic.dataset


@pytest.fixture
def multi_valued_dataset() -> FusionDataset:
    """Objects with 3-4 claimed values for multi-class paths."""
    return generate(
        SyntheticConfig(
            n_sources=40,
            n_objects=80,
            density=0.2,
            avg_accuracy=0.65,
            domain_size_range=(3, 4),
            seed=11,
            name="multi-synth",
        )
    ).dataset
