"""FusionServer: swap atomicity under concurrent readers, retirement,
writer loop, and the serving entrypoint.

The reader/writer contract under test:

* a leased snapshot is internally consistent — readers racing a stream
  of publishes never observe torn state (mismatched array lengths,
  non-normalized posteriors, a version that goes backwards);
* queries against a *retired* snapshot still complete with the retired
  data (retirement is bookkeeping, not invalidation), and retired
  snapshots drain exactly when their last lease drops;
* the background writer loop survives bad batches and drains the queue;
* ``python -m repro.serve`` runs end to end.
"""

import threading

import numpy as np
import pytest

from repro.extensions.streaming import StreamingFuser
from repro.serve import FusionServer, ServeMetrics, Snapshot
from repro.serve.__main__ import main as serve_main
from repro.serve.__main__ import simulate_batches


def batch_for(batch_index, n_sources=4, objects_per_batch=8, domain=3):
    """Deterministic batch of fresh objects, every source claiming each."""
    rng = np.random.default_rng(batch_index)
    batch = []
    for slot in range(objects_per_batch):
        obj = f"b{batch_index}_o{slot}"
        for source in range(n_sources):
            batch.append((f"s{source}", obj, f"v{rng.integers(domain)}"))
    return batch


class TestBasics:
    def test_append_publish_query(self):
        server = FusionServer()
        server.append(batch_for(0))
        assert server.version == 0  # nothing published yet
        snapshot = server.publish()
        assert server.version == 1
        assert snapshot is server.snapshot
        obj = "b0_o0"
        assert server.posterior(obj)
        assert server.value(obj) is not None
        assert server.confidence(obj) > 0.0
        assert isinstance(server.top_conflicts(3), list)
        assert server.source_accuracies()

    def test_publish_every_auto_publishes(self):
        server = FusionServer(publish_every=2)
        server.append(batch_for(0))
        assert server.version == 0
        server.append(batch_for(1))
        assert server.version == 1
        server.append(batch_for(2))
        server.append(batch_for(3))
        assert server.version == 2

    def test_queries_before_first_publish_hit_empty_snapshot(self):
        server = FusionServer()
        server.append(batch_for(0))
        assert server.posterior("b0_o0") == {}
        assert server.value("b0_o0") is None

    def test_reveal_truth_and_refit_flow_through(self):
        server = FusionServer(refit_overrides={"max_iterations": 3})
        server.append(batch_for(0))
        server.reveal_truth("b0_o0", "v0")
        server.refit()
        server.publish()
        assert server.value("b0_o0") == "v0"
        assert server.snapshot.n_refits == 1

    def test_metrics_recorded(self):
        metrics = ServeMetrics()
        server = FusionServer(publish_every=1, metrics=metrics)
        server.append(batch_for(0))
        server.posterior("b0_o0")
        server.value("b0_o0")
        assert metrics.ingest_batches == 1
        assert metrics.swap_count == 1
        assert metrics.query_counts == {"posterior": 1, "value": 1}
        assert metrics.snapshot_age_seconds() >= 0.0

    def test_rejects_reference_fuser_and_bad_config(self):
        with pytest.raises(ValueError, match="vectorized"):
            FusionServer(fuser=StreamingFuser(backend="reference"))
        with pytest.raises(ValueError, match="publish_every"):
            FusionServer(publish_every=0)
        with pytest.raises(ValueError, match="fuser_kwargs"):
            FusionServer(fuser=StreamingFuser(), decay=0.9)

    def test_fuser_kwargs_build_the_fuser(self):
        server = FusionServer(decay=0.99, refit_every=1000)
        assert server.fuser.decay == 0.99
        assert server.fuser.refit_every == 1000


class TestRetirement:
    def test_lease_counts(self):
        server = FusionServer()
        server.append(batch_for(0))
        server.publish()
        with server.read() as snapshot:
            assert snapshot.reader_count == 1
            with server.read() as again:
                assert again is snapshot
                assert snapshot.reader_count == 2
        assert snapshot.reader_count == 0

    def test_retired_snapshot_queries_still_complete(self):
        server = FusionServer()
        server.append(batch_for(0))
        server.publish()
        with server.read() as old:
            before = old.posterior("b0_o0")
            server.append(batch_for(1))
            fresh = server.publish()
            assert old.retired
            assert not old.drained  # our lease is still out
            # The retired snapshot keeps answering with its own data.
            assert old.posterior("b0_o0") == pytest.approx(before)
            assert old.posterior("b1_o0") == {}
            assert fresh.posterior("b1_o0")
        assert old.drained
        server._reap_retired()
        assert server.retiring_count == 0
        assert server.metrics.drained_count >= 1

    def test_unleased_snapshot_drains_on_publish(self):
        server = FusionServer()
        server.append(batch_for(0))
        first = server.publish()
        server.append(batch_for(1))
        server.publish()
        assert first.retired and first.drained
        assert server.retiring_count == 0

    def test_wait_drained(self):
        server = FusionServer()
        server.append(batch_for(0))
        first = server.publish()
        assert not first.wait_drained(timeout=0.01)
        server.append(batch_for(1))
        server.publish()
        assert first.wait_drained(timeout=1.0)


class TestConcurrentSwap:
    """No reader may ever observe a torn snapshot."""

    N_BATCHES = 12
    N_READERS = 4

    def test_readers_never_see_torn_state(self):
        server = FusionServer(publish_every=1)
        server.append(batch_for(0))
        stop = threading.Event()
        failures = []

        def reader(seed):
            rng = np.random.default_rng(seed)
            last_version = -1
            reads = 0
            while not stop.is_set() or reads == 0:
                reads += 1
                with server.read() as snapshot:
                    try:
                        # Internal consistency: every aligned structure
                        # agrees on the object count and the posterior
                        # of a sampled object is a distribution.
                        n = snapshot.n_objects
                        assert len(snapshot.object_ids) == n
                        assert snapshot.conflicts.margins.shape[0] == n
                        assert snapshot.store.offsets.shape[0] == n + 1
                        assert len(snapshot.pair_values) == snapshot.store.n_rows
                        assert snapshot.version >= last_version
                        last_version = snapshot.version
                        if n:
                            obj = snapshot.object_ids[int(rng.integers(n))]
                            posterior = snapshot.posterior(obj)
                            if obj not in snapshot.overrides:
                                assert sum(posterior.values()) == pytest.approx(1.0)
                            snapshot.top_conflicts(3)
                    except AssertionError as error:  # pragma: no cover
                        failures.append(error)
                        return

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(self.N_READERS)]
        for thread in threads:
            thread.start()
        for index in range(1, self.N_BATCHES):
            server.append(batch_for(index))
        stop.set()
        for thread in threads:
            thread.join()
        assert failures == []
        assert server.version == self.N_BATCHES
        # Every superseded snapshot eventually drains once readers exit.
        server._reap_retired()
        assert server.retiring_count == 0

    def test_concurrent_retired_reads_complete(self):
        server = FusionServer()
        server.append(batch_for(0))
        server.publish()
        barrier = threading.Barrier(3)
        results = []

        def stale_reader():
            with server.read() as snapshot:
                barrier.wait(timeout=5)
                barrier.wait(timeout=5)  # hold the lease across the swap
                results.append(snapshot.posterior("b0_o0"))

        threads = [threading.Thread(target=stale_reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=5)
        server.append(batch_for(1))
        server.publish()
        barrier.wait(timeout=5)
        for thread in threads:
            thread.join()
        assert len(results) == 2
        for posterior in results:
            assert sum(posterior.values()) == pytest.approx(1.0)


class TestWriterLoop:
    def test_ingest_flush_stop(self):
        server = FusionServer(publish_every=2).start()
        for index in range(4):
            server.ingest(batch_for(index))
        server.ingest_truth("b0_o0", "v1")
        server.flush()
        server.stop(publish=True)
        assert server.metrics.ingest_batches == 4
        assert server.version >= 2
        assert server.value("b0_o0") == "v1"

    def test_bad_batch_does_not_kill_the_loop(self):
        server = FusionServer().start()
        batch = batch_for(0)
        server.ingest(batch)
        server.ingest(batch)  # duplicate (source, object) claims -> rejected
        server.ingest(batch_for(1))
        server.flush()
        server.stop(publish=True)
        assert server.metrics.ingest_errors == 1
        assert server.metrics.ingest_batches == 2
        assert server.last_ingest_error is not None
        assert server.posterior("b1_o0")

    def test_requires_start(self):
        server = FusionServer()
        with pytest.raises(RuntimeError, match="start"):
            server.ingest(batch_for(0))
        with pytest.raises(RuntimeError, match="start"):
            server.flush()
        server.stop()  # stop without start is a no-op

    def test_double_start_rejected(self):
        server = FusionServer().start()
        try:
            with pytest.raises(RuntimeError, match="already"):
                server.start()
        finally:
            server.stop()


class TestEntrypoint:
    def test_simulate_batches_unique_claims(self):
        batches, truth = simulate_batches(3, 4, 5, seed=1)
        claims = [(s, o) for batch in batches for (s, o, _) in batch]
        assert len(claims) == len(set(claims)) == 3 * 4 * 5
        assert len(truth) == 12

    def test_main_text_mode(self, capsys):
        code = serve_main(
            ["--batches", "3", "--objects-per-batch", "4", "--sources", "3",
             "--readers", "2", "--queries", "20", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "published v" in out
        assert "top-5 conflicts" in out

    def test_main_json_mode(self, capsys):
        import json

        code = serve_main(
            ["--batches", "2", "--objects-per-batch", "4", "--sources", "3",
             "--readers", "1", "--queries", "10", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["snapshot"]["n_objects"] == 8
        assert report["metrics"]["snapshots"]["swaps"] >= 1
        assert report["source_accuracies"]


class TestSnapshotPeek:
    def test_snapshot_property_tracks_publishes(self):
        server = FusionServer()
        assert isinstance(server.snapshot, Snapshot)
        assert server.snapshot.version == 0
        server.append(batch_for(0))
        published = server.publish()
        assert server.snapshot is published


class TestDriftingStream:
    """Serving a drifting stream with decayed trust (scenario integration)."""

    def _scenario(self):
        from repro.data import drift_scenario

        return drift_scenario(n_sources=8, objects_per_step=6, n_steps=10, seed=6)

    def test_version_monotonicity_and_snapshot_parity_mid_drift(self):
        from repro.extensions import DecayConfig

        scn = self._scenario()
        fuser = StreamingFuser(
            self_training=False, trust_decay=DecayConfig(half_life=30.0)
        )
        server = FusionServer(fuser)

        versions = []
        for step in scn.steps:
            server.append(step.observations)
            for obj, value in step.reveal.items():
                server.reveal_truth(obj, value)
            snapshot = server.publish()
            versions.append(snapshot.version)

            # mid-drift parity: the published snapshot answers queries
            # identically to the live fuser at the moment of publish
            probe = [obs.obj for obs in step.observations[:5]]
            with server.read() as leased:
                assert leased.version == snapshot.version
                for obj in probe:
                    live = fuser.posterior(obj)
                    served = leased.posterior(obj)
                    assert set(served) == set(live)
                    for value, p in live.items():
                        assert served[value] == pytest.approx(p, abs=1e-12)
                    assert leased.value(obj) == fuser.current_value(obj)

        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)  # strictly increasing
        assert server.version == versions[-1]

    def test_decayed_server_tracks_drift_better_than_flat(self):
        from repro.extensions import DecayConfig

        scn = self._scenario()
        flat = FusionServer(StreamingFuser(self_training=False))
        decayed = FusionServer(
            StreamingFuser(self_training=False, trust_decay=DecayConfig(half_life=10.0))
        )
        for server in (flat, decayed):
            for step in scn.steps:
                server.append(step.observations)
                for obj, value in step.reveal.items():
                    server.reveal_truth(obj, value)
            server.publish()

        eval_objects = scn.eval_objects(at_step=scn.n_steps - 1, window=4)

        def accuracy(server):
            with server.read() as snapshot:
                hits = [snapshot.value(o) == scn.truth[o] for o in eval_objects]
            return float(np.mean(hits))

        assert accuracy(decayed) >= accuracy(flat)
