"""Serving metrics: histogram bucketing, percentile bounds, thread safety."""

import threading

import pytest

from repro.serve import LatencyHistogram, ServeMetrics


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.percentile(0.5) == 0.0
        assert histogram.mean() == 0.0
        assert histogram.max_seconds == 0.0

    def test_counts_and_moments(self):
        histogram = LatencyHistogram()
        for value in (1e-5, 2e-5, 3e-5, 4e-4):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total_seconds == pytest.approx(4.6e-4)
        assert histogram.mean() == pytest.approx(4.6e-4 / 4)
        assert histogram.max_seconds == pytest.approx(4e-4)

    def test_percentile_upper_bound_quantization(self):
        # Buckets grow by 2**0.25, so the estimate is within [x, x*ratio).
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(1e-3)
        for q in (0.5, 0.9, 0.99, 1.0):
            estimate = histogram.percentile(q)
            assert 1e-3 <= estimate <= 1e-3 * 2**0.25

    def test_percentile_rank_selection(self):
        histogram = LatencyHistogram()
        # 99 fast samples, 1 slow: p50 must see the fast bucket, p99+ the slow.
        for _ in range(99):
            histogram.record(1e-5)
        histogram.record(1.0)
        assert histogram.percentile(0.5) <= 1e-5 * 2**0.25
        assert histogram.percentile(0.995) >= 1.0

    def test_overflow_bucket_reports_exact_max(self):
        histogram = LatencyHistogram(max_seconds=1.0)
        histogram.record(5.0)
        assert histogram.percentile(0.99) == pytest.approx(5.0)

    def test_underflow_lands_in_first_bucket(self):
        histogram = LatencyHistogram(min_seconds=1e-6)
        histogram.record(1e-9)
        assert histogram.count == 1
        assert histogram.percentile(0.5) == pytest.approx(1e-6)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_seconds=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(0.0)

    def test_concurrent_records_lose_nothing(self):
        histogram = LatencyHistogram()

        def hammer():
            for _ in range(1000):
                histogram.record(1e-4)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 4000
        assert histogram.total_seconds == pytest.approx(0.4)

    def test_as_dict_keys(self):
        histogram = LatencyHistogram()
        histogram.record(1e-4)
        summary = histogram.as_dict()
        assert summary["count"] == 1
        assert set(summary) == {
            "count",
            "mean_seconds",
            "max_seconds",
            "p50_seconds",
            "p90_seconds",
            "p99_seconds",
        }


class TestServeMetrics:
    def test_query_counters(self):
        metrics = ServeMetrics()
        metrics.record_query("posterior", 1e-5)
        metrics.record_query("posterior", 2e-5)
        metrics.record_query("top_conflicts", 5e-5)
        assert metrics.query_count == 3
        assert metrics.query_counts == {"posterior": 2, "top_conflicts": 1}

    def test_ingest_counters(self):
        metrics = ServeMetrics()
        metrics.record_ingest(64)
        metrics.record_ingest(32)
        metrics.record_ingest_error()
        assert metrics.ingest_batches == 2
        assert metrics.ingest_observations == 96
        assert metrics.ingest_errors == 1

    def test_publish_counters_and_age(self):
        metrics = ServeMetrics()
        assert metrics.snapshot_age_seconds() is None
        metrics.record_publish(1e-3, 1e-6)
        assert metrics.swap_count == 1
        age = metrics.snapshot_age_seconds()
        assert age is not None and age >= 0.0
        assert metrics.publish_latency.count == 1
        assert metrics.swap_latency.count == 1

    def test_as_dict_structure(self):
        metrics = ServeMetrics()
        metrics.record_query("value", 1e-5)
        metrics.record_ingest(8)
        metrics.record_publish(1e-3, 1e-6)
        metrics.record_drained(2)
        report = metrics.as_dict()
        assert report["queries"]["total"] == 1
        assert report["queries"]["by_kind"] == {"value": 1}
        assert report["ingest"] == {"batches": 1, "observations": 8, "errors": 0}
        assert report["snapshots"]["swaps"] == 1
        assert report["snapshots"]["drained"] == 2
        assert report["snapshots"]["age_seconds"] >= 0.0
        assert report["query_latency"]["count"] == 1
