"""Published snapshots: query parity with the live fuser, conflict index,
persistence, and the attached-encoding pickling contract.

The serving contract under test:

* every :class:`~repro.serve.snapshot.Snapshot` query agrees with the
  :class:`~repro.extensions.streaming.StreamingFuser` state it was
  published from (posterior dicts, MAP values, overrides, source
  accuracies);
* the publish-time conflict index ranks objects by brute-force MAP
  margin and excludes objects that cannot conflict;
* snapshots round-trip through ``save``/``load`` (plain and ``mmap=True``)
  and through pickle;
* pickling a snapshot that carries the accumulated dataset ships the
  compiled encoding explicitly — ``FusionDataset.__getstate__`` drops the
  cache, so without the explicit state restore every unpickle would
  silently recompile (the regression pinned here).
"""

import pickle

import numpy as np
import pytest

from repro.extensions.streaming import StreamingFuser
from repro.fusion import encoding as encoding_module
from repro.fusion.posterior_store import PosteriorStore
from repro.serve import ConflictEntry, Snapshot, build_conflict_index

OBSERVATIONS = [
    ("s1", "o1", "a"),
    ("s2", "o1", "b"),
    ("s3", "o1", "a"),
    ("s1", "o2", "x"),
    ("s2", "o2", "y"),
    ("s3", "o3", "z"),
    ("s1", "o4", "k"),
    ("s2", "o4", "k"),
]


def build_fuser(**kwargs):
    fuser = StreamingFuser(**kwargs)
    fuser.observe_batch(OBSERVATIONS)
    return fuser


class TestQueryParity:
    def test_posterior_matches_fuser(self):
        fuser = build_fuser()
        snapshot = Snapshot.from_fuser(fuser, version=1)
        for obj in ("o1", "o2", "o3", "o4"):
            expected = fuser.posterior(obj)
            got = snapshot.posterior(obj)
            assert set(got) == set(expected)
            for value, prob in expected.items():
                assert got[value] == pytest.approx(prob)

    def test_value_and_confidence_match_fuser(self):
        fuser = build_fuser()
        snapshot = Snapshot.from_fuser(fuser)
        for obj in ("o1", "o2", "o3", "o4"):
            assert snapshot.value(obj) == fuser.current_value(obj)
            posterior = fuser.posterior(obj)
            assert snapshot.confidence(obj) == pytest.approx(max(posterior.values()))

    def test_unseen_object(self):
        snapshot = Snapshot.from_fuser(build_fuser())
        assert snapshot.posterior("nope") == {}
        assert snapshot.value("nope") is None
        assert snapshot.confidence("nope") is None
        assert snapshot.margin("nope") is None
        assert snapshot.position("nope") is None

    def test_source_accuracies_match_fuser(self):
        fuser = build_fuser()
        snapshot = Snapshot.from_fuser(fuser)
        expected = fuser.source_accuracies()
        assert snapshot.source_accuracies() == pytest.approx(expected)
        for source, accuracy in expected.items():
            assert snapshot.source_accuracy(source) == pytest.approx(accuracy)
        assert snapshot.source_accuracy("ghost") is None
        assert snapshot.n_sources == len(expected)

    def test_in_domain_truth_clamps_to_point_mass(self):
        fuser = build_fuser()
        fuser.reveal_truth("o1", "b")
        snapshot = Snapshot.from_fuser(fuser)
        assert snapshot.value("o1") == "b"
        assert snapshot.confidence("o1") == 1.0
        assert snapshot.posterior("o1") == {"a": 0.0, "b": 1.0}

    def test_out_of_domain_truth_becomes_override(self):
        fuser = build_fuser()
        fuser.reveal_truth("o3", "UNSEEN")
        snapshot = Snapshot.from_fuser(fuser)
        assert snapshot.overrides == {"o3": "UNSEEN"}
        assert snapshot.value("o3") == "UNSEEN"
        assert snapshot.confidence("o3") == 1.0
        assert snapshot.posterior("o3") == {"z": 0.0, "UNSEEN": 1.0}

    def test_empty_snapshot(self):
        snapshot = Snapshot.empty(version=7)
        assert snapshot.version == 7
        assert snapshot.n_objects == 0
        assert snapshot.posterior("x") == {}
        assert snapshot.top_conflicts(5) == []
        assert snapshot.source_accuracies() == {}
        assert snapshot.stats()["n_objects"] == 0

    def test_from_fuser_on_empty_stream_publishes_empty(self):
        snapshot = Snapshot.from_fuser(StreamingFuser(), version=3)
        assert snapshot.n_objects == 0
        assert snapshot.version == 3

    def test_reference_backend_is_rejected(self):
        fuser = StreamingFuser(backend="reference")
        with pytest.raises(ValueError, match="vectorized"):
            fuser.publish_state()


class TestConflictIndex:
    def brute_force_margins(self, fuser, snapshot):
        margins = {}
        for obj in snapshot.object_ids:
            posterior = fuser.posterior(obj)
            if len(posterior) < 2 or obj in snapshot.truth:
                continue
            ranked = sorted(posterior.values(), reverse=True)
            margins[obj] = ranked[0] - ranked[1]
        return margins

    def test_ranking_matches_brute_force(self):
        fuser = build_fuser()
        snapshot = Snapshot.from_fuser(fuser)
        expected = self.brute_force_margins(fuser, snapshot)
        entries = snapshot.top_conflicts(10)
        assert [entry.object for entry in entries] == sorted(expected, key=expected.get)
        for entry in entries:
            assert entry.margin == pytest.approx(expected[entry.object])
            posterior = fuser.posterior(entry.object)
            ranked = sorted(posterior, key=posterior.get, reverse=True)
            assert entry.map_value == ranked[0]
            assert entry.runner_up == ranked[1]
            assert entry.confidence == pytest.approx(posterior[ranked[0]])

    def test_single_candidate_objects_excluded(self):
        snapshot = Snapshot.from_fuser(build_fuser())
        # o3 has a single claimed value; it can never conflict.
        objects = [entry.object for entry in snapshot.top_conflicts(100)]
        assert "o3" not in objects
        assert snapshot.margin("o3") == np.inf

    def test_override_objects_excluded(self):
        fuser = build_fuser()
        fuser.reveal_truth("o1", "OUTSIDE")
        snapshot = Snapshot.from_fuser(fuser)
        objects = [entry.object for entry in snapshot.top_conflicts(100)]
        assert "o1" not in objects

    def test_k_truncation_and_validation(self):
        snapshot = Snapshot.from_fuser(build_fuser())
        assert len(snapshot.top_conflicts(1)) == 1
        assert snapshot.top_conflicts(0) == []
        with pytest.raises(ValueError):
            snapshot.top_conflicts(-1)

    def test_build_conflict_index_empty_store(self):
        store = PosteriorStore(np.zeros(1, dtype=np.int64), np.zeros(0))
        index = build_conflict_index(store)
        assert index.n_ranked == 0
        assert index.margins.shape == (0,)

    def test_entries_are_frozen_dataclasses(self):
        entry = Snapshot.from_fuser(build_fuser()).top_conflicts(1)[0]
        assert isinstance(entry, ConflictEntry)
        with pytest.raises(AttributeError):
            entry.margin = 0.0


class TestImmutability:
    def test_store_arrays_are_frozen(self):
        snapshot = Snapshot.from_fuser(build_fuser())
        for array in (snapshot.store.probs, snapshot.store.offsets, snapshot.store.value_codes):
            assert not array.flags.writeable
        with pytest.raises(ValueError):
            snapshot.store.probs[0] = 0.5

    def test_conflict_arrays_are_frozen(self):
        snapshot = Snapshot.from_fuser(build_fuser())
        assert not snapshot.conflicts.margins.flags.writeable
        assert not snapshot.conflicts.order.flags.writeable


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        fuser = build_fuser()
        fuser.reveal_truth("o3", "UNSEEN")
        snapshot = Snapshot.from_fuser(fuser, version=4)
        snapshot.save(str(tmp_path / "snap"))
        loaded = Snapshot.load(str(tmp_path / "snap"))
        assert loaded.version == 4
        assert loaded.stats() == snapshot.stats()
        for obj in ("o1", "o2", "o3", "o4"):
            assert loaded.posterior(obj) == pytest.approx(snapshot.posterior(obj))
            assert loaded.value(obj) == snapshot.value(obj)
        assert loaded.source_accuracies() == pytest.approx(snapshot.source_accuracies())
        assert [e.object for e in loaded.top_conflicts(10)] == [
            e.object for e in snapshot.top_conflicts(10)
        ]

    def test_memmap_load_serves_from_disk(self, tmp_path):
        snapshot = Snapshot.from_fuser(build_fuser())
        snapshot.save(str(tmp_path / "snap"))
        loaded = Snapshot.load(str(tmp_path / "snap"), mmap=True)
        assert isinstance(loaded.store.probs, np.memmap)
        assert not loaded.store.probs.flags.writeable
        for obj in ("o1", "o2", "o4"):
            assert loaded.posterior(obj) == pytest.approx(snapshot.posterior(obj))

    def test_pickle_round_trip(self):
        snapshot = Snapshot.from_fuser(build_fuser(), version=2)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.version == 2
        assert clone.posterior("o1") == pytest.approx(snapshot.posterior("o1"))
        assert not clone.store.probs.flags.writeable
        # Runtime lease state never travels: the clone starts unleased.
        assert clone.reader_count == 0
        assert not clone.retired

    def test_lease_state_excluded_from_pickle(self):
        snapshot = Snapshot.from_fuser(build_fuser())
        snapshot.acquire()
        snapshot.retire()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.reader_count == 0
        assert not clone.retired
        assert not clone.drained
        snapshot.release()


class TestAttachedEncodingPickling:
    """Regression: Snapshot pickling must not silently recompile.

    ``FusionDataset.__getstate__`` drops the cached ``_dense_encoding``
    (for datasets it is a cache), so a snapshot that just pickled its
    dataset would come back without the compiled encoding and the first
    batch consumer would recompile it.  Snapshots ship the encoding
    explicitly via ``export_state``/``from_state``.
    """

    def test_plain_dataset_pickle_drops_encoding(self):
        fuser = build_fuser()
        dataset = fuser.encoding.to_dataset(attach_encoding=True)
        assert dataset._dense_encoding is not None
        restored = pickle.loads(pickle.dumps(dataset))
        assert getattr(restored, "_dense_encoding", None) is None

    def test_snapshot_round_trips_attached_encoding(self):
        snapshot = Snapshot.from_fuser(build_fuser(), with_dataset=True)
        original = snapshot.dataset._dense_encoding
        assert original is not None
        clone = pickle.loads(pickle.dumps(snapshot))
        restored = clone.dataset._dense_encoding
        assert restored is not None
        np.testing.assert_array_equal(restored.pair_offsets, original.pair_offsets)
        np.testing.assert_array_equal(restored.obs_value_code, original.obs_value_code)
        assert restored.pair_values == original.pair_values

    def test_unpickling_never_recompiles(self, monkeypatch):
        snapshot = Snapshot.from_fuser(build_fuser(), with_dataset=True)
        blob = pickle.dumps(snapshot)
        calls = []
        original_init = encoding_module.DenseEncoding.__init__

        def counting_init(self, *args, **kwargs):
            calls.append(1)
            return original_init(self, *args, **kwargs)

        monkeypatch.setattr(encoding_module.DenseEncoding, "__init__", counting_init)
        clone = pickle.loads(blob)
        assert clone.dataset._dense_encoding is not None
        # from_state rebuilds the object shell without recompiling; a
        # compile would have gone through __init__.
        assert calls == []

    def test_without_dataset_no_dataset_travels(self):
        snapshot = Snapshot.from_fuser(build_fuser())
        assert snapshot.dataset is None
        assert pickle.loads(pickle.dumps(snapshot)).dataset is None
