"""Machine-checked equivalence of the vectorized engine vs the reference loops.

The dense-encoding engine (``backend="vectorized"``) must reproduce the
original loop implementations (``backend="reference"``) exactly: same index
structures, same posteriors, same learned models.  These property-style
tests sweep seeded random datasets — binary and multi-valued domains,
featureful and featureless sources, empty/partial/full supervision — and
assert numerical agreement at ``atol=1e-8`` (structures, posterior
packaging and the array-backed ``FusionResult`` views must match exactly;
end-to-end fitted models are allowed solver-path noise well below 1e-6).

Solver equivalence (``solver="lbfgs-warm"`` vs the scipy reference) is
asserted at ``atol=1e-8`` in *objective-value* space: both converge the
same convex M-step, but scipy's decrease-based stop plateaus at gradient
norms around 1e-8 in double precision, so parameter-space agreement
bottoms out near 1e-6 — the tests pin both scales explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SLiMFast
from repro.core.em import EMLearner
from repro.core.erm import ERMLearner, correctness_training_pairs
from repro.core.inference import (
    expected_correctness,
    map_assignment,
    map_rows,
    package_posteriors,
    posterior_rows,
    posteriors,
)
from repro.core.structure import build_pair_structure
from repro.data import SyntheticConfig, generate
from repro.factorgraph import GibbsSampler, compile_dataset, compile_unary_score_tables
from repro.fusion.encoding import DenseEncoding, check_backend, encode_dataset, expand_spans
from repro.fusion.result import FusionResult
from repro.optim.numerics import sigmoid, softmax
from repro.optim.objectives import CorrectnessObjective, reduce_correctness_samples
from repro.optim.solvers import minimize_lbfgs, minimize_newton

ATOL = 1e-8

CONFIGS = [
    SyntheticConfig(
        n_sources=40,
        n_objects=90,
        density=0.15,
        avg_accuracy=0.72,
        n_features=6,
        n_informative=3,
        seed=101,
        name="binary-featureful",
    ),
    SyntheticConfig(
        n_sources=25,
        n_objects=70,
        density=0.25,
        avg_accuracy=0.6,
        domain_size_range=(3, 5),
        n_features=5,
        n_informative=2,
        seed=202,
        name="multi-valued",
    ),
    SyntheticConfig(
        n_sources=30,
        n_objects=60,
        density=0.2,
        avg_accuracy=0.8,
        n_features=0,
        n_informative=0,
        seed=303,
        name="featureless",
    ),
]


@pytest.fixture(params=CONFIGS, ids=lambda c: c.name)
def dataset(request):
    return generate(request.param).dataset


def _truth_fraction(dataset, fraction, seed=0):
    if fraction == 0.0:
        return {}
    if fraction == 1.0:
        return dict(dataset.ground_truth)
    split = dataset.split(fraction, seed=seed)
    return split.train_truth


class TestEncoding:
    def test_csr_spans_cover_observations(self, dataset):
        enc = encode_dataset(dataset)
        assert isinstance(enc, DenseEncoding)
        assert enc.obs_offsets[-1] == dataset.n_observations
        # Every observation appears once, grouped by its object.
        recovered = set()
        for o in range(enc.n_objects):
            span = slice(int(enc.obs_offsets[o]), int(enc.obs_offsets[o + 1]))
            assert np.all(enc.obs_object_idx[span] == o)
            recovered.update(enc.obs_order[span].tolist())
        assert recovered == set(range(dataset.n_observations))

    def test_encoding_is_cached(self, dataset):
        assert encode_dataset(dataset) is encode_dataset(dataset)

    def test_design_matrix_cached_and_equal(self, dataset):
        from repro.fusion.features import build_design_matrix

        enc = encode_dataset(dataset)
        design, _ = enc.design(True)
        assert enc.design(True)[0] is design
        reference, _ = build_design_matrix(dataset, use_features=True)
        np.testing.assert_array_equal(design, reference)

    def test_expand_spans(self):
        starts = np.asarray([5, 0, 9])
        lengths = np.asarray([2, 0, 3])
        np.testing.assert_array_equal(expand_spans(starts, lengths), [5, 6, 9, 10, 11])
        assert expand_spans(np.zeros(0), np.zeros(0)).size == 0

    def test_check_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            check_backend("numba")


class TestStructureEquivalence:
    @pytest.mark.parametrize("subset", [False, True])
    def test_structures_identical(self, dataset, subset):
        objects = None
        if subset:
            objects = list(dataset.objects)[::3]
        vec = build_pair_structure(dataset, objects, backend="vectorized")
        ref = build_pair_structure(dataset, objects, backend="reference")
        assert vec.object_ids == ref.object_ids
        assert vec.pair_values == ref.pair_values
        np.testing.assert_array_equal(vec.object_dataset_idx, ref.object_dataset_idx)
        np.testing.assert_array_equal(vec.pair_object_pos, ref.pair_object_pos)
        np.testing.assert_array_equal(vec.pair_offsets, ref.pair_offsets)
        np.testing.assert_array_equal(vec.obs_source_idx, ref.obs_source_idx)
        np.testing.assert_array_equal(vec.obs_pair_idx, ref.obs_pair_idx)
        np.testing.assert_allclose(vec.base_scores, ref.base_scores, atol=ATOL)

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 1.0])
    def test_label_rows_identical(self, dataset, fraction):
        truth = _truth_fraction(dataset, fraction)
        vec = build_pair_structure(dataset, backend="vectorized")
        ref = build_pair_structure(dataset, backend="reference")
        np.testing.assert_array_equal(vec.label_rows(truth), ref.label_rows(truth))
        np.testing.assert_array_equal(
            encode_dataset(dataset).label_rows(truth), ref.label_rows(truth)
        )


class TestPosteriorEquivalence:
    @pytest.mark.parametrize("clamp_fraction", [0.0, 0.25])
    def test_posteriors_match(self, dataset, clamp_fraction):
        truth = _truth_fraction(dataset, 0.2, seed=1)
        model = ERMLearner().fit(dataset, truth)
        clamp = _truth_fraction(dataset, clamp_fraction, seed=2)
        vec = posteriors(dataset, model, clamp=clamp, backend="vectorized")
        ref = posteriors(dataset, model, clamp=clamp, backend="reference")
        assert vec.keys() == ref.keys()
        for obj in ref:
            assert vec[obj].keys() == ref[obj].keys()
            for value, prob in ref[obj].items():
                assert vec[obj][value] == pytest.approx(prob, abs=ATOL)

    def test_map_rows_matches_map_assignment(self, dataset):
        truth = _truth_fraction(dataset, 0.2, seed=1)
        model = ERMLearner().fit(dataset, truth)
        structure = build_pair_structure(dataset)
        probs = posterior_rows(structure, model)
        dict_path = map_assignment(package_posteriors(structure, probs, clamp=truth))
        array_path = map_rows(structure, probs, clamp=truth)
        assert dict_path == array_path

    @pytest.mark.parametrize("fraction", [0.0, 0.4])
    def test_expected_correctness_matches(self, dataset, fraction):
        truth = _truth_fraction(dataset, 0.3, seed=3)
        model = ERMLearner().fit(dataset, truth)
        structure_vec = build_pair_structure(dataset, backend="vectorized")
        structure_ref = build_pair_structure(dataset, backend="reference")
        label_rows = structure_ref.label_rows(_truth_fraction(dataset, fraction, seed=4))
        trust = model.trust_scores()
        q_vec, rows_vec = expected_correctness(
            structure_vec, trust, label_rows, backend="vectorized"
        )
        q_ref, rows_ref = expected_correctness(
            structure_ref, trust, label_rows, backend="reference"
        )
        np.testing.assert_allclose(q_vec, q_ref, atol=ATOL)
        np.testing.assert_allclose(rows_vec, rows_ref, atol=ATOL)


class TestLearnerEquivalence:
    def test_training_pairs_identical(self, dataset):
        truth = _truth_fraction(dataset, 0.5, seed=5)
        src_vec, lab_vec = correctness_training_pairs(dataset, truth)
        src_ref, lab_ref = correctness_training_pairs(dataset, truth, backend="reference")
        np.testing.assert_array_equal(src_vec, src_ref)
        np.testing.assert_array_equal(lab_vec, lab_ref)

    def test_reduced_objective_matches_full(self, dataset):
        truth = _truth_fraction(dataset, 0.5, seed=5)
        src, labels = correctness_training_pairs(dataset, truth)
        full = CorrectnessObjective(
            source_idx=src,
            labels=labels,
            design=np.zeros((dataset.n_sources, 0)),
            l2_sources=2.0,
            intercept=True,
        )
        r_src, r_labels, r_weights = reduce_correctness_samples(src, labels, dataset.n_sources)
        reduced = CorrectnessObjective(
            source_idx=r_src,
            labels=r_labels,
            sample_weights=r_weights,
            design=np.zeros((dataset.n_sources, 0)),
            l2_sources=2.0,
            intercept=True,
        )
        rng = np.random.default_rng(0)
        for _ in range(3):
            w = rng.normal(size=full.n_params)
            v_full, g_full = full.value_and_grad(w)
            v_red, g_red = reduced.value_and_grad(w)
            assert v_red == pytest.approx(v_full, abs=ATOL)
            np.testing.assert_allclose(g_red, g_full, atol=ATOL)

    @pytest.mark.parametrize("objective", ["correctness", "conditional"])
    def test_erm_fits_match(self, dataset, objective):
        truth = _truth_fraction(dataset, 0.4, seed=6)
        vec = ERMLearner(objective=objective, backend="vectorized").fit(dataset, truth)
        ref = ERMLearner(objective=objective, backend="reference").fit(dataset, truth)
        np.testing.assert_allclose(vec.accuracies(), ref.accuracies(), atol=1e-6)
        np.testing.assert_allclose(vec.w_features, ref.w_features, atol=1e-5)

    def test_erm_sgd_path_is_bitwise_identical(self, dataset):
        # SGD consumes per-observation samples; the vectorized backend must
        # feed it the exact same sample stream as the reference.
        truth = _truth_fraction(dataset, 0.4, seed=6)
        vec = ERMLearner(solver="sgd", backend="vectorized").fit(dataset, truth)
        ref = ERMLearner(solver="sgd", backend="reference").fit(dataset, truth)
        np.testing.assert_array_equal(vec.w_sources, ref.w_sources)
        np.testing.assert_array_equal(vec.w_features, ref.w_features)

    @pytest.mark.parametrize("fraction", [0.0, 0.2])
    def test_em_fits_match(self, dataset, fraction):
        truth = _truth_fraction(dataset, fraction, seed=7)
        vec = EMLearner(max_iterations=8, backend="vectorized").fit(dataset, truth)
        ref = EMLearner(max_iterations=8, backend="reference").fit(dataset, truth)
        np.testing.assert_allclose(vec.accuracies(), ref.accuracies(), atol=1e-6)


class TestGibbsEquivalence:
    def test_score_tables_match_exact_posteriors(self, dataset):
        truth = _truth_fraction(dataset, 0.2, seed=8)
        model = ERMLearner().fit(dataset, truth)
        compiled = compile_dataset(dataset, evidence=truth)
        compiled.set_weights_from_model(model)
        tables = compile_unary_score_tables(compiled.graph)
        exact = posteriors(dataset, model, clamp=truth)
        for i, name in enumerate(tables.names):
            obj = name[1]
            start, stop = int(tables.offsets[i]), int(tables.offsets[i + 1])
            conditional = softmax(tables.scores[start:stop])
            expected = [exact[obj][value] for value in tables.domains[i]]
            np.testing.assert_allclose(conditional, expected, atol=ATOL)

    def test_vectorized_marginals_agree_with_reference(self):
        dataset = generate(SyntheticConfig(n_sources=15, n_objects=20, density=0.3, seed=9)).dataset
        truth = _truth_fraction(dataset, 0.2, seed=9)
        model = ERMLearner().fit(dataset, truth)
        compiled = compile_dataset(dataset, evidence=truth)
        compiled.set_weights_from_model(model)
        ref = GibbsSampler(n_samples=4000, burn_in=200, seed=0).run(compiled.graph)
        vec = GibbsSampler(
            n_samples=4000, burn_in=200, seed=0, backend="vectorized"
        ).run(compiled.graph)
        assert vec.marginals.keys() == ref.marginals.keys()
        for name, dist in ref.marginals.items():
            for value, prob in dist.items():
                # Both are Monte-Carlo estimates of the same conditional;
                # 4000 samples bound the deviation well below 0.05.
                assert vec.marginals[name][value] == pytest.approx(prob, abs=0.05)

    def test_auto_backend_falls_back_on_non_unary_factors(self):
        from repro.factorgraph import FactorGraph

        graph = FactorGraph()
        graph.add_variable("a", ("x", "y"))
        graph.add_variable("b", ("x", "y"))
        graph.add_factor(
            ["a", "b"],
            lambda args: 1.0 if args[0] == args[1] else 0.0,
            "tie",
            initial_weight=0.7,
        )
        auto = GibbsSampler(n_samples=200, burn_in=20, seed=1, backend="auto").run(graph)
        ref = GibbsSampler(n_samples=200, burn_in=20, seed=1).run(graph)
        assert auto.marginals == ref.marginals
        with pytest.raises(Exception, match="unary"):
            GibbsSampler(backend="vectorized").run(graph)


class TestFacadeEquivalence:
    @pytest.mark.parametrize("learner", ["erm", "em"])
    def test_fit_predict_values_match(self, dataset, learner):
        from repro.core import SLiMFast

        truth = _truth_fraction(dataset, 0.3, seed=10)
        vec = SLiMFast(learner=learner, backend="vectorized").fit_predict(dataset, truth)
        ref = SLiMFast(learner=learner, backend="reference").fit_predict(dataset, truth)
        assert vec.values == ref.values
        for obj, dist in ref.posteriors.items():
            for value, prob in dist.items():
                assert vec.posteriors[obj][value] == pytest.approx(prob, abs=1e-6)
        for source, acc in ref.source_accuracies.items():
            assert vec.source_accuracies[source] == pytest.approx(acc, abs=1e-6)


class TestFusionResultViews:
    """Array-backed FusionResult views vs the reference dict packaging."""

    @pytest.mark.parametrize("clamp_fraction", [0.0, 0.25])
    def test_views_match_reference_packaging(self, dataset, clamp_fraction):
        truth = _truth_fraction(dataset, 0.2, seed=1)
        model = ERMLearner().fit(dataset, truth)
        clamp = _truth_fraction(dataset, clamp_fraction, seed=2)
        structure = build_pair_structure(dataset)
        probs = posterior_rows(structure, model)
        result = FusionResult.from_rows(
            structure,
            probs,
            clamp=clamp,
            accuracy_vector=model.accuracies(),
            source_ids=model.source_ids,
        )
        assert result.has_arrays
        reference = posteriors(dataset, model, clamp=clamp, backend="reference")
        assert result.values == map_assignment(reference)
        assert result.posteriors.keys() == reference.keys()
        for obj, dist in reference.items():
            assert result.posteriors[obj].keys() == dist.keys()
            for value, prob in dist.items():
                assert result.posteriors[obj][value] == pytest.approx(prob, abs=ATOL)
        for source, acc in zip(model.source_ids, model.accuracies()):
            assert result.source_accuracies[source] == pytest.approx(float(acc), abs=ATOL)

    def test_from_rows_matches_package_posteriors(self, dataset):
        truth = _truth_fraction(dataset, 0.3, seed=3)
        model = ERMLearner().fit(dataset, truth)
        structure = build_pair_structure(dataset)
        probs = posterior_rows(structure, model)
        result = FusionResult.from_rows(structure, probs, clamp=truth)
        packaged = package_posteriors(structure, probs, clamp=truth)
        assert result.posteriors.keys() == packaged.keys()
        for obj, dist in packaged.items():
            assert result.posteriors[obj] == pytest.approx(dist, abs=ATOL)
        assert result.values == map_rows(structure, probs, clamp=truth)

    def test_posterior_matrix_rows_are_distributions(self, dataset):
        truth = _truth_fraction(dataset, 0.2, seed=4)
        model = ERMLearner().fit(dataset, truth)
        structure = build_pair_structure(dataset)
        result = FusionResult.from_rows(structure, posterior_rows(structure, model))
        matrix = result.posterior_matrix
        assert matrix.shape[0] == dataset.n_objects
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=ATOL)
        codes = result.value_codes
        assert np.all(codes >= 0)
        np.testing.assert_array_equal(np.argmax(matrix, axis=1), codes)

    def test_view_mutation_does_not_corrupt_arrays(self, dataset):
        truth = _truth_fraction(dataset, 0.3, seed=5)
        result = SLiMFast(learner="erm").fit_predict(dataset, truth)
        codes_before = result.value_codes.copy()
        matrix_before = result.posterior_matrix.copy()
        baseline_accuracy = result.accuracy(dataset)

        first_view = result.values
        some_obj = next(iter(first_view))
        first_view[some_obj] = "mutated-value"
        result.posteriors[some_obj]["mutated-value"] = 0.5
        # The views are cached (same object on re-access) ...
        assert result.values is first_view
        # ... and mutating them never writes back into the array backing.
        np.testing.assert_array_equal(result.value_codes, codes_before)
        np.testing.assert_array_equal(result.posterior_matrix, matrix_before)
        assert result.accuracy(dataset) == baseline_accuracy

    def test_setter_replaces_view_and_drops_arrays(self, dataset):
        truth = _truth_fraction(dataset, 0.3, seed=5)
        result = SLiMFast(learner="erm").fit_predict(dataset, truth)
        result.values = {"only": "this"}
        assert result.values == {"only": "this"}
        with pytest.raises(ValueError, match="dict-backed"):
            _ = result.value_codes

    def test_clamp_value_outside_domain_becomes_override(self, dataset):
        structure = build_pair_structure(dataset)
        model = ERMLearner().fit(dataset, _truth_fraction(dataset, 0.2, seed=6))
        probs = posterior_rows(structure, model)
        target = structure.object_ids[0]
        clamp = {target: "never-claimed-value"}
        result = FusionResult.from_rows(structure, probs, clamp=clamp)
        assert result.value_codes[0] == -1
        assert result.overrides == clamp
        assert result.values[target] == "never-claimed-value"
        assert result.posteriors[target]["never-claimed-value"] == 1.0
        assert sum(result.posteriors[target].values()) == pytest.approx(1.0)
        reference = posteriors(dataset, model, clamp=clamp, backend="reference")
        assert result.posteriors[target] == pytest.approx(reference[target])

    def test_accuracy_array_path_matches_dict_path(self, dataset):
        truth = _truth_fraction(dataset, 0.3, seed=7)
        result = SLiMFast(learner="em").fit_predict(dataset, truth)
        array_accuracy = result.accuracy(dataset)
        # Materializing the views first forces the dict path on a copy.
        dict_result = FusionResult(
            values=dict(result.values),
            posteriors=result.posteriors,
            source_accuracies=result.source_accuracies,
        )
        assert array_accuracy == dict_result.accuracy(dataset)

    def test_attach_dataset_promotes_dict_results(self, dataset):
        from repro.baselines import MajorityVote

        result = MajorityVote().fit_predict(dataset)
        assert not result.has_arrays
        result.attach_dataset(dataset)
        assert result.has_arrays
        decoded = dict(zip(result.object_ids, result.predicted_values()))
        assert decoded == result.values


class TestWarmSolverEquivalence:
    """solver="lbfgs-warm" vs the scipy reference path."""

    def _m_step_objective(self, dataset, fraction=0.4, seed=8):
        truth = _truth_fraction(dataset, fraction, seed=seed)
        src, labels = correctness_training_pairs(dataset, truth)
        r_src, r_labels, r_weights = reduce_correctness_samples(src, labels, dataset.n_sources)
        design, _ = encode_dataset(dataset).design(True)
        return CorrectnessObjective(
            source_idx=r_src,
            labels=r_labels,
            sample_weights=r_weights,
            design=design,
            l2_sources=4.0,
            l2_features=1.0,
            intercept=True,
        )

    def test_newton_reaches_scipy_minimizer(self, dataset):
        objective = self._m_step_objective(dataset)
        w0 = np.zeros(objective.n_params)
        scipy_fit = minimize_lbfgs(
            objective, w0=w0, tolerance=1e-15, gtol=1e-12, max_iterations=2000
        )
        newton_fit = minimize_newton(objective, w0=w0, gtol=1e-11)
        # Identical minimum of the convex M-step at atol=1e-8 in value space.
        assert newton_fit.value == pytest.approx(scipy_fit.value, abs=ATOL)
        # The second-order solve is at least as converged as scipy, whose
        # decrease-based stop plateaus near gradient 1e-8 in double
        # precision; that plateau bounds parameter agreement at ~1e-6.
        assert np.max(np.abs(objective.grad(newton_fit.w))) <= np.max(
            np.abs(objective.grad(scipy_fit.w))
        )
        n_sources = dataset.n_sources
        np.testing.assert_allclose(
            sigmoid(newton_fit.w[:n_sources]), sigmoid(scipy_fit.w[:n_sources]), atol=1e-5
        )

    def test_newton_direction_solves_the_hessian_system(self, dataset):
        objective = self._m_step_objective(dataset)
        rng = np.random.default_rng(0)
        w = rng.normal(scale=0.3, size=objective.n_params)
        grad = objective.grad(w)
        direction = objective.newton_direction(w, grad)
        # H d = -g, checked through a finite-difference Hessian-vector
        # product: (grad(w + eps d) - grad(w)) / eps ~ H d.
        eps = 1e-6 / max(float(np.linalg.norm(direction)), 1.0)
        hvp = (objective.grad(w + eps * direction) - grad) / eps
        np.testing.assert_allclose(hvp, -grad, atol=1e-4)

    @pytest.mark.parametrize("fraction", [0.0, 0.2])
    def test_em_warm_matches_reference_path(self, dataset, fraction):
        truth = _truth_fraction(dataset, fraction, seed=7)
        reference = EMLearner(
            max_iterations=8, solver="lbfgs", backend="reference", m_step_tolerance=1e-13
        ).fit(dataset, truth)
        warm = EMLearner(
            max_iterations=8, solver="lbfgs-warm", backend="vectorized", m_step_tolerance=1e-13
        ).fit(dataset, truth)
        # Bounded by scipy's double-precision stopping plateau (see module
        # docstring), not by the warm solver, which solves tighter.
        np.testing.assert_allclose(warm.accuracies(), reference.accuracies(), atol=5e-5)

    def test_erm_accepts_warm_alias(self, dataset):
        truth = _truth_fraction(dataset, 0.4, seed=6)
        alias = ERMLearner(solver="lbfgs-warm").fit(dataset, truth)
        plain = ERMLearner(solver="lbfgs").fit(dataset, truth)
        np.testing.assert_array_equal(alias.accuracies(), plain.accuracies())

    def test_facade_warm_solver_end_to_end(self, dataset):
        truth = _truth_fraction(dataset, 0.3, seed=9)
        warm = SLiMFast(learner="em", solver="lbfgs-warm").fit_predict(dataset, truth)
        plain = SLiMFast(learner="em", solver="lbfgs").fit_predict(dataset, truth)
        assert warm.has_arrays
        for source, acc in plain.source_accuracies.items():
            assert warm.source_accuracies[source] == pytest.approx(acc, abs=1e-3)
        agreement = np.mean([warm.values[obj] == value for obj, value in plain.values.items()])
        assert agreement >= 0.99
