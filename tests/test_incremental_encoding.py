"""Equivalence contract of the incremental (append-only) encoding layer.

Two machine-checked contracts:

1. **Encoding equivalence** — after *any* sequence of appends, every
   materialized :class:`repro.fusion.encoding.IncrementalEncoding` array
   equals a cold :class:`repro.fusion.encoding.DenseEncoding` compile of
   the accumulated dataset: index arrays and ``base_scores`` exactly, the
   design matrix at ``atol=1e-12`` (byte-equal in practice).  The replay
   tests below cut seeded random datasets into random batch sizes to sweep
   the relocation/doubling paths.
2. **Streaming equivalence** — the vectorized
   :class:`repro.extensions.streaming.StreamingFuser` reproduces the
   reference dict engine exactly at batch size 1 (bit-identical posteriors
   and source accuracies, including decay and self-training), and tracks
   it closely under mini-batching (batch-start trusts; see the streaming
   module docstring for the declared batch semantics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.em import EMConfig, EMLearner, fit_incremental
from repro.core.structure import build_incremental_structure, build_pair_structure
from repro.data import SyntheticConfig, generate
from repro.extensions.streaming import StreamingFuser, replay_dataset
from repro.fusion.dataset import FusionDataset
from repro.fusion.encoding import DenseEncoding, IncrementalEncoding, encode_dataset

ARRAY_NAMES = [
    "obs_order",
    "obs_offsets",
    "obs_object_idx",
    "obs_source_idx",
    "obs_value_code",
    "domain_sizes",
    "pair_offsets",
    "pair_object_idx",
    "pair_value_code",
    "obs_pair_idx",
]

CONFIGS = [
    SyntheticConfig(
        n_sources=40,
        n_objects=90,
        density=0.15,
        avg_accuracy=0.72,
        n_features=6,
        n_informative=3,
        seed=101,
        name="binary-featureful",
    ),
    SyntheticConfig(
        n_sources=25,
        n_objects=70,
        density=0.25,
        avg_accuracy=0.6,
        domain_size_range=(3, 5),
        n_features=5,
        n_informative=2,
        seed=202,
        name="multi-valued",
    ),
    SyntheticConfig(
        n_sources=30,
        n_objects=60,
        density=0.2,
        avg_accuracy=0.8,
        n_features=0,
        n_informative=0,
        seed=303,
        name="featureless",
    ),
]


@pytest.fixture(params=CONFIGS, ids=lambda c: c.name)
def dataset(request):
    return generate(request.param).dataset


def _random_batches(items, rng, max_batch=40):
    """Cut ``items`` into random-size batches (including size-1 batches)."""
    batches = []
    i = 0
    while i < len(items):
        size = int(rng.integers(1, max_batch))
        batches.append(items[i : i + size])
        i += size
    return batches


def _assert_matches_cold(incremental: IncrementalEncoding, cold: DenseEncoding):
    for name in ARRAY_NAMES:
        np.testing.assert_array_equal(getattr(incremental, name), getattr(cold, name), err_msg=name)
    np.testing.assert_array_equal(incremental.log_alternatives, cold.log_alternatives)
    np.testing.assert_array_equal(incremental.base_scores, cold.base_scores)
    assert incremental.pair_values == cold.pair_values
    for use_features in (True, False):
        design_inc, space_inc = incremental.design(use_features)
        design_cold, space_cold = cold.design(use_features)
        np.testing.assert_allclose(design_inc, design_cold, atol=1e-12)
        assert space_inc.column_labels == space_cold.column_labels


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("replay_seed", [0, 1, 2])
    def test_random_batch_replay_matches_cold_compile(self, dataset, replay_seed):
        """Appending in random batch sizes reproduces the cold arrays."""
        rng = np.random.default_rng(replay_seed)
        incremental = IncrementalEncoding(
            source_features=dataset.source_features, name=dataset.name
        )
        for batch in _random_batches(list(dataset.observations), rng):
            incremental.append(batch)
        _assert_matches_cold(incremental, encode_dataset(dataset))

    def test_intermediate_snapshots_also_match(self, dataset):
        """Every prefix of the stream is itself cold-equivalent."""
        observations = list(dataset.observations)
        incremental = IncrementalEncoding(source_features=dataset.source_features)
        rng = np.random.default_rng(7)
        consumed = 0
        for batch in _random_batches(observations, rng, max_batch=120):
            incremental.append(batch)
            consumed += len(batch)
            prefix = FusionDataset(observations[:consumed], source_features=dataset.source_features)
            np.testing.assert_array_equal(
                incremental.obs_pair_idx, DenseEncoding(prefix).obs_pair_idx
            )

    def test_truth_codes_and_label_rows_match(self, dataset):
        truth = dataset.split(0.4, seed=3).train_truth
        incremental = IncrementalEncoding.from_dataset(dataset)
        cold = encode_dataset(dataset)
        labeled_inc, codes_inc = incremental.truth_codes(truth)
        labeled_cold, codes_cold = cold.truth_codes(truth)
        np.testing.assert_array_equal(labeled_inc, labeled_cold)
        np.testing.assert_array_equal(codes_inc, codes_cold)
        np.testing.assert_array_equal(incremental.label_rows(truth), cold.label_rows(truth))

    def test_incremental_structure_matches_vectorized_build(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        built = build_incremental_structure(incremental)
        reference = build_pair_structure(dataset, backend="vectorized")
        assert built.object_ids == reference.object_ids
        assert built.pair_values == reference.pair_values
        np.testing.assert_array_equal(built.pair_offsets, reference.pair_offsets)
        np.testing.assert_array_equal(built.obs_pair_idx, reference.obs_pair_idx)
        np.testing.assert_array_equal(built.base_scores, reference.base_scores)
        truth = dataset.split(0.3, seed=1).train_truth
        np.testing.assert_array_equal(built.label_rows(truth), reference.label_rows(truth))

    def test_to_dataset_round_trip_attaches_snapshot(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        rebuilt = incremental.to_dataset(ground_truth=dataset.ground_truth)
        assert rebuilt.observations == dataset.observations
        assert rebuilt.ground_truth == dataset.ground_truth
        attached = encode_dataset(rebuilt)
        # The attached encoding is fabricated from the snapshot, not a
        # recompile — equal arrays, but frozen *copies* so later appends
        # to the incremental encoding cannot reach the export (see
        # TestAsDenseAliasing).
        assert attached.obs_pair_idx is not incremental.obs_pair_idx
        np.testing.assert_array_equal(attached.obs_pair_idx, incremental.obs_pair_idx)
        np.testing.assert_array_equal(attached.base_scores, DenseEncoding(rebuilt).base_scores)

    def test_rebuild_escape_hatch(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        before = incremental.obs_pair_idx
        fresh = incremental.rebuild()
        assert isinstance(fresh, DenseEncoding)
        np.testing.assert_array_equal(incremental.obs_pair_idx, before)
        assert incremental.obs_pair_idx is fresh.obs_pair_idx
        _assert_matches_cold(incremental, encode_dataset(dataset))

    def test_object_claims_and_live_domain_sizes(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        cold = encode_dataset(dataset)
        np.testing.assert_array_equal(incremental.live_domain_sizes, cold.domain_sizes)
        for o_idx in range(0, dataset.n_objects, 17):
            sources, codes = incremental.object_claims(o_idx)
            span = slice(int(cold.obs_offsets[o_idx]), int(cold.obs_offsets[o_idx + 1]))
            np.testing.assert_array_equal(sources, cold.obs_source_idx[span])
            np.testing.assert_array_equal(codes, cold.obs_value_code[span])

    def test_duplicate_claim_rejected(self):
        from repro.fusion import DatasetError

        incremental = IncrementalEncoding()
        incremental.append([("s", "o", "a")])
        with pytest.raises(DatasetError, match="duplicate"):
            incremental.append([("s", "o", "b")])

    def test_rejected_batch_leaves_encoding_untouched(self):
        """Appends are atomic: a mid-batch duplicate mutates nothing."""
        from repro.fusion import DatasetError

        incremental = IncrementalEncoding()
        incremental.append([("s1", "o1", "a")])
        bad_batch = [("s2", "o2", "b"), ("s3", "o3", "c"), ("s1", "o1", "x")]
        with pytest.raises(DatasetError, match="duplicate"):
            incremental.append(bad_batch)
        assert incremental.n_sources == 1
        assert incremental.n_objects == 1
        assert incremental.n_observations == 1
        # The valid prefix was not interned and can be appended cleanly.
        incremental.append(bad_batch[:2])
        _assert_matches_cold(
            incremental,
            DenseEncoding(FusionDataset([("s1", "o1", "a"), *bad_batch[:2]])),
        )
        # Intra-batch duplicates are rejected up front too.
        with pytest.raises(DatasetError, match="duplicate"):
            incremental.append([("s9", "o9", "a"), ("s9", "o9", "b")])
        assert incremental.n_observations == 3

    def test_empty_batch_is_noop(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        before = incremental.obs_pair_idx
        batch = incremental.append([])
        assert len(batch) == 0
        assert incremental.obs_pair_idx is before  # cache not invalidated


class TestExtendedDataset:
    """The immutable append API on the dataset container."""

    def test_extended_preserves_prefix_indices(self, dataset):
        fresh = [("brand-new-source", obj, "zzz") for obj in list(dataset.objects)[:3]]
        extended = dataset.extended(fresh, ground_truth={fresh[0][1]: "zzz"})
        assert extended.n_observations == dataset.n_observations + 3
        # Existing source/object indices and value codes are preserved.
        np.testing.assert_array_equal(
            extended.obs_source_idx[: dataset.n_observations], dataset.obs_source_idx
        )
        np.testing.assert_array_equal(
            extended.obs_value_idx[: dataset.n_observations], dataset.obs_value_idx
        )
        assert extended.ground_truth[fresh[0][1]] == "zzz"

    def test_extended_matches_incremental_append(self, dataset):
        fresh = [("late-source", obj, "late-value") for obj in list(dataset.objects)[:5]]
        extended = dataset.extended(fresh)
        incremental = IncrementalEncoding.from_dataset(dataset)
        incremental.append(fresh)
        _assert_matches_cold(incremental, encode_dataset(extended))


class TestDegenerateInputs:
    """Clear errors (not opaque numpy failures) at the encoding boundary."""

    def test_zero_observations_raise_clear_error(self, dataset):
        # The container already rejects an empty build...
        from repro.fusion import DatasetError

        with pytest.raises(DatasetError, match="at least one observation"):
            FusionDataset([])
        # ...and the encoder guards against emptied/stubbed datasets too.
        hollow = FusionDataset([("s", "o", "v")])
        hollow._observations = ()
        with pytest.raises(ValueError, match="zero observations"):
            DenseEncoding(hollow)
        with pytest.raises(ValueError, match="zero observations"):
            _ = IncrementalEncoding().obs_offsets

    def test_empty_domain_raises_clear_error(self):
        hollow = FusionDataset([("s", "o", "v")])
        hollow._domains[0] = type(hollow._domains[0])()  # empty the domain
        with pytest.raises(ValueError, match="empty claimed domain"):
            DenseEncoding(hollow)

    def test_single_source_unit_domain_encodes_cleanly(self):
        """A one-source, unit-domain object is degenerate but valid.

        Unit domains (unanimous claims) are ubiquitous in real datasets,
        so the boundary must accept them: the candidate block is a single
        row with zero base score and a point-mass posterior, on both the
        cold and the incremental path.
        """
        unit = FusionDataset([("only-source", "only-object", "the-value")])
        cold = encode_dataset(unit)
        assert cold.n_pairs == 1
        np.testing.assert_array_equal(cold.base_scores, [0.0])
        incremental = IncrementalEncoding()
        incremental.append([("only-source", "only-object", "the-value")])
        _assert_matches_cold(incremental, cold)
        fuser = StreamingFuser()
        fuser.observe_batch(unit.observations)
        assert fuser.posterior("only-object") == {"the-value": 1.0}


class TestStreamingEquivalence:
    """Vectorized streaming fuser vs the reference dict engine."""

    @pytest.mark.parametrize(
        "fuser_kwargs",
        [{}, {"self_training": False}, {"decay": 0.995}],
        ids=["default", "no-self-training", "decaying"],
    )
    def test_single_observation_batches_are_exact(self, dataset, fuser_kwargs):
        truth = dataset.split(0.4, seed=0).train_truth
        engines = {
            backend: StreamingFuser(backend=backend, **fuser_kwargs)
            for backend in ("reference", "vectorized")
        }
        rng = np.random.default_rng(5)
        order = rng.permutation(dataset.n_observations)
        for fuser in engines.values():
            fuser.run((dataset.observations[int(i)] for i in order), truth=truth, batch_size=1)
        reference, vectorized = engines["reference"], engines["vectorized"]
        ref_accs = reference.source_accuracies()
        vec_accs = vectorized.source_accuracies()
        assert ref_accs.keys() == vec_accs.keys()
        for source, acc in ref_accs.items():
            assert vec_accs[source] == acc  # bit-identical
        for obj in dataset.objects:
            ref_post = reference.posterior(obj)
            vec_post = vectorized.posterior(obj)
            assert ref_post.keys() == vec_post.keys()
            for value, prob in ref_post.items():
                assert vec_post[value] == prob  # bit-identical

    def test_to_result_matches_reference_packaging(self, dataset):
        truth = dataset.split(0.3, seed=1).train_truth
        ref = replay_dataset(dataset, truth, seed=2, backend="reference")
        vec = replay_dataset(dataset, truth, seed=2, backend="vectorized", batch_size=1)
        assert vec.has_arrays
        assert set(vec.values) == set(ref.values)
        for obj, dist in ref.posteriors.items():
            assert vec.posteriors[obj].keys() == dist.keys()
            for value, prob in dist.items():
                assert vec.posteriors[obj][value] == pytest.approx(prob, abs=1e-9)
        for source, acc in ref.source_accuracies.items():
            assert vec.source_accuracies[source] == pytest.approx(acc, abs=1e-12)

    def test_minibatch_replay_tracks_reference(self, dataset):
        """Batched replay (batch-start trusts) stays close to sequential."""
        truth = dataset.split(0.4, seed=0).train_truth
        ref = replay_dataset(dataset, truth, seed=0, backend="reference")
        vec = replay_dataset(dataset, truth, seed=0, backend="vectorized", batch_size=64)
        agreement = np.mean([ref.values[obj] == vec.values[obj] for obj in dataset.objects.items])
        assert agreement >= 0.9
        deltas = [
            abs(ref.source_accuracies[s] - vec.source_accuracies[s])
            for s in ref.source_accuracies
        ]
        assert float(np.mean(deltas)) < 0.05

    def test_unclaimed_truth_becomes_override(self):
        fuser = StreamingFuser()
        fuser.observe_batch([("s1", "o", "a"), ("s2", "o", "b")])
        fuser.reveal_truth("o", "never-claimed")
        assert fuser.current_value("o") == "never-claimed"
        result = fuser.to_result()
        assert result.values["o"] == "never-claimed"
        assert result.posteriors["o"]["never-claimed"] == 1.0

    def test_refit_warm_state_handoff(self, dataset):
        """Periodic re-fits reuse the warm state and stay sane."""
        truth = dataset.split(0.5, seed=0).train_truth
        fuser = StreamingFuser(
            source_features=dataset.source_features,
            refit_every=max(40, dataset.n_observations // 3),
            refit_overrides={"max_iterations": 4},
        )
        fuser.run(dataset.observations, truth=truth, batch_size=64)
        assert fuser.n_refits >= 1
        assert fuser._warm_state is not None
        # Re-anchored accuracies should correlate with a direct EM fit.
        model, _ = fit_incremental(fuser.encoding, truth=truth, max_iterations=4)
        accs = fuser.source_accuracies()
        fitted = dict(zip(dataset.sources.items, model.accuracies()))
        correlation = np.corrcoef([accs[s] for s in fitted], [fitted[s] for s in fitted])[0, 1]
        assert correlation > 0.5


class TestFitIncremental:
    def test_matches_cold_em_fit(self, dataset):
        truth = dataset.split(0.3, seed=2).train_truth
        incremental = IncrementalEncoding.from_dataset(dataset)
        model, learner = fit_incremental(incremental, truth=truth, max_iterations=6)
        cold = EMLearner(
            EMConfig(max_iterations=6, solver="lbfgs-warm", backend="vectorized")
        ).fit(dataset, truth)
        np.testing.assert_allclose(model.accuracies(), cold.accuracies(), atol=1e-8)
        assert learner.warm_state_ is not None

    def test_warm_state_does_not_change_optimum(self, dataset):
        truth = dataset.split(0.3, seed=2).train_truth
        incremental = IncrementalEncoding.from_dataset(dataset)
        cold_model, learner = fit_incremental(incremental, truth=truth, max_iterations=6)
        seeded_model, _ = fit_incremental(
            incremental, truth=truth, warm_state=learner.warm_state_, max_iterations=6
        )
        np.testing.assert_allclose(seeded_model.accuracies(), cold_model.accuracies(), atol=1e-6)


class TestAsDenseAliasing:
    """The exported dense view must be a frozen snapshot, not a live alias.

    Before the fix, ``as_dense`` handed out the *live* snapshot arrays and
    ``_design_cache`` row stores: a later ``append``/``_materialize`` (or a
    design-cache growth) could mutate or invalidate a previously exported
    view.  The export is now a read-only copy, pinned here.
    """

    def test_export_is_stable_across_later_appends(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        incremental.design(True)  # warm the cache so the export carries it
        exported_dataset = incremental.to_dataset()
        dense = exported_dataset._dense_encoding
        expected = encode_dataset(FusionDataset(dataset.observations))
        before = {name: getattr(dense, name).copy() for name in ARRAY_NAMES}
        design_before = dense.design(True)[0].copy()

        # Keep appending (new objects, new sources, repeat claims on old
        # objects) and re-materializing; the exported view must not move.
        incremental.append([("fresh-source", "fresh-object", "v")])
        incremental._materialize()
        incremental.append(
            [("fresh-source", obj, dataset.domain(obj)[0]) for obj in dataset.objects.items[:5]]
        )
        incremental._materialize()
        incremental.design(True)

        for name in ARRAY_NAMES:
            np.testing.assert_array_equal(getattr(dense, name), before[name], err_msg=name)
            np.testing.assert_array_equal(
                getattr(dense, name), getattr(expected, name), err_msg=name
            )
        np.testing.assert_array_equal(dense.design(True)[0], design_before)

    def test_export_does_not_alias_live_buffers(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        incremental.design(True)
        incremental.design(False)
        dense = incremental.as_dense(incremental.to_dataset(attach_encoding=False))
        snapshot = incremental._materialize()
        for name in ARRAY_NAMES:
            exported = getattr(dense, name)
            assert exported is not snapshot[name], name
            assert not np.shares_memory(exported, snapshot[name]), name
        for key, (rows, _n_encoded, _space) in incremental._design_cache.items():
            assert not np.shares_memory(dense.design(key)[0], rows), key

    def test_exported_arrays_are_read_only(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        dense = incremental.to_dataset()._dense_encoding
        for name in ARRAY_NAMES + ["base_scores", "log_alternatives"]:
            array = getattr(dense, name)
            assert not array.flags.writeable, name
            with pytest.raises(ValueError):
                array[...] = 0

    def test_frozen_export_still_fits(self, dataset):
        # The read-only arrays must be transparent to the learners.
        incremental = IncrementalEncoding.from_dataset(dataset)
        exported = incremental.to_dataset(ground_truth=dataset.ground_truth)
        truth = exported.split(0.3, seed=0).train_truth
        model = EMLearner(EMConfig(max_iterations=3)).fit(exported, truth)
        reference = EMLearner(EMConfig(max_iterations=3)).fit(dataset, truth)
        np.testing.assert_allclose(model.accuracies(), reference.accuracies(), atol=1e-10)


class TestDatasetViewFastPath:
    """fit_incremental's container fast path (no observations() walk)."""

    def test_view_matches_walking_path_exactly(self, dataset):
        truth = dataset.split(0.3, seed=2).train_truth
        incremental = IncrementalEncoding.from_dataset(dataset)
        fast_model, fast_learner = fit_incremental(
            incremental, truth=truth, max_iterations=5
        )
        walk_model, walk_learner = fit_incremental(
            incremental, truth=truth, max_iterations=5, materialize_dataset=True
        )
        # Same arrays, same operations: the two container routes must be
        # bit-identical, not merely close.
        np.testing.assert_array_equal(fast_model.accuracies(), walk_model.accuracies())
        np.testing.assert_array_equal(fast_model.w_sources, walk_model.w_sources)
        np.testing.assert_array_equal(fast_model.w_features, walk_model.w_features)
        assert fast_model.source_ids == walk_model.source_ids
        assert fast_learner.trace_.n_iterations == walk_learner.trace_.n_iterations

    def test_view_is_o1_and_live(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        view = incremental.dataset_view()
        assert view.n_observations == dataset.n_observations
        incremental.append([("late-source", "late-object", "v")])
        assert view.n_observations == dataset.n_observations + 1
        assert view.sources is incremental.sources
        assert view.domain_by_index(view.n_objects - 1).items == ["v"]

    def test_streaming_refit_uses_fast_path(self, dataset):
        # A periodic re-fit must not materialize the observation list.
        fuser = StreamingFuser(refit_every=60, refit_overrides={"max_iterations": 2})
        walked = []
        original = IncrementalEncoding.observations

        def _spy(self):
            walked.append(True)
            return original(self)

        IncrementalEncoding.observations = _spy
        try:
            fuser.run(dataset.observations, truth=dataset.split(0.3, seed=0).train_truth)
        finally:
            IncrementalEncoding.observations = original
        assert fuser.n_refits > 0
        assert not walked

    def test_rejects_reference_backend(self, dataset):
        incremental = IncrementalEncoding.from_dataset(dataset)
        with pytest.raises(ValueError, match="vectorized"):
            fit_incremental(incremental, backend="reference")
