"""Tests for the method registry."""

import pytest

from repro.experiments import TABLE2_METHODS, TABLE3_METHODS, available_methods, get_method


class TestRegistry:
    def test_all_methods_listed(self):
        names = available_methods()
        for expected in (
            "slimfast",
            "slimfast-erm",
            "slimfast-em",
            "sources-erm",
            "sources-em",
            "counts",
            "accu",
            "catd",
            "sstf",
            "majority",
            "truthfinder",
        ):
            assert expected in names

    def test_table_lineups_registered(self):
        for name in TABLE2_METHODS + TABLE3_METHODS:
            assert name in available_methods()

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            get_method("quantum-fusion")

    @pytest.mark.parametrize("name", ["slimfast-erm", "counts", "majority"])
    def test_runners_produce_results(self, small_dataset, name):
        runner = get_method(name)
        split = small_dataset.split(0.2, seed=0)
        result = runner(small_dataset, split.train_truth)
        assert set(result.values) == set(small_dataset.objects.items)

    def test_fresh_instance_each_call(self):
        assert get_method("accu") is not get_method("accu")
