"""Smoke tests for the table/figure drivers at reduced scale."""

import pytest

from repro.data import generate_crowd, generate_stocks
from repro.experiments import (
    figure4a,
    figure5_grid,
    figure7,
    figure8,
    lasso_figure,
    run_sweep,
    table1,
    table2,
    table2_panel_b,
    table3,
    table4,
    table5,
    table6,
)


@pytest.fixture(scope="module")
def mini_datasets():
    return {
        "stocks": generate_stocks(n_objects=100, seed=0),
        "crowd": generate_crowd(n_objects=80, seed=0),
    }


@pytest.fixture(scope="module")
def mini_report(mini_datasets):
    return run_sweep(
        mini_datasets,
        methods=["slimfast-erm", "counts", "majority"],
        fractions=(0.1, 0.3),
        seeds=(0,),
    )


class TestTableDrivers:
    def test_table1(self, mini_datasets):
        text = table1(mini_datasets)
        assert "# Sources" in text
        assert "34" in text  # stocks source count

    def test_table2(self, mini_report):
        text = table2(mini_report)
        assert "object-value accuracy" in text
        assert "slimfast-erm" in text

    def test_table2_panel_b(self, mini_report):
        text = table2_panel_b(mini_report, reference="slimfast-erm")
        assert "relative difference" in text
        assert "%" in text

    def test_table3(self, mini_report):
        text = table3(mini_report, methods=["slimfast-erm", "counts"])
        assert "source-accuracy" in text

    def test_table5(self, mini_report):
        text = table5(mini_report)
        assert "runtimes" in text
        # The default-mode report times SLiMFast fits through the batched
        # sweep engine; the rendered table must say so.
        assert 'mode="isolated"' in text

    def test_table4(self, mini_datasets):
        rows, text = table4(mini_datasets, fractions=(0.2,), seeds=(0,))
        assert len(rows) == 2
        for row in rows:
            assert row.decision in ("em", "erm")
        assert "optimizer evaluation" in text

    def test_table6(self, mini_datasets):
        text = table6(mini_datasets["stocks"], fractions=(0.2,))
        assert "runtime breakdown" in text


class TestFigureDrivers:
    def test_figure4a_points(self):
        points = figure4a(
            train_fractions=(0.05, 0.4),
            n_sources=60,
            n_objects=60,
            seeds=(0,),
        )
        assert len(points) == 2
        for point in points:
            assert 0.0 <= point.em_accuracy <= 1.0
            assert point.winner in ("em", "erm", "tie")

    def test_figure4b_boundary_fraction_clamped(self):
        # A training-observation budget larger than the instance drives
        # figure4b's computed fraction to its 1.0 clamp; the driver must
        # pull it back to a valid split instead of crashing now that
        # split() rejects degenerate fractions.
        from repro.experiments import figure4b

        points = figure4b(
            densities=(0.05,),
            n_sources=20,
            n_objects=15,
            train_observations=400,
            seeds=(0,),
        )
        assert len(points) == 1
        assert 0.0 <= points[0].em_accuracy <= 1.0

    def test_figure5_grid_cells(self):
        cells = figure5_grid(
            train_fractions=(0.05,),
            accuracies=(0.6,),
            densities=(0.02,),
            n_sources=60,
            n_objects=60,
            seeds=(0,),
        )
        assert len(cells) == 1
        assert cells[0].winner in ("em", "erm", "-")

    def test_figure7(self, mini_datasets):
        curves, text = figure7({"stocks": mini_datasets["stocks"]}, fractions=(0.5,), seeds=(0,))
        assert 0.0 <= curves["stocks"][0.5] <= 1.0
        assert "unseen sources" in text

    def test_figure8(self, mini_datasets):
        report = figure8(mini_datasets["stocks"], fractions=(0.2,), seeds=(0,), max_pairs=20)
        assert 0.2 in report.accuracy_with
        assert "Copying" in report.text or "copying" in report.text

    def test_lasso_figure(self, mini_datasets):
        report = lasso_figure(mini_datasets["stocks"], n_penalties=6)
        assert report.path.weights.shape[0] == 6
        assert "predictive features" in report.text
