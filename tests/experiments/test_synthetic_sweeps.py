"""Tests for the Figure 4/5 synthetic sweep drivers."""

import pytest

from repro.experiments import figure4a, figure4b, figure4c, figure5_grid
from repro.experiments.synthetic_sweeps import SweepPoint


class TestSweepPoint:
    def test_winner(self):
        assert SweepPoint(0.1, em_accuracy=0.9, erm_accuracy=0.8).winner == "em"
        assert SweepPoint(0.1, em_accuracy=0.7, erm_accuracy=0.8).winner == "erm"
        assert SweepPoint(0.1, em_accuracy=0.8, erm_accuracy=0.8).winner == "tie"


class TestFigure4Drivers:
    def test_figure4a_shapes(self):
        points = figure4a(
            train_fractions=(0.05, 0.5),
            n_sources=200,
            n_objects=100,
            seeds=(0,),
        )
        assert [p.x for p in points] == [0.05, 0.5]
        for point in points:
            assert 0.0 <= point.em_accuracy <= 1.0
            assert 0.0 <= point.erm_accuracy <= 1.0

    def test_figure4a_intercept_variant_differs(self):
        plain = figure4a(
            train_fractions=(0.1,),
            n_sources=300,
            n_objects=100,
            density=0.01,
            seeds=(0,),
        )
        intercept = figure4a(
            train_fractions=(0.1,),
            n_sources=300,
            n_objects=100,
            density=0.01,
            seeds=(0,),
            erm_intercept=True,
        )
        # EM runs are identical; ERM should change with the intercept.
        assert plain[0].em_accuracy == pytest.approx(intercept[0].em_accuracy)
        assert plain[0].erm_accuracy != pytest.approx(intercept[0].erm_accuracy, abs=1e-12)

    def test_figure4b_label_budget_shrinks_with_density(self):
        points = figure4b(
            densities=(0.01, 0.05),
            n_sources=200,
            n_objects=100,
            train_observations=50,
            seeds=(0,),
        )
        assert len(points) == 2

    def test_figure4c_x_axis(self):
        points = figure4c(accuracies=(0.6, 0.8), n_sources=200, n_objects=100, seeds=(0,))
        assert [p.x for p in points] == [0.6, 0.8]


class TestFigure5Driver:
    def test_grid_cardinality_and_fields(self):
        cells = figure5_grid(
            train_fractions=(0.05,),
            accuracies=(0.6, 0.8),
            densities=(0.02,),
            n_sources=200,
            n_objects=100,
            seeds=(0,),
        )
        assert len(cells) == 2
        for cell in cells:
            assert cell.winner in ("em", "erm", "-")

    def test_tie_margin_produces_dash(self):
        cells = figure5_grid(
            train_fractions=(0.05,),
            accuracies=(0.7,),
            densities=(0.02,),
            n_sources=200,
            n_objects=100,
            seeds=(0,),
            tie_margin=1.0,  # everything within margin
        )
        assert cells[0].winner == "-"
