"""Tests for the experiment harness."""

import math

import pytest

from repro.experiments import (
    CellKey,
    aggregate,
    best_method_per_cell,
    run_method,
    sweep,
)


class TestRunMethod:
    def test_basic_run(self, small_dataset):
        result = run_method(small_dataset, "majority", 0.2, seed=0)
        assert result.method == "majority"
        assert result.dataset == small_dataset.name
        assert 0.0 <= result.object_accuracy <= 1.0
        assert result.runtime_seconds > 0.0

    def test_source_error_nan_for_weight_methods(self, small_dataset):
        result = run_method(small_dataset, "catd", 0.2, seed=0)
        assert math.isnan(result.source_error)

    def test_source_error_present_for_probabilistic(self, small_dataset):
        result = run_method(small_dataset, "counts", 0.2, seed=0)
        assert not math.isnan(result.source_error)

    def test_unknown_method(self, small_dataset):
        with pytest.raises(KeyError, match="unknown method"):
            run_method(small_dataset, "nonsense", 0.2)

    def test_deterministic_per_seed(self, small_dataset):
        a = run_method(small_dataset, "slimfast-erm", 0.2, seed=1)
        b = run_method(small_dataset, "slimfast-erm", 0.2, seed=1)
        assert a.object_accuracy == b.object_accuracy


class TestSweepAndAggregate:
    def test_sweep_cardinality(self, small_dataset):
        results = sweep(small_dataset, ["majority", "counts"], (0.1, 0.2), seeds=(0, 1))
        assert len(results) == 2 * 2 * 2

    def test_aggregate_averages_seeds(self, small_dataset):
        results = sweep(small_dataset, ["majority"], (0.2,), seeds=(0, 1, 2))
        cells = aggregate(results)
        key = CellKey(small_dataset.name, "majority", 0.2)
        assert key in cells
        assert cells[key].n_runs == 3
        manual = sum(r.object_accuracy for r in results) / 3
        assert cells[key].object_accuracy == pytest.approx(manual)

    def test_best_method_per_cell(self, small_dataset):
        results = sweep(small_dataset, ["majority", "slimfast-em"], (0.1,), seeds=(0,))
        cells = aggregate(results)
        best = best_method_per_cell(cells)
        assert (small_dataset.name, 0.1) in best
        assert best[(small_dataset.name, 0.1)] in ("majority", "slimfast-em")
