"""Tests for table/series rendering."""

from repro.experiments import accuracy_matrix, format_table, series
from repro.experiments.harness import CellKey, CellStats


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Blong"], [["x", 1.23456], ["yy", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "1.235" in text

    def test_title(self):
        text = format_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text


class TestAccuracyMatrix:
    def _cells(self):
        return {
            CellKey("ds", "m1", 0.1): CellStats(0.9, 0.05, 1.0, 3),
            CellKey("ds", "m2", 0.1): CellStats(0.8, 0.10, 2.0, 3),
        }

    def test_object_accuracy_matrix(self):
        text = accuracy_matrix(self._cells(), "ds", ["m1", "m2"], [0.1])
        assert "0.900" in text
        assert "0.800" in text

    def test_missing_cells_render_dash(self):
        text = accuracy_matrix(self._cells(), "ds", ["m1", "m3"], [0.1])
        assert "-" in text

    def test_metric_selection(self):
        text = accuracy_matrix(self._cells(), "ds", ["m1"], [0.1], metric="runtime_seconds")
        assert "1.000" in text


class TestSeries:
    def test_sorted_by_x(self):
        text = series({0.2: 1.0, 0.1: 2.0}, "x", "y")
        lines = text.splitlines()
        assert lines[2].startswith("0.1")
        assert lines[3].startswith("0.2")
