"""Equivalence contract of the batched sweep engine.

``SweepRunner(mode="batched")`` shares one compiled encoding, cached
structures/label plans and warm-start state across fits; these tests pin
that its results match independent per-fit runs (``mode="isolated"``) at
the PR 2 solver-contract tolerances — final objective values at atol=1e-8
and source accuracies near 1e-6 — across EM, ERM and the selection
leave-one-source-out path.  With the inner M-step tolerance tightened the
two modes' trajectories coincide and agreement is far tighter; with each
mode's *default* solver (batched: ``lbfgs-warm``; isolated: scipy
``lbfgs``) agreement is bounded by scipy's double-precision stopping
plateau, exactly like the EM warm-solver contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SLiMFast
from repro.core.structure import build_masked_structure
from repro.data import SyntheticConfig, generate
from repro.experiments import FitSpec, SweepRunner, leave_one_out_specs, sweep
from repro.extensions import leave_one_out_impacts
from repro.fusion.dataset import subset_sources

OBJECTIVE_ATOL = 1e-8
ACCURACY_ATOL = 1e-6
#: Tightened inner tolerance that makes solver trajectories coincide.
TIGHT = {"m_step_tolerance": 1e-13}

CONFIGS = [
    SyntheticConfig(
        n_sources=40,
        n_objects=90,
        density=0.15,
        avg_accuracy=0.72,
        n_features=6,
        n_informative=3,
        seed=101,
        name="binary-featureful",
    ),
    SyntheticConfig(
        n_sources=25,
        n_objects=70,
        density=0.25,
        avg_accuracy=0.6,
        domain_size_range=(3, 5),
        n_features=5,
        n_informative=2,
        seed=202,
        name="multi-valued",
    ),
]


@pytest.fixture(params=CONFIGS, ids=lambda c: c.name)
def dataset(request):
    return generate(request.param).dataset


def _em_specs(dataset, fractions=(0.1, 0.25, 0.4), solver="lbfgs-warm", **extra):
    overrides = {"max_iterations": 6, "solver": solver, **TIGHT, **extra}
    return [
        FitSpec(
            name=f"em@{fraction}",
            learner="em",
            train_truth=dataset.split(fraction, seed=0).train_truth,
            overrides=overrides,
        )
        for fraction in fractions
    ]


def _assert_fits_match(batched, isolated, atol=ACCURACY_ATOL):
    for b, i in zip(batched, isolated):
        assert b.objective_value == pytest.approx(i.objective_value, abs=OBJECTIVE_ATOL)
        np.testing.assert_allclose(b.model.accuracies(), i.model.accuracies(), atol=atol)
        assert b.result.object_ids == i.result.object_ids
        np.testing.assert_allclose(
            b.result.posterior_matrix, i.result.posterior_matrix, atol=atol * 10
        )


class TestEMEquivalence:
    def test_batched_matches_isolated_same_solver(self, dataset):
        specs = _em_specs(dataset)
        batched = SweepRunner(dataset, mode="batched").run(specs)
        isolated = SweepRunner(dataset, mode="isolated").run(specs)
        # Warm handoff threads through the sweep after the first fit...
        assert [fit.warm_started for fit in batched][1:] == ["em@0.1", "em@0.25"]
        # ...while every result stays equivalent to an independent fit.
        _assert_fits_match(batched, isolated)

    def test_batched_matches_isolated_scipy_solver(self, dataset):
        # Same scipy M-step in both modes: only the shared caches and the
        # warm inner starting points differ.
        specs = _em_specs(dataset, solver="lbfgs")
        batched = SweepRunner(dataset, mode="batched").run(specs)
        isolated = SweepRunner(dataset, mode="isolated").run(specs)
        _assert_fits_match(batched, isolated)

    def test_default_solvers_meet_warm_contract(self, dataset):
        # Batched defaults to lbfgs-warm, isolated to scipy lbfgs; the two
        # agree at the PR 2 warm-solver contract scale (scipy's stopping
        # plateau bounds accuracy agreement near 1e-6; 5e-5 is the same
        # slack the EM warm-solver test uses, and the per-round label drift
        # it causes moves unconverged mid-run objectives a notch above the
        # same-solver 1e-8 bound).
        specs = [
            FitSpec(
                name="default",
                learner="em",
                train_truth=dataset.split(0.2, seed=3).train_truth,
                overrides={"max_iterations": 6, **TIGHT},
            )
        ]
        b0 = SweepRunner(dataset, mode="batched").run(specs)[0]
        i0 = SweepRunner(dataset, mode="isolated").run(specs)[0]
        assert b0.objective_value == pytest.approx(i0.objective_value, abs=1e-6)
        np.testing.assert_allclose(b0.model.accuracies(), i0.model.accuracies(), atol=5e-5)

    def test_unsupervised_fit(self, dataset):
        specs = [
            FitSpec(name="unsup", learner="em", overrides={"max_iterations": 5, **TIGHT})
        ]
        batched = SweepRunner(dataset).run(specs)
        isolated = SweepRunner(dataset, mode="isolated").run(specs)
        _assert_fits_match(batched, isolated)

    def test_batched_matches_facade(self, dataset):
        # The facade is the historical per-fit entry point; a batched fit
        # with the facade's solver must reproduce it.
        truth = dataset.split(0.3, seed=1).train_truth
        fit = SweepRunner(dataset).run_one(
            FitSpec(
                name="facade",
                learner="em",
                train_truth=truth,
                overrides={"solver": "lbfgs", **TIGHT},
            )
        )
        from repro.core.em import EMConfig

        facade = SLiMFast(
            learner="em",
            em_config=EMConfig(solver="lbfgs", m_step_tolerance=TIGHT["m_step_tolerance"]),
        )
        reference = facade.fit_predict(dataset, truth)
        estimated = fit.result.source_accuracies
        for source, acc in reference.source_accuracies.items():
            assert estimated[source] == pytest.approx(acc, abs=ACCURACY_ATOL)
        assert fit.result.values == reference.values


class TestERMEquivalence:
    def test_batched_matches_isolated(self, dataset):
        specs = [
            FitSpec(
                name=f"erm@{fraction}",
                learner="erm",
                train_truth=dataset.split(fraction, seed=2).train_truth,
            )
            for fraction in (0.2, 0.4, 0.6)
        ]
        batched = SweepRunner(dataset).run(specs)
        isolated = SweepRunner(dataset, mode="isolated").run(specs)
        # ERM fits are never warm-started (see sweeps.py): a one-shot convex
        # solve under scipy's decrease-based stop would terminate early.
        assert all(fit.warm_started is None for fit in batched)
        _assert_fits_match(batched, isolated)

    def test_erm_intercept_override(self, dataset):
        truth = dataset.split(0.4, seed=4).train_truth
        spec = FitSpec(
            name="erm",
            learner="erm",
            train_truth=truth,
            use_features=False,
            overrides={"intercept": True},
        )
        fit = SweepRunner(dataset).run_one(spec)
        from repro.core.erm import ERMConfig, ERMLearner

        reference = ERMLearner(
            ERMConfig(use_features=False, intercept=True)
        ).fit(dataset, truth)
        np.testing.assert_allclose(
            fit.model.accuracies(), reference.accuracies(), atol=ACCURACY_ATOL
        )

    def test_auto_learner_matches_facade_choice(self, dataset):
        truth = dataset.split(0.5, seed=5).train_truth
        fit = SweepRunner(dataset).run_one(
            FitSpec(name="auto", learner="auto", train_truth=truth, overrides=TIGHT)
        )
        facade = SLiMFast(learner="auto").fit(dataset, truth)
        assert fit.learner_used == facade.chosen_learner_
        # Auto fits record the optimizer decision, like the facade does.
        decision = fit.result.diagnostics["optimizer"]
        assert decision.algorithm == facade.decision_.algorithm

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5])
    def test_auto_learner_choice_mode_independent(self, dataset, fraction):
        # The batched mode caches the optimizer's accuracy estimate; it must
        # be the same estimator decide() uses, or the cached value could
        # flip an auto decision between modes.
        truth = dataset.split(fraction, seed=6).train_truth if fraction else {}
        spec = FitSpec(name="auto", learner="auto", train_truth=truth)
        batched = SweepRunner(dataset, mode="batched").run_one(spec)
        isolated = SweepRunner(dataset, mode="isolated").run_one(spec)
        assert batched.learner_used == isolated.learner_used

    def test_isolated_erm_supports_sgd_and_conditional(self, dataset):
        # Isolated mode is the classic per-fit path: configs the structure
        # path cannot express (sgd sample streams, conditional objective)
        # must keep working.
        truth = dataset.split(0.4, seed=7).train_truth
        runner = SweepRunner(dataset, mode="isolated")
        for overrides in ({"solver": "sgd", "sgd_epochs": 2}, {"objective": "conditional"}):
            fit = runner.run_one(
                FitSpec(name="erm", learner="erm", train_truth=truth, overrides=overrides)
            )
            assert fit.learner_used == "erm"

    def test_masked_erm_requires_structure_path(self, dataset):
        truth = dataset.split(0.4, seed=7).train_truth
        spec = FitSpec(
            name="erm",
            learner="erm",
            train_truth=truth,
            exclude_sources=(dataset.sources.items[0],),
            overrides={"solver": "sgd"},
        )
        with pytest.raises(ValueError, match="source-masked ERM"):
            SweepRunner(dataset).run_one(spec)


class TestLeaveOneOutEquivalence:
    def test_masked_specs_match_isolated(self, dataset):
        truth = dataset.split(0.2, seed=0).train_truth
        specs = leave_one_out_specs(
            dataset,
            truth,
            sources=dataset.sources.items[:4],
            overrides={"max_iterations": 5, "solver": "lbfgs-warm", **TIGHT},
        )
        batched = SweepRunner(dataset).run(specs)
        isolated = SweepRunner(dataset, mode="isolated").run(specs)
        _assert_fits_match(batched, isolated)

    def test_masked_fit_matches_subset_dataset(self, dataset):
        # Featureless sources-EM on a masked structure must reproduce a fit
        # on the rebuilt subset dataset: the model slot kept for the
        # excluded source is inert (no samples, ridge pulls it to the
        # intercept) and the masked blocks equal the subset domains.
        dropped = dataset.sources.items[0]
        truth = dataset.split(0.2, seed=0).train_truth
        overrides = {"max_iterations": 5, "solver": "lbfgs-warm", **TIGHT}
        fit = SweepRunner(dataset).run_one(
            FitSpec(
                name="loo",
                learner="em",
                train_truth=truth,
                use_features=False,
                exclude_sources=(dropped,),
                overrides=overrides,
            )
        )
        subset = subset_sources(dataset, [s for s in dataset.sources.items if s != dropped])
        subset_truth = {obj: v for obj, v in truth.items() if obj in subset.objects}
        from repro.core.em import EMConfig, EMLearner

        config = EMConfig(use_features=False, **overrides)
        reference = EMLearner(config).fit(subset, subset_truth)
        masked_accs = dict(zip(fit.model.source_ids, fit.model.accuracies()))
        for source, acc in zip(reference.source_ids, reference.accuracies()):
            assert masked_accs[source] == pytest.approx(float(acc), abs=1e-5)
        reference_posteriors = dict(fit.result.posteriors)
        subset_result = SweepRunner(subset, mode="isolated").run_one(
            FitSpec(
                name="subset",
                learner="em",
                train_truth=subset_truth,
                use_features=False,
                overrides=overrides,
            )
        )
        for obj, dist in subset_result.result.posteriors.items():
            for value, prob in dist.items():
                assert reference_posteriors[obj][value] == pytest.approx(prob, abs=1e-5)

    def test_masked_structure_backends_agree(self, dataset):
        exclude = dataset.sources.items[:2]
        vec = build_masked_structure(dataset, exclude, backend="vectorized")
        ref = build_masked_structure(dataset, exclude, backend="reference")
        assert vec.object_ids == ref.object_ids
        assert vec.pair_values == ref.pair_values
        np.testing.assert_array_equal(vec.object_dataset_idx, ref.object_dataset_idx)
        np.testing.assert_array_equal(vec.pair_object_pos, ref.pair_object_pos)
        np.testing.assert_array_equal(vec.pair_offsets, ref.pair_offsets)
        np.testing.assert_array_equal(vec.obs_source_idx, ref.obs_source_idx)
        np.testing.assert_array_equal(vec.obs_pair_idx, ref.obs_pair_idx)
        np.testing.assert_allclose(vec.base_scores, ref.base_scores, atol=1e-12)

    def test_masked_reference_backend_matches_vectorized(self, dataset):
        # The ERM warm start inside a masked EM fit must restrict itself to
        # the surviving observations on BOTH backends; a reference-backend
        # masked fit that warm-starts from the full dataset leaks the
        # excluded source's votes into the initialization.
        truth = dataset.split(0.3, seed=2).train_truth
        spec = FitSpec(
            name="loo",
            learner="em",
            train_truth=truth,
            exclude_sources=(dataset.sources.items[0],),
            overrides={"max_iterations": 5, "solver": "lbfgs", **TIGHT},
        )
        vec = SweepRunner(dataset, mode="isolated").run_one(spec)
        ref = SweepRunner(dataset, mode="isolated", backend="reference").run_one(spec)
        np.testing.assert_allclose(
            vec.model.accuracies(), ref.model.accuracies(), atol=ACCURACY_ATOL
        )

    def test_leave_one_out_impacts_modes_agree(self, dataset):
        truth = dataset.split(0.25, seed=1).train_truth
        kwargs = dict(
            sources=dataset.sources.items[:3],
            use_features=False,
            overrides={"max_iterations": 4, "solver": "lbfgs-warm", **TIGHT},
        )
        batched = leave_one_out_impacts(dataset, truth, mode="batched", **kwargs)
        isolated = leave_one_out_impacts(dataset, truth, mode="isolated", **kwargs)
        assert [i.source for i in batched] == [i.source for i in isolated]
        for b, i in zip(batched, isolated):
            assert b.loo_accuracy == pytest.approx(i.loo_accuracy, abs=1e-9)
            assert b.impact == pytest.approx(i.impact, abs=1e-9)


class TestRunnerBehaviour:
    def test_rejects_unknown_mode_and_learner(self, dataset):
        with pytest.raises(ValueError, match="unknown mode"):
            SweepRunner(dataset, mode="parallel")
        with pytest.raises(ValueError, match="unknown learner"):
            SweepRunner(dataset).run_one(FitSpec(name="x", learner="gibbs"))
        with pytest.raises(ValueError, match="vectorized"):
            SweepRunner(dataset, backend="reference")

    def test_erm_requires_truth(self, dataset):
        from repro.fusion.types import DatasetError

        with pytest.raises(DatasetError, match="ground truth"):
            SweepRunner(dataset).run_one(FitSpec(name="erm", learner="erm"))

    def test_warm_start_can_be_disabled(self, dataset):
        specs = _em_specs(dataset, fractions=(0.1, 0.2))
        runner = SweepRunner(dataset, warm_start=False)
        fits = runner.run(specs)
        assert all(fit.warm_started is None for fit in fits)

    def test_structures_and_plans_are_cached(self, dataset):
        runner = SweepRunner(dataset)
        truth = dataset.split(0.2, seed=0).train_truth
        spec = FitSpec(name="a", learner="erm", train_truth=truth)
        runner.run([spec, FitSpec(name="b", learner="erm", train_truth=truth)])
        assert len(runner._structures) == 1
        assert len(runner._label_plans) == 1

    def test_from_method_mapping(self, dataset):
        truth = dataset.split(0.3, seed=0).train_truth
        spec = FitSpec.from_method("sources-em", "sources-em", truth)
        assert spec.learner == "em"
        assert spec.use_features is False
        with pytest.raises(KeyError, match="no sweep spec"):
            FitSpec.from_method("x", "majority", truth)

    def test_harness_sweep_modes_agree(self, dataset):
        methods = ["sources-erm", "majority"]
        batched = sweep(dataset, methods, (0.2,), seeds=(0,), mode="batched")
        isolated = sweep(dataset, methods, (0.2,), seeds=(0,), mode="isolated")
        for b, i in zip(batched, isolated):
            assert b.method == i.method
            assert b.object_accuracy == pytest.approx(i.object_accuracy, abs=1e-6)

    def test_harness_sweep_rejects_unknown_mode(self, dataset):
        with pytest.raises(ValueError, match="unknown mode"):
            sweep(dataset, ["majority"], (0.2,), seeds=(0,), mode="Batched")


class TestParallelExecution:
    """Cross-process determinism contract of ``SweepRunner(n_jobs=...)``.

    A sweep run with ``n_jobs=1``, ``n_jobs=4`` and the serial batched
    path must produce equal ``SweepFitResult`` objectives/accuracies at
    the contract tolerances, including the leave-one-out masked-structure
    path — and the parallel results must not depend on worker scheduling
    (chunking is deterministic, warm donors never cross chunks).
    """

    def _mixed_specs(self, dataset):
        em = _em_specs(dataset, fractions=(0.1, 0.25, 0.4))
        erm = [
            FitSpec(
                name="erm@0.3",
                learner="erm",
                train_truth=dataset.split(0.3, seed=2).train_truth,
            )
        ]
        auto = [
            FitSpec(
                name="auto@0.2",
                learner="auto",
                train_truth=dataset.split(0.2, seed=5).train_truth,
                overrides=TIGHT,
            )
        ]
        return em + erm + auto

    def test_n_jobs_matches_serial_batched(self, dataset):
        specs = self._mixed_specs(dataset)
        serial = SweepRunner(dataset, mode="batched").run(specs)
        one = SweepRunner(dataset, mode="batched", n_jobs=1).run(specs)
        four = SweepRunner(dataset, mode="batched", n_jobs=4).run(specs)
        _assert_fits_match(serial, one)
        _assert_fits_match(serial, four)
        for s, p in zip(serial, four):
            assert s.learner_used == p.learner_used
            assert s.result.method == p.result.method

    def test_parallel_runs_are_reproducible(self, dataset):
        specs = _em_specs(dataset, fractions=(0.1, 0.2, 0.3, 0.4))
        first = SweepRunner(dataset, mode="batched", n_jobs=3).run(specs)
        second = SweepRunner(dataset, mode="batched", n_jobs=3).run(specs)
        for a, b in zip(first, second):
            assert a.objective_value == b.objective_value
            np.testing.assert_array_equal(a.model.accuracies(), b.model.accuracies())
            assert a.warm_started == b.warm_started

    def test_leave_one_out_masked_path(self, dataset):
        truth = dataset.split(0.2, seed=0).train_truth
        specs = leave_one_out_specs(
            dataset,
            truth,
            sources=dataset.sources.items[:4],
            overrides={"max_iterations": 5, "solver": "lbfgs-warm", **TIGHT},
        )
        serial = SweepRunner(dataset, mode="batched").run(specs)
        parallel = SweepRunner(dataset, mode="batched", n_jobs=4).run(specs)
        _assert_fits_match(serial, parallel)

    def test_forced_shared_memory_transport(self, dataset, monkeypatch):
        import repro.experiments.parallel as parallel_module

        # Force every array through the shared segment regardless of size,
        # exercising pack/attach on platforms where fork would otherwise
        # bypass it.
        monkeypatch.setattr(parallel_module, "SHARED_ARRAY_MIN_BYTES", 1)
        specs = _em_specs(dataset, fractions=(0.1, 0.3)) + leave_one_out_specs(
            dataset,
            dataset.split(0.2, seed=0).train_truth,
            sources=dataset.sources.items[:1],
            overrides={"max_iterations": 4, **TIGHT},
        )
        serial = SweepRunner(dataset, mode="batched").run(specs)
        shm = SweepRunner(dataset, mode="batched", n_jobs=2, shared_memory=True).run(specs)
        _assert_fits_match(serial, shm)

    def test_single_spec_stays_in_process(self, dataset):
        runner = SweepRunner(dataset, mode="batched", n_jobs=4)
        spec = FitSpec(
            name="solo",
            learner="em",
            train_truth=dataset.split(0.2, seed=0).train_truth,
            overrides={"max_iterations": 3, **TIGHT},
        )
        fits = runner.run([spec])  # no pool for one fit
        reference = SweepRunner(dataset, mode="batched").run([spec])
        _assert_fits_match(fits, reference)

    def test_harness_sweep_n_jobs_agrees(self, dataset):
        from repro.experiments import sweep

        methods = ["sources-erm", "slimfast-em"]
        serial = sweep(dataset, methods, (0.2, 0.4), seeds=(0,), n_jobs=1)
        parallel = sweep(dataset, methods, (0.2, 0.4), seeds=(0,), n_jobs=2)
        for s, p in zip(serial, parallel):
            assert s.method == p.method and s.seed == p.seed
            assert s.object_accuracy == pytest.approx(p.object_accuracy, abs=1e-6)
            assert s.source_error == pytest.approx(p.source_error, abs=1e-6, nan_ok=True)

    def test_validation(self, dataset):
        with pytest.raises(ValueError, match='mode="batched"'):
            SweepRunner(dataset, mode="isolated", n_jobs=2)
        with pytest.raises(ValueError, match="positive integer"):
            SweepRunner(dataset, n_jobs=0)
        with pytest.raises(ValueError, match="shared_memory"):
            SweepRunner(dataset, shared_memory="always")
        with pytest.raises(ValueError, match="unknown learner"):
            SweepRunner(dataset, n_jobs=2).run(
                [FitSpec(name="a", learner="gibbs"), FitSpec(name="b", learner="gibbs")]
            )

    def test_n_jobs_none_resolves_to_cpu_count(self, dataset):
        import os

        runner = SweepRunner(dataset, n_jobs=None)
        assert runner.n_jobs == max(os.cpu_count() or 1, 1)


class TestParallelHelpers:
    def test_chunk_indices_contiguous_and_balanced(self):
        from repro.experiments.parallel import chunk_indices

        chunks = chunk_indices(10, 4)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(10))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        # Deterministic: same inputs, same chunking.
        assert chunks == chunk_indices(10, 4)
        # More chunks than items collapses to one item per chunk.
        assert [len(c) for c in chunk_indices(2, 8)] == [1, 1]
        assert chunk_indices(0, 3) == []

    def test_shared_array_pack_round_trip(self):
        from repro.experiments.parallel import SharedArrayPack, attach_shared_arrays

        arrays = {
            "a": np.arange(7, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5),
            "c": np.zeros((3, 2), dtype=np.float32),
        }
        pack = SharedArrayPack(arrays)
        try:
            attached, segment = attach_shared_arrays(pack.descriptor)
            for key, array in arrays.items():
                np.testing.assert_array_equal(attached[key], array)
                assert not attached[key].flags.writeable
            segment.close()
        finally:
            pack.release()
            pack.release()  # idempotent

    def test_registry_state_round_trips_through_pickle(self, dataset):
        import pickle

        specs = _em_specs(dataset, fractions=(0.1,))
        runner = SweepRunner(dataset, mode="batched")
        runner.run(specs)
        state = runner._warm_registry[-1][-1]
        revived = pickle.loads(pickle.dumps(state))
        np.testing.assert_array_equal(revived.w, state.w)
        assert (revived.memory is None) == (state.memory is None)

    def test_warm_start_state_round_trip(self):
        import pickle

        from repro.optim.solvers import LBFGSMemory, WarmStartState

        rng = np.random.default_rng(0)
        memory = LBFGSMemory(max_pairs=5)
        for _ in range(3):
            s_vec = rng.normal(size=6)
            memory.push(s_vec, s_vec + 0.1 * rng.normal(size=6))
        assert memory.s
        state = WarmStartState(w=rng.normal(size=6), memory=memory)

        revived = WarmStartState.from_state(state.to_state())
        np.testing.assert_array_equal(revived.w, state.w)
        assert len(revived.memory.s) == len(state.memory.s)
        for a, b in zip(revived.memory.s, state.memory.s):
            np.testing.assert_array_equal(a, b)

        pickled = pickle.loads(pickle.dumps(state))
        np.testing.assert_array_equal(pickled.w, state.w)
        assert pickled.memory.rho == state.memory.rho
        # A deserialized memory still produces descent directions.
        grad = np.ones_like(state.w)
        direction = pickled.memory.direction(grad)
        assert float(grad @ direction) < 0
