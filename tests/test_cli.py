"""Tests for the ``python -m repro`` command-line interface."""

import csv

import pytest

from repro.__main__ import main
from repro.data import save_dataset


class TestStats:
    def test_prints_table1(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "# Sources" in out
        assert "2750" in out  # genomics source count


class TestDemo:
    def test_runs_on_crowd(self, capsys):
        assert main(["demo", "--dataset", "crowd", "--train-fraction", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert "learner chosen" in out

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["demo", "--dataset", "nope"])


class TestFuse:
    def test_fuses_csv_directory(self, tmp_path, tiny_dataset, capsys):
        input_dir = tmp_path / "in"
        output_dir = tmp_path / "out"
        save_dataset(tiny_dataset, input_dir)
        assert main(["fuse", str(input_dir), str(output_dir), "--use-truth"]) == 0

        with open(output_dir / "fused_values.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert {row["object"] for row in rows} == {"gigyf2", "gba"}

        with open(output_dir / "source_accuracies.csv", newline="") as handle:
            accs = list(csv.DictReader(handle))
        assert {row["source"] for row in accs} == {"a1", "a2", "a3"}

    def test_unsupervised_fuse(self, tmp_path, tiny_dataset):
        input_dir = tmp_path / "in"
        save_dataset(tiny_dataset, input_dir)
        assert main(["fuse", str(input_dir), str(tmp_path / "out"), "--learner", "em"]) == 0
