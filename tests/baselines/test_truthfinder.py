"""Tests for the TruthFinder baseline (Yin et al. 2007)."""

import numpy as np

from repro.baselines import TruthFinder
from repro.data import SyntheticConfig, generate


class TestTruthFinder:
    def test_unsupervised_recovery(self):
        instance = generate(
            SyntheticConfig(
                n_sources=40,
                n_objects=120,
                density=0.25,
                avg_accuracy=0.75,
                accuracy_spread=0.1,
                seed=8,
            )
        )
        ds = instance.dataset
        result = TruthFinder().fit_predict(ds, {})
        assert result.accuracy(ds) > 0.8

    def test_trust_correlates_with_accuracy(self):
        instance = generate(
            SyntheticConfig(
                n_sources=40,
                n_objects=200,
                density=0.25,
                avg_accuracy=0.7,
                accuracy_spread=0.15,
                seed=9,
            )
        )
        ds = instance.dataset
        result = TruthFinder().fit_predict(ds, {})
        est = np.array([result.source_accuracies[s] for s in ds.sources])
        true = np.array([ds.true_accuracies[s] for s in ds.sources])
        assert np.corrcoef(est, true)[0, 1] > 0.5

    def test_anchored_truth_clamped(self, tiny_dataset):
        result = TruthFinder().fit_predict(tiny_dataset, {"gigyf2": "true"})
        assert result.values["gigyf2"] == "true"

    def test_trust_in_unit_interval(self, small_dataset):
        result = TruthFinder().fit_predict(small_dataset, {})
        assert all(0.0 < t < 1.0 for t in result.source_accuracies.values())

    def test_all_objects_resolved(self, small_dataset):
        result = TruthFinder().fit_predict(small_dataset, {})
        assert set(result.values) == set(small_dataset.objects.items)

    def test_hyperparameters_accepted(self, small_dataset):
        result = TruthFinder(gamma=0.2, rho=0.3, initial_trust=0.8).fit_predict(small_dataset, {})
        assert result.method == "truthfinder"
