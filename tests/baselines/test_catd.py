"""Tests for the CATD baseline (Li et al. 2014)."""

import pytest

from repro.baselines import Catd
from repro.data import SyntheticConfig, generate
from repro.fusion import FusionDataset


class TestCatd:
    def test_unsupervised_beats_coin_flip(self):
        instance = generate(
            SyntheticConfig(
                n_sources=40,
                n_objects=150,
                density=0.2,
                avg_accuracy=0.7,
                accuracy_spread=0.12,
                seed=4,
            )
        )
        ds = instance.dataset
        result = Catd().fit_predict(ds, {})
        assert result.accuracy(ds) > 0.75

    def test_no_probabilistic_accuracies(self, small_dataset):
        """CATD measures reliability via normalized weights, not accuracies
        (the reason the paper omits it from Table 3)."""
        result = Catd().fit_predict(small_dataset, {})
        assert result.source_accuracies is None
        weights = result.diagnostics["normalized_weights"]
        assert set(weights) == set(small_dataset.sources.items)
        assert max(weights.values()) == pytest.approx(1.0)

    def test_long_tail_damping(self):
        """A small-sample source gets a lower weight than an equally
        accurate prolific source — CATD's core idea."""
        observations = []
        truth = {}
        for i in range(40):
            observations.append(("prolific", f"o{i}", "t"))
            observations.append((f"filler-{i}", f"o{i}", "f"))
            truth[f"o{i}"] = "t"
        observations.append(("tail", "o0b", "t"))
        observations.append(("filler-0", "o0b", "f"))
        truth["o0b"] = "t"
        ds = FusionDataset(observations, ground_truth=truth)
        result = Catd().fit_predict(ds, truth)
        weights = result.diagnostics["normalized_weights"]
        assert weights["prolific"] > weights["tail"]

    def test_truth_clamped(self, tiny_dataset):
        result = Catd().fit_predict(tiny_dataset, {"gigyf2": "true"})
        assert result.values["gigyf2"] == "true"

    def test_all_objects_resolved(self, small_dataset):
        result = Catd().fit_predict(small_dataset, {})
        assert set(result.values) == set(small_dataset.objects.items)

    def test_iteration_budget(self, small_dataset):
        result = Catd(max_iterations=2).fit_predict(small_dataset, {})
        assert result.diagnostics["iterations"] <= 2
