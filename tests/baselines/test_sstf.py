"""Tests for the SSTF baseline (Yin & Tan 2011)."""

import pytest

from repro.baselines import Sstf
from repro.data import SyntheticConfig, generate


class TestSstf:
    def test_resolves_all_objects(self, small_dataset):
        result = Sstf().fit_predict(small_dataset, {})
        assert set(result.values) == set(small_dataset.objects.items)

    def test_labels_propagate(self):
        """Anchored claims must pull co-claimed values of shared sources."""
        instance = generate(
            SyntheticConfig(
                n_sources=40,
                n_objects=120,
                density=0.2,
                avg_accuracy=0.72,
                accuracy_spread=0.1,
                seed=6,
            )
        )
        ds = instance.dataset
        split = ds.split(0.4, seed=0)
        with_labels = Sstf().fit_predict(ds, split.train_truth)
        without = Sstf().fit_predict(ds, {})
        acc_with = with_labels.accuracy(ds, list(split.test_objects))
        acc_without = without.accuracy(ds, list(split.test_objects))
        assert acc_with >= acc_without - 0.02

    def test_anchors_clamped(self, tiny_dataset):
        result = Sstf().fit_predict(tiny_dataset, {"gigyf2": "true"})
        assert result.values["gigyf2"] == "true"

    def test_posteriors_normalized(self, small_dataset):
        result = Sstf().fit_predict(small_dataset, {})
        for dist in result.posteriors.values():
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_no_source_accuracies(self, small_dataset):
        """SSTF does not estimate accuracies (excluded from Table 3)."""
        assert Sstf().fit_predict(small_dataset, {}).source_accuracies is None

    def test_beats_chance_on_easy_instance(self):
        instance = generate(
            SyntheticConfig(
                n_sources=30,
                n_objects=100,
                density=0.3,
                avg_accuracy=0.8,
                accuracy_spread=0.05,
                seed=7,
            )
        )
        ds = instance.dataset
        split = ds.split(0.3, seed=0)
        result = Sstf().fit_predict(ds, split.train_truth)
        assert result.accuracy(ds, list(split.test_objects)) > 0.6
