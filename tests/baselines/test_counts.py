"""Tests for the Counts (Naive Bayes) baseline."""

import pytest

from repro.baselines import Counts
from repro.fusion import FusionDataset


class TestAccuracyCounting:
    def test_empirical_with_smoothing(self, tiny_dataset):
        result = Counts(smoothing=1.0).fit_predict(tiny_dataset, tiny_dataset.ground_truth)
        accs = result.source_accuracies
        # a1: 2 correct of 2 -> (2+1)/(2+2)
        assert accs["a1"] == pytest.approx(0.75)
        # a2: 0 correct of 1 -> (0+1)/(1+2)
        assert accs["a2"] == pytest.approx(1 / 3)

    def test_unlabeled_source_gets_prior(self):
        ds = FusionDataset([("s1", "o1", "a"), ("s2", "o2", "b")], ground_truth={"o1": "a"})
        result = Counts(prior_accuracy=0.6).fit_predict(ds, {"o1": "a"})
        assert result.source_accuracies["s2"] == 0.6

    def test_no_truth_all_prior(self, tiny_dataset):
        result = Counts(prior_accuracy=0.5).fit_predict(tiny_dataset, {})
        assert all(a == 0.5 for a in result.source_accuracies.values())


class TestNaiveBayesInference:
    def test_weighted_vote_beats_plain_majority(self):
        """One highly-accurate source should outvote two poor ones."""
        observations = [
            ("good", "target", "a"),
            ("bad1", "target", "b"),
            ("bad2", "target", "b"),
        ]
        # labeled history making 'good' accurate and the others inaccurate
        for i in range(10):
            observations.append(("good", f"h{i}", "t"))
            observations.append(("bad1", f"h{i}", "f"))
            observations.append(("bad2", f"h{i}", "f"))
        truth = {f"h{i}": "t" for i in range(10)}
        ds = FusionDataset(observations, ground_truth={**truth, "target": "a"})
        result = Counts().fit_predict(ds, truth)
        assert result.values["target"] == "a"

    def test_posteriors_normalized(self, small_dataset):
        split = small_dataset.split(0.3, seed=0)
        result = Counts().fit_predict(small_dataset, split.train_truth)
        for dist in result.posteriors.values():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_multivalued_error_spread(self):
        """Errors spread over |D_o|-1 alternatives, not concentrated."""
        observations = [("s1", "o", "a"), ("s2", "o", "b"), ("s3", "o", "c")]
        for i in range(8):
            observations += [(f"s{j+1}", f"h{i}", "t") for j in range(3)]
        truth = {f"h{i}": "t" for i in range(8)}
        ds = FusionDataset(observations, ground_truth={**truth, "o": "a"})
        result = Counts().fit_predict(ds, truth)
        post = result.posteriors["o"]
        # symmetric sources, symmetric claims -> uniform posterior
        assert post["a"] == pytest.approx(post["b"], abs=1e-9)

    def test_training_truth_clamped(self, tiny_dataset):
        result = Counts().fit_predict(tiny_dataset, {"gigyf2": "true"})
        assert result.values["gigyf2"] == "true"
