"""Tests for the ACCU baseline (Dong et al. 2009, no copying)."""

import numpy as np
import pytest

from repro.baselines import Accu
from repro.data import SyntheticConfig, generate
from repro.fusion import FusionDataset


class TestAccu:
    def test_unsupervised_recovers_dense_instance(self):
        instance = generate(
            SyntheticConfig(
                n_sources=40,
                n_objects=120,
                density=0.25,
                avg_accuracy=0.75,
                accuracy_spread=0.1,
                seed=2,
            )
        )
        ds = instance.dataset
        result = Accu().fit_predict(ds, {})
        assert result.accuracy(ds) > 0.9

    def test_accuracy_estimates_correlate(self):
        instance = generate(
            SyntheticConfig(
                n_sources=40,
                n_objects=200,
                density=0.25,
                avg_accuracy=0.72,
                accuracy_spread=0.12,
                seed=3,
            )
        )
        ds = instance.dataset
        result = Accu().fit_predict(ds, {})
        est = np.array([result.source_accuracies[s] for s in ds.sources])
        true = np.array([ds.true_accuracies[s] for s in ds.sources])
        assert np.corrcoef(est, true)[0, 1] > 0.7

    def test_ground_truth_initializes_and_clamps(self, tiny_dataset):
        result = Accu().fit_predict(tiny_dataset, {"gigyf2": "false"})
        assert result.values["gigyf2"] == "false"
        # a2 contradicted the clamped truth; its accuracy must be low
        assert result.source_accuracies["a2"] < 0.5

    def test_converges_and_reports_iterations(self, small_dataset):
        result = Accu(max_iterations=100).fit_predict(small_dataset, {})
        assert 1 <= result.diagnostics["iterations"] <= 100

    def test_posteriors_normalized(self, small_dataset):
        result = Accu().fit_predict(small_dataset, {})
        for dist in result.posteriors.values():
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_accuracies_stay_in_bounds(self, small_dataset):
        result = Accu().fit_predict(small_dataset, {})
        assert all(0.0 < a < 1.0 for a in result.source_accuracies.values())

    def test_fixed_n_false_values(self):
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b")])
        result = Accu(n_false_values=10).fit_predict(ds, {})
        assert set(result.values) == {"o"}

    def test_single_iteration_budget(self, small_dataset):
        result = Accu(max_iterations=1).fit_predict(small_dataset, {})
        assert result.diagnostics["iterations"] == 1
