"""Tests for the majority-vote baseline."""

import pytest

from repro.baselines import MajorityVote
from repro.fusion import FusionDataset


class TestMajorityVote:
    def test_plurality_wins(self, tiny_dataset):
        result = MajorityVote().fit_predict(tiny_dataset)
        assert result.values["gigyf2"] == "false"  # 2 vs 1
        assert result.values["gba"] == "true"

    def test_posteriors_are_vote_shares(self, tiny_dataset):
        result = MajorityVote().fit_predict(tiny_dataset)
        assert result.posteriors["gigyf2"]["false"] == pytest.approx(2 / 3)
        assert result.posteriors["gigyf2"]["true"] == pytest.approx(1 / 3)

    def test_tie_breaks_to_first_seen(self):
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b")])
        result = MajorityVote().fit_predict(ds)
        assert result.values["o"] == "a"

    def test_training_truth_clamped(self, tiny_dataset):
        result = MajorityVote().fit_predict(tiny_dataset, {"gigyf2": "true"})
        assert result.values["gigyf2"] == "true"

    def test_no_source_accuracies(self, tiny_dataset):
        assert MajorityVote().fit_predict(tiny_dataset).source_accuracies is None

    def test_method_name(self, tiny_dataset):
        assert MajorityVote().fit_predict(tiny_dataset).method == "majority"
