"""Property-based tests shared across all baseline fusers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import Accu, Catd, Counts, MajorityVote, Sstf, TruthFinder
from repro.fusion import FusionDataset, Observation

ALL_BASELINES = [MajorityVote, Counts, Accu, Catd, Sstf, TruthFinder]


@st.composite
def random_dataset(draw):
    n_sources = draw(st.integers(min_value=2, max_value=6))
    n_objects = draw(st.integers(min_value=1, max_value=6))
    observations = []
    truth = {}
    for obj in range(n_objects):
        n_claims = draw(st.integers(min_value=1, max_value=n_sources))
        sources = draw(st.permutations(list(range(n_sources))).map(lambda p: p[:n_claims]))
        truth[f"o{obj}"] = "v0"
        for source in sources:
            value = draw(st.sampled_from(["v0", "v1", "v2"]))
            observations.append(Observation(f"s{source}", f"o{obj}", value))
    return FusionDataset(observations, ground_truth=truth)


class TestBaselineContracts:
    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    @settings(max_examples=15, deadline=None)
    @given(dataset=random_dataset())
    def test_every_object_resolved_to_claimed_value(self, baseline_cls, dataset):
        result = baseline_cls().fit_predict(dataset, {})
        assert set(result.values) == set(dataset.objects.items)
        for obj, value in result.values.items():
            assert value in dataset.domain(obj)

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    @settings(max_examples=10, deadline=None)
    @given(dataset=random_dataset())
    def test_deterministic(self, baseline_cls, dataset):
        a = baseline_cls().fit_predict(dataset, {})
        b = baseline_cls().fit_predict(dataset, {})
        assert a.values == b.values

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    @settings(max_examples=10, deadline=None)
    @given(dataset=random_dataset())
    def test_training_truth_always_clamped(self, baseline_cls, dataset):
        first = dataset.objects.items[0]
        truth = {first: dataset.ground_truth[first]}
        result = baseline_cls().fit_predict(dataset, truth)
        assert result.values[first] == truth[first]

    @pytest.mark.parametrize("baseline_cls", [MajorityVote, Counts, Accu, Sstf, TruthFinder])
    @settings(max_examples=10, deadline=None)
    @given(dataset=random_dataset())
    def test_posteriors_are_distributions(self, baseline_cls, dataset):
        result = baseline_cls().fit_predict(dataset, {})
        assert result.posteriors is not None
        for dist in result.posteriors.values():
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)
            assert all(p >= -1e-12 for p in dist.values())

    @pytest.mark.parametrize("baseline_cls", [Counts, Accu, TruthFinder])
    @settings(max_examples=10, deadline=None)
    @given(dataset=random_dataset())
    def test_accuracies_in_unit_interval(self, baseline_cls, dataset):
        result = baseline_cls().fit_predict(dataset, dataset.ground_truth)
        assert result.source_accuracies is not None
        for accuracy in result.source_accuracies.values():
            assert 0.0 <= accuracy <= 1.0
