"""Unit tests for repro.fusion.result."""

import pytest

from repro.fusion import FusionResult


class TestFusionResult:
    def test_accuracy_against_dataset(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "false", "gba": "true"})
        assert result.accuracy(tiny_dataset) == 1.0

    def test_accuracy_population(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "true", "gba": "true"})
        assert result.accuracy(tiny_dataset, ["gba"]) == 1.0
        assert result.accuracy(tiny_dataset, ["gigyf2"]) == 0.0

    def test_source_error_requires_accuracies(self, tiny_dataset):
        result = FusionResult(values={})
        with pytest.raises(ValueError, match="does not estimate"):
            result.source_error(tiny_dataset)

    def test_source_error_computed(self, tiny_dataset):
        result = FusionResult(
            values={},
            source_accuracies=tiny_dataset.empirical_accuracies(),
        )
        assert result.source_error(tiny_dataset) == pytest.approx(0.0)

    def test_diagnostics_default_empty(self):
        assert FusionResult(values={}).diagnostics == {}


class TestStrictAccuracyPopulation:
    def test_rejects_objects_missing_from_ground_truth(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "false", "gba": "true"})
        with pytest.raises(ValueError, match="no ground truth"):
            result.accuracy(tiny_dataset, ["gba", "not-an-object"])

    def test_error_names_the_offending_objects(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "false"})
        with pytest.raises(ValueError, match="mystery"):
            result.accuracy(tiny_dataset, ["mystery"])

    def test_full_population_still_works(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "false", "gba": "true"})
        assert result.accuracy(tiny_dataset) == 1.0


class TestLazyViews:
    def test_dict_constructor_requires_values(self):
        with pytest.raises(TypeError, match="values"):
            FusionResult()

    def test_array_accessors_unavailable_without_backing(self):
        result = FusionResult(values={"o": "v"})
        assert not result.has_arrays
        with pytest.raises(ValueError, match="attach_dataset"):
            _ = result.value_codes

    def test_attach_dataset_builds_codes_and_matrix(self, tiny_dataset):
        result = FusionResult(
            values={"gigyf2": "false", "gba": "true"},
            posteriors={
                "gigyf2": {"false": 0.8, "true": 0.2},
                "gba": {"true": 1.0},
            },
            source_accuracies={"a1": 0.9, "a2": 0.4, "a3": 0.9},
        )
        result.attach_dataset(tiny_dataset)
        assert result.has_arrays
        assert result.object_ids == ["gigyf2", "gba"]
        assert result.predicted_values() == ["false", "true"]
        assert result.posterior_matrix[0][0] == 0.8  # "false" is first-seen
        assert result.source_accuracy_vector is not None
        assert result.accuracy(tiny_dataset) == 1.0

    def test_attach_keeps_out_of_domain_values_as_overrides(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "UNKNOWN", "gba": "true"})
        result.attach_dataset(tiny_dataset)
        assert result.overrides == {"gigyf2": "UNKNOWN"}
        assert result.value_codes[0] == -1
        assert result.accuracy(tiny_dataset) == 0.5

    def test_views_are_cached(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "false"})
        assert result.values is result.values

    def test_equality_across_backings(self, tiny_dataset):
        dict_backed = FusionResult(values={"gigyf2": "false", "gba": "true"})
        attached = FusionResult(values={"gigyf2": "false", "gba": "true"})
        attached.attach_dataset(tiny_dataset)
        assert dict_backed == attached
        assert dict_backed != FusionResult(values={"gigyf2": "true", "gba": "true"})

    def test_duplicate_population_consistent_across_backings(self, tiny_dataset):
        attached = FusionResult(values={"gigyf2": "false", "gba": "true"})
        attached.attach_dataset(tiny_dataset)
        plain = FusionResult(values={"gigyf2": "false", "gba": "true"})
        population = ["gba", "gba", "gigyf2"]
        assert attached.accuracy(tiny_dataset, population) == plain.accuracy(
            tiny_dataset, population
        )
