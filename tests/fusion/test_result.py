"""Unit tests for repro.fusion.result."""

import pytest

from repro.fusion import FusionResult


class TestFusionResult:
    def test_accuracy_against_dataset(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "false", "gba": "true"})
        assert result.accuracy(tiny_dataset) == 1.0

    def test_accuracy_population(self, tiny_dataset):
        result = FusionResult(values={"gigyf2": "true", "gba": "true"})
        assert result.accuracy(tiny_dataset, ["gba"]) == 1.0
        assert result.accuracy(tiny_dataset, ["gigyf2"]) == 0.0

    def test_source_error_requires_accuracies(self, tiny_dataset):
        result = FusionResult(values={})
        with pytest.raises(ValueError, match="does not estimate"):
            result.source_error(tiny_dataset)

    def test_source_error_computed(self, tiny_dataset):
        result = FusionResult(
            values={},
            source_accuracies=tiny_dataset.empirical_accuracies(),
        )
        assert result.source_error(tiny_dataset) == pytest.approx(0.0)

    def test_diagnostics_default_empty(self):
        assert FusionResult(values={}).diagnostics == {}
