"""Unit tests for repro.fusion.metrics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fusion import (
    bernoulli_kl,
    binary_entropy,
    dataset_source_accuracy_error,
    log_loss,
    mean_accuracy_kl,
    object_value_accuracy,
    source_accuracy_error,
)


class TestObjectValueAccuracy:
    def test_perfect(self):
        truth = {"a": 1, "b": 2}
        assert object_value_accuracy(truth, truth) == 1.0

    def test_partial(self):
        predictions = {"a": 1, "b": 0}
        truth = {"a": 1, "b": 2}
        assert object_value_accuracy(predictions, truth) == 0.5

    def test_population_restriction(self):
        predictions = {"a": 1, "b": 0}
        truth = {"a": 1, "b": 2}
        assert object_value_accuracy(predictions, truth, ["a"]) == 1.0
        assert object_value_accuracy(predictions, truth, ["b"]) == 0.0

    def test_missing_prediction_counts_as_wrong(self):
        assert object_value_accuracy({}, {"a": 1}) == 0.0

    def test_empty_population_is_nan(self):
        assert math.isnan(object_value_accuracy({}, {}, []))


class TestSourceAccuracyError:
    def test_weighted_average(self):
        estimated = {"s1": 0.9, "s2": 0.5}
        true = {"s1": 1.0, "s2": 0.5}
        counts = {"s1": 3, "s2": 1}
        # (3*0.1 + 1*0.0) / 4
        assert source_accuracy_error(estimated, true, counts) == pytest.approx(0.075)

    def test_skips_missing_estimates(self):
        err = source_accuracy_error({"s1": 0.8}, {"s1": 1.0, "s2": 0.0}, {"s1": 1, "s2": 5})
        assert err == pytest.approx(0.2)

    def test_zero_weights_nan(self):
        assert math.isnan(source_accuracy_error({"s": 0.5}, {"s": 0.5}, {}))

    def test_dataset_variant(self, tiny_dataset):
        # perfect estimates give zero error
        perfect = tiny_dataset.empirical_accuracies()
        assert dataset_source_accuracy_error(tiny_dataset, perfect) == pytest.approx(0.0)

    def test_dataset_variant_weighting(self, tiny_dataset):
        estimated = tiny_dataset.empirical_accuracies()
        estimated["a1"] = estimated["a1"] - 0.5  # a1 has 2 observations of 5
        err = dataset_source_accuracy_error(tiny_dataset, estimated)
        assert err == pytest.approx(0.5 * 2 / 5)


class TestKL:
    def test_zero_when_equal(self):
        assert bernoulli_kl(0.3, 0.3) == pytest.approx(0.0, abs=1e-9)

    def test_positive_when_different(self):
        assert bernoulli_kl(0.9, 0.1) > 0.0

    def test_handles_extremes(self):
        assert np.isfinite(bernoulli_kl(0.0, 1.0))
        assert np.isfinite(bernoulli_kl(1.0, 0.0))

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_property_nonnegative(self, p, q):
        assert bernoulli_kl(p, q) >= -1e-12

    def test_mean_accuracy_kl(self):
        est = {"s1": 0.8, "s2": 0.6}
        true = {"s1": 0.8, "s2": 0.6}
        assert mean_accuracy_kl(est, true) == pytest.approx(0.0, abs=1e-9)

    def test_mean_accuracy_kl_empty_nan(self):
        assert math.isnan(mean_accuracy_kl({}, {"s": 0.5}))


class TestBinaryEntropy:
    def test_max_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_zero_at_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_bounds(self, p):
        assert 0.0 <= binary_entropy(p) <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_symmetry(self, p):
        assert binary_entropy(p) == pytest.approx(binary_entropy(1.0 - p), abs=1e-12)


class TestLogLoss:
    def test_confident_correct_is_small(self):
        posteriors = {"a": {"x": 0.99, "y": 0.01}}
        assert log_loss(posteriors, {"a": "x"}) < 0.02

    def test_confident_wrong_is_large(self):
        posteriors = {"a": {"x": 0.01, "y": 0.99}}
        assert log_loss(posteriors, {"a": "x"}) > 4.0

    def test_zero_mass_clamped(self):
        posteriors = {"a": {"y": 1.0}}
        assert np.isfinite(log_loss(posteriors, {"a": "x"}))

    def test_empty_nan(self):
        assert math.isnan(log_loss({}, {}))
