"""Unit tests for repro.fusion.dataset."""

import pytest

from repro.fusion import DatasetError, FusionDataset, Observation
from repro.fusion.dataset import subset_sources


class TestConstruction:
    def test_accepts_tuples_and_observations(self):
        ds = FusionDataset([("s1", "o1", "v"), Observation("s2", "o1", "w")])
        assert ds.n_sources == 2
        assert ds.n_objects == 1
        assert ds.n_observations == 2

    def test_empty_observations_rejected(self):
        with pytest.raises(DatasetError, match="at least one observation"):
            FusionDataset([])

    def test_duplicate_source_object_rejected(self):
        with pytest.raises(DatasetError, match="duplicate observation"):
            FusionDataset([("s", "o", "a"), ("s", "o", "b")])

    def test_ground_truth_for_unknown_object_rejected(self):
        with pytest.raises(DatasetError, match="unknown object"):
            FusionDataset([("s", "o", "a")], ground_truth={"nope": "a"})

    def test_name_defaults(self):
        assert FusionDataset([("s", "o", "a")]).name == "fusion-dataset"


class TestIndices:
    def test_observation_index_alignment(self, tiny_dataset):
        for i, obs in enumerate(tiny_dataset.observations):
            assert tiny_dataset.sources.item(tiny_dataset.obs_source_idx[i]) == obs.source
            assert tiny_dataset.objects.item(tiny_dataset.obs_object_idx[i]) == obs.obj

    def test_domain_first_seen_order(self, tiny_dataset):
        assert tiny_dataset.domain("gigyf2") == ["false", "true"]
        assert tiny_dataset.domain("gba") == ["true"]

    def test_observations_of_object(self, tiny_dataset):
        obs = tiny_dataset.observations_of_object("gigyf2")
        assert len(obs) == 3
        assert {o.source for o in obs} == {"a1", "a2", "a3"}

    def test_observations_of_source(self, tiny_dataset):
        obs = tiny_dataset.observations_of_source("a1")
        assert {o.obj for o in obs} == {"gigyf2", "gba"}

    def test_source_observation_counts(self, tiny_dataset):
        counts = tiny_dataset.source_observation_counts()
        assert counts.sum() == tiny_dataset.n_observations
        assert counts[tiny_dataset.sources.index("a2")] == 1

    def test_value_idx_matches_domain(self, tiny_dataset):
        for i, obs in enumerate(tiny_dataset.observations):
            o_idx = tiny_dataset.obs_object_idx[i]
            domain = tiny_dataset.domain_by_index(int(o_idx))
            assert domain.item(int(tiny_dataset.obs_value_idx[i])) == obs.value


class TestEmpiricalAccuracies:
    def test_hand_computed(self, tiny_dataset):
        accs = tiny_dataset.empirical_accuracies()
        assert accs["a1"] == 1.0  # right on both objects
        assert accs["a2"] == 0.0  # wrong on gigyf2
        assert accs["a3"] == 1.0

    def test_partial_truth_restricts_population(self, tiny_dataset):
        accs = tiny_dataset.empirical_accuracies({"gigyf2": "false"})
        assert "a1" in accs and accs["a1"] == 1.0
        assert accs["a2"] == 0.0

    def test_sources_without_labeled_observations_missing(self):
        ds = FusionDataset(
            [("s1", "o1", "a"), ("s2", "o2", "b")], ground_truth={"o1": "a", "o2": "b"}
        )
        accs = ds.empirical_accuracies({"o1": "a"})
        assert "s1" in accs
        assert "s2" not in accs


class TestSplit:
    def test_split_sizes(self, small_dataset):
        split = small_dataset.split(0.25, seed=0)
        n = small_dataset.n_objects
        assert len(split.train_truth) == round(0.25 * n)
        assert len(split.test_objects) == n - len(split.train_truth)

    def test_split_disjoint_and_exhaustive(self, small_dataset):
        split = small_dataset.split(0.5, seed=1)
        train = set(split.train_truth)
        test = set(split.test_objects)
        assert not train & test
        assert train | test == set(small_dataset.ground_truth)

    def test_split_deterministic_per_seed(self, small_dataset):
        a = small_dataset.split(0.3, seed=5)
        b = small_dataset.split(0.3, seed=5)
        assert a.train_truth == b.train_truth

    def test_split_varies_with_seed(self, small_dataset):
        a = small_dataset.split(0.3, seed=0)
        b = small_dataset.split(0.3, seed=1)
        assert a.train_truth != b.train_truth

    def test_zero_fraction_rejected(self, small_dataset):
        # The degenerate "no training side" split used to be produced
        # silently and crash much later (empty ERM warm starts); now it is
        # rejected up front with a pointer to the unsupervised spelling.
        with pytest.raises(DatasetError, match="reveals no ground truth"):
            small_dataset.split(0.0, seed=0)

    def test_full_fraction_rejected(self, small_dataset):
        with pytest.raises(DatasetError, match="leaving no evaluation side"):
            small_dataset.split(1.0, seed=0)

    def test_fraction_rounding_to_empty_train_rejected(self, small_dataset):
        # Small positive fractions that round to zero revealed objects are
        # the same degenerate split as 0.0 and must raise too.
        fraction = 0.4 / len(small_dataset.ground_truth)
        with pytest.raises(DatasetError, match="reveals no ground truth"):
            small_dataset.split(fraction, seed=0)

    def test_fraction_rounding_to_empty_eval_rejected(self, small_dataset):
        n = len(small_dataset.ground_truth)
        with pytest.raises(DatasetError, match="evaluation side"):
            small_dataset.split((n - 0.4) / n, seed=0)

    def test_boundary_errors_are_value_errors(self, small_dataset):
        # DatasetError doubles as ValueError so generic parameter
        # validation in callers keeps working.
        with pytest.raises(ValueError):
            small_dataset.split(0.0)
        with pytest.raises(ValueError):
            small_dataset.split(1.0)

    def test_near_boundary_fractions_still_split(self, small_dataset):
        n = len(small_dataset.ground_truth)
        split = small_dataset.split(1.4 / n, seed=0)
        assert len(split.train_truth) == 1
        split = small_dataset.split((n - 0.6) / n, seed=0)
        assert len(split.test_objects) == 1

    def test_invalid_fraction_rejected(self, small_dataset):
        with pytest.raises(DatasetError):
            small_dataset.split(1.5)

    def test_split_without_ground_truth_rejected(self):
        ds = FusionDataset([("s", "o", "v")])
        with pytest.raises(DatasetError, match="no ground truth"):
            ds.split(0.5)

    def test_train_values_match_ground_truth(self, small_dataset):
        split = small_dataset.split(0.4, seed=3)
        for obj, value in split.train_truth.items():
            assert small_dataset.ground_truth[obj] == value


class TestStats:
    def test_stats_counts(self, tiny_dataset):
        stats = tiny_dataset.stats()
        assert stats.n_sources == 3
        assert stats.n_objects == 2
        assert stats.n_observations == 5
        assert stats.n_domain_features == 2  # citations, year
        assert stats.ground_truth_fraction == 1.0

    def test_avg_accuracy_computed(self, tiny_dataset):
        stats = tiny_dataset.stats(min_source_observations_for_acc=1)
        assert stats.avg_source_accuracy == pytest.approx((1.0 + 0.0 + 1.0) / 3)

    def test_sparse_dataset_hides_accuracy(self):
        # one observation per source -> below the default threshold
        ds = FusionDataset(
            [("s1", "o1", "a"), ("s2", "o2", "b")], ground_truth={"o1": "a", "o2": "b"}
        )
        assert ds.stats().avg_source_accuracy is None


class TestSubsetSources:
    def test_restricts_observations(self, tiny_dataset):
        sub = subset_sources(tiny_dataset, ["a1"])
        assert sub.n_sources == 1
        assert {o.obj for o in sub.observations} == {"gigyf2", "gba"}

    def test_drops_uncovered_objects_from_truth(self):
        ds = FusionDataset(
            [("s1", "o1", "a"), ("s2", "o2", "b")],
            ground_truth={"o1": "a", "o2": "b"},
        )
        sub = subset_sources(ds, ["s1"])
        assert set(sub.ground_truth) == {"o1"}

    def test_empty_subset_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            subset_sources(tiny_dataset, ["unknown-source"])

    def test_features_and_accuracies_filtered(self, small_dataset):
        keep = small_dataset.sources.items[:10]
        sub = subset_sources(small_dataset, keep)
        assert set(sub.source_features) <= set(keep)
        assert set(sub.true_accuracies) <= set(keep)
