"""Unit tests for repro.fusion.types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fusion import Indexer, Observation
from repro.fusion.types import DatasetStats


class TestObservation:
    def test_fields(self):
        obs = Observation("s", "o", "v")
        assert obs.source == "s"
        assert obs.obj == "o"
        assert obs.value == "v"

    def test_unpacking(self):
        source, obj, value = Observation("s", "o", 3)
        assert (source, obj, value) == ("s", "o", 3)

    def test_frozen(self):
        obs = Observation("s", "o", "v")
        with pytest.raises(AttributeError):
            obs.value = "w"

    def test_equality_and_hash(self):
        assert Observation("s", "o", 1) == Observation("s", "o", 1)
        assert hash(Observation("s", "o", 1)) == hash(Observation("s", "o", 1))
        assert Observation("s", "o", 1) != Observation("s", "o", 2)


class TestIndexer:
    def test_add_returns_stable_indices(self):
        indexer = Indexer()
        assert indexer.add("a") == 0
        assert indexer.add("b") == 1
        assert indexer.add("a") == 0  # idempotent

    def test_init_from_iterable(self):
        indexer = Indexer(["x", "y", "x"])
        assert len(indexer) == 2
        assert indexer.index("y") == 1

    def test_item_roundtrip(self):
        indexer = Indexer(["p", "q"])
        for item in ("p", "q"):
            assert indexer.item(indexer.index(item)) == item

    def test_contains(self):
        indexer = Indexer(["a"])
        assert "a" in indexer
        assert "b" not in indexer

    def test_unknown_item_raises(self):
        with pytest.raises(KeyError):
            Indexer().index("missing")

    def test_iteration_order(self):
        items = ["c", "a", "b"]
        assert list(Indexer(items)) == items

    def test_items_returns_copy(self):
        indexer = Indexer(["a"])
        copy = indexer.items
        copy.append("b")
        assert len(indexer) == 1

    @given(st.lists(st.integers()))
    def test_property_index_item_inverse(self, values):
        indexer = Indexer(values)
        for value in set(values):
            assert indexer.item(indexer.index(value)) == value

    @given(st.lists(st.text(max_size=5), unique=True))
    def test_property_indices_are_dense(self, values):
        indexer = Indexer(values)
        assert sorted(indexer.index(v) for v in values) == list(range(len(values)))


class TestDatasetStats:
    def test_rows_shape_and_labels(self):
        stats = DatasetStats(
            n_sources=10,
            n_objects=20,
            n_observations=50,
            n_domain_features=3,
            n_feature_values=9,
            avg_source_accuracy=0.75,
            avg_observations_per_object=2.5,
            avg_observations_per_source=5.0,
            ground_truth_fraction=1.0,
        )
        rows = stats.rows()
        assert len(rows) == 9
        labels = [label for label, _ in rows]
        assert "# Sources" in labels
        assert ("Avg. Src. Acc.", 0.75) in rows

    def test_missing_accuracy_renders_dash(self):
        stats = DatasetStats(
            n_sources=1,
            n_objects=1,
            n_observations=1,
            n_domain_features=0,
            n_feature_values=0,
            avg_source_accuracy=None,
            avg_observations_per_object=1.0,
            avg_observations_per_source=1.0,
            ground_truth_fraction=0.0,
        )
        assert ("Avg. Src. Acc.", "-") in stats.rows()
