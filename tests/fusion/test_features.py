"""Unit tests for repro.fusion.features (fit/transform lifecycle)."""

import pickle

import numpy as np
import pytest

from repro.fusion import (
    DatasetError,
    FeatureSpace,
    FeatureSpec,
    FusionDataset,
    build_design_matrix,
)


def _dataset(features):
    observations = [(f"s{i}", "o", f"v{i}") for i in range(len(features))]
    return FusionDataset(
        observations,
        source_features={f"s{i}": feats for i, feats in enumerate(features)},
    )


def _fit_transform(space, ds):
    space.fit(ds.source_features)
    return space.transform(ds)


class TestNumericFeatures:
    def test_two_bin_discretization(self):
        ds = _dataset([{"rank": 1.0}, {"rank": 2.0}, {"rank": 100.0}, {"rank": 200.0}])
        space = FeatureSpace(n_bins=2)
        design = _fit_transform(space, ds)
        assert "rank=Low" in space.column_labels
        assert "rank=High" in space.column_labels
        low = space.column_labels.index("rank=Low")
        high = space.column_labels.index("rank=High")
        assert design[0, low] == 1.0 and design[0, high] == 0.0
        assert design[3, high] == 1.0

    def test_row_sums_one_per_numeric_feature(self):
        ds = _dataset([{"x": float(i)} for i in range(10)])
        design = FeatureSpace(n_bins=3).fit_transform(ds)
        assert np.all(design.sum(axis=1) == 1.0)

    def test_constant_numeric_collapses_bins(self):
        ds = _dataset([{"x": 5.0}, {"x": 5.0}])
        space = FeatureSpace(n_bins=2)
        design = _fit_transform(space, ds)
        # all quantile edges coincide -> a single bin
        assert design.shape[1] == 1
        assert np.all(design == 1.0)

    def test_three_bins_labels(self):
        ds = _dataset([{"x": float(i)} for i in range(9)])
        space = FeatureSpace(n_bins=3)
        space.fit(ds.source_features)
        assert {"x=Low", "x=Mid", "x=High"} <= set(space.column_labels)

    def test_many_bins_use_q_labels(self):
        ds = _dataset([{"x": float(i)} for i in range(20)])
        space = FeatureSpace(n_bins=4)
        space.fit(ds.source_features)
        assert any(label.startswith("x=Q") for label in space.column_labels)

    def test_fewer_distinct_values_than_bins(self):
        # Regression: two distinct values under n_bins=3 used to mint an
        # empty "Mid" bucket (quantile edges 1.33/1.67 both land between
        # the values).  Deduped edges keep exactly the occupied buckets.
        ds = _dataset([{"x": 1.0}, {"x": 2.0}, {"x": 1.0}, {"x": 2.0}])
        space = FeatureSpace(n_bins=3)
        design = _fit_transform(space, ds)
        labels = [label for label in space.column_labels if label.startswith("x=")]
        assert labels == ["x=Low", "x=High"]
        # Every bucket column is occupied by at least one fitted source.
        assert np.all(design.sum(axis=0) >= 1.0)
        assert np.all(design.sum(axis=1) == 1.0)

    def test_no_duplicate_bucket_columns(self):
        # Heavily tied values collapse duplicate quantile edges into one.
        ds = _dataset([{"x": v} for v in [0.0] * 8 + [1.0, 2.0]])
        space = FeatureSpace(n_bins=4)
        design = _fit_transform(space, ds)
        assert len(set(space.column_labels)) == len(space.column_labels)
        assert np.all(design.sum(axis=0) >= 1.0)
        assert np.all(design.sum(axis=1) == 1.0)


class TestCategoricalFeatures:
    def test_one_hot(self):
        ds = _dataset([{"channel": "a"}, {"channel": "b"}, {"channel": "a"}])
        space = FeatureSpace()
        design = _fit_transform(space, ds)
        assert set(space.column_labels) == {"channel=a", "channel=b"}
        assert design[0, space.column_labels.index("channel=a")] == 1.0
        assert design[1, space.column_labels.index("channel=b")] == 1.0

    def test_boolean_treated_as_categorical(self):
        ds = _dataset([{"flag": True}, {"flag": False}])
        space = FeatureSpace()
        space.fit(ds.source_features)
        assert {"flag=True", "flag=False"} == set(space.column_labels)

    def test_mixed_type_column_is_categorical(self):
        ds = _dataset([{"v": 1}, {"v": "x"}])
        space = FeatureSpace()
        space.fit(ds.source_features)
        assert {"v=1", "v=x"} == set(space.column_labels)


class TestMissingHandling:
    def test_source_without_features_gets_zero_row(self):
        ds = FusionDataset(
            [("s1", "o", "a"), ("s2", "o", "b")],
            source_features={"s1": {"x": 1.0}},
        )
        space = FeatureSpace()
        design = _fit_transform(space, ds)
        assert np.all(design[ds.sources.index("s2")] == 0.0)

    def test_include_missing_column(self):
        ds = FusionDataset(
            [("s1", "o", "a"), ("s2", "o", "b")],
            source_features={"s1": {"x": 1.0}, "s2": {}},
        )
        space = FeatureSpace(include_missing=True)
        design = _fit_transform(space, ds)
        col = space.column_labels.index("x=<missing>")
        assert design[ds.sources.index("s2"), col] == 1.0
        assert design[ds.sources.index("s1"), col] == 0.0


class TestLifecycle:
    def test_fit_returns_self_and_transform_matches(self):
        ds = _dataset([{"x": 1.0, "c": "a"}, {"x": 10.0, "c": "b"}])
        space = FeatureSpace()
        assert space.fit(ds.source_features) is space
        design = space.transform(ds)
        assert design.shape == (2, space.n_columns)

    def test_fit_transform_equals_fit_then_transform(self):
        ds = _dataset([{"x": float(i), "c": f"v{i % 2}"} for i in range(6)])
        a = FeatureSpace(n_bins=3).fit_transform(ds)
        space = FeatureSpace(n_bins=3)
        space.fit(ds.source_features)
        np.testing.assert_array_equal(a, space.transform(ds))

    def test_transform_accepts_feature_mappings(self):
        ds = _dataset([{"x": 1.0}, {"x": 10.0}])
        space = FeatureSpace().fit(ds.source_features)
        rows = space.transform([{"x": 0.5}, {"x": 20.0}])
        assert rows.shape == (2, space.n_columns)
        assert rows[0, space.column_labels.index("x=Low")] == 1.0
        assert rows[1, space.column_labels.index("x=High")] == 1.0

    def test_refit_resets_columns(self):
        space = FeatureSpace()
        space.fit({"s": {"a": "x"}})
        space.fit({"s": {"b": "y"}})
        assert space.column_labels == ["b=y"]

    def test_deprecated_dataset_fit_still_returns_matrix(self):
        ds = _dataset([{"c": "a"}, {"c": "b"}])
        space = FeatureSpace()
        with pytest.warns(DeprecationWarning):
            design = space.fit(ds)
        assert design.shape == (2, 2)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(DatasetError):
            FeatureSpace().transform([{"x": 1.0}])


class TestSpecSerialization:
    def test_spec_is_frozen_and_hashable(self):
        ds = _dataset([{"x": 1.0, "c": "a"}, {"x": 10.0, "c": "b"}])
        space = FeatureSpace().fit(ds.source_features)
        spec = space.spec
        assert hash(spec) == hash(FeatureSpace.from_spec(spec).spec)
        with pytest.raises(AttributeError):
            spec.n_bins = 5

    def test_state_round_trip(self):
        ds = _dataset([{"x": float(i), "c": f"v{i % 3}"} for i in range(9)])
        space = FeatureSpace(n_bins=3, include_missing=True).fit(ds.source_features)
        clone = FeatureSpace.from_state(space.to_state())
        assert clone.column_labels == space.column_labels
        np.testing.assert_array_equal(clone.transform(ds), space.transform(ds))

    def test_state_survives_pickle(self):
        ds = _dataset([{"x": 1.0}, {"x": 2.0}])
        space = FeatureSpace().fit(ds.source_features)
        state = pickle.loads(pickle.dumps(space.to_state()))
        clone = FeatureSpace.from_state(state)
        np.testing.assert_array_equal(clone.transform(ds), space.transform(ds))

    def test_spec_keys_caches(self):
        ds = _dataset([{"x": 1.0}, {"x": 2.0}])
        a = FeatureSpace().fit(ds.source_features).spec
        b = FeatureSpace().fit(ds.source_features).spec
        assert a == b and len({a, b}) == 1


class TestUnseenPolicy:
    def test_unseen_categorical_rejected_by_default(self):
        ds = _dataset([{"c": "a"}])
        space = FeatureSpace().fit(ds.source_features)
        with pytest.raises(DatasetError, match="unseen value"):
            space.transform([{"c": "unseen"}])

    def test_unknown_feature_name_rejected_by_default(self):
        ds = _dataset([{"c": "a"}])
        space = FeatureSpace().fit(ds.source_features)
        with pytest.raises(DatasetError, match="unknown feature"):
            space.transform_one({"nope": 1})

    def test_other_policy_buckets_unseen(self):
        ds = _dataset([{"c": "a"}, {"c": "b"}])
        space = FeatureSpace(unseen="other").fit(ds.source_features)
        row = space.transform_one({"c": "unseen"})
        assert row[space.column_labels.index("c=<other>")] == 1.0
        assert row.sum() == 1.0

    def test_zero_policy_keeps_legacy_zero_fill(self):
        ds = _dataset([{"c": "a"}])
        space = FeatureSpace(unseen="zero").fit(ds.source_features)
        row = space.transform_one({"c": "unseen"})
        assert np.all(row == 0.0)

    def test_per_call_override(self):
        ds = _dataset([{"c": "a"}])
        space = FeatureSpace().fit(ds.source_features)
        row = space.transform_one({"c": "unseen"}, unseen="zero")
        assert np.all(row == 0.0)

    def test_unseen_numeric_values_always_bin(self):
        ds = _dataset([{"x": 1.0}, {"x": 10.0}])
        space = FeatureSpace().fit(ds.source_features)
        rows = space.transform([{"x": -100.0}, {"x": 100.0}])
        assert np.all(rows.sum(axis=1) == 1.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(DatasetError):
            FeatureSpace(unseen="explode")

    def test_encode_before_fit_rejected(self):
        with pytest.raises(DatasetError):
            FeatureSpace().encode({"x": 1.0})

    def test_invalid_bins_rejected(self):
        with pytest.raises(DatasetError):
            FeatureSpace(n_bins=1)


class TestBuildDesignMatrix:
    def test_use_features_false_gives_zero_columns(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset, use_features=False)
        assert design.shape == (3, 0)
        assert space.n_columns == 0

    def test_design_alignment(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        assert design.shape[0] == tiny_dataset.n_sources
        assert design.shape[1] == space.n_columns

    def test_columns_for(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        columns = space.columns_for("citations")
        assert columns
        assert all(label.startswith("citations=") for _, label in columns)

    def test_dataset_without_features(self):
        ds = FusionDataset([("s", "o", "v")])
        design, space = build_design_matrix(ds)
        assert design.shape == (1, 0)

    def test_prefitted_space_reused(self, tiny_dataset):
        space = FeatureSpace().fit(tiny_dataset.source_features)
        design, returned = build_design_matrix(tiny_dataset, feature_space=space)
        assert returned is space
        np.testing.assert_array_equal(design, space.transform(tiny_dataset))


def test_feature_spec_round_trip_module_level():
    spec = FeatureSpec(
        n_bins=3,
        columns=(),
        numeric_edges=(("x", (1.0, 2.0)),),
    )
    assert FeatureSpec.from_state(spec.to_state()) == spec
