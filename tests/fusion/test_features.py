"""Unit tests for repro.fusion.features."""

import numpy as np
import pytest

from repro.fusion import DatasetError, FeatureSpace, FusionDataset, build_design_matrix


def _dataset(features):
    observations = [(f"s{i}", "o", f"v{i}") for i in range(len(features))]
    return FusionDataset(
        observations,
        source_features={f"s{i}": feats for i, feats in enumerate(features)},
    )


class TestNumericFeatures:
    def test_two_bin_discretization(self):
        ds = _dataset([{"rank": 1.0}, {"rank": 2.0}, {"rank": 100.0}, {"rank": 200.0}])
        space = FeatureSpace(n_bins=2)
        design = space.fit(ds)
        assert "rank=Low" in space.column_labels
        assert "rank=High" in space.column_labels
        low = space.column_labels.index("rank=Low")
        high = space.column_labels.index("rank=High")
        assert design[0, low] == 1.0 and design[0, high] == 0.0
        assert design[3, high] == 1.0

    def test_row_sums_one_per_numeric_feature(self):
        ds = _dataset([{"x": float(i)} for i in range(10)])
        design = FeatureSpace(n_bins=3).fit(ds)
        assert np.all(design.sum(axis=1) == 1.0)

    def test_constant_numeric_collapses_bins(self):
        ds = _dataset([{"x": 5.0}, {"x": 5.0}])
        space = FeatureSpace(n_bins=2)
        design = space.fit(ds)
        # all quantile edges coincide -> a single bin
        assert design.shape[1] == 1
        assert np.all(design == 1.0)

    def test_three_bins_labels(self):
        ds = _dataset([{"x": float(i)} for i in range(9)])
        space = FeatureSpace(n_bins=3)
        space.fit(ds)
        assert {"x=Low", "x=Mid", "x=High"} <= set(space.column_labels)

    def test_many_bins_use_q_labels(self):
        ds = _dataset([{"x": float(i)} for i in range(20)])
        space = FeatureSpace(n_bins=4)
        space.fit(ds)
        assert any(label.startswith("x=Q") for label in space.column_labels)


class TestCategoricalFeatures:
    def test_one_hot(self):
        ds = _dataset([{"channel": "a"}, {"channel": "b"}, {"channel": "a"}])
        space = FeatureSpace()
        design = space.fit(ds)
        assert set(space.column_labels) == {"channel=a", "channel=b"}
        assert design[0, space.column_labels.index("channel=a")] == 1.0
        assert design[1, space.column_labels.index("channel=b")] == 1.0

    def test_boolean_treated_as_categorical(self):
        ds = _dataset([{"flag": True}, {"flag": False}])
        space = FeatureSpace()
        space.fit(ds)
        assert {"flag=True", "flag=False"} == set(space.column_labels)

    def test_mixed_type_column_is_categorical(self):
        ds = _dataset([{"v": 1}, {"v": "x"}])
        space = FeatureSpace()
        space.fit(ds)
        assert {"v=1", "v=x"} == set(space.column_labels)


class TestMissingHandling:
    def test_source_without_features_gets_zero_row(self):
        ds = FusionDataset(
            [("s1", "o", "a"), ("s2", "o", "b")],
            source_features={"s1": {"x": 1.0}},
        )
        design = FeatureSpace().fit(ds)
        assert np.all(design[ds.sources.index("s2")] == 0.0)

    def test_include_missing_column(self):
        ds = FusionDataset(
            [("s1", "o", "a"), ("s2", "o", "b")],
            source_features={"s1": {"x": 1.0}, "s2": {}},
        )
        space = FeatureSpace(include_missing=True)
        design = space.fit(ds)
        col = space.column_labels.index("x=<missing>")
        assert design[ds.sources.index("s2"), col] == 1.0
        assert design[ds.sources.index("s1"), col] == 0.0


class TestEncode:
    def test_encode_new_source(self):
        ds = _dataset([{"x": 1.0, "c": "a"}, {"x": 10.0, "c": "b"}])
        space = FeatureSpace()
        space.fit(ds)
        row = space.encode({"x": 0.5, "c": "b"})
        assert row[space.column_labels.index("x=Low")] == 1.0
        assert row[space.column_labels.index("c=b")] == 1.0

    def test_unknown_categorical_value_ignored(self):
        ds = _dataset([{"c": "a"}])
        space = FeatureSpace()
        space.fit(ds)
        row = space.encode({"c": "unseen"})
        assert np.all(row == 0.0)

    def test_encode_before_fit_rejected(self):
        with pytest.raises(DatasetError):
            FeatureSpace().encode({"x": 1.0})

    def test_invalid_bins_rejected(self):
        with pytest.raises(DatasetError):
            FeatureSpace(n_bins=1)


class TestBuildDesignMatrix:
    def test_use_features_false_gives_zero_columns(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset, use_features=False)
        assert design.shape == (3, 0)
        assert space.n_columns == 0

    def test_design_alignment(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        assert design.shape[0] == tiny_dataset.n_sources
        assert design.shape[1] == space.n_columns

    def test_columns_for(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        columns = space.columns_for("citations")
        assert columns
        assert all(label.startswith("citations=") for _, label in columns)

    def test_dataset_without_features(self):
        ds = FusionDataset([("s", "o", "v")])
        design, space = build_design_matrix(ds)
        assert design.shape == (1, 0)
