"""Ragged posterior store: dense parity, memmap, sharding invariance.

The out-of-core contract under test:

* the ragged :class:`~repro.fusion.posterior_store.PosteriorStore` behind
  :class:`~repro.fusion.result.FusionResult` is an exact re-layout of the
  old dense matrix — every accessor (``posterior_matrix``, ``posteriors``,
  ``value_codes``, ``confidence_vector``) returns the same numbers;
* stores round-trip through ``.npy`` files and attach as ``numpy.memmap``
  views;
* sharded EM (``EMConfig.n_shards``) is invariant in the shard count:
  value codes bit-identical, probabilities/accuracies at ``atol=1e-10``
  (only the cross-shard reduce reorders float additions);
* dict-backed promotion (``attach_dataset``) is lazy — no posterior
  materialization until posteriors are actually read.
"""

import numpy as np
import pytest

from repro.core.em import EMConfig, EMLearner
from repro.core.slimfast import SLiMFast
from repro.fusion import FusionDataset, FusionResult
from repro.fusion.posterior_store import (
    DenseMaterializationWarning,
    PosteriorStore,
    segmented_argmax,
)
from repro.fusion.sharding import (
    shard_blocked_rows,
    shard_bounds,
    shard_posterior_rows,
    shard_structure,
    sharded_correctness_stats,
)


@pytest.fixture
def skewed_dataset():
    """Seeded dataset with ragged domains (one object much wider)."""
    rng = np.random.default_rng(7)
    observations = []
    truth = {}
    # A wide-domain hub object: many sources, mostly distinct values.
    truth["hub"] = "hub-v0"
    for s in range(12):
        value = "hub-v0" if rng.random() < 0.4 else f"hub-v{s}"
        observations.append((f"s{s}", "hub", value))
    # Narrow-domain tail objects.
    for o in range(40):
        true_value = f"v{rng.integers(0, 3)}"
        truth[f"o{o}"] = true_value
        for s in rng.choice(25, size=5, replace=False):
            value = true_value if rng.random() < 0.7 else f"v{rng.integers(0, 3)}"
            observations.append((f"s{s}", f"o{o}", value))
    return FusionDataset(observations, ground_truth=truth)


def _fit_predict(dataset, train, **em_overrides):
    model = SLiMFast(em_config=EMConfig(solver="lbfgs-warm", **em_overrides))
    return model.fit(dataset, train).predict()


class TestStoreBasics:
    def test_layout_and_dense_round_trip(self, skewed_dataset):
        result = _fit_predict(skewed_dataset, {})
        store = result.posterior_store
        assert store.n_objects == skewed_dataset.n_objects
        assert store.n_rows == int(store.offsets[-1])
        dense = store.dense()
        assert dense.shape == (store.n_objects, store.max_domain)
        rebuilt = PosteriorStore.from_dense(dense, store.domain_sizes)
        np.testing.assert_array_equal(rebuilt.probs, store.probs)
        np.testing.assert_array_equal(rebuilt.value_codes, store.value_codes)

    def test_rows_are_distributions(self, skewed_dataset):
        store = _fit_predict(skewed_dataset, {}).posterior_store
        for position in range(store.n_objects):
            row = store.row(position)
            assert row.shape[0] == store.domain_sizes[position]
            assert row.sum() == pytest.approx(1.0)

    def test_value_codes_match_dense_argmax(self, skewed_dataset):
        store = _fit_predict(skewed_dataset, {}).posterior_store
        np.testing.assert_array_equal(
            store.value_codes, np.argmax(store.dense(), axis=1)
        )

    def test_segmented_argmax_first_row_ties(self):
        offsets = np.array([0, 3, 5])
        values = np.array([0.4, 0.4, 0.2, 0.5, 0.5])
        np.testing.assert_array_equal(segmented_argmax(values, offsets), [0, 0])

    def test_max_probs_matches_dense(self, skewed_dataset):
        store = _fit_predict(skewed_dataset, {}).posterior_store
        np.testing.assert_array_equal(store.max_probs(), store.dense().max(axis=1))

    def test_offsets_validation(self):
        with pytest.raises(ValueError, match="offsets cover"):
            PosteriorStore(np.array([0, 2]), np.array([1.0]))


class TestAccessorParity:
    """FusionResult accessors are unchanged by the ragged re-layout."""

    def test_posterior_matrix_matches_manual_scatter(self, skewed_dataset):
        train = dict(list(skewed_dataset.ground_truth.items())[:10])
        result = _fit_predict(skewed_dataset, train)
        store = result.posterior_store
        offsets = store.offsets
        segment_idx = np.repeat(np.arange(store.n_objects), store.domain_sizes)
        codes_within = np.arange(store.n_rows) - offsets[:-1][segment_idx]
        expected = np.zeros((store.n_objects, store.max_domain))
        expected[segment_idx, codes_within] = store.probs
        np.testing.assert_array_equal(result.posterior_matrix, expected)

    def test_posteriors_dict_view_matches_matrix(self, skewed_dataset):
        result = _fit_predict(skewed_dataset, {})
        matrix = result.posterior_matrix
        index = result.position_index()
        for obj, dist in result.posteriors.items():
            position = index[obj]
            np.testing.assert_allclose(
                list(dist.values()), matrix[position, : len(dist)], atol=0
            )

    def test_confidence_vector_is_map_mass(self, skewed_dataset):
        train = dict(list(skewed_dataset.ground_truth.items())[:5])
        result = _fit_predict(skewed_dataset, train)
        np.testing.assert_array_equal(
            result.confidence_vector(), result.posterior_matrix.max(axis=1)
        )

    def test_clamped_objects_are_point_masses(self, skewed_dataset):
        train = dict(list(skewed_dataset.ground_truth.items())[:10])
        result = _fit_predict(skewed_dataset, train)
        index = result.position_index()
        for obj, value in train.items():
            position = index[obj]
            row = result.posterior_store.row(position)
            code = int(result.value_codes[position])
            assert row[code] == 1.0
            assert row.sum() == 1.0
            assert result.values[obj] == value


class TestDenseGuard:
    def test_warns_past_warn_threshold(self):
        store = PosteriorStore(np.array([0, 2, 4]), np.array([0.5, 0.5, 0.25, 0.75]))
        with pytest.warns(DenseMaterializationWarning, match="dense"):
            store.dense(warn_cells=1)

    def test_raises_past_max_threshold(self):
        store = PosteriorStore(np.array([0, 2, 4]), np.array([0.5, 0.5, 0.25, 0.75]))
        with pytest.raises(MemoryError, match="ragged"):
            store.dense(max_cells=1)

    def test_posterior_matrix_property_is_guarded(self, skewed_dataset, monkeypatch):
        import repro.fusion.posterior_store as ps

        monkeypatch.setattr(ps, "DENSE_MAX_CELLS", 1)
        result = _fit_predict(skewed_dataset, {})
        with pytest.raises(MemoryError, match="refusing to materialize"):
            _ = result.posterior_matrix


class TestMemmapRoundTrip:
    def test_save_load_plain(self, skewed_dataset, tmp_path):
        store = _fit_predict(skewed_dataset, {}).posterior_store
        loaded = PosteriorStore.load(store.save(str(tmp_path / "store")))
        np.testing.assert_array_equal(loaded.offsets, store.offsets)
        np.testing.assert_array_equal(loaded.probs, store.probs)
        np.testing.assert_array_equal(loaded.value_codes, store.value_codes)

    def test_load_mmap_serves_views_from_disk(self, skewed_dataset, tmp_path):
        store = _fit_predict(skewed_dataset, {}).posterior_store
        loaded = PosteriorStore.load(store.save(str(tmp_path / "store")), mmap=True)
        assert isinstance(loaded.probs, np.memmap)
        np.testing.assert_array_equal(np.asarray(loaded.probs), store.probs)
        np.testing.assert_array_equal(loaded.max_probs(), store.max_probs())
        np.testing.assert_array_equal(loaded.value_codes, store.value_codes)


class TestEdgeDomains:
    def test_empty_store(self):
        store = PosteriorStore(np.zeros(1, dtype=np.int64), np.zeros(0))
        assert store.n_objects == 0
        assert store.max_domain == 0
        assert store.dense().shape == (0, 0)
        assert store.value_codes.shape == (0,)
        assert store.max_probs().shape == (0,)

    def test_unit_domain_objects(self):
        observations = [("s1", "a", "x"), ("s2", "a", "x"), ("s1", "b", "y")]
        result = SLiMFast().fit(FusionDataset(observations), {}).predict()
        store = result.posterior_store
        np.testing.assert_array_equal(store.domain_sizes, [1, 1])
        np.testing.assert_array_equal(store.probs, [1.0, 1.0])
        np.testing.assert_array_equal(store.value_codes, [0, 0])

    def test_empty_segment_gets_code_zero(self):
        store = PosteriorStore(np.array([0, 0, 2]), np.array([0.3, 0.7]))
        np.testing.assert_array_equal(store.value_codes, [0, 1])
        np.testing.assert_array_equal(store.max_probs(), [0.0, 0.7])


class TestShardingPrimitives:
    def test_shard_bounds_cover_and_balance(self):
        bounds = shard_bounds(10, 4)
        assert bounds[0] == 0 and bounds[-1] == 10
        sizes = np.diff(bounds)
        assert sizes.min() >= 2 and sizes.max() <= 3

    def test_shard_structure_partitions_rows(self, skewed_dataset):
        from repro.core.structure import build_pair_structure

        structure = build_pair_structure(skewed_dataset)
        shards = shard_structure(structure, 4)
        assert sum(s.n_objects for s in shards) == structure.n_objects
        assert sum(s.n_pairs for s in shards) == structure.n_pairs
        assert sum(s.n_observations for s in shards) == structure.obs_pair_idx.shape[0]
        for shard in shards:
            assert shard.pair_offsets[0] == 0
            assert shard.pair_offsets[-1] == shard.n_pairs

    def test_encoding_shard_matches_structure_shards(self, skewed_dataset):
        from repro.fusion.encoding import encode_dataset

        encoding = encode_dataset(skewed_dataset)
        shards = encoding.shard(3)
        reference = shard_structure(encoding, 3)
        assert len(shards) == len(reference)
        for got, want in zip(shards, reference):
            assert (got.object_start, got.object_stop) == (
                want.object_start,
                want.object_stop,
            )
            np.testing.assert_array_equal(got.obs_pair_idx, want.obs_pair_idx)
            np.testing.assert_array_equal(got.base_scores, want.base_scores)
        assert sum(s.n_objects for s in shards) == encoding.n_objects
        assert sum(s.n_observations for s in shards) == encoding.n_observations

    def test_shard_posterior_rows_bit_identical(self, skewed_dataset):
        from repro.core.inference import posterior_rows
        from repro.core.structure import build_pair_structure

        structure = build_pair_structure(skewed_dataset)
        model = SLiMFast().fit(skewed_dataset, {})
        full = posterior_rows(structure, model.model_)
        trust = model.model_.trust_scores()
        for shard in shard_structure(structure, 5):
            np.testing.assert_array_equal(
                shard_posterior_rows(shard, trust),
                full[shard.pair_start : shard.pair_stop],
            )

    def test_sharded_stats_match_global_reduce(self, skewed_dataset):
        from repro.core.inference import clamp_rows, expected_correctness
        from repro.core.structure import build_pair_structure
        from repro.optim.objectives import reduce_correctness_samples

        train = dict(list(skewed_dataset.ground_truth.items())[:8])
        structure = build_pair_structure(skewed_dataset)
        label_rows = structure.label_rows(train)
        blocked = clamp_rows(structure, label_rows)
        model = SLiMFast().fit(skewed_dataset, train)
        trust = model.model_.trust_scores()

        q_obs, _ = expected_correctness(structure, trust, label_rows, blocked_rows=blocked)
        active, labels, weights = reduce_correctness_samples(
            structure.obs_source_idx, q_obs, skewed_dataset.n_sources
        )

        shards = shard_structure(structure, 4)
        totals, mass = sharded_correctness_stats(
            shards, trust, skewed_dataset.n_sources, shard_blocked_rows(shards, blocked)
        )
        np.testing.assert_array_equal(np.flatnonzero(totals > 0), active)
        np.testing.assert_array_equal(totals[active], weights)
        np.testing.assert_allclose(
            np.clip(mass[active] / totals[active], 0.0, 1.0), labels, atol=1e-10
        )


class TestShardCountInvariance:
    """The tentpole contract: n_shards=1 == n_shards=4 == unsharded."""

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_fit_predict_invariant(self, skewed_dataset, n_shards):
        train = dict(list(skewed_dataset.ground_truth.items())[:12])
        reference = _fit_predict(skewed_dataset, train)
        sharded = _fit_predict(skewed_dataset, train, n_shards=n_shards)
        np.testing.assert_array_equal(sharded.value_codes, reference.value_codes)
        np.testing.assert_allclose(
            sharded.posterior_store.probs, reference.posterior_store.probs, atol=1e-10
        )
        np.testing.assert_allclose(
            sharded.source_accuracy_vector,
            reference.source_accuracy_vector,
            atol=1e-10,
        )

    def test_unsupervised_fit_invariant(self, skewed_dataset):
        one = _fit_predict(skewed_dataset, {}, n_shards=1)
        four = _fit_predict(skewed_dataset, {}, n_shards=4)
        np.testing.assert_array_equal(one.value_codes, four.value_codes)
        np.testing.assert_allclose(
            one.posterior_store.probs, four.posterior_store.probs, atol=1e-10
        )

    def test_process_fan_out_matches_serial(self, skewed_dataset):
        train = dict(list(skewed_dataset.ground_truth.items())[:12])
        serial = _fit_predict(skewed_dataset, train, n_shards=3)
        parallel = _fit_predict(skewed_dataset, train, n_shards=3, shard_jobs=2)
        np.testing.assert_array_equal(parallel.value_codes, serial.value_codes)
        np.testing.assert_array_equal(
            parallel.source_accuracy_vector, serial.source_accuracy_vector
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="positive integer"):
            EMLearner(EMConfig(n_shards=0))
        with pytest.raises(ValueError, match="vectorized"):
            EMLearner(EMConfig(n_shards=2, backend="reference"))
        with pytest.raises(ValueError, match="sgd"):
            EMLearner(EMConfig(n_shards=2, solver="sgd"))
        with pytest.raises(ValueError, match="shard_jobs requires"):
            EMLearner(EMConfig(shard_jobs=2))


class TestLazyPromotion:
    """attach_dataset must not materialize posteriors (the PR 6 bugfix)."""

    def test_attach_dataset_does_not_materialize(self, skewed_dataset):
        reference = _fit_predict(skewed_dataset, {})
        result = FusionResult(
            values=dict(reference.values),
            posteriors={k: dict(v) for k, v in reference.posteriors.items()},
            source_accuracies=dict(reference.source_accuracies),
        )
        result.attach_dataset(skewed_dataset)
        assert result.has_arrays
        assert result._posterior_store is None
        assert result._posterior_matrix is None

    def test_metrics_after_attach_stay_lazy(self, skewed_dataset):
        reference = _fit_predict(skewed_dataset, {})
        result = FusionResult(
            values=dict(reference.values),
            posteriors={k: dict(v) for k, v in reference.posteriors.items()},
        )
        result.attach_dataset(skewed_dataset)
        assert result.accuracy(skewed_dataset) == reference.accuracy(skewed_dataset)
        assert result._posterior_store is None

    def test_lazy_store_builds_on_first_access(self, skewed_dataset):
        reference = _fit_predict(skewed_dataset, {})
        result = FusionResult(
            values=dict(reference.values),
            posteriors={k: dict(v) for k, v in reference.posteriors.items()},
        )
        result.attach_dataset(skewed_dataset)
        np.testing.assert_allclose(
            result.posterior_store.probs, reference.posterior_store.probs, atol=0
        )
        assert result._posterior_store is not None
        np.testing.assert_allclose(
            result.confidence_vector(), reference.confidence_vector(), atol=0
        )
