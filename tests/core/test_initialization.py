"""Tests for source-quality initialization (unseen-source prediction)."""

import numpy as np
import pytest

from repro.core import (
    ERMConfig,
    ERMLearner,
    evaluate_initialization,
    initialization_curve,
    predict_unseen_accuracies,
)
from repro.data import SyntheticConfig, generate
from repro.fusion import DatasetError


@pytest.fixture(scope="module")
def feature_instance():
    return generate(
        SyntheticConfig(
            n_sources=100,
            n_objects=200,
            density=0.15,
            avg_accuracy=0.7,
            accuracy_spread=0.18,
            n_features=6,
            n_informative=4,
            feature_strength=2.0,
            seed=13,
        )
    )


class TestEvaluateInitialization:
    def test_report_structure(self, feature_instance):
        report = evaluate_initialization(feature_instance.dataset, 0.5, seed=0)
        assert report.fraction_used == 0.5
        assert set(report.predictions) == set(report.reference)
        assert report.error >= 0.0

    def test_predictions_in_unit_interval(self, feature_instance):
        report = evaluate_initialization(feature_instance.dataset, 0.4, seed=1)
        assert all(0.0 <= p <= 1.0 for p in report.predictions.values())

    def test_beats_uninformed_baseline(self, feature_instance):
        """Feature-based prediction must beat predicting a constant 0.5."""
        report = evaluate_initialization(feature_instance.dataset, 0.75, seed=0)
        baseline = float(np.mean([abs(0.5 - acc) for acc in report.reference.values()]))
        assert report.error < baseline + 0.02

    def test_held_out_sources_not_used(self, feature_instance):
        report = evaluate_initialization(feature_instance.dataset, 0.5, seed=3)
        # predictions must be for sources outside the used set; the used set
        # has fraction 0.5 of sources, so predictions cover at most half.
        assert len(report.predictions) <= feature_instance.dataset.n_sources // 2 + 1

    def test_invalid_fraction_rejected(self, feature_instance):
        with pytest.raises(DatasetError):
            evaluate_initialization(feature_instance.dataset, 1.0)
        with pytest.raises(DatasetError):
            evaluate_initialization(feature_instance.dataset, 0.0)


class TestInitializationCurve:
    def test_curve_keys(self, feature_instance):
        curve = initialization_curve(feature_instance.dataset, fractions=(0.4, 0.6), seeds=(0,))
        assert set(curve) == {0.4, 0.6}

    def test_more_sources_no_worse(self, feature_instance):
        """Figure 7's trend: error decreases (or stays flat) with coverage."""
        curve = initialization_curve(
            feature_instance.dataset, fractions=(0.25, 0.75), seeds=(0, 1, 2)
        )
        assert curve[0.75] <= curve[0.25] + 0.05


class TestPredictUnseen:
    def test_matches_model_prediction(self, feature_instance):
        ds = feature_instance.dataset
        model = ERMLearner(ERMConfig(intercept=True)).fit(ds, ds.ground_truth)
        features = {"new-source": {"f0": True, "f1": False}}
        predictions = predict_unseen_accuracies(model, features)
        assert predictions["new-source"] == pytest.approx(
            model.predict_accuracy(features["new-source"])
        )


class TestBoundaryTrainFractions:
    def test_fractions_rounding_to_boundaries_still_run(self, feature_instance):
        # Only the train side of the reveal is consumed (evaluation is on
        # held-out sources), so fractions rounding to all — or zero —
        # labeled objects must not trip split()'s degenerate-split guard.
        for fraction in (0.999, 1.0, 0.0001):
            report = evaluate_initialization(
                feature_instance.dataset, fraction_used=0.5, seed=0, train_fraction=fraction
            )
            for value in report.predictions.values():
                assert 0.0 <= value <= 1.0
