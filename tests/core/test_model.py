"""Tests for the AccuracyModel."""

import numpy as np
import pytest

from repro.core import AccuracyModel, model_from_flat
from repro.fusion import NotFittedError
from repro.fusion.features import build_design_matrix
from repro.optim import logit, sigmoid


def simple_model(w_sources, w_features=None, design=None, **kwargs):
    w_features = np.zeros(0) if w_features is None else np.asarray(w_features)
    n = len(w_sources)
    design = np.zeros((n, w_features.shape[0])) if design is None else design
    return AccuracyModel(
        w_sources=np.asarray(w_sources, dtype=float),
        w_features=w_features,
        design=design,
        source_ids=[f"s{i}" for i in range(n)],
        **kwargs,
    )


class TestAccuracyModel:
    def test_trust_is_logit_of_accuracy(self):
        model = simple_model([0.0, 1.0, -1.0])
        assert np.allclose(logit(model.accuracies()), model.trust_scores())

    def test_accuracy_map_keys(self):
        model = simple_model([0.5, -0.5])
        accs = model.accuracy_map()
        assert set(accs) == {"s0", "s1"}
        assert accs["s0"] == pytest.approx(float(sigmoid(0.5)))

    def test_features_contribute(self):
        design = np.array([[1.0], [0.0]])
        model = simple_model([0.0, 0.0], w_features=[2.0], design=design)
        accs = model.accuracies()
        assert accs[0] > accs[1]

    def test_intercept_shifts_all(self):
        base = simple_model([0.0, 0.0])
        shifted = simple_model([0.0, 0.0], intercept=1.0)
        assert np.all(shifted.accuracies() > base.accuracies())

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="design must be"):
            AccuracyModel(
                w_sources=np.zeros(2),
                w_features=np.zeros(3),
                design=np.zeros((2, 2)),
                source_ids=["a", "b"],
            )

    def test_source_alignment_validation(self):
        with pytest.raises(ValueError, match="align"):
            AccuracyModel(
                w_sources=np.zeros(3),
                w_features=np.zeros(0),
                design=np.zeros((2, 0)),
                source_ids=["a", "b"],
            )


class TestPredictAccuracy:
    def test_requires_features(self):
        model = simple_model([0.0])
        with pytest.raises(NotFittedError):
            model.predict_accuracy({"x": 1.0})

    def test_uses_features_and_intercept(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        model = AccuracyModel(
            w_sources=np.zeros(3),
            w_features=np.ones(space.n_columns),
            design=design,
            source_ids=tiny_dataset.sources.items,
            feature_space=space,
            intercept=0.5,
        )
        predicted = model.predict_accuracy({"citations": 34, "year": 2009})
        row = space.encode({"citations": 34, "year": 2009})
        assert predicted == pytest.approx(float(sigmoid(0.5 + row.sum())))


class TestModelFromFlat:
    def test_round_trip(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        n_params = tiny_dataset.n_sources + design.shape[1]
        w = np.arange(n_params, dtype=float)
        model = model_from_flat(w, tiny_dataset, design, space)
        assert np.allclose(model.w_sources, w[: tiny_dataset.n_sources])
        assert np.allclose(model.w_features, w[tiny_dataset.n_sources :])
        assert model.intercept == 0.0

    def test_with_intercept_and_extra(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        n_base = tiny_dataset.n_sources + design.shape[1]
        w = np.concatenate([np.zeros(n_base), [7.0, 8.0], [0.25]])
        model = model_from_flat(w, tiny_dataset, design, space, intercept=True, n_extra=2)
        assert list(model.w_extra) == [7.0, 8.0]
        assert model.intercept == 0.25

    def test_feature_weight_map(self, tiny_dataset):
        design, space = build_design_matrix(tiny_dataset)
        w = np.zeros(tiny_dataset.n_sources + design.shape[1])
        w[tiny_dataset.n_sources] = 3.0
        model = model_from_flat(w, tiny_dataset, design, space)
        weight_map = model.feature_weight_map()
        assert weight_map[space.column_labels[0]] == 3.0

    def test_feature_weight_map_empty_without_space(self):
        model = simple_model([0.0])
        assert model.feature_weight_map() == {}
