"""Tests for the ERM learner."""

import numpy as np
import pytest

from repro.core import ERMConfig, ERMLearner, correctness_training_pairs
from repro.fusion import DatasetError, FusionDataset


class TestTrainingPairs:
    def test_labels_hand_computed(self, tiny_dataset):
        source_idx, labels = correctness_training_pairs(tiny_dataset, tiny_dataset.ground_truth)
        assert source_idx.shape[0] == 5
        # a2 (index per dataset) claimed gigyf2=true which is wrong
        a2 = tiny_dataset.sources.index("a2")
        assert labels[source_idx == a2].tolist() == [0.0]

    def test_partial_truth_restricts(self, tiny_dataset):
        source_idx, labels = correctness_training_pairs(tiny_dataset, {"gba": "true"})
        assert source_idx.shape[0] == 2
        assert np.all(labels == 1.0)


class TestERMLearner:
    def test_recovers_accuracy_ordering(self, small_synthetic):
        ds = small_synthetic.dataset
        model = ERMLearner().fit(ds, ds.ground_truth)
        estimated = model.accuracies()
        true = small_synthetic.true_accuracies
        corr = np.corrcoef(estimated, true)[0, 1]
        assert corr > 0.7

    def test_estimates_close_with_full_truth(self, small_synthetic):
        ds = small_synthetic.dataset
        model = ERMLearner().fit(ds, ds.ground_truth)
        empirical = ds.empirical_accuracies()
        errors = [abs(model.accuracy_map()[src] - acc) for src, acc in empirical.items()]
        assert np.mean(errors) < 0.1

    def test_no_truth_rejected(self, small_dataset):
        with pytest.raises(DatasetError):
            ERMLearner().fit(small_dataset, {})

    def test_disjoint_truth_rejected(self, small_dataset):
        with pytest.raises(DatasetError, match="overlap"):
            # object ids that exist but never observed cannot happen by
            # construction; simulate disjointness with a fake id
            ERMLearner().fit(small_dataset, {"not-an-object": "v0"})

    def test_use_features_false_ignores_features(self, small_dataset):
        model = ERMLearner(ERMConfig(use_features=False)).fit(
            small_dataset, small_dataset.ground_truth
        )
        assert model.n_features == 0
        assert model.feature_space is None

    def test_unlabeled_source_falls_back_to_features(self, small_synthetic):
        """Sources without labeled observations get feature-driven estimates."""
        ds = small_synthetic.dataset
        split = ds.split(0.3, seed=0)
        model = ERMLearner().fit(ds, split.train_truth)
        labeled_sources = {obs.source for obs in ds.observations if obs.obj in split.train_truth}
        unlabeled = [s for s in ds.sources if s not in labeled_sources]
        if unlabeled:  # depends on split; usually non-empty at 30%
            accs = model.accuracy_map()
            # unlabeled sources should not sit exactly at 0.5 when features
            # are informative
            assert any(abs(accs[s] - 0.5) > 0.01 for s in unlabeled)

    def test_conditional_objective_fits(self, small_dataset):
        model = ERMLearner(ERMConfig(objective="conditional")).fit(
            small_dataset, small_dataset.ground_truth
        )
        assert np.all(np.isfinite(model.accuracies()))

    def test_conditional_and_correctness_agree_roughly(self, small_synthetic):
        ds = small_synthetic.dataset
        m1 = ERMLearner(ERMConfig(objective="correctness")).fit(ds, ds.ground_truth)
        m2 = ERMLearner(ERMConfig(objective="conditional")).fit(ds, ds.ground_truth)
        corr = np.corrcoef(m1.accuracies(), m2.accuracies())[0, 1]
        assert corr > 0.6

    def test_sgd_solver_close_to_lbfgs(self, small_synthetic):
        ds = small_synthetic.dataset
        lb = ERMLearner(ERMConfig(solver="lbfgs")).fit(ds, ds.ground_truth)
        sg = ERMLearner(ERMConfig(solver="sgd", sgd_epochs=80)).fit(ds, ds.ground_truth)
        assert np.mean(np.abs(lb.accuracies() - sg.accuracies())) < 0.05

    def test_sgd_with_conditional_rejected(self, small_dataset):
        learner = ERMLearner(ERMConfig(solver="sgd", objective="conditional"))
        with pytest.raises(ValueError, match="SGD solver requires"):
            learner.fit(small_dataset, small_dataset.ground_truth)

    def test_l1_produces_sparse_features(self, small_synthetic):
        ds = small_synthetic.dataset
        dense = ERMLearner(ERMConfig(l1_features=0.0)).fit(ds, ds.ground_truth)
        sparse = ERMLearner(ERMConfig(l1_features=5.0)).fit(ds, ds.ground_truth)
        assert np.sum(np.abs(sparse.w_features) < 1e-8) > np.sum(np.abs(dense.w_features) < 1e-8)

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            ERMLearner(ERMConfig(objective="nope"))

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            ERMLearner(ERMConfig(solver="adam"))

    def test_overrides_kwargs(self):
        learner = ERMLearner(l2_sources=9.0)
        assert learner.config.l2_sources == 9.0

    def test_intercept_fitted(self, small_dataset):
        model = ERMLearner(ERMConfig(intercept=True)).fit(small_dataset, small_dataset.ground_truth)
        assert model.intercept != 0.0

    def test_perfect_source_gets_high_accuracy(self):
        observations = [("good", f"o{i}", "t") for i in range(20)]
        observations += [("bad", f"o{i}", "f") for i in range(20)]
        ds = FusionDataset(observations, ground_truth={f"o{i}": "t" for i in range(20)})
        model = ERMLearner(ERMConfig(use_features=False)).fit(ds, ds.ground_truth)
        accs = model.accuracy_map()
        # The default ridge (~4 pseudo-observations of prior) shrinks a
        # 20-observation source noticeably but the ordering must be stark.
        assert accs["good"] > 0.7
        assert accs["bad"] < 0.3
        # with the ridge off the estimates saturate
        unshrunk = ERMLearner(ERMConfig(use_features=False, l2_sources=0.01)).fit(
            ds, ds.ground_truth
        ).accuracy_map()
        assert unshrunk["good"] > 0.95
        assert unshrunk["bad"] < 0.05
