"""Tests for the EM learner."""

import numpy as np
import pytest

from repro.core import EMConfig, EMLearner
from repro.core.inference import map_assignment, posteriors
from repro.data import SyntheticConfig, generate
from repro.fusion import object_value_accuracy


@pytest.fixture(scope="module")
def dense_instance():
    """Dense, accurate instance where unsupervised EM must do well."""
    return generate(
        SyntheticConfig(
            n_sources=50,
            n_objects=150,
            density=0.25,
            avg_accuracy=0.75,
            accuracy_spread=0.12,
            seed=3,
            name="dense",
        )
    )


class TestUnsupervisedEM:
    def test_recovers_object_values(self, dense_instance):
        ds = dense_instance.dataset
        learner = EMLearner(EMConfig(use_features=False))
        model = learner.fit(ds, {})
        values = map_assignment(posteriors(ds, model))
        accuracy = object_value_accuracy(values, ds.ground_truth)
        assert accuracy > 0.9

    def test_recovers_source_accuracies(self, dense_instance):
        ds = dense_instance.dataset
        model = EMLearner(EMConfig(use_features=False)).fit(ds, {})
        estimated = model.accuracies()
        true = dense_instance.true_accuracies
        assert np.corrcoef(estimated, true)[0, 1] > 0.8
        assert np.mean(np.abs(estimated - true)) < 0.1

    def test_trace_populated(self, dense_instance):
        learner = EMLearner(EMConfig(use_features=False))
        learner.fit(dense_instance.dataset, {})
        trace = learner.trace_
        assert trace is not None
        assert trace.n_iterations >= 1
        assert len(trace.accuracy_deltas) == trace.n_iterations

    def test_converges_within_budget(self, dense_instance):
        learner = EMLearner(EMConfig(use_features=False, max_iterations=50))
        learner.fit(dense_instance.dataset, {})
        assert learner.trace_.converged

    def test_deltas_eventually_shrink(self, dense_instance):
        learner = EMLearner(EMConfig(use_features=False))
        learner.fit(dense_instance.dataset, {})
        deltas = learner.trace_.accuracy_deltas
        assert deltas[-1] < max(deltas)


class TestSemiSupervisedEM:
    def test_labels_improve_or_match_unsupervised(self, dense_instance):
        ds = dense_instance.dataset
        split = ds.split(0.3, seed=0)
        unsup = EMLearner(EMConfig(use_features=False)).fit(ds, {})
        semi = EMLearner(EMConfig(use_features=False)).fit(ds, split.train_truth)
        unsup_vals = map_assignment(posteriors(ds, unsup))
        semi_vals = map_assignment(posteriors(ds, semi, clamp=split.train_truth))
        unsup_acc = object_value_accuracy(unsup_vals, ds.ground_truth, split.test_objects)
        semi_acc = object_value_accuracy(semi_vals, ds.ground_truth, split.test_objects)
        assert semi_acc >= unsup_acc - 0.03

    def test_warm_start_toggle(self, dense_instance):
        ds = dense_instance.dataset
        split = ds.split(0.2, seed=1)
        warm = EMLearner(EMConfig(use_features=False, warm_start_erm=True)).fit(
            ds, split.train_truth
        )
        cold = EMLearner(EMConfig(use_features=False, warm_start_erm=False)).fit(
            ds, split.train_truth
        )
        # both must land on sensible solutions
        for model in (warm, cold):
            assert np.mean(model.accuracies()) > 0.55


class TestEMWithFeatures:
    def test_features_help_on_sparse_data(self):
        """On a sparse instance, feature-aware EM beats feature-less EM."""
        instance = generate(
            SyntheticConfig(
                n_sources=150,
                n_objects=120,
                density=0.02,
                avg_accuracy=0.68,
                accuracy_spread=0.18,
                n_features=6,
                n_informative=5,
                feature_strength=1.5,
                seed=5,
                name="sparse",
            )
        )
        ds = instance.dataset
        with_features = EMLearner(EMConfig(use_features=True)).fit(ds, {})
        without = EMLearner(EMConfig(use_features=False)).fit(ds, {})
        # Some configured sources never observe anything and are absent from
        # the dataset; compare on the sources that exist.
        true = np.array([ds.true_accuracies[s] for s in ds.sources])
        err_with = np.mean(np.abs(with_features.accuracies() - true))
        err_without = np.mean(np.abs(without.accuracies() - true))
        assert err_with <= err_without + 0.01


class TestSparseNoCollapse:
    def test_em_does_not_collapse_on_sparse_sources(self):
        """Regression: ~4 observations per source once collapsed EM to the
        all-0.5 fixed point (ridge pulled every source to 0.5).  The
        unpenalized M-step intercept keeps the population mean alive."""
        instance = generate(
            SyntheticConfig(
                n_sources=500,
                n_objects=200,
                density=0.01,
                avg_accuracy=0.6,
                seed=0,
            )
        )
        ds = instance.dataset
        model = EMLearner(EMConfig(use_features=False)).fit(ds, {})
        accuracies = model.accuracies()
        # mean estimate near the true population mean, not 0.5
        assert float(np.mean(accuracies)) > 0.55
        values = map_assignment(posteriors(ds, model))
        accuracy = object_value_accuracy(values, ds.ground_truth)
        from repro.baselines import MajorityVote

        majority = MajorityVote().fit_predict(ds, {})
        majority_accuracy = object_value_accuracy(majority.values, ds.ground_truth)
        assert accuracy >= majority_accuracy - 0.03


class TestEMConfig:
    def test_overrides(self):
        learner = EMLearner(max_iterations=3)
        assert learner.config.max_iterations == 3

    def test_max_iterations_respected(self, dense_instance):
        learner = EMLearner(EMConfig(use_features=False, max_iterations=2))
        learner.fit(dense_instance.dataset, {})
        assert learner.trace_.n_iterations <= 2

    def test_sgd_mstep_runs(self, dense_instance):
        learner = EMLearner(
            EMConfig(use_features=False, solver="sgd", max_iterations=3, sgd_epochs=5)
        )
        model = learner.fit(dense_instance.dataset, {})
        assert np.all(np.isfinite(model.accuracies()))


class TestWarmSolver:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            EMLearner(EMConfig(solver="newton-raphson"))

    def test_warm_solver_recovers_object_values(self, dense_instance):
        ds = dense_instance.dataset
        model = EMLearner(EMConfig(use_features=False, solver="lbfgs-warm")).fit(ds, {})
        values = map_assignment(posteriors(ds, model))
        assert object_value_accuracy(values, ds.ground_truth) > 0.9

    def test_warm_solver_traces_convergence(self, dense_instance):
        ds = dense_instance.dataset
        learner = EMLearner(EMConfig(solver="lbfgs-warm"))
        learner.fit(ds, {})
        assert learner.trace_ is not None
        assert learner.trace_.converged
        assert learner.trace_.accuracy_deltas[-1] < learner.config.tolerance

    def test_warm_matches_scipy_on_default_tolerances(self, dense_instance):
        ds = dense_instance.dataset
        scipy_model = EMLearner(EMConfig(solver="lbfgs")).fit(ds, {})
        warm_model = EMLearner(EMConfig(solver="lbfgs-warm")).fit(ds, {})
        np.testing.assert_allclose(warm_model.accuracies(), scipy_model.accuracies(), atol=5e-3)
