"""Tests for agreement-based average-accuracy estimation."""

import numpy as np
import pytest

from repro.core import (
    agreement_matrix,
    average_domain_size,
    estimate_average_accuracy,
    estimate_source_accuracies_rank1,
)
from repro.data import SyntheticConfig, generate
from repro.fusion import FusionDataset


class TestAgreementMatrix:
    def test_hand_computed(self):
        ds = FusionDataset(
            [
                ("s1", "o1", "a"),
                ("s2", "o1", "a"),
                ("s1", "o2", "x"),
                ("s2", "o2", "y"),
            ]
        )
        matrix = agreement_matrix(ds)
        i, j = ds.sources.index("s1"), ds.sources.index("s2")
        # agree on o1, disagree on o2 -> rate 0.5 -> score 0
        assert matrix.scores[i, j] == pytest.approx(0.0)
        assert matrix.overlaps[i, j] == 2

    def test_symmetry(self, small_dataset):
        matrix = agreement_matrix(small_dataset)
        mask = matrix.observed_pairs()
        assert np.allclose(
            np.where(mask, matrix.scores, 0.0),
            np.where(mask.T, matrix.scores, 0.0).T,
        )

    def test_no_overlap_is_nan(self):
        ds = FusionDataset([("s1", "o1", "a"), ("s2", "o2", "b")])
        matrix = agreement_matrix(ds)
        assert np.isnan(matrix.scores[0, 1])

    def test_min_overlap_filter(self):
        ds = FusionDataset([("s1", "o1", "a"), ("s2", "o1", "a")])
        matrix = agreement_matrix(ds, min_overlap=2)
        assert np.isnan(matrix.scores[0, 1])

    def test_diagonal_excluded_from_pairs(self, small_dataset):
        matrix = agreement_matrix(small_dataset)
        mask = matrix.observed_pairs()
        assert not np.any(np.diag(mask))


class TestEstimateAverageAccuracy:
    @pytest.mark.parametrize("true_accuracy", [0.6, 0.75, 0.9])
    def test_recovers_binary_accuracy(self, true_accuracy):
        instance = generate(
            SyntheticConfig(
                n_sources=60,
                n_objects=300,
                density=0.15,
                avg_accuracy=true_accuracy,
                accuracy_spread=0.02,
                n_informative=0,
                seed=1,
            )
        )
        estimate = estimate_average_accuracy(instance.dataset)
        assert estimate == pytest.approx(true_accuracy, abs=0.06)

    def test_domain_corrected_for_multivalued(self):
        instance = generate(
            SyntheticConfig(
                n_sources=60,
                n_objects=400,
                density=0.15,
                avg_accuracy=0.6,
                accuracy_spread=0.02,
                domain_size_range=(4, 4),
                n_informative=0,
                seed=2,
            )
        )
        paper = estimate_average_accuracy(instance.dataset, method="paper")
        corrected = estimate_average_accuracy(instance.dataset, method="domain-corrected")
        # The binary identity underestimates agreement-implied accuracy on
        # multi-valued domains; the corrected variant must be closer.
        assert abs(corrected - 0.6) < abs(paper - 0.6)

    def test_fallback_without_overlap(self):
        ds = FusionDataset([("s1", "o1", "a"), ("s2", "o2", "b")])
        assert estimate_average_accuracy(ds, fallback=0.66) == 0.66

    def test_adversarial_sources_clamp_to_half(self):
        # systematic disagreement -> negative mean score -> mu clamped at 0
        ds = FusionDataset(
            [("s1", f"o{i}", "a") for i in range(10)]
            + [("s2", f"o{i}", "b") for i in range(10)]
        )
        assert estimate_average_accuracy(ds) == pytest.approx(0.5)

    def test_unknown_method_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            estimate_average_accuracy(small_dataset, method="bogus")


class TestAverageDomainSize:
    def test_hand_computed(self):
        ds = FusionDataset(
            [
                ("s1", "o1", "a"),
                ("s2", "o1", "b"),
                ("s3", "o1", "c"),
                ("s1", "o2", "x"),
                ("s2", "o2", "x"),
                ("s1", "o3", "z"),  # single observation: excluded
            ]
        )
        assert average_domain_size(ds) == pytest.approx((3 + 1) / 2)

    def test_defaults_to_two(self):
        ds = FusionDataset([("s1", "o1", "a")])
        assert average_domain_size(ds) == 2.0


class TestRank1PerSource:
    def test_recovers_heterogeneous_accuracies(self):
        instance = generate(
            SyntheticConfig(
                n_sources=40,
                n_objects=400,
                density=0.3,
                avg_accuracy=0.7,
                accuracy_spread=0.15,
                seed=4,
            )
        )
        estimates = estimate_source_accuracies_rank1(instance.dataset)
        est = np.array([estimates[s] for s in instance.dataset.sources])
        corr = np.corrcoef(est, instance.true_accuracies)[0, 1]
        assert corr > 0.6

    def test_returns_all_sources(self, small_dataset):
        estimates = estimate_source_accuracies_rank1(small_dataset)
        assert set(estimates) == set(small_dataset.sources.items)

    def test_values_in_unit_interval(self, small_dataset):
        estimates = estimate_source_accuracies_rank1(small_dataset)
        assert all(0.0 <= v <= 1.0 for v in estimates.values())
