"""Property-based tests of core model invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_pair_structure, map_assignment, posteriors
from repro.core.model import AccuracyModel
from repro.fusion import FusionDataset, Observation
from repro.optim import logit


@st.composite
def small_fusion_dataset(draw):
    """Random tiny fusion dataset: 2-6 sources, 1-5 objects, 2-3 values."""
    n_sources = draw(st.integers(min_value=2, max_value=6))
    n_objects = draw(st.integers(min_value=1, max_value=5))
    n_values = draw(st.integers(min_value=2, max_value=3))
    observations = []
    for obj in range(n_objects):
        panel_size = draw(st.integers(min_value=1, max_value=n_sources))
        panel = draw(st.permutations(list(range(n_sources))).map(lambda p: p[:panel_size]))
        for source in panel:
            value = draw(st.integers(min_value=0, max_value=n_values - 1))
            observations.append(Observation(f"s{source}", f"o{obj}", f"v{value}"))
    return FusionDataset(observations)


@st.composite
def dataset_with_accuracies(draw):
    dataset = draw(small_fusion_dataset())
    accuracies = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=0.95),
            min_size=dataset.n_sources,
            max_size=dataset.n_sources,
        )
    )
    model = AccuracyModel(
        w_sources=np.asarray([logit(a) for a in accuracies]),
        w_features=np.zeros(0),
        design=np.zeros((dataset.n_sources, 0)),
        source_ids=dataset.sources.items,
    )
    return dataset, model


class TestPosteriorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(dataset_with_accuracies())
    def test_posteriors_are_distributions(self, case):
        dataset, model = case
        result = posteriors(dataset, model)
        for obj, dist in result.items():
            total = sum(dist.values())
            assert total == pytest.approx(1.0, abs=1e-6)
            assert all(p >= 0.0 for p in dist.values())
            assert set(dist) == set(dataset.domain(obj))

    @settings(max_examples=40, deadline=None)
    @given(dataset_with_accuracies())
    def test_map_values_are_claimed(self, case):
        dataset, model = case
        values = map_assignment(posteriors(dataset, model))
        for obj, value in values.items():
            assert value in dataset.domain(obj)

    @settings(max_examples=30, deadline=None)
    @given(dataset_with_accuracies())
    def test_clamping_is_point_mass(self, case):
        dataset, model = case
        first_obj = dataset.objects.items[0]
        clamp_value = dataset.domain(first_obj)[0]
        result = posteriors(dataset, model, clamp={first_obj: clamp_value})
        assert result[first_obj][clamp_value] == 1.0

    @settings(max_examples=30, deadline=None)
    @given(dataset_with_accuracies(), st.floats(min_value=-2.0, max_value=2.0))
    def test_uniform_trust_shift_is_invariant_on_unanimous_counts(self, case, shift):
        """Adding a constant to every source's trust leaves posteriors
        unchanged only when vote counts per value are equal; in general it
        re-weights by vote count.  For the special case of one observation
        per value, the posterior must be exactly shift-invariant."""
        dataset, model = case
        structure = build_pair_structure(dataset)
        # Check only objects with exactly one vote per claimed value.
        counts = np.bincount(structure.obs_pair_idx, minlength=structure.n_pairs)
        eligible_positions = [
            position
            for position in range(structure.n_objects)
            if all(counts[row] == 1 for row in structure.rows_of(position))
        ]
        base = posteriors(dataset, model)
        shifted_model = AccuracyModel(
            w_sources=model.w_sources + shift,
            w_features=model.w_features,
            design=model.design,
            source_ids=model.source_ids,
        )
        shifted = posteriors(dataset, shifted_model)
        for position in eligible_positions:
            obj = structure.object_ids[position]
            for value, prob in base[obj].items():
                assert shifted[obj][value] == pytest.approx(prob, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(dataset_with_accuracies())
    def test_monotone_in_source_trust(self, case):
        """Raising one source's accuracy cannot lower the posterior of the
        values it claims."""
        dataset, model = case
        target_idx = 0
        target_source = dataset.sources.item(target_idx)
        base = posteriors(dataset, model)
        boosted = AccuracyModel(
            w_sources=model.w_sources
            + np.eye(dataset.n_sources)[target_idx] * 1.5,
            w_features=model.w_features,
            design=model.design,
            source_ids=model.source_ids,
        )
        bumped = posteriors(dataset, boosted)
        for obs in dataset.observations_of_source(target_source):
            assert bumped[obs.obj][obs.value] >= base[obs.obj][obs.value] - 1e-9


class TestEMStability:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_em_always_returns_finite_model(self, seed):
        from repro.core import EMConfig, EMLearner
        from repro.data import SyntheticConfig, generate

        dataset = generate(
            SyntheticConfig(n_sources=15, n_objects=30, density=0.2, avg_accuracy=0.65, seed=seed)
        ).dataset
        model = EMLearner(EMConfig(use_features=False, max_iterations=10)).fit(dataset, {})
        accuracies = model.accuracies()
        assert np.all(np.isfinite(accuracies))
        assert np.all((accuracies > 0.0) & (accuracies < 1.0))
