"""Tests for the EM/ERM optimizer (paper Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.core import decide, em_information_units, erm_information_units
from repro.data import SyntheticConfig, generate
from repro.fusion import FusionDataset, binary_entropy


def uniform_panel_dataset(n_sources, n_objects, panel, n_values=2):
    """Every object observed by exactly ``panel`` sources with ``n_values``
    distinct claimed values (constructed deterministically)."""
    observations = []
    for obj in range(n_objects):
        for k in range(panel):
            source = (obj + k) % n_sources
            value = f"v{k % n_values}"
            observations.append((f"s{source}", f"o{obj}", value))
    return FusionDataset(observations, ground_truth={f"o{obj}": "v0" for obj in range(n_objects)})


class TestEMUnits:
    def test_example8_hand_computed(self):
        """Paper Example 8: m=10 sources, accuracy 0.7, binary domain."""
        ds = uniform_panel_dataset(n_sources=10, n_objects=1, panel=10, n_values=2)
        units = em_information_units(ds, avg_accuracy=0.7)
        from scipy import stats

        p_e = 1.0 - stats.binom.cdf(5, 10, 0.7)
        expected = 1.0 - binary_entropy(p_e)
        assert p_e == pytest.approx(0.8497, abs=1e-3)
        assert units == pytest.approx(expected, abs=1e-9)

    def test_example8_per_observation(self):
        ds = uniform_panel_dataset(n_sources=10, n_objects=1, panel=10, n_values=2)
        per_object = em_information_units(ds, 0.7, per_observation=False)
        per_obs = em_information_units(ds, 0.7, per_observation=True)
        assert per_obs == pytest.approx(10 * per_object)
        assert per_obs == pytest.approx(3.89, abs=0.01)

    def test_low_accuracy_contributes_nothing(self):
        ds = uniform_panel_dataset(n_sources=20, n_objects=5, panel=10, n_values=2)
        assert em_information_units(ds, avg_accuracy=0.5) == 0.0

    def test_units_increase_with_accuracy(self):
        ds = uniform_panel_dataset(n_sources=30, n_objects=10, panel=12, n_values=2)
        low = em_information_units(ds, 0.6)
        high = em_information_units(ds, 0.8)
        assert high > low

    def test_units_increase_with_panel_size(self):
        small = uniform_panel_dataset(n_sources=40, n_objects=10, panel=6)
        large = uniform_panel_dataset(n_sources=40, n_objects=10, panel=20)
        assert em_information_units(large, 0.65) > em_information_units(small, 0.65)

    def test_unanimous_objects_full_unit(self):
        ds = uniform_panel_dataset(n_sources=10, n_objects=4, panel=5, n_values=1)
        assert em_information_units(ds, 0.7) == pytest.approx(4.0)


class TestERMUnits:
    def test_per_object_is_label_count(self, small_dataset):
        truth = dict(list(small_dataset.ground_truth.items())[:13])
        assert erm_information_units(small_dataset, truth) == 13.0

    def test_per_observation_counts_observations(self, tiny_dataset):
        units = erm_information_units(tiny_dataset, {"gigyf2": "false"}, per_observation=True)
        assert units == 3.0  # three articles observe gigyf2


class TestDecide:
    def test_no_labels_picks_em(self, small_dataset):
        decision = decide(small_dataset, {}, n_features=4)
        assert decision.algorithm == "em"
        assert decision.erm_units == 0.0

    def test_abundant_labels_pick_erm(self, small_dataset):
        decision = decide(small_dataset, small_dataset.ground_truth, n_features=4)
        assert decision.algorithm == "erm"

    def test_bound_fast_path(self, small_dataset):
        # huge tau forces the bound check to fire with any labels
        decision = decide(small_dataset, small_dataset.ground_truth, n_features=1, tau=1e9)
        assert decision.reason == "bound"
        assert decision.algorithm == "erm"

    def test_monotone_in_labels(self, small_dataset):
        """More ground truth can only move the decision toward ERM."""
        seen_erm = False
        for fraction in (0.02, 0.2, 0.6, 1.0):
            if fraction < 1.0:
                truth = small_dataset.split(fraction, seed=0).train_truth
            else:
                truth = small_dataset.ground_truth
            decision = decide(small_dataset, truth, n_features=4, tau=0.0)
            if decision.algorithm == "erm":
                seen_erm = True
            else:
                assert not seen_erm, "decision flipped back from ERM to EM"

    def test_oracle_accuracy_override(self, small_dataset):
        truth = dict(list(small_dataset.ground_truth.items())[:5])
        low = decide(small_dataset, truth, n_features=4, tau=0.0, avg_accuracy=0.50)
        high = decide(small_dataset, truth, n_features=4, tau=0.0, avg_accuracy=0.95)
        assert low.em_units <= high.em_units

    def test_diagnostics_populated(self, small_dataset):
        split = small_dataset.split(0.1, seed=0)
        decision = decide(small_dataset, split.train_truth, n_features=4, tau=0.0)
        assert decision.reason == "units"
        assert 0.0 <= decision.estimated_accuracy <= 1.0
        assert np.isfinite(decision.bound)

    def test_accuracy_method_forwarded(self, multi_valued_dataset):
        split = multi_valued_dataset.split(0.1, seed=0)
        paper = decide(multi_valued_dataset, split.train_truth, 4, tau=0.0)
        corrected = decide(
            multi_valued_dataset,
            split.train_truth,
            4,
            tau=0.0,
            accuracy_method="domain-corrected",
        )
        assert corrected.estimated_accuracy >= paper.estimated_accuracy - 1e-9


class TestVoteThreshold:
    def test_binary_domains_identical(self):
        ds = uniform_panel_dataset(n_sources=20, n_objects=10, panel=8, n_values=2)
        majority = em_information_units(ds, 0.7, vote_threshold="majority")
        paper = em_information_units(ds, 0.7, vote_threshold="paper")
        assert majority == pytest.approx(paper)

    def test_multivalued_paper_threshold_is_looser(self):
        ds = uniform_panel_dataset(n_sources=30, n_objects=10, panel=12, n_values=4)
        majority = em_information_units(ds, 0.55, vote_threshold="majority")
        paper = em_information_units(ds, 0.55, vote_threshold="paper")
        assert paper >= majority

    def test_invalid_threshold_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="vote_threshold"):
            em_information_units(small_dataset, 0.7, vote_threshold="plurality")

    def test_decide_forwards_threshold(self, multi_valued_dataset):
        split = multi_valued_dataset.split(0.1, seed=0)
        loose = decide(
            multi_valued_dataset,
            split.train_truth,
            4,
            tau=0.0,
            vote_threshold="paper",
        )
        strict = decide(
            multi_valued_dataset,
            split.train_truth,
            4,
            tau=0.0,
            vote_threshold="majority",
        )
        assert loose.em_units >= strict.em_units


class TestDecideOnRealisticShapes:
    def test_dense_accurate_instance_prefers_em_at_tiny_labels(self):
        instance = generate(
            SyntheticConfig(
                n_sources=100,
                n_objects=200,
                density=0.15,
                avg_accuracy=0.8,
                accuracy_spread=0.05,
                seed=9,
            )
        )
        ds = instance.dataset
        split = ds.split(0.01, seed=0)
        decision = decide(ds, split.train_truth, n_features=8, tau=0.0)
        assert decision.algorithm == "em"
