"""Tests for exact posterior inference (Equations 1 and 4)."""

import numpy as np
import pytest

from repro.core import build_pair_structure, map_assignment, posteriors
from repro.core.inference import expected_correctness, pair_scores
from repro.core.model import AccuracyModel
from repro.fusion import FusionDataset
from repro.optim import logit


def model_with_accuracies(dataset, accuracies):
    w = np.asarray([logit(a) for a in accuracies], dtype=float)
    return AccuracyModel(
        w_sources=w,
        w_features=np.zeros(0),
        design=np.zeros((dataset.n_sources, 0)),
        source_ids=dataset.sources.items,
    )


class TestPosteriorHandComputed:
    def test_two_sources_binary(self):
        """Two conflicting sources: posterior = softmax of trust scores."""
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b")])
        model = model_with_accuracies(ds, [0.8, 0.6])
        post = posteriors(ds, model)["o"]
        sigma1, sigma2 = logit(0.8), logit(0.6)
        expected_a = np.exp(sigma1) / (np.exp(sigma1) + np.exp(sigma2))
        assert post["a"] == pytest.approx(expected_a, abs=1e-9)
        assert post["a"] + post["b"] == pytest.approx(1.0)

    def test_agreeing_sources_reinforce(self):
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "a"), ("s3", "o", "b")])
        model = model_with_accuracies(ds, [0.7, 0.7, 0.7])
        post = posteriors(ds, model)["o"]
        assert post["a"] > post["b"]

    def test_neutral_sources_uniform(self):
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b")])
        model = model_with_accuracies(ds, [0.5, 0.5])
        post = posteriors(ds, model)["o"]
        assert post["a"] == pytest.approx(0.5)

    def test_untrustworthy_source_votes_against(self):
        """A source with accuracy < 0.5 has negative trust."""
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b")])
        model = model_with_accuracies(ds, [0.2, 0.5])
        post = posteriors(ds, model)["o"]
        assert post["a"] < post["b"]

    def test_matches_naive_bayes_for_binary(self):
        """For binary domains Equation 4 equals the Naive Bayes posterior."""
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b"), ("s3", "o", "a")])
        accs = [0.9, 0.7, 0.6]
        model = model_with_accuracies(ds, accs)
        post = posteriors(ds, model)["o"]
        like_a = accs[0] * (1 - accs[1]) * accs[2]
        like_b = (1 - accs[0]) * accs[1] * (1 - accs[2])
        assert post["a"] == pytest.approx(like_a / (like_a + like_b), abs=1e-9)

    def test_matches_naive_bayes_multivalued(self):
        """With the domain correction, Equation 4 matches NB with uniform
        error spread for multi-valued objects."""
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b"), ("s3", "o", "c")])
        accs = [0.8, 0.6, 0.55]
        model = model_with_accuracies(ds, accs)
        post = posteriors(ds, model)["o"]

        def nb(value):
            prob = 1.0
            for acc, claimed in zip(accs, ["a", "b", "c"]):
                prob *= acc if claimed == value else (1 - acc) / 2.0
            return prob

        normalizer = nb("a") + nb("b") + nb("c")
        for value in ("a", "b", "c"):
            assert post[value] == pytest.approx(nb(value) / normalizer, abs=1e-9)


class TestClamping:
    def test_clamped_object_is_point_mass(self, tiny_dataset):
        model = model_with_accuracies(tiny_dataset, [0.6, 0.6, 0.6])
        post = posteriors(tiny_dataset, model, clamp={"gigyf2": "true"})
        assert post["gigyf2"]["true"] == 1.0
        assert post["gigyf2"]["false"] == 0.0

    def test_unclamped_objects_untouched(self, tiny_dataset):
        model = model_with_accuracies(tiny_dataset, [0.6, 0.6, 0.6])
        with_clamp = posteriors(tiny_dataset, model, clamp={"gigyf2": "true"})
        without = posteriors(tiny_dataset, model)
        assert with_clamp["gba"] == without["gba"]


class TestMapAssignment:
    def test_picks_argmax(self):
        posterior = {"o": {"a": 0.3, "b": 0.7}}
        assert map_assignment(posterior) == {"o": "b"}

    def test_tie_breaks_to_first(self):
        posterior = {"o": {"a": 0.5, "b": 0.5}}
        assert map_assignment(posterior) == {"o": "a"}


class TestPairScores:
    def test_domain_correction_toggle(self, multi_valued_dataset):
        structure = build_pair_structure(multi_valued_dataset)
        trust = np.zeros(multi_valued_dataset.n_sources)
        with_corr = pair_scores(structure, trust, domain_correction=True)
        without = pair_scores(structure, trust, domain_correction=False)
        assert np.allclose(without, 0.0)
        assert np.any(with_corr > 0.0)

    def test_extra_scores_added(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        trust = np.zeros(tiny_dataset.n_sources)
        extra = np.arange(structure.n_pairs, dtype=float)
        scores = pair_scores(structure, trust, extra_scores=extra)
        assert np.allclose(scores, extra + structure.base_scores)

    def test_extra_scores_shape_validated(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        with pytest.raises(ValueError):
            pair_scores(structure, np.zeros(3), extra_scores=np.zeros(99))


class TestExpectedCorrectness:
    def test_uniform_trust_gives_vote_share(self):
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "a"), ("s3", "o", "b")])
        structure = build_pair_structure(ds)
        q, _ = expected_correctness(
            structure, np.zeros(3), structure.label_rows({}), domain_correction=False
        )
        # uniform trust -> posterior = 1/2 per distinct value, regardless of votes
        assert np.allclose(q[:2], 0.5)

    def test_clamped_labels_are_binary(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        labels = structure.label_rows({"gigyf2": "false", "gba": "true"})
        q, _ = expected_correctness(structure, np.zeros(3), labels)
        assert set(np.round(q, 9)) <= {0.0, 1.0}

    def test_q_aligns_with_observations(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        labels = structure.label_rows({"gigyf2": "false", "gba": "true"})
        q, _ = expected_correctness(structure, np.zeros(3), labels)
        # a2's single claim (gigyf2=true) must be marked incorrect
        a2 = tiny_dataset.sources.index("a2")
        a2_rows = structure.obs_source_idx == a2
        assert np.all(q[a2_rows] == 0.0)
