"""Tests for the lasso-path feature analysis."""

import numpy as np
import pytest

from repro.core import lasso_path
from repro.data import SyntheticConfig, generate
from repro.fusion import DatasetError, FusionDataset


@pytest.fixture(scope="module")
def informative_instance():
    """Strongly feature-driven instance: first features carry the signal."""
    return generate(
        SyntheticConfig(
            n_sources=120,
            n_objects=150,
            density=0.15,
            avg_accuracy=0.7,
            accuracy_spread=0.2,
            n_features=6,
            n_informative=2,
            feature_strength=2.5,
            seed=21,
        )
    )


class TestLassoPath:
    def test_shapes(self, informative_instance):
        path = lasso_path(informative_instance.dataset, n_penalties=10)
        assert path.weights.shape == (10, len(path.feature_labels))
        assert path.penalties.shape == (10,)
        assert np.all(np.diff(path.penalties) < 0)  # decreasing

    def test_mu_in_unit_interval(self, informative_instance):
        path = lasso_path(informative_instance.dataset, n_penalties=8)
        assert np.all(path.mu >= 0.0)
        assert np.all(path.mu <= 1.0)
        assert path.mu[0] == pytest.approx(0.0)

    def test_strongest_penalty_all_zero(self, informative_instance):
        path = lasso_path(informative_instance.dataset, n_penalties=8)
        assert np.allclose(path.weights[0], 0.0, atol=1e-6)

    def test_weakest_penalty_has_active_features(self, informative_instance):
        path = lasso_path(informative_instance.dataset, n_penalties=8)
        assert np.any(np.abs(path.weights[-1]) > 0.05)

    def test_informative_features_activate_first(self, informative_instance):
        """The synthetic signal features (f0, f1) must dominate the early path."""
        path = lasso_path(informative_instance.dataset, n_penalties=20)
        order = path.activation_order()
        first_two_names = {label.split("=")[0] for label in order[:2]}
        assert first_two_names <= {"f0", "f1"}

    def test_activation_order_no_duplicates(self, informative_instance):
        path = lasso_path(informative_instance.dataset, n_penalties=10)
        order = path.activation_order()
        assert len(order) == len(set(order))

    def test_final_weights_keys(self, informative_instance):
        path = lasso_path(informative_instance.dataset, n_penalties=6)
        final = path.final_weights()
        assert set(final) == set(path.feature_labels)

    def test_important_features_limit(self, informative_instance):
        path = lasso_path(informative_instance.dataset, n_penalties=6)
        assert len(path.important_features(top=3)) <= 3

    def test_requires_truth(self):
        ds = FusionDataset([("s", "o", "v")], source_features={"s": {"x": 1.0}})
        with pytest.raises(DatasetError, match="ground-truth"):
            lasso_path(ds)

    def test_requires_features(self, small_dataset):
        ds = FusionDataset([("s", "o", "v")], ground_truth={"o": "v"})
        with pytest.raises(DatasetError, match="features"):
            lasso_path(ds)

    def test_partial_truth_supported(self, informative_instance):
        ds = informative_instance.dataset
        split = ds.split(0.3, seed=0)
        path = lasso_path(ds, truth=split.train_truth, n_penalties=5)
        assert path.weights.shape[0] == 5
