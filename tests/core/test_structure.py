"""Tests for the flattened pair structure."""

import numpy as np

from repro.core import build_pair_structure
from repro.fusion import FusionDataset


class TestBuildPairStructure:
    def test_rows_per_object(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        # gigyf2 has 2 claimed values, gba has 1 -> 3 rows
        assert structure.n_pairs == 3
        assert structure.n_objects == 2

    def test_pair_values_order(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        gig_pos = structure.object_ids.index("gigyf2")
        rows = structure.rows_of(gig_pos)
        assert [structure.pair_values[r] for r in rows] == ["false", "true"]

    def test_observation_votes(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        # each observation votes for the row of its claimed value
        assert structure.obs_pair_idx.shape[0] == tiny_dataset.n_observations
        # count votes for gigyf2=false: a1 and a3
        gig_pos = structure.object_ids.index("gigyf2")
        false_row = structure.rows_of(gig_pos).start
        votes = np.sum(structure.obs_pair_idx == false_row)
        assert votes == 2

    def test_subset_of_objects(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset, ["gba"])
        assert structure.n_objects == 1
        assert structure.n_pairs == 1
        assert structure.obs_pair_idx.shape[0] == 2  # a1 and a3 observe gba

    def test_label_rows(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        labels = structure.label_rows({"gigyf2": "false", "gba": "true"})
        gig_pos = structure.object_ids.index("gigyf2")
        assert labels[gig_pos] == structure.rows_of(gig_pos).start

    def test_label_rows_unclaimed_truth(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        labels = structure.label_rows({"gigyf2": "maybe"})  # never claimed
        gig_pos = structure.object_ids.index("gigyf2")
        assert labels[gig_pos] == -1

    def test_label_rows_unlabeled(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        labels = structure.label_rows({})
        assert np.all(labels == -1)

    def test_base_scores_binary_zero(self, tiny_dataset):
        structure = build_pair_structure(tiny_dataset)
        # gigyf2 domain size 2 -> log(1) = 0; gba domain size 1 -> log(1) = 0
        assert np.allclose(structure.base_scores, 0.0)

    def test_base_scores_multivalued(self):
        ds = FusionDataset([("s1", "o", "a"), ("s2", "o", "b"), ("s3", "o", "c"), ("s4", "o", "a")])
        structure = build_pair_structure(ds)
        # domain size 3 -> each vote adds log(2); value 'a' has two votes
        expected = np.array([2.0, 1.0, 1.0]) * np.log(2.0)
        assert np.allclose(structure.base_scores, expected)

    def test_offsets_are_cumulative(self, multi_valued_dataset):
        structure = build_pair_structure(multi_valued_dataset)
        sizes = np.diff(structure.pair_offsets)
        assert sizes.sum() == structure.n_pairs
        assert np.all(sizes >= 1)

    def test_pair_object_pos_consistent_with_offsets(self, multi_valued_dataset):
        structure = build_pair_structure(multi_valued_dataset)
        for position in range(structure.n_objects):
            for row in structure.rows_of(position):
                assert structure.pair_object_pos[row] == position
