"""Tests for the copying extension (Appendix D)."""

import numpy as np
import pytest

from repro.core import CopyingSLiMFast, find_candidate_pairs
from repro.core.copying import build_extra_features
from repro.core.structure import build_pair_structure
from repro.data import SyntheticConfig, generate
from repro.fusion import DatasetError, FusionDataset


@pytest.fixture(scope="module")
def copying_instance():
    """Instance with strong copying clusters."""
    return generate(
        SyntheticConfig(
            n_sources=60,
            n_objects=150,
            density=0.15,
            avg_accuracy=0.65,
            accuracy_spread=0.1,
            copy_groups=4,
            copy_group_size=5,
            copy_fidelity=0.95,
            seed=17,
        )
    )


class TestFindCandidatePairs:
    def test_copiers_found(self, copying_instance):
        ds = copying_instance.dataset
        pairs = find_candidate_pairs(ds, min_overlap=3, min_agreement=0.7)
        found = {frozenset((p.first, p.second)) for p in pairs}
        # at least one true copying pair must surface
        copy_pairs = set()
        for group in copying_instance.copy_groups:
            leader = group[0]
            for member in group[1:]:
                copy_pairs.add(frozenset((leader, member)))
        assert found & copy_pairs

    def test_overlap_threshold_respected(self, copying_instance):
        pairs = find_candidate_pairs(copying_instance.dataset, min_overlap=5)
        assert all(p.overlap >= 5 for p in pairs)

    def test_agreement_threshold_respected(self, copying_instance):
        pairs = find_candidate_pairs(copying_instance.dataset, min_agreement=0.8)
        assert all(p.agreement_rate >= 0.8 for p in pairs)

    def test_max_pairs_cap(self, copying_instance):
        pairs = find_candidate_pairs(copying_instance.dataset, max_pairs=3)
        assert len(pairs) <= 3

    def test_deterministic_order(self, copying_instance):
        a = find_candidate_pairs(copying_instance.dataset, max_pairs=10)
        b = find_candidate_pairs(copying_instance.dataset, max_pairs=10)
        assert a == b


class TestBuildExtraFeatures:
    def test_rows_point_at_common_values(self):
        ds = FusionDataset(
            [
                ("s1", "o1", "a"),
                ("s2", "o1", "a"),
                ("s3", "o1", "b"),
                ("s1", "o2", "x"),
                ("s2", "o2", "x"),
            ],
            ground_truth={"o1": "b", "o2": "x"},
        )
        structure = build_pair_structure(ds)
        pairs = find_candidate_pairs(ds, min_overlap=2, min_agreement=0.5)
        assert pairs, "s1/s2 agree on both shared objects"
        rows, feature_idx, values = build_extra_features(ds, structure, pairs)
        assert np.all(values == -1.0)
        # both agreements (o1=a, o2=x) produce one entry for the top pair
        top_entries = rows[feature_idx == 0]
        assert len(top_entries) == 2

    def test_disagreeing_pairs_skipped(self):
        ds = FusionDataset(
            [("s1", "o1", "a"), ("s2", "o1", "b"), ("s1", "o2", "x"), ("s2", "o2", "x")]
        )
        structure = build_pair_structure(ds)
        pairs = find_candidate_pairs(ds, min_overlap=2, min_agreement=0.0)
        rows, feature_idx, _ = build_extra_features(ds, structure, pairs)
        # only the o2 agreement counts
        assert len(rows) == 1


class TestCopyingSLiMFast:
    def test_erm_mode_requires_truth(self, copying_instance):
        with pytest.raises(DatasetError):
            CopyingSLiMFast(learner="erm").fit(copying_instance.dataset, {})

    def test_em_mode_runs_unsupervised(self, copying_instance):
        model = CopyingSLiMFast(em_rounds=3).fit(copying_instance.dataset, {})
        result = model.predict()
        assert set(result.values) == set(copying_instance.dataset.objects.items)

    def test_invalid_learner_rejected(self):
        with pytest.raises(ValueError):
            CopyingSLiMFast(learner="gibbs")

    def test_fit_predict_runs(self, copying_instance):
        ds = copying_instance.dataset
        split = ds.split(0.2, seed=0)
        model = CopyingSLiMFast(em_rounds=2, max_pairs=50).fit(ds, split.train_truth)
        result = model.predict()
        assert set(result.values) == set(ds.objects.items)
        assert result.method == "slimfast-copying"

    def test_training_objects_clamped(self, copying_instance):
        ds = copying_instance.dataset
        split = ds.split(0.2, seed=1)
        result = CopyingSLiMFast(em_rounds=1, max_pairs=30).fit(ds, split.train_truth).predict()
        for obj, value in split.train_truth.items():
            assert result.values[obj] == value

    def test_copier_pairs_get_positive_weights(self, copying_instance):
        ds = copying_instance.dataset
        split = ds.split(0.4, seed=0)
        model = CopyingSLiMFast(em_rounds=2, max_pairs=80).fit(ds, split.train_truth)
        weights = model.pair_weights()
        # All within-group pairs (leader-member AND member-member) carry
        # correlated errors; compare against pairs fully outside groups.
        grouped_sources = {source for group in copying_instance.copy_groups for source in group}
        group_weights = [
            w
            for (a, b), w in weights.items()
            if a in grouped_sources and b in grouped_sources
        ]
        independent_weights = [
            w
            for (a, b), w in weights.items()
            if a not in grouped_sources or b not in grouped_sources
        ]
        assert group_weights, "no copier pair was selected as a candidate"
        if independent_weights:
            assert np.mean(group_weights) > np.mean(independent_weights)

    def test_predict_before_fit_rejected(self):
        from repro.fusion import NotFittedError

        with pytest.raises(NotFittedError):
            CopyingSLiMFast().predict()

    def test_em_rounds_zero_is_supervised_only(self, copying_instance):
        ds = copying_instance.dataset
        split = ds.split(0.3, seed=2)
        model = CopyingSLiMFast(em_rounds=0, max_pairs=30).fit(ds, split.train_truth)
        assert model.model_ is not None
