"""Tests for the theoretical bound calculators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    em_accuracy_bound,
    erm_generalization_bound,
    erm_sparse_bound,
    expected_observations,
    rademacher_linear,
)


class TestRademacher:
    def test_decreases_with_samples(self):
        assert rademacher_linear(10, 1000) < rademacher_linear(10, 100)

    def test_increases_with_features(self):
        assert rademacher_linear(100, 500) > rademacher_linear(10, 500)

    def test_zero_samples_infinite(self):
        assert rademacher_linear(10, 0) == float("inf")

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=2, max_value=10**6),
    )
    def test_property_positive(self, k, n):
        assert rademacher_linear(k, n) > 0.0


class TestERMBounds:
    def test_matches_rademacher(self):
        assert erm_generalization_bound(25, 400) == rademacher_linear(25, 400)

    def test_sparse_beats_dense_for_few_active(self):
        # k active out of many: sparse bound must win
        assert erm_sparse_bound(3, 1000, 200) < erm_generalization_bound(1000, 200)

    def test_sparse_bound_zero_labels_infinite(self):
        assert erm_sparse_bound(3, 10, 0) == float("inf")

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=51, max_value=500),
        st.integers(min_value=10, max_value=10**5),
    )
    def test_property_sparse_monotone_in_active(self, k, total, labels):
        assert erm_sparse_bound(k, total, labels) <= erm_sparse_bound(k + 1, total, labels)


class TestEMBound:
    def test_decreases_with_density(self):
        low = em_accuracy_bound(100, 1000, 0.005, 0.2, 10)
        high = em_accuracy_bound(100, 1000, 0.02, 0.2, 10)
        assert high < low

    def test_decreases_with_delta(self):
        low_margin = em_accuracy_bound(100, 1000, 0.01, 0.05, 10)
        high_margin = em_accuracy_bound(100, 1000, 0.01, 0.4, 10)
        assert high_margin < low_margin

    def test_decreases_with_sources(self):
        few = em_accuracy_bound(50, 1000, 0.01, 0.2, 10)
        many = em_accuracy_bound(500, 1000, 0.01, 0.2, 10)
        assert many < few

    def test_degenerate_inputs_infinite(self):
        assert em_accuracy_bound(0, 10, 0.1, 0.2, 5) == float("inf")
        assert em_accuracy_bound(10, 10, 0.0, 0.2, 5) == float("inf")
        assert em_accuracy_bound(10, 10, 0.1, 0.0, 5) == float("inf")


class TestExpectedObservations:
    def test_product(self):
        assert expected_observations(100, 200, 0.01) == pytest.approx(200.0)


class TestEmpiricalRademacher:
    def _features(self, n, k, seed=0):
        rng = np.random.default_rng(seed)
        return (rng.random((n, k)) < 0.5).astype(float)

    def test_positive(self):
        from repro.core import empirical_rademacher_linear

        assert empirical_rademacher_linear(self._features(50, 4)) > 0.0

    def test_decreases_with_samples(self):
        from repro.core import empirical_rademacher_linear

        small = empirical_rademacher_linear(self._features(50, 4))
        large = empirical_rademacher_linear(self._features(800, 4))
        assert large < small

    def test_scales_with_weight_bound(self):
        from repro.core import empirical_rademacher_linear

        base = empirical_rademacher_linear(self._features(100, 4), weight_bound=1.0)
        doubled = empirical_rademacher_linear(self._features(100, 4), weight_bound=2.0)
        assert doubled == pytest.approx(2.0 * base)

    def test_deterministic_per_seed(self):
        from repro.core import empirical_rademacher_linear

        feats = self._features(60, 3)
        assert empirical_rademacher_linear(feats, seed=7) == pytest.approx(
            empirical_rademacher_linear(feats, seed=7)
        )

    def test_invalid_input(self):
        from repro.core import empirical_rademacher_linear

        with pytest.raises(ValueError):
            empirical_rademacher_linear(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            empirical_rademacher_linear(np.zeros(5))
