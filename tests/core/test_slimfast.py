"""Tests for the SLiMFast facade."""

import numpy as np
import pytest

from repro.core import SLiMFast
from repro.fusion import DatasetError, NotFittedError


class TestFacadeBasics:
    def test_fit_predict_full_pipeline(self, small_dataset):
        split = small_dataset.split(0.2, seed=0)
        result = SLiMFast().fit_predict(small_dataset, split.train_truth)
        assert set(result.values) == set(small_dataset.objects.items)
        assert result.source_accuracies is not None
        assert set(result.source_accuracies) == set(small_dataset.sources.items)

    def test_invalid_learner_rejected(self):
        with pytest.raises(ValueError):
            SLiMFast(learner="vi")

    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            SLiMFast().predict()

    def test_erm_without_truth_rejected(self, small_dataset):
        with pytest.raises(DatasetError):
            SLiMFast(learner="erm").fit(small_dataset, {})

    def test_auto_without_truth_falls_back_to_em(self, small_dataset):
        fuser = SLiMFast(learner="auto")
        fuser.fit(small_dataset, {})
        assert fuser.chosen_learner_ == "em"

    def test_training_objects_clamped(self, small_dataset):
        split = small_dataset.split(0.3, seed=1)
        result = SLiMFast(learner="erm").fit_predict(small_dataset, split.train_truth)
        for obj, value in split.train_truth.items():
            assert result.values[obj] == value

    def test_posteriors_normalized(self, small_dataset):
        split = small_dataset.split(0.2, seed=0)
        result = SLiMFast(learner="erm").fit_predict(small_dataset, split.train_truth)
        for dist in result.posteriors.values():
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)


class TestAutoDecision:
    def test_decision_recorded(self, small_dataset):
        split = small_dataset.split(0.1, seed=0)
        fuser = SLiMFast(learner="auto")
        fuser.fit(small_dataset, split.train_truth)
        assert fuser.decision_ is not None
        assert fuser.chosen_learner_ in ("em", "erm")
        assert fuser.decision_.algorithm == fuser.chosen_learner_

    def test_fixed_learner_skips_optimizer(self, small_dataset):
        split = small_dataset.split(0.1, seed=0)
        fuser = SLiMFast(learner="em")
        fuser.fit(small_dataset, split.train_truth)
        assert fuser.decision_ is None

    def test_diagnostics_contain_optimizer(self, small_dataset):
        split = small_dataset.split(0.1, seed=0)
        result = SLiMFast(learner="auto").fit_predict(small_dataset, split.train_truth)
        assert "optimizer" in result.diagnostics
        assert result.diagnostics["learner"] in ("em", "erm")


class TestVariantNaming:
    @pytest.mark.parametrize(
        "kwargs,expected",
        [
            (dict(learner="auto"), "slimfast"),
            (dict(learner="erm"), "slimfast-erm"),
            (dict(learner="em"), "slimfast-em"),
            (dict(learner="erm", use_features=False), "sources-erm"),
            (dict(learner="em", use_features=False), "sources-em"),
        ],
    )
    def test_method_names(self, small_dataset, kwargs, expected):
        split = small_dataset.split(0.2, seed=0)
        result = SLiMFast(**kwargs).fit_predict(small_dataset, split.train_truth)
        assert result.method == expected


class TestTimings:
    def test_phases_recorded(self, small_dataset):
        split = small_dataset.split(0.2, seed=0)
        fuser = SLiMFast(learner="erm")
        fuser.fit_predict(small_dataset, split.train_truth)
        assert {"compile", "optimizer", "learning", "inference"} <= set(fuser.timings_)
        assert all(t >= 0.0 for t in fuser.timings_.values())


class TestQuality:
    def test_em_beats_majority_on_dense_accurate_data(self, small_synthetic):
        from repro.baselines import MajorityVote

        ds = small_synthetic.dataset
        split = ds.split(0.1, seed=0)
        slimfast_acc = (
            SLiMFast(learner="em")
            .fit_predict(ds, split.train_truth)
            .accuracy(ds, list(split.test_objects))
        )
        majority_acc = (
            MajorityVote()
            .fit_predict(ds, split.train_truth)
            .accuracy(ds, list(split.test_objects))
        )
        assert slimfast_acc >= majority_acc - 0.01

    def test_source_accuracy_estimates_reasonable(self, small_synthetic):
        ds = small_synthetic.dataset
        split = ds.split(0.5, seed=0)
        result = SLiMFast(learner="erm").fit_predict(ds, split.train_truth)
        errors = [abs(result.source_accuracies[s] - ds.true_accuracies[s]) for s in ds.sources]
        assert np.mean(errors) < 0.15
