"""Gradient and behaviour tests for the training objectives."""

import numpy as np
import pytest

from repro.optim import ConditionalObjective, CorrectnessObjective, ParameterLayout


def finite_difference_grad(objective, w, eps=1e-6):
    grad = np.zeros_like(w)
    for i in range(w.shape[0]):
        up = w.copy()
        up[i] += eps
        down = w.copy()
        down[i] -= eps
        grad[i] = (objective.value(up) - objective.value(down)) / (2 * eps)
    return grad


def make_correctness(n_sources=4, n_features=3, n_samples=30, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    design = (rng.random((n_sources, n_features)) < 0.5).astype(float)
    source_idx = rng.integers(n_sources, size=n_samples)
    labels = (rng.random(n_samples) < 0.7).astype(float)
    return CorrectnessObjective(source_idx, labels, design, **kwargs)


def make_conditional(seed=0, n_extra=0, with_base=False, **kwargs):
    rng = np.random.default_rng(seed)
    n_sources, n_features = 5, 2
    design = (rng.random((n_sources, n_features)) < 0.5).astype(float)
    # 3 objects: domains of size 2, 3, 2 -> 7 flattened rows
    pair_object_idx = np.array([0, 0, 1, 1, 1, 2, 2])
    label_pair_idx = np.array([0, 3, 5])
    obs_source_idx = np.array([0, 1, 2, 3, 4, 0, 2, 3])
    obs_pair_idx = np.array([0, 1, 2, 3, 4, 5, 6, 5])
    extra = None
    if n_extra:
        extra = (
            np.array([0, 2, 5]),
            np.array([0, 1 % n_extra, 0]),
            np.array([-1.0, -1.0, 1.0]),
        )
    base = rng.normal(size=7) if with_base else None
    return ConditionalObjective(
        design=design,
        obs_source_idx=obs_source_idx,
        obs_pair_idx=obs_pair_idx,
        pair_object_idx=pair_object_idx,
        label_pair_idx=label_pair_idx,
        n_extra=n_extra,
        extra=extra,
        base_scores=base,
        **kwargs,
    )


class TestParameterLayout:
    def test_split(self):
        layout = ParameterLayout(n_sources=2, n_features=3, n_extra=1, intercept=True)
        w = np.arange(7.0)
        w_src, w_feat, w_extra, bias = layout.split(w)
        assert list(w_src) == [0.0, 1.0]
        assert list(w_feat) == [2.0, 3.0, 4.0]
        assert list(w_extra) == [5.0]
        assert bias == 6.0

    def test_n_params(self):
        layout = ParameterLayout(n_sources=2, n_features=3)
        assert layout.n_params == 5

    def test_l2_vector_skips_intercept(self):
        layout = ParameterLayout(n_sources=1, n_features=1, intercept=True)
        l2 = layout.l2_vector(2.0, 3.0)
        assert list(l2) == [2.0, 3.0, 0.0]

    def test_l1_mask_defaults_to_features(self):
        layout = ParameterLayout(n_sources=2, n_features=2, n_extra=1, intercept=True)
        mask = layout.l1_mask()
        assert list(mask) == [False, False, True, True, False, False]


class TestCorrectnessObjective:
    def test_gradient_matches_finite_difference(self):
        objective = make_correctness(l2_sources=0.5, l2_features=0.2)
        rng = np.random.default_rng(1)
        w = rng.normal(scale=0.5, size=objective.n_params)
        _, grad = objective.value_and_grad(w)
        assert np.allclose(grad, finite_difference_grad(objective, w), atol=1e-5)

    def test_gradient_with_intercept(self):
        objective = make_correctness(intercept=True, l2_sources=1.0)
        w = np.random.default_rng(2).normal(size=objective.n_params)
        _, grad = objective.value_and_grad(w)
        assert np.allclose(grad, finite_difference_grad(objective, w), atol=1e-5)

    def test_gradient_with_soft_labels(self):
        rng = np.random.default_rng(3)
        design = np.zeros((3, 0))
        objective = CorrectnessObjective(
            source_idx=rng.integers(3, size=20),
            labels=rng.random(20),
            design=design,
            l2_sources=0.3,
        )
        w = rng.normal(size=3)
        _, grad = objective.value_and_grad(w)
        assert np.allclose(grad, finite_difference_grad(objective, w), atol=1e-5)

    def test_gradient_with_sample_weights(self):
        rng = np.random.default_rng(4)
        objective = make_correctness(seed=4)
        weighted = CorrectnessObjective(
            objective.source_idx,
            objective.labels,
            objective.design,
            sample_weights=rng.random(objective.n_samples) + 0.1,
        )
        w = rng.normal(size=weighted.n_params)
        _, grad = weighted.value_and_grad(w)
        assert np.allclose(grad, finite_difference_grad(weighted, w), atol=1e-5)

    def test_zero_weights_minimize_at_base_rate(self):
        # without regularization the optimum per source is its label mean
        objective = make_correctness(n_features=0)
        w = np.zeros(objective.n_params)
        value0 = objective.value(w)
        assert np.isfinite(value0)

    def test_value_at_perfect_fit_is_small(self):
        design = np.zeros((2, 0))
        objective = CorrectnessObjective(
            source_idx=np.array([0, 0, 1, 1]),
            labels=np.array([1.0, 1.0, 0.0, 0.0]),
            design=design,
        )
        w = np.array([20.0, -20.0])
        assert objective.value(w) < 1e-6

    def test_label_validation(self):
        with pytest.raises(ValueError, match=r"labels must lie in \[0, 1\]"):
            CorrectnessObjective(
                source_idx=np.array([0]),
                labels=np.array([1.5]),
                design=np.zeros((1, 0)),
            )

    def test_length_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            CorrectnessObjective(
                source_idx=np.array([0, 1]),
                labels=np.array([1.0]),
                design=np.zeros((2, 0)),
            )

    def test_batch_grad_full_batch_matches_grad(self):
        objective = make_correctness(l2_sources=0.2)
        rng = np.random.default_rng(5)
        w = rng.normal(size=objective.n_params)
        full = objective.grad(w)
        batch = objective.batch_grad(w, np.arange(objective.n_samples))
        assert np.allclose(full, batch, atol=1e-9)


class TestConditionalObjective:
    def test_gradient_matches_finite_difference(self):
        objective = make_conditional(l2_sources=0.4, l2_features=0.1)
        rng = np.random.default_rng(6)
        w = rng.normal(scale=0.5, size=objective.n_params)
        _, grad = objective.value_and_grad(w)
        assert np.allclose(grad, finite_difference_grad(objective, w), atol=1e-5)

    def test_gradient_with_extras(self):
        objective = make_conditional(n_extra=2, l2_extra=0.3)
        rng = np.random.default_rng(7)
        w = rng.normal(scale=0.5, size=objective.n_params)
        _, grad = objective.value_and_grad(w)
        assert np.allclose(grad, finite_difference_grad(objective, w), atol=1e-5)

    def test_gradient_with_base_scores(self):
        objective = make_conditional(with_base=True)
        rng = np.random.default_rng(8)
        w = rng.normal(scale=0.5, size=objective.n_params)
        _, grad = objective.value_and_grad(w)
        assert np.allclose(grad, finite_difference_grad(objective, w), atol=1e-5)

    def test_unlabeled_objects_excluded(self):
        objective = make_conditional()
        # mark object 1 unlabeled: weight should drop from the loss
        objective_missing = make_conditional()
        objective_missing.label_pair_idx = objective.label_pair_idx.copy()
        objective_missing.label_pair_idx[1] = -1
        objective_missing.object_weights = np.where(objective_missing.label_pair_idx >= 0, 1.0, 0.0)
        w = np.zeros(objective.n_params)
        assert objective_missing.value(w) != pytest.approx(objective.value(w))

    def test_posteriors_normalize_per_object(self):
        objective = make_conditional()
        w = np.random.default_rng(9).normal(size=objective.n_params)
        log_post = objective.pair_log_posteriors(w)
        probs = np.exp(log_post)
        for obj in range(3):
            mask = objective.pair_object_idx == obj
            assert probs[mask].sum() == pytest.approx(1.0, abs=1e-9)
