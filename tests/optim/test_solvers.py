"""Tests for the optimization solvers."""

import numpy as np
import pytest

from repro.optim import (
    CorrectnessObjective,
    fista,
    gradient_descent,
    minimize_lbfgs,
    sgd,
)


class Quadratic:
    """Simple strongly-convex test objective: 0.5 * ||w - target||^2."""

    def __init__(self, target):
        self.target = np.asarray(target, dtype=float)
        self.n_params = self.target.shape[0]

    def value(self, w):
        return 0.5 * float(np.sum((w - self.target) ** 2))

    def grad(self, w):
        return w - self.target

    def value_and_grad(self, w):
        return self.value(w), self.grad(w)


def logistic_objective(seed=0, n_sources=5, n_samples=200, l2=1.0):
    rng = np.random.default_rng(seed)
    design = np.zeros((n_sources, 0))
    source_idx = rng.integers(n_sources, size=n_samples)
    true_acc = rng.uniform(0.3, 0.9, size=n_sources)
    labels = (rng.random(n_samples) < true_acc[source_idx]).astype(float)
    return CorrectnessObjective(source_idx, labels, design, l2_sources=l2)


class TestLBFGS:
    def test_quadratic_exact(self):
        target = np.array([1.0, -2.0, 3.0])
        result = minimize_lbfgs(Quadratic(target))
        assert np.allclose(result.w, target, atol=1e-5)
        assert result.converged

    def test_logistic_converges(self):
        objective = logistic_objective()
        result = minimize_lbfgs(objective)
        assert np.linalg.norm(objective.grad(result.w)) < 1e-4

    def test_warm_start_respected(self):
        target = np.array([5.0])
        result = minimize_lbfgs(Quadratic(target), w0=np.array([4.9]))
        assert result.w[0] == pytest.approx(5.0, abs=1e-6)


class TestGradientDescent:
    def test_quadratic(self):
        target = np.array([0.5, -0.5])
        result = gradient_descent(Quadratic(target), max_iterations=500)
        assert np.allclose(result.w, target, atol=1e-3)
        assert result.converged

    def test_agrees_with_lbfgs_on_logistic(self):
        objective = logistic_objective(seed=3)
        gd = gradient_descent(objective, max_iterations=3000)
        lb = minimize_lbfgs(objective)
        assert gd.value == pytest.approx(lb.value, abs=1e-4)

    def test_zero_iterations(self):
        result = gradient_descent(Quadratic(np.array([1.0])), max_iterations=0)
        assert result.n_iterations == 0


class TestFista:
    def test_high_penalty_zeroes_masked_params(self):
        objective = logistic_objective(seed=1, l2=0.0)
        mask = np.ones(objective.n_params, dtype=bool)
        result = fista(objective, l1_strength=1e3, l1_mask=mask)
        assert np.allclose(result.w, 0.0, atol=1e-6)

    def test_zero_penalty_matches_smooth_solution(self):
        objective = logistic_objective(seed=2)
        mask = np.ones(objective.n_params, dtype=bool)
        result = fista(objective, l1_strength=0.0, l1_mask=mask, max_iterations=5000)
        smooth = minimize_lbfgs(objective)
        assert result.value == pytest.approx(smooth.value, abs=1e-4)

    def test_mask_protects_parameters(self):
        target = np.array([2.0, 2.0])
        mask = np.array([True, False])
        result = fista(Quadratic(target), l1_strength=10.0, l1_mask=mask, max_iterations=2000)
        assert abs(result.w[0]) < 1e-6  # fully shrunk
        assert result.w[1] == pytest.approx(2.0, abs=1e-4)  # untouched by L1

    def test_mask_length_validated(self):
        with pytest.raises(ValueError):
            fista(Quadratic(np.zeros(2)), l1_strength=1.0, l1_mask=np.ones(3, dtype=bool))

    def test_intermediate_penalty_sparsifies(self):
        objective = logistic_objective(seed=4, l2=0.0)
        mask = np.ones(objective.n_params, dtype=bool)
        dense = minimize_lbfgs(objective).w
        sparse = fista(objective, l1_strength=2.0, l1_mask=mask).w
        assert np.sum(np.abs(sparse) < 1e-8) >= np.sum(np.abs(dense) < 1e-8)


class TestSGD:
    def test_decreases_objective(self):
        objective = logistic_objective(seed=5)
        start_value = objective.value(np.zeros(objective.n_params))
        result = sgd(objective, n_samples=objective.n_samples, epochs=20, seed=0)
        assert result.value < start_value

    def test_approaches_lbfgs_optimum(self):
        objective = logistic_objective(seed=6)
        lb = minimize_lbfgs(objective)
        result = sgd(objective, n_samples=objective.n_samples, epochs=80, seed=0)
        assert result.value <= lb.value + 0.02

    def test_callback_invoked(self):
        objective = logistic_objective(seed=7)
        epochs_seen = []
        sgd(
            objective,
            n_samples=objective.n_samples,
            epochs=3,
            callback=lambda epoch, w: epochs_seen.append(epoch),
        )
        assert epochs_seen == [0, 1, 2]

    def test_deterministic_for_seed(self):
        objective = logistic_objective(seed=8)
        a = sgd(objective, n_samples=objective.n_samples, epochs=5, seed=42)
        b = sgd(objective, n_samples=objective.n_samples, epochs=5, seed=42)
        assert np.allclose(a.w, b.w)


class TestWarmLBFGS:
    def test_quadratic_exact(self):
        from repro.optim.solvers import minimize_lbfgs_warm

        target = np.array([1.0, -2.0, 3.0])
        result = minimize_lbfgs_warm(Quadratic(target), w0=np.zeros(3))
        assert np.allclose(result.w, target, atol=1e-6)
        assert result.converged

    def test_memory_reuse_cuts_iterations(self):
        from repro.optim.solvers import LBFGSMemory, minimize_lbfgs_warm

        objective = logistic_objective(seed=11)
        memory = LBFGSMemory()
        cold = minimize_lbfgs_warm(
            objective, w0=np.zeros(objective.n_params), memory=memory, gtol=1e-9, ftol=1e-15
        )
        assert np.max(np.abs(objective.grad(cold.w))) <= 1e-9
        warm = minimize_lbfgs_warm(objective, w0=cold.w, memory=memory, gtol=1e-9, ftol=1e-15)
        assert warm.n_iterations == 0
        np.testing.assert_array_equal(warm.w, cold.w)

    def test_memory_resets_on_dimension_change(self):
        from repro.optim.solvers import LBFGSMemory, minimize_lbfgs_warm

        memory = LBFGSMemory()
        minimize_lbfgs_warm(Quadratic(np.array([1.0, 2.0])), w0=np.zeros(2), memory=memory)
        assert memory.s
        result = minimize_lbfgs_warm(Quadratic(np.array([3.0])), w0=np.zeros(1), memory=memory)
        assert result.w[0] == pytest.approx(3.0, abs=1e-6)

    def test_matches_scipy_on_logistic(self):
        from repro.optim.solvers import minimize_lbfgs_warm

        objective = logistic_objective(seed=12)
        scipy_fit = minimize_lbfgs(objective, tolerance=1e-14, gtol=1e-11)
        warm_fit = minimize_lbfgs_warm(
            objective, w0=np.zeros(objective.n_params), gtol=1e-11, ftol=1e-14
        )
        assert warm_fit.value == pytest.approx(scipy_fit.value, abs=1e-10)


class TestNewton:
    def test_reaches_tighter_gradients_than_scipy(self):
        from repro.optim.solvers import minimize_newton

        objective = logistic_objective(seed=13)
        newton = minimize_newton(objective, w0=np.zeros(objective.n_params), gtol=1e-11)
        assert newton.converged
        assert np.max(np.abs(objective.grad(newton.w))) <= 1e-11

    def test_quadratic_convergence_near_optimum(self):
        from repro.optim.solvers import minimize_newton

        objective = logistic_objective(seed=14)
        first = minimize_newton(objective, w0=np.zeros(objective.n_params), gtol=1e-10)
        again = minimize_newton(objective, w0=first.w, gtol=1e-10)
        assert again.n_iterations <= 1

    def test_featureful_intercept_objective(self):
        from repro.optim.solvers import minimize_newton

        rng = np.random.default_rng(15)
        n_sources, n_features, n_samples = 8, 3, 300
        design = (rng.random((n_sources, n_features)) < 0.5).astype(float)
        source_idx = rng.integers(n_sources, size=n_samples)
        labels = (rng.random(n_samples) < 0.7).astype(float)
        objective = CorrectnessObjective(
            source_idx,
            labels,
            design,
            l2_sources=2.0,
            l2_features=1.0,
            intercept=True,
        )
        newton = minimize_newton(objective, w0=np.zeros(objective.n_params), gtol=1e-11)
        scipy_fit = minimize_lbfgs(objective, tolerance=1e-15, gtol=1e-12, max_iterations=2000)
        assert newton.value == pytest.approx(scipy_fit.value, abs=1e-10)
        assert np.max(np.abs(objective.grad(newton.w))) <= np.max(
            np.abs(objective.grad(scipy_fit.w))
        )
