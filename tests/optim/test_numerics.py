"""Unit and property tests for repro.optim.numerics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optim import (
    log_sigmoid,
    log_softmax,
    logit,
    sigmoid,
    soft_threshold,
    softmax,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_extremes_finite(self):
        assert 0.0 < sigmoid(-1e9) < 1e-9
        assert 1.0 - 1e-9 < sigmoid(1e9) < 1.0

    @given(finite_floats)
    def test_property_bounds(self, z):
        assert 0.0 < sigmoid(z) < 1.0

    @given(finite_floats)
    def test_property_symmetry(self, z):
        assert sigmoid(z) + sigmoid(-z) == pytest.approx(1.0, abs=1e-9)

    @given(st.floats(min_value=-20, max_value=20))
    def test_property_logit_inverse(self, z):
        assert logit(sigmoid(z)) == pytest.approx(z, abs=1e-5)

    def test_vectorized(self):
        z = np.array([-1.0, 0.0, 1.0])
        out = sigmoid(z)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)


class TestLogSigmoid:
    @given(st.floats(min_value=-25, max_value=25))
    def test_property_matches_log_of_sigmoid(self, z):
        assert log_sigmoid(z) == pytest.approx(np.log(sigmoid(z)), abs=1e-7)

    def test_no_overflow(self):
        assert np.isfinite(log_sigmoid(-1e8))


class TestLogit:
    def test_clamps_extremes(self):
        assert np.isfinite(logit(0.0))
        assert np.isfinite(logit(1.0))

    def test_midpoint(self):
        assert logit(0.5) == pytest.approx(0.0)


class TestSoftmax:
    def test_normalizes(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)

    def test_shift_invariance(self):
        scores = np.array([0.5, -1.0, 2.0])
        assert np.allclose(softmax(scores), softmax(scores + 100.0))

    def test_huge_scores_stable(self):
        probs = softmax(np.array([1e9, 0.0]))
        assert probs[0] == pytest.approx(1.0)

    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=6),
            elements=st.floats(min_value=-50, max_value=50),
        )
    )
    def test_property_distribution(self, scores):
        probs = softmax(scores)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(probs >= 0.0)

    def test_log_softmax_consistent(self):
        scores = np.array([0.2, 1.4, -0.7])
        assert np.allclose(np.exp(log_softmax(scores)), softmax(scores))

    def test_batched_last_axis(self):
        scores = np.arange(6.0).reshape(2, 3)
        probs = softmax(scores)
        assert np.allclose(probs.sum(axis=-1), 1.0)


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        x = np.array([-3.0, -0.5, 0.5, 3.0])
        out = soft_threshold(x, 1.0)
        assert np.allclose(out, [-2.0, 0.0, 0.0, 2.0])

    def test_zero_threshold_identity(self):
        x = np.array([1.0, -2.0])
        assert np.allclose(soft_threshold(x, 0.0), x)

    @given(
        hnp.arrays(np.float64, 5, elements=st.floats(min_value=-10, max_value=10)),
        st.floats(min_value=0.0, max_value=5.0),
    )
    def test_property_never_flips_sign(self, x, threshold):
        out = soft_threshold(x, threshold)
        assert np.all(out * x >= 0.0)

    @given(
        hnp.arrays(np.float64, 5, elements=st.floats(min_value=-10, max_value=10)),
        st.floats(min_value=0.0, max_value=5.0),
    )
    def test_property_magnitude_reduced(self, x, threshold):
        out = soft_threshold(x, threshold)
        assert np.all(np.abs(out) <= np.abs(x) + 1e-12)
