"""FeaturizerPipeline: determinism, caching, versioning, FeaturizedSpace."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.featurize import (
    FeatureCache,
    FeaturizerPipeline,
    VolumeGroup,
    cache_key,
    dataset_digest,
    default_groups,
)
from repro.featurize.pipeline import FeaturizedSpace
from repro.fusion import FusionDataset, NotFittedError
from repro.fusion.encoding import encode_dataset
from repro.fusion.types import DatasetError

OBSERVATIONS = [
    ("s0", "o0", "a"),
    ("s1", "o0", "a"),
    ("s2", "o0", "b"),
    ("s0", "o1", "x"),
    ("s2", "o1", "x"),
    ("s1", "o2", "p"),
]


def _dataset(observations=None, **kwargs):
    return FusionDataset(observations or OBSERVATIONS, **kwargs)


class VolumeGroupV2(VolumeGroup):
    version = 2


class TestFeaturize:
    def test_matrix_shape_and_columns(self):
        ds = _dataset()
        result = FeaturizerPipeline().featurize(ds)
        assert result.matrix.shape == (ds.n_sources, result.n_columns)
        assert result.column_names == [
            name for group in default_groups() for name in group.column_names()
        ]
        assert not result.from_cache
        assert result.stats is not None

    def test_deterministic(self):
        ds = _dataset()
        a = FeaturizerPipeline().featurize(ds)
        b = FeaturizerPipeline().featurize(ds)
        assert np.array_equal(a.matrix, b.matrix)
        assert a.version_key == b.version_key
        assert a.digest == b.digest

    def test_dataset_and_encoding_agree(self):
        ds = _dataset()
        from_dataset = FeaturizerPipeline().featurize(ds)
        from_encoding = FeaturizerPipeline().featurize(encode_dataset(ds))
        assert from_dataset.digest == from_encoding.digest
        assert np.array_equal(from_dataset.matrix, from_encoding.matrix)

    def test_n_jobs_bit_identical(self):
        ds = _dataset()
        serial = FeaturizerPipeline(cache=FeatureCache()).featurize(ds, n_jobs=1)
        fanned = FeaturizerPipeline(cache=FeatureCache()).featurize(ds, n_jobs=2)
        assert np.array_equal(serial.matrix, fanned.matrix)

    def test_metadata_block_appended(self):
        ds = _dataset(source_features={"s0": {"year": 2001}, "s1": {"year": 2010}})
        with_meta = FeaturizerPipeline().featurize(ds)
        without = FeaturizerPipeline(include_metadata=False).featurize(ds)
        assert with_meta.n_columns > without.n_columns
        space = with_meta.space()
        assert space.columns_for("year")

    def test_standardize_zero_mean(self):
        result = FeaturizerPipeline(include_metadata=False).featurize(_dataset())
        np.testing.assert_allclose(result.matrix.mean(axis=0), 0.0, atol=1e-12)

    def test_rejects_duplicate_groups(self):
        with pytest.raises(DatasetError, match="duplicate"):
            FeaturizerPipeline([VolumeGroup(), VolumeGroup()])

    def test_rejects_bad_half_life(self):
        with pytest.raises(DatasetError, match="half_life"):
            FeaturizerPipeline(half_life=0.0)

    def test_rejects_unfeaturizable_source(self):
        with pytest.raises(DatasetError, match="featurizer input"):
            FeaturizerPipeline().featurize(object())

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_finite_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        observations = [
            (f"s{rng.integers(0, 6)}", f"o{i}", f"v{rng.integers(0, 3)}")
            for i in range(rng.integers(1, 40))
        ]
        deduped = {(s, o): v for s, o, v in observations}
        ds = _dataset([(s, o, v) for (s, o), v in deduped.items()])
        result = FeaturizerPipeline().featurize(ds)
        assert np.isfinite(result.matrix).all()


class TestCache:
    def test_memory_hit(self):
        pipeline = FeaturizerPipeline()
        ds = _dataset()
        cold = pipeline.featurize(ds)
        warm = pipeline.featurize(ds)
        assert not cold.from_cache
        assert warm.from_cache
        assert np.array_equal(cold.matrix, warm.matrix)
        assert warm.column_names == cold.column_names

    def test_disk_round_trip(self, tmp_path):
        ds = _dataset(source_features={"s0": {"year": 1999}})
        writer = FeaturizerPipeline(cache_dir=str(tmp_path))
        cold = writer.featurize(ds)
        # A fresh pipeline (fresh memo) must hit the on-disk entry.
        reader = FeaturizerPipeline(cache_dir=str(tmp_path))
        warm = reader.featurize(ds)
        assert warm.from_cache
        assert np.array_equal(cold.matrix, warm.matrix)
        assert warm.column_names == cold.column_names
        assert warm.meta["version_key"] == writer.version_key

    def test_data_change_invalidates(self, tmp_path):
        pipeline = FeaturizerPipeline(cache_dir=str(tmp_path))
        pipeline.featurize(_dataset())
        changed = pipeline.featurize(_dataset(OBSERVATIONS + [("s3", "o2", "q")]))
        assert not changed.from_cache

    def test_group_version_bump_invalidates(self, tmp_path):
        ds = _dataset()
        v1 = FeaturizerPipeline([VolumeGroup()], cache_dir=str(tmp_path))
        v2 = FeaturizerPipeline([VolumeGroupV2()], cache_dir=str(tmp_path))
        assert v1.version_key != v2.version_key
        v1.featurize(ds)
        assert not v2.featurize(ds).from_cache

    def test_featurizer_version_bump_invalidates(self, tmp_path, monkeypatch):
        ds = _dataset()
        FeaturizerPipeline(cache_dir=str(tmp_path)).featurize(ds)
        monkeypatch.setattr("repro.featurize.pipeline.FEATURIZER_VERSION", 99)
        bumped = FeaturizerPipeline(cache_dir=str(tmp_path))
        assert "fz99" in bumped.version_key
        assert not bumped.featurize(ds).from_cache

    def test_config_changes_change_version_key(self):
        base = FeaturizerPipeline()
        assert FeaturizerPipeline(half_life=8.0).version_key != base.version_key
        assert FeaturizerPipeline(standardize=False).version_key != base.version_key
        assert FeaturizerPipeline(include_metadata=False).version_key != base.version_key
        assert FeaturizerPipeline([VolumeGroup()]).version_key != base.version_key

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        ds = _dataset()
        pipeline = FeaturizerPipeline(cache_dir=str(tmp_path))
        cold = pipeline.featurize(ds)
        key = cache_key(cold.digest, pipeline.version_key)
        pipeline.cache.path_for(key).write_bytes(b"not an npz")
        pipeline.cache.clear_memory()
        again = pipeline.featurize(ds)
        assert not again.from_cache
        assert np.array_equal(again.matrix, cold.matrix)

    def test_cache_pickles_without_memo(self, tmp_path):
        cache = FeatureCache(str(tmp_path))
        pipeline = FeaturizerPipeline(cache=cache)
        pipeline.featurize(_dataset())
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.path_for("00" * 16).parent == cache.path_for("00" * 16).parent

    def test_digest_tracks_source_features(self):
        plain = _dataset()
        tagged = _dataset(source_features={"s0": {"year": 2000}})
        view = {"plain": plain, "tagged": tagged}
        from repro.featurize.pipeline import _resolve_source

        digests = {
            name: dataset_digest(_resolve_source(ds).arrays, _resolve_source(ds).source_features)
            for name, ds in view.items()
        }
        assert digests["plain"] != digests["tagged"]


class TestFeaturizedSpace:
    def test_transform_one_raises(self):
        space = FeaturizedSpace(["volume:claim_share"])
        with pytest.raises(NotFittedError, match="claim history"):
            space.transform_one({"year": 2000})
        with pytest.raises(NotFittedError):
            space.encode({"year": 2000})

    def test_columns_for_matches_group_prefix(self):
        space = FeaturizedSpace(
            ["volume:claim_share", "volume:log_claims", "recency:staleness", "year=hi"]
        )
        assert [i for i, _ in space.columns_for("volume")] == [0, 1]
        assert [i for i, _ in space.columns_for("year")] == [3]
        assert space.columns_for("nope") == []

    def test_state_round_trip(self):
        space = FeaturizedSpace(["a:b", "c:d"], version_key="vk")
        clone = FeaturizedSpace.from_state(space.to_state())
        assert clone.column_labels == space.column_labels
        assert clone.version_key == "vk"
        assert clone.n_columns == 2
