"""Featurizer wiring through learners, facade, sweeps, harness, streaming."""

import numpy as np
import pytest

from repro import EMConfig, EMLearner, ERMConfig, ERMLearner, SLiMFast
from repro.data import SyntheticConfig, generate
from repro.experiments.harness import sweep
from repro.experiments.methods import get_method
from repro.experiments.sweeps import FitSpec, SweepRunner
from repro.extensions.streaming import StreamingFuser
from repro.featurize import FeaturizerPipeline
from repro.fusion import NotFittedError


@pytest.fixture
def dataset():
    return generate(
        SyntheticConfig(
            n_sources=12,
            n_objects=50,
            density=0.3,
            avg_accuracy=0.72,
            n_features=4,
            n_informative=2,
            seed=3,
            name="wiring-synth",
        )
    ).dataset


class TestLearnerConfig:
    def test_em_requires_use_features(self):
        with pytest.raises(ValueError, match="use_features"):
            EMLearner(EMConfig(use_features=False, featurizer=FeaturizerPipeline()))

    def test_em_requires_design_for(self):
        with pytest.raises(ValueError, match="design_for"):
            EMLearner(EMConfig(featurizer=object()))

    def test_erm_requires_use_features(self):
        with pytest.raises(ValueError, match="use_features"):
            ERMLearner(ERMConfig(use_features=False, featurizer=FeaturizerPipeline()))

    def test_facade_requires_use_features(self):
        with pytest.raises(ValueError, match="use_features"):
            SLiMFast(use_features=False, featurizer=FeaturizerPipeline())


class TestFitIntegration:
    def test_em_fit_uses_reliability_columns(self, dataset):
        learner = EMLearner(EMConfig(featurizer=FeaturizerPipeline(), max_iterations=5))
        model = learner.fit(dataset)
        assert model.feature_space.columns_for("volume")
        assert len(model.w_features) == model.feature_space.n_columns
        assert model.design.shape == (dataset.n_sources, model.feature_space.n_columns)
        with pytest.raises(NotFittedError):
            model.predict_accuracy({"year": 2020})

    def test_erm_fit_featurized(self, dataset):
        truth = {obj: dataset.ground_truth[obj] for obj in list(dataset.objects.items)[:25]}
        model = ERMLearner(ERMConfig(featurizer=FeaturizerPipeline())).fit(dataset, truth)
        assert model.feature_space.columns_for("recency")

    def test_facade_featurized_predicts(self, dataset):
        result = SLiMFast(learner="em", featurizer=FeaturizerPipeline()).fit_predict(dataset)
        assert set(result.values) == set(dataset.objects.items)
        assert all(np.isfinite(list(result.source_accuracies.values())))

    def test_pipeline_cache_reused_across_learners(self, dataset):
        pipeline = FeaturizerPipeline()
        SLiMFast(learner="em", featurizer=pipeline).fit_predict(dataset)
        assert pipeline.featurize(dataset).from_cache

    def test_get_method_featurized(self, dataset):
        runner = get_method("slimfast-em", featurizer=FeaturizerPipeline())
        result = runner(dataset, None)
        assert set(result.values) == set(dataset.objects.items)

    def test_get_method_rejects_featureless_methods(self):
        with pytest.raises(ValueError, match="does not consume"):
            get_method("majority", featurizer=FeaturizerPipeline())


class TestSweepWiring:
    def test_mixed_specs_share_runner(self, dataset):
        pipeline = FeaturizerPipeline()
        runner = SweepRunner(dataset)
        outcomes = runner.run(
            [
                FitSpec(name="plain", learner="em", overrides={"max_iterations": 4}),
                FitSpec(
                    name="featurized",
                    learner="em",
                    overrides={"max_iterations": 4},
                    featurizer=pipeline,
                ),
                FitSpec(
                    name="featurized-2",
                    learner="em",
                    overrides={"max_iterations": 6},
                    featurizer=pipeline,
                ),
            ]
        )
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert set(outcome.result.values) == set(dataset.objects.items)

    def test_featurized_spec_rejects_use_features_false(self, dataset):
        runner = SweepRunner(dataset)
        with pytest.raises(ValueError, match="use_features"):
            runner.run(
                [
                    FitSpec(
                        name="bad",
                        learner="em",
                        use_features=False,
                        featurizer=FeaturizerPipeline(),
                    )
                ]
            )

    def test_harness_sweep_accepts_featurizer(self, dataset):
        results = sweep(
            dataset,
            methods=["slimfast-em", "majority"],
            train_fractions=[0.2],
            seeds=(0,),
            featurizer=FeaturizerPipeline(),
        )
        assert {r.method for r in results} == {"slimfast-em", "majority"}
        for r in results:
            assert 0.0 <= r.object_accuracy <= 1.0


class TestStreamingWiring:
    def test_reference_backend_rejects_featurizer(self):
        with pytest.raises(ValueError, match="vectorized"):
            StreamingFuser(backend="reference", featurizer=FeaturizerPipeline())

    def test_rejects_featurizer_without_design_from_stats(self):
        with pytest.raises(ValueError, match="design_from_stats"):
            StreamingFuser(featurizer=object())

    def test_refit_with_featurizer_runs(self, dataset):
        pipeline = FeaturizerPipeline()
        fuser = StreamingFuser(
            refit_every=60,
            refit_overrides={"max_iterations": 4},
            featurizer=pipeline,
        )
        observations = [(o.source, o.obj, o.value) for o in dataset.observations]
        for i in range(0, len(observations), 25):
            fuser.observe_batch(observations[i : i + 25])
        assert fuser.n_refits >= 1
        result = fuser.to_result()
        assert set(result.values) <= set(dataset.objects.items)
        # The running accumulators must match a cold pass over the stream.
        from repro.featurize import compute_source_stats
        from repro.featurize.pipeline import _resolve_source

        cold = compute_source_stats(
            _resolve_source(fuser.encoding).arrays,
            fuser.encoding.n_sources,
            half_life=pipeline.half_life,
        )
        snap = fuser._running_stats.snapshot(fuser.encoding.n_objects)
        assert np.array_equal(cold.n_claims, snap.n_claims)
        np.testing.assert_allclose(snap.sum_entropy, cold.sum_entropy, atol=1e-9)
