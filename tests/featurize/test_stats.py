"""Reliability statistics: hand-checked values, chunk invariance, streaming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.featurize import (
    RunningSourceStats,
    SourceStats,
    compute_object_stats,
    compute_source_stats,
    compute_source_stats_chunk,
)
from repro.featurize.pipeline import _resolve_source
from repro.fusion import FusionDataset, IncrementalEncoding

# Arrival-ordered observations with every interesting case: a contested
# object (o0), a corroborated uncontested one (o1), and a solo claim (o2).
HAND_OBSERVATIONS = [
    ("s0", "o0", "a"),  # row 0
    ("s1", "o0", "a"),  # row 1
    ("s2", "o0", "b"),  # row 2
    ("s0", "o1", "x"),  # row 3
    ("s2", "o1", "x"),  # row 4
    ("s1", "o2", "p"),  # row 5
]


def _arrays(dataset_or_encoding):
    return _resolve_source(dataset_or_encoding).arrays


def _random_dataset(seed, n_sources, n_objects, domain_size):
    rng = np.random.default_rng(seed)
    observations = []
    for s in range(n_sources):
        claimed = rng.choice(n_objects, size=rng.integers(1, n_objects + 1), replace=False)
        for o in claimed:
            observations.append((f"s{s}", f"o{o}", f"v{rng.integers(0, domain_size)}"))
    rng.shuffle(observations)
    # Duplicate (source, object) pairs are impossible by construction.
    return FusionDataset(observations)


class TestObjectStats:
    def test_hand_computed(self):
        ds = FusionDataset(HAND_OBSERVATIONS)
        obj = compute_object_stats(_arrays(ds))
        assert obj.claims_per_object.tolist() == [3, 2, 1]
        assert obj.domain_sizes.tolist() == [2, 1, 1]
        # o0 votes: a=2, b=1 -> consensus a (code 0)
        assert obj.votes.tolist() == [2, 1, 2, 1]
        assert obj.consensus_code.tolist() == [0, 0, 0]
        h = -(2 / 3 * np.log(2 / 3) + 1 / 3 * np.log(1 / 3)) / np.log(2)
        np.testing.assert_allclose(obj.entropy, [h, 0.0, 0.0])

    def test_consensus_tie_breaks_to_lowest_code(self):
        ds = FusionDataset([("s0", "o", "a"), ("s1", "o", "b")])
        obj = compute_object_stats(_arrays(ds))
        assert obj.consensus_code.tolist() == [0]


class TestSourceStats:
    def test_hand_computed(self):
        ds = FusionDataset(HAND_OBSERVATIONS)
        stats = compute_source_stats(_arrays(ds), ds.n_sources, half_life=3.0)
        assert stats.n_claims.tolist() == [2, 2, 2]
        assert stats.n_solo.tolist() == [0, 1, 0]
        assert stats.n_consensus.tolist() == [2, 2, 1]
        assert stats.n_contradicted.tolist() == [1, 1, 1]
        assert stats.sum_domain.tolist() == [3.0, 3.0, 3.0]
        assert stats.sum_coclaim.tolist() == [3.0, 2.0, 3.0]
        assert stats.sum_agree.tolist() == [2.0, 1.0, 1.0]
        assert stats.sum_row.tolist() == [3.0, 6.0, 6.0]
        assert stats.first_row.tolist() == [0, 1, 2]
        assert stats.last_row.tolist() == [3, 5, 4]
        h = -(2 / 3 * np.log(2 / 3) + 1 / 3 * np.log(1 / 3)) / np.log(2)
        np.testing.assert_allclose(stats.sum_entropy, [h, h, h])
        # s0: rows 0 and 3, last=3, half-life 3 -> 2^-1 + 2^0
        np.testing.assert_allclose(stats.decayed_volume[0], 0.5 + 1.0)
        # s0 agree counts: row 0 (o0=a, votes 2) and row 3 (o1=x, votes 2)
        np.testing.assert_allclose(stats.decayed_agree[0], 0.5 * 1.0 + 1.0 * 1.0)

    def test_empty_source_range(self):
        ds = FusionDataset(HAND_OBSERVATIONS)
        obj = compute_object_stats(_arrays(ds))
        chunk = compute_source_stats_chunk(_arrays(ds), obj, 1, 1)
        assert chunk.n_sources == 0
        assert chunk.n_claims.shape == (0,)

    def test_concat_requires_contiguity(self):
        ds = FusionDataset(HAND_OBSERVATIONS)
        obj = compute_object_stats(_arrays(ds))
        a = compute_source_stats_chunk(_arrays(ds), obj, 0, 1)
        c = compute_source_stats_chunk(_arrays(ds), obj, 2, 3)
        with pytest.raises(ValueError, match="contiguous"):
            SourceStats.concat([a, c])


class TestChunkInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_sources=st.integers(min_value=1, max_value=12),
        n_objects=st.integers(min_value=1, max_value=15),
        domain_size=st.integers(min_value=2, max_value=4),
        n_chunks=st.integers(min_value=2, max_value=8),
    )
    def test_any_chunking_is_bit_identical(self, seed, n_sources, n_objects, domain_size, n_chunks):
        from repro.experiments.parallel import chunk_indices

        ds = _random_dataset(seed, n_sources, n_objects, domain_size)
        arrays = _arrays(ds)
        obj = compute_object_stats(arrays)
        full = compute_source_stats_chunk(arrays, obj, 0, ds.n_sources)
        parts = [
            compute_source_stats_chunk(arrays, obj, c.start, c.stop)
            for c in chunk_indices(ds.n_sources, n_chunks)
            if len(c)
        ]
        glued = SourceStats.concat(parts)
        for name in SourceStats.ARRAY_FIELDS:
            # Bit-for-bit, floats included: no tolerance.
            assert np.array_equal(getattr(full, name), getattr(glued, name)), name

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_deterministic_per_seed(self, seed):
        ds = _random_dataset(seed, 8, 10, 3)
        arrays = _arrays(ds)
        a = compute_source_stats(arrays, ds.n_sources)
        b = compute_source_stats(arrays, ds.n_sources)
        for name in SourceStats.ARRAY_FIELDS:
            assert np.array_equal(getattr(a, name), getattr(b, name)), name

    def test_process_pool_matches_serial(self):
        # A real ProcessPoolExecutor fan-out (n_jobs=3) must reproduce the
        # serial computation bit-for-bit.
        ds = _random_dataset(7, 12, 30, 3)
        arrays = _arrays(ds)
        serial = compute_source_stats(arrays, ds.n_sources, n_jobs=1)
        parallel = compute_source_stats(arrays, ds.n_sources, n_jobs=3)
        for name in SourceStats.ARRAY_FIELDS:
            assert np.array_equal(getattr(serial, name), getattr(parallel, name)), name


class TestRunningSourceStats:
    INT_FIELDS = ("n_claims", "n_solo", "n_consensus", "n_contradicted", "first_row", "last_row")
    FLOAT_FIELDS = (
        "sum_domain",
        "sum_coclaim",
        "sum_agree",
        "sum_entropy",
        "sum_row",
        "decayed_volume",
        "decayed_agree",
    )

    def _replay(self, observations, batch_size, half_life=64.0):
        encoding = IncrementalEncoding()
        running = RunningSourceStats(half_life=half_life)
        for i in range(0, len(observations), batch_size):
            batch = encoding.append(observations[i : i + batch_size])
            running.observe(encoding, batch)
        cold = compute_source_stats(_arrays(encoding), encoding.n_sources, half_life=half_life)
        return cold, running.snapshot(encoding.n_objects)

    @pytest.mark.parametrize("batch_size", [1, 2, 6])
    def test_matches_cold_on_hand_example(self, batch_size):
        cold, snap = self._replay(HAND_OBSERVATIONS, batch_size, half_life=3.0)
        for name in self.INT_FIELDS:
            assert np.array_equal(getattr(cold, name), getattr(snap, name)), name
        for name in self.FLOAT_FIELDS:
            np.testing.assert_allclose(
                getattr(snap, name), getattr(cold, name), atol=1e-9, err_msg=name
            )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        batch_size=st.integers(min_value=1, max_value=9),
    )
    def test_matches_cold_on_random_streams(self, seed, batch_size):
        ds = _random_dataset(seed, 6, 12, 3)
        observations = [(o.source, o.obj, o.value) for o in ds.observations]
        cold, snap = self._replay(observations, batch_size)
        for name in self.INT_FIELDS:
            assert np.array_equal(getattr(cold, name), getattr(snap, name)), name
        for name in self.FLOAT_FIELDS:
            np.testing.assert_allclose(
                getattr(snap, name), getattr(cold, name), atol=1e-9, err_msg=name
            )

    def test_empty_batch_is_noop(self):
        encoding = IncrementalEncoding()
        running = RunningSourceStats()
        batch = encoding.append([])
        running.observe(encoding, batch)
        assert running.n_observations == 0
