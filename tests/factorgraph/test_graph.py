"""Tests for the factor-graph representation."""

import pytest

from repro.factorgraph import Factor, FactorGraph, GraphError, Variable


def indicator(target):
    return lambda args: 1.0 if args[0] == target else 0.0


class TestVariable:
    def test_empty_domain_rejected(self):
        with pytest.raises(GraphError):
            Variable(name="v", domain=())

    def test_evidence_outside_domain_rejected(self):
        with pytest.raises(GraphError):
            Variable(name="v", domain=("a",), observed="b")

    def test_cardinality(self):
        assert Variable("v", ("a", "b", "c")).cardinality == 3


class TestFactorGraphConstruction:
    def test_duplicate_variable_rejected(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a"])
        with pytest.raises(GraphError):
            graph.add_variable("v", ["b"])

    def test_factor_over_unknown_variable_rejected(self):
        graph = FactorGraph()
        with pytest.raises(GraphError):
            graph.add_factor(["ghost"], indicator("a"), weight_id="w")

    def test_empty_factor_rejected(self):
        graph = FactorGraph()
        with pytest.raises(GraphError):
            Factor(variables=(), feature=indicator("a"), weight_id="w")

    def test_tied_weights_share_entry(self):
        graph = FactorGraph()
        graph.add_variable("v1", ["a", "b"])
        graph.add_variable("v2", ["a", "b"])
        graph.add_factor(["v1"], indicator("a"), weight_id="shared")
        graph.add_factor(["v2"], indicator("a"), weight_id="shared")
        assert len(graph.weights) == 1

    def test_initial_weight_kept_for_existing_id(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a"])
        graph.add_factor(["v"], indicator("a"), weight_id="w", initial_weight=2.0)
        graph.add_factor(["v"], indicator("a"), weight_id="w", initial_weight=9.0)
        assert graph.weights["w"] == 2.0

    def test_factors_of(self):
        graph = FactorGraph()
        graph.add_variable("v1", ["a"])
        graph.add_variable("v2", ["a"])
        graph.add_factor(["v1"], indicator("a"), weight_id="w1")
        graph.add_factor(["v1", "v2"], lambda args: 1.0, weight_id="w2")
        assert len(graph.factors_of("v1")) == 2
        assert len(graph.factors_of("v2")) == 1

    def test_latent_variables(self):
        graph = FactorGraph()
        graph.add_variable("obs", ["a"], observed="a")
        graph.add_variable("lat", ["a", "b"])
        assert [v.name for v in graph.latent_variables()] == ["lat"]


class TestScoring:
    def test_local_scores_unary(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a", "b"])
        graph.add_factor(["v"], indicator("a"), weight_id="w", initial_weight=1.5)
        scores = graph.local_scores("v", {})
        assert scores[0] == pytest.approx(1.5)
        assert scores[1] == pytest.approx(0.0)

    def test_local_scores_pairwise_uses_assignment(self):
        graph = FactorGraph()
        graph.add_variable("v1", ["a", "b"])
        graph.add_variable("v2", ["a", "b"])
        def agree(args):
            return 1.0 if args[0] == args[1] else 0.0

        graph.add_factor(["v1", "v2"], agree, weight_id="w", initial_weight=2.0)
        scores = graph.local_scores("v1", {"v2": "b"})
        assert scores[0] == pytest.approx(0.0)  # v1=a disagrees
        assert scores[1] == pytest.approx(2.0)  # v1=b agrees

    def test_observed_neighbor_resolves_to_evidence(self):
        graph = FactorGraph()
        graph.add_variable("v1", ["a", "b"])
        graph.add_variable("v2", ["a", "b"], observed="a")
        def agree(args):
            return 1.0 if args[0] == args[1] else 0.0

        graph.add_factor(["v1", "v2"], agree, weight_id="w", initial_weight=3.0)
        scores = graph.local_scores("v1", {})
        assert scores[0] == pytest.approx(3.0)

    def test_missing_latent_assignment_raises(self):
        graph = FactorGraph()
        graph.add_variable("v1", ["a"])
        graph.add_variable("v2", ["a", "b"])
        graph.add_factor(["v1", "v2"], lambda args: 1.0, weight_id="w", initial_weight=1.0)
        with pytest.raises(GraphError):
            graph.local_scores("v1", {})

    def test_assignment_log_score(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a", "b"])
        graph.add_factor(["v"], indicator("a"), weight_id="w", initial_weight=0.7)
        assert graph.assignment_log_score({"v": "a"}) == pytest.approx(0.7)
        assert graph.assignment_log_score({"v": "b"}) == pytest.approx(0.0)
