"""Tests for the Gibbs sampler."""

import numpy as np
import pytest

from repro.factorgraph import FactorGraph, GibbsSampler
from repro.optim import softmax


def indicator(target):
    return lambda args: 1.0 if args[0] == target else 0.0


class TestGibbsSampler:
    def test_matches_exact_posterior_unary(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a", "b"])
        graph.add_factor(["v"], indicator("a"), weight_id="w", initial_weight=1.2)
        result = GibbsSampler(n_samples=4000, burn_in=200, seed=0).run(graph)
        exact = softmax(np.array([1.2, 0.0]))
        assert result.marginals["v"]["a"] == pytest.approx(exact[0], abs=0.03)

    def test_independent_variables(self):
        graph = FactorGraph()
        for i in range(3):
            graph.add_variable(f"v{i}", ["a", "b"])
            graph.add_factor([f"v{i}"], indicator("a"), weight_id=f"w{i}", initial_weight=0.5)
        result = GibbsSampler(n_samples=3000, burn_in=100, seed=1).run(graph)
        exact = softmax(np.array([0.5, 0.0]))[0]
        for i in range(3):
            assert result.marginals[f"v{i}"]["a"] == pytest.approx(exact, abs=0.04)

    def test_pairwise_coupling(self):
        """Two variables with an agreement factor: exact joint enumeration."""
        graph = FactorGraph()
        graph.add_variable("x", ["a", "b"])
        graph.add_variable("y", ["a", "b"])
        def agree(args):
            return 1.0 if args[0] == args[1] else 0.0

        graph.add_factor(["x", "y"], agree, weight_id="w", initial_weight=1.0)
        graph.add_factor(["x"], indicator("a"), weight_id="u", initial_weight=0.8)
        result = GibbsSampler(n_samples=8000, burn_in=500, seed=2).run(graph)

        # exact marginal of x by enumeration
        weights = {}
        for x in ("a", "b"):
            for y in ("a", "b"):
                score = (1.0 if x == y else 0.0) * 1.0 + (0.8 if x == "a" else 0.0)
                weights[(x, y)] = np.exp(score)
        z = sum(weights.values())
        exact_x_a = (weights[("a", "a")] + weights[("a", "b")]) / z
        assert result.marginals["x"]["a"] == pytest.approx(exact_x_a, abs=0.03)

    def test_observed_variables_not_sampled(self):
        graph = FactorGraph()
        graph.add_variable("obs", ["a", "b"], observed="b")
        graph.add_variable("lat", ["a", "b"])
        result = GibbsSampler(n_samples=50, burn_in=10, seed=3).run(graph)
        assert "obs" not in result.marginals
        assert "lat" in result.marginals

    def test_deterministic_per_seed(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a", "b"])
        graph.add_factor(["v"], indicator("a"), weight_id="w", initial_weight=0.3)
        r1 = GibbsSampler(n_samples=100, burn_in=10, seed=5).run(graph)
        r2 = GibbsSampler(n_samples=100, burn_in=10, seed=5).run(graph)
        assert r1.marginals == r2.marginals

    def test_initial_state_respected(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a", "b"])
        result = GibbsSampler(n_samples=1, burn_in=0, seed=6).run(graph, initial_state={"v": "b"})
        assert result.n_samples == 1

    def test_map_assignment(self):
        graph = FactorGraph()
        graph.add_variable("v", ["a", "b"])
        graph.add_factor(["v"], indicator("b"), weight_id="w", initial_weight=3.0)
        result = GibbsSampler(n_samples=500, burn_in=50, seed=7).run(graph)
        assert result.map_assignment()["v"] == "b"

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            GibbsSampler(n_samples=0)
