"""Tests for pseudo-likelihood weight learning on factor graphs."""

import numpy as np
import pytest

from repro.core import ERMLearner, ERMConfig
from repro.factorgraph import PseudoLikelihoodLearner, compile_dataset
from repro.optim import sigmoid


class TestPseudoLikelihoodLearner:
    def test_requires_evidence(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset)  # no evidence
        with pytest.raises(ValueError, match="evidence"):
            PseudoLikelihoodLearner().fit(compiled.graph)

    def test_learns_source_quality(self, small_dataset):
        """Fully supervised factor-graph learning must rank sources like ERM."""
        compiled = compile_dataset(
            small_dataset, evidence=small_dataset.ground_truth, use_features=False
        )
        learner = PseudoLikelihoodLearner(epochs=25, l2=4.0, seed=0)
        learner.fit(compiled.graph, compiled.learnable_weight_ids())

        fg_acc = {
            source: float(sigmoid(compiled.graph.weights[("src", source)]))
            for source in small_dataset.sources
        }
        erm = ERMLearner(ERMConfig(use_features=False)).fit(
            small_dataset, small_dataset.ground_truth
        )
        erm_acc = erm.accuracy_map()
        a = np.array([fg_acc[s] for s in small_dataset.sources])
        b = np.array([erm_acc[s] for s in small_dataset.sources])
        assert np.corrcoef(a, b)[0, 1] > 0.8

    def test_objective_decreases(self, tiny_dataset):
        compiled = compile_dataset(
            tiny_dataset, evidence=tiny_dataset.ground_truth, use_features=False
        )
        few = PseudoLikelihoodLearner(epochs=1, seed=0)
        graph1 = compile_dataset(
            tiny_dataset, evidence=tiny_dataset.ground_truth, use_features=False
        ).graph
        loss_early = few.fit(graph1, None).final_objective

        many = PseudoLikelihoodLearner(epochs=40, seed=0)
        loss_late = many.fit(compiled.graph, None).final_objective
        assert loss_late <= loss_early + 1e-6

    def test_offset_weight_can_be_frozen(self, multi_valued_dataset):
        split = multi_valued_dataset.split(0.6, seed=0)
        compiled = compile_dataset(multi_valued_dataset, evidence=split.train_truth)
        learner = PseudoLikelihoodLearner(epochs=3, seed=0)
        learner.fit(compiled.graph, compiled.learnable_weight_ids())
        assert compiled.graph.weights["__offset__"] == 1.0

    def test_result_snapshot(self, tiny_dataset):
        compiled = compile_dataset(
            tiny_dataset, evidence=tiny_dataset.ground_truth, use_features=False
        )
        result = PseudoLikelihoodLearner(epochs=5).fit(compiled.graph, None)
        assert result.n_epochs == 5
        assert set(result.weights) == set(compiled.graph.weights)
