"""Tests for the dataset-to-factor-graph compiler."""

import pytest

from repro.core import ERMLearner, posteriors
from repro.factorgraph import GibbsSampler, compile_dataset


class TestCompileStructure:
    def test_one_variable_per_object(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset)
        assert len(compiled.graph.variables) == tiny_dataset.n_objects

    def test_domains_match_dataset(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset)
        var = compiled.graph.variable(("T", "gigyf2"))
        assert set(var.domain) == {"false", "true"}

    def test_evidence_objects_observed(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset, evidence={"gba": "true"})
        assert compiled.graph.variable(("T", "gba")).observed == "true"
        assert compiled.graph.variable(("T", "gigyf2")).observed is None

    def test_evidence_extends_domain_when_unclaimed(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset, evidence={"gba": "false"})
        var = compiled.graph.variable(("T", "gba"))
        assert "false" in var.domain

    def test_source_weights_tied(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset)
        # a1 observes two objects but owns a single weight
        assert ("src", "a1") in compiled.graph.weights
        a1_factors = [f for f in compiled.graph.factors if f.weight_id == ("src", "a1")]
        assert len(a1_factors) == 2

    def test_feature_weights_created(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset, use_features=True)
        feature_ids = [w for w in compiled.graph.weights if isinstance(w, tuple) and w[0] == "feat"]
        assert len(feature_ids) > 0

    def test_no_feature_weights_when_disabled(self, tiny_dataset):
        compiled = compile_dataset(tiny_dataset, use_features=False)
        feature_ids = [w for w in compiled.graph.weights if isinstance(w, tuple) and w[0] == "feat"]
        assert feature_ids == []

    def test_learnable_ids_exclude_offset(self, multi_valued_dataset):
        compiled = compile_dataset(multi_valued_dataset)
        assert "__offset__" not in compiled.learnable_weight_ids()
        assert compiled.graph.weights["__offset__"] == 1.0


class TestEquivalenceWithClosedForm:
    def test_gibbs_matches_exact_posteriors(self, tiny_dataset):
        """The compiled graph + Gibbs must agree with Equation 4's softmax."""
        model = ERMLearner().fit(tiny_dataset, tiny_dataset.ground_truth)
        exact = posteriors(tiny_dataset, model)

        compiled = compile_dataset(tiny_dataset, use_features=True)
        compiled.set_weights_from_model(model)
        result = GibbsSampler(n_samples=6000, burn_in=300, seed=0).run(compiled.graph)

        for obj in tiny_dataset.objects:
            marginal = result.marginals[("T", obj)]
            for value, prob in exact[obj].items():
                assert marginal[value] == pytest.approx(prob, abs=0.04)

    def test_gibbs_matches_exact_multivalued(self, multi_valued_dataset):
        """Domain-corrected compilation agrees with closed-form inference."""
        split = multi_valued_dataset.split(0.5, seed=0)
        model = ERMLearner().fit(multi_valued_dataset, split.train_truth)
        exact = posteriors(multi_valued_dataset, model)

        compiled = compile_dataset(multi_valued_dataset)
        compiled.set_weights_from_model(model)
        result = GibbsSampler(n_samples=3000, burn_in=200, seed=1).run(compiled.graph)

        checked = 0
        for obj in list(multi_valued_dataset.objects)[:10]:
            marginal = result.marginals[("T", obj)]
            for value, prob in exact[obj].items():
                assert marginal.get(value, 0.0) == pytest.approx(prob, abs=0.06)
                checked += 1
        assert checked > 0
