"""Backend parity for the Gibbs sampler: "vectorized" vs "reference".

The two backends consume randomness differently, so parity is
distributional: on unary graphs (the SLiMFast compilation target) both
must converge to the same exact softmax marginals.
"""

import numpy as np
import pytest

from repro.factorgraph import FactorGraph, GibbsSampler
from repro.factorgraph.graph import GraphError
from repro.optim import softmax


def indicator(target):
    return lambda args: 1.0 if args[0] == target else 0.0


def unary_graph():
    """Three independent variables with distinct unary pulls."""
    graph = FactorGraph()
    for i, weight in enumerate((1.2, -0.4, 0.7)):
        graph.add_variable(f"v{i}", ["a", "b", "c"])
        graph.add_factor([f"v{i}"], indicator("a"), weight_id=f"w{i}", initial_weight=weight)
    return graph


class TestGibbsBackendParity:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_matches_exact_marginals(self, backend):
        graph = unary_graph()
        sampler = GibbsSampler(n_samples=6000, burn_in=200, seed=7, backend=backend)
        result = sampler.run(graph)
        for i, weight in enumerate((1.2, -0.4, 0.7)):
            exact = softmax(np.array([weight, 0.0, 0.0]))
            for j, value in enumerate(("a", "b", "c")):
                assert result.marginals[f"v{i}"][value] == pytest.approx(
                    exact[j], abs=0.03
                ), f"backend={backend} v{i}[{value}]"

    def test_backends_agree_pairwise(self):
        graph = unary_graph()
        results = {
            backend: GibbsSampler(
                n_samples=6000, burn_in=200, seed=11, backend=backend
            ).run(graph)
            for backend in ("reference", "vectorized")
        }
        for name, dist in results["reference"].marginals.items():
            for value, probability in dist.items():
                assert results["vectorized"].marginals[name][value] == pytest.approx(
                    probability, abs=0.04
                )

    def test_map_assignment_agrees(self):
        graph = unary_graph()
        maps = {
            backend: GibbsSampler(
                n_samples=4000, burn_in=100, seed=3, backend=backend
            ).run(graph).map_assignment()
            for backend in ("reference", "vectorized")
        }
        # v1's "b" and "c" are exactly tied, so its argmax is sampling
        # noise; compare only the variables with a unique mode.
        for name in ("v0", "v2"):
            assert maps["reference"][name] == maps["vectorized"][name]


class TestGibbsBackendDispatch:
    def pairwise_graph(self):
        graph = FactorGraph()
        graph.add_variable("x", ["a", "b"])
        graph.add_variable("y", ["a", "b"])
        graph.add_factor(
            ["x", "y"], lambda args: 1.0 if args[0] == args[1] else 0.0,
            weight_id="w", initial_weight=1.0,
        )
        return graph

    def test_vectorized_rejects_non_unary(self):
        with pytest.raises(GraphError, match="unary"):
            GibbsSampler(n_samples=10, backend="vectorized").run(self.pairwise_graph())

    def test_auto_falls_back_on_non_unary(self):
        result = GibbsSampler(n_samples=200, burn_in=20, seed=0, backend="auto").run(
            self.pairwise_graph()
        )
        assert set(result.marginals) == {"x", "y"}

    def test_auto_respects_initial_state(self):
        """auto + initial_state keeps warm-restart (reference) semantics."""
        graph = unary_graph()
        state = {f"v{i}": "c" for i in range(3)}
        result = GibbsSampler(n_samples=50, burn_in=0, seed=5, backend="auto").run(
            graph, initial_state=state
        )
        assert set(result.last_state) == set(state)
