"""Tests for compiling the copying extension into the factor graph."""

import pytest

from repro.core import CopyingSLiMFast, find_candidate_pairs
from repro.data import SyntheticConfig, generate
from repro.factorgraph import GibbsSampler, compile_with_copying
from repro.optim import softmax


@pytest.fixture(scope="module")
def copy_instance():
    return generate(
        SyntheticConfig(
            n_sources=25,
            n_objects=60,
            density=0.2,
            avg_accuracy=0.65,
            copy_groups=3,
            copy_group_size=4,
            copy_fidelity=0.95,
            seed=5,
        )
    )


class TestCompileWithCopying:
    def test_copy_weights_created(self, copy_instance):
        ds = copy_instance.dataset
        pairs = find_candidate_pairs(ds, min_overlap=3, z_threshold=1.0)
        compiled = compile_with_copying(ds, pairs)
        copy_ids = [
            wid
            for wid in compiled.graph.weights
            if isinstance(wid, tuple) and wid[0] == "copy"
        ]
        assert len(copy_ids) == len({(p.first, p.second) for p in pairs})

    def test_no_pairs_reduces_to_base_graph(self, copy_instance):
        ds = copy_instance.dataset
        compiled = compile_with_copying(ds, [])
        copy_ids = [
            wid
            for wid in compiled.graph.weights
            if isinstance(wid, tuple) and wid[0] == "copy"
        ]
        assert copy_ids == []

    def test_matches_core_copying_scores(self, copy_instance):
        """Setting the compiled copy weights from a fitted CopyingSLiMFast
        must give the same per-object posterior as the core implementation."""
        ds = copy_instance.dataset
        split = ds.split(0.4, seed=0)
        core = CopyingSLiMFast(learner="erm", em_rounds=0, z_threshold=1.0).fit(
            ds, split.train_truth
        )
        compiled = compile_with_copying(ds, core.pairs_)
        compiled.set_weights_from_model(core.model_)
        weights = core.pair_weights()
        for (a, b), weight in weights.items():
            compiled.graph.weights[("copy", a, b)] = weight

        core_result = core.predict()
        # compare exact conditional posteriors per object (factors are
        # unary, so the local conditional is the exact marginal).
        checked = 0
        for obj in list(ds.objects)[:15]:
            if obj in split.train_truth:
                continue
            variable = compiled.graph.variable(("T", obj))
            scores = compiled.graph.local_scores(("T", obj), {})
            probs = softmax(scores)
            for i, value in enumerate(variable.domain):
                assert core_result.posteriors[obj][value] == pytest.approx(
                    float(probs[i]), abs=1e-6
                )
                checked += 1
        assert checked > 0

    def test_gibbs_runs_on_copying_graph(self, copy_instance):
        ds = copy_instance.dataset
        pairs = find_candidate_pairs(ds, min_overlap=3, z_threshold=1.0)
        compiled = compile_with_copying(ds, pairs)
        for pair in pairs:
            compiled.graph.weights[("copy", pair.first, pair.second)] = 0.3
        result = GibbsSampler(n_samples=50, burn_in=10, seed=0).run(compiled.graph)
        assert len(result.marginals) == ds.n_objects
