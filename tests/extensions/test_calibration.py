"""Tests for posterior calibration diagnostics."""

import math

import numpy as np
import pytest

from repro.core import SLiMFast
from repro.extensions import (
    confidence_threshold_for_precision,
    coverage_at_threshold,
    expected_calibration_error,
    reliability_curve,
)


def perfect_posteriors(truth):
    return {obj: {value: 1.0} for obj, value in truth.items()}


class TestReliabilityCurve:
    def test_perfect_predictions(self):
        truth = {f"o{i}": "v" for i in range(20)}
        points = reliability_curve(perfect_posteriors(truth), truth)
        assert len(points) == 1
        assert points[0].accuracy == 1.0
        assert points[0].mean_confidence == 1.0

    def test_bucket_counts_sum(self):
        rng = np.random.default_rng(0)
        truth = {}
        posteriors = {}
        for i in range(100):
            confidence = float(rng.uniform(0.5, 1.0))
            correct = rng.random() < confidence
            truth[f"o{i}"] = "a" if correct else "b"
            posteriors[f"o{i}"] = {"a": confidence, "b": 1.0 - confidence}
        points = reliability_curve(posteriors, truth, n_buckets=5)
        assert sum(p.count for p in points) == 100

    def test_empty_inputs(self):
        assert reliability_curve({}, {}) == []


class TestECE:
    def test_zero_for_perfect(self):
        truth = {f"o{i}": "v" for i in range(10)}
        assert expected_calibration_error(perfect_posteriors(truth), truth) == 0.0

    def test_large_for_confidently_wrong(self):
        truth = {f"o{i}": "right" for i in range(10)}
        posteriors = {f"o{i}": {"wrong": 0.99, "right": 0.01} for i in range(10)}
        assert expected_calibration_error(posteriors, truth) > 0.9

    def test_nan_for_empty(self):
        assert math.isnan(expected_calibration_error({}, {}))

    def test_slimfast_reasonably_calibrated(self, small_dataset):
        """End-to-end: ERM posteriors should not be wildly miscalibrated."""
        split = small_dataset.split(0.4, seed=0)
        result = SLiMFast(learner="erm").fit_predict(small_dataset, split.train_truth)
        test_truth = {obj: small_dataset.ground_truth[obj] for obj in split.test_objects}
        ece = expected_calibration_error(result.posteriors, test_truth)
        assert ece < 0.25


class TestPrecisionThreshold:
    def test_finds_threshold(self):
        truth = {"a": "x", "b": "x", "c": "x"}
        posteriors = {
            "a": {"x": 0.95, "y": 0.05},
            "b": {"x": 0.80, "y": 0.20},
            "c": {"y": 0.70, "x": 0.30},  # wrong prediction at 0.70
        }
        threshold = confidence_threshold_for_precision(posteriors, truth, 1.0)
        assert threshold == pytest.approx(0.80)

    def test_unreachable_target(self):
        truth = {"a": "x"}
        posteriors = {"a": {"y": 0.9, "x": 0.1}}
        assert confidence_threshold_for_precision(posteriors, truth, 0.99) is None

    def test_coverage_tradeoff(self):
        truth = {f"o{i}": "v" for i in range(10)}
        posteriors = {f"o{i}": {"v": 0.5 + i * 0.05, "w": 0.5 - i * 0.05} for i in range(10)}
        low_cov, low_prec = coverage_at_threshold(posteriors, truth, 0.9)
        high_cov, high_prec = coverage_at_threshold(posteriors, truth, 0.5)
        assert high_cov >= low_cov
        assert low_prec == 1.0
