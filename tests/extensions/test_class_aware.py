"""Tests for per-class source accuracies."""

import numpy as np
import pytest

from repro.extensions import ClassAwareSLiMFast
from repro.fusion import FusionDataset, Observation, object_value_accuracy


@pytest.fixture(scope="module")
def two_class_dataset():
    """Sources that are accurate on class A objects and poor on class B."""
    rng = np.random.default_rng(42)
    observations = []
    truth = {}
    classes = {}
    n_sources = 30
    for obj_idx in range(200):
        cls = "A" if obj_idx % 2 == 0 else "B"
        obj = f"o{obj_idx}"
        classes[obj] = cls
        truth[obj] = "t"
        panel = rng.choice(n_sources, size=6, replace=False)
        for s in panel:
            # every source: 0.85 accurate on A, 0.35 on B
            accuracy = 0.85 if cls == "A" else 0.35
            value = "t" if rng.random() < accuracy else "f"
            observations.append(Observation(f"s{s}", obj, value))
    dataset = FusionDataset(observations, ground_truth=truth, name="two-class")
    return dataset, classes


class TestClassAwareSLiMFast:
    def test_all_objects_resolved(self, two_class_dataset):
        dataset, classes = two_class_dataset
        split = dataset.split(0.3, seed=0)
        out = ClassAwareSLiMFast(classes, learner="erm").fit_predict(dataset, split.train_truth)
        assert set(out.result.values) == set(dataset.objects.items)

    def test_per_class_accuracies_differ(self, two_class_dataset):
        dataset, classes = two_class_dataset
        split = dataset.split(0.5, seed=0)
        out = ClassAwareSLiMFast(classes, learner="erm").fit_predict(dataset, split.train_truth)
        a_accs = [v for v in out.class_accuracies["A"].values() if v is not None]
        b_accs = [v for v in out.class_accuracies["B"].values() if v is not None]
        assert np.mean(a_accs) > np.mean(b_accs) + 0.2

    def test_beats_class_blind_model(self, two_class_dataset):
        """Class-aware accuracies must beat the uniform-accuracy model on
        data with genuinely class-dependent reliability."""
        from repro.core import SLiMFast

        dataset, classes = two_class_dataset
        split = dataset.split(0.5, seed=0)
        test = list(split.test_objects)
        aware = ClassAwareSLiMFast(classes, learner="erm").fit_predict(dataset, split.train_truth)
        blind = SLiMFast(learner="erm").fit_predict(dataset, split.train_truth)
        aware_acc = object_value_accuracy(aware.result.values, dataset.ground_truth, test)
        blind_acc = object_value_accuracy(blind.values, dataset.ground_truth, test)
        assert aware_acc >= blind_acc - 0.02

    def test_small_classes_merged(self):
        ds = FusionDataset(
            [("s1", f"o{i}", "v") for i in range(12)] + [("s2", f"o{i}", "v") for i in range(12)],
            ground_truth={f"o{i}": "v" for i in range(12)},
        )
        classes = {"o0": "tiny"}  # 1 object -> merged into default
        model = ClassAwareSLiMFast(classes, min_class_objects=5, learner="erm")
        out = model.fit_predict(ds, ds.ground_truth)
        assert out.result.diagnostics["n_classes"] == 1

    def test_accuracy_of_accessor(self, two_class_dataset):
        dataset, classes = two_class_dataset
        split = dataset.split(0.4, seed=0)
        out = ClassAwareSLiMFast(classes, learner="erm").fit_predict(dataset, split.train_truth)
        some_source = next(iter(out.class_accuracies["A"]))
        assert out.accuracy_of(some_source, "A") is not None
        assert out.accuracy_of("ghost-source", "A") is None
