"""Tests for open-world semantics."""

import pytest

from repro.core import SLiMFast
from repro.extensions import (
    UNKNOWN,
    OpenWorldSLiMFast,
    calibrate_theta,
    open_world_posteriors,
)


@pytest.fixture
def fitted(small_dataset):
    split = small_dataset.split(0.3, seed=0)
    fuser = SLiMFast(learner="erm").fit(small_dataset, split.train_truth)
    return small_dataset, fuser.model_, split


class TestOpenWorldPosteriors:
    def test_unknown_in_every_posterior(self, fitted):
        dataset, model, _ = fitted
        posteriors = open_world_posteriors(dataset, model, theta=0.0)
        for dist in posteriors.values():
            assert UNKNOWN in dist
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_high_theta_abstains_everywhere(self, fitted):
        dataset, model, _ = fitted
        posteriors = open_world_posteriors(dataset, model, theta=50.0)
        for dist in posteriors.values():
            assert max(dist, key=dist.get) == UNKNOWN

    def test_low_theta_never_abstains(self, fitted):
        dataset, model, _ = fitted
        posteriors = open_world_posteriors(dataset, model, theta=-50.0)
        for dist in posteriors.values():
            assert max(dist, key=dist.get) != UNKNOWN

    def test_monotone_in_theta(self, fitted):
        dataset, model, _ = fitted
        low = open_world_posteriors(dataset, model, theta=-1.0)
        high = open_world_posteriors(dataset, model, theta=1.0)
        for obj in dataset.objects:
            assert high[obj][UNKNOWN] >= low[obj][UNKNOWN]


class TestCalibrateTheta:
    def test_all_truth_claimed_prefers_low_theta(self, fitted):
        dataset, model, _ = fitted
        theta = calibrate_theta(dataset, model, dataset.ground_truth)
        posteriors = open_world_posteriors(dataset, model, theta)
        abstentions = sum(1 for dist in posteriors.values() if max(dist, key=dist.get) == UNKNOWN)
        assert abstentions < dataset.n_objects * 0.2

    def test_unknown_labels_raise_theta(self, fitted):
        dataset, model, _ = fitted
        # pretend a chunk of objects have no correct claim
        truth = dict(dataset.ground_truth)
        for obj in list(truth)[: len(truth) // 2]:
            truth[obj] = UNKNOWN
        theta_mixed = calibrate_theta(dataset, model, truth)
        theta_plain = calibrate_theta(dataset, model, dataset.ground_truth)
        assert theta_mixed >= theta_plain


class TestOpenWorldSLiMFast:
    def test_predict_with_fixed_theta(self, fitted):
        dataset, model, split = fitted
        out = OpenWorldSLiMFast(theta=0.5).predict(dataset, model, split.train_truth)
        assert out.theta == 0.5
        assert out.result.method == "slimfast-open-world"
        assert out.abstained == frozenset(
            obj for obj, value in out.result.values.items() if value == UNKNOWN
        )

    def test_unset_theta_requires_truth(self, fitted):
        dataset, model, _ = fitted
        with pytest.raises(ValueError, match="calibrate"):
            OpenWorldSLiMFast().predict(dataset, model)

    def test_training_truth_clamped(self, fitted):
        dataset, model, split = fitted
        out = OpenWorldSLiMFast(theta=0.0).predict(dataset, model, split.train_truth)
        for obj, value in split.train_truth.items():
            assert out.result.values[obj] == value

    def test_diagnostics(self, fitted):
        dataset, model, split = fitted
        out = OpenWorldSLiMFast(theta=2.0).predict(dataset, model, split.train_truth)
        assert out.result.diagnostics["theta"] == 2.0
        assert out.result.diagnostics["n_abstained"] == len(out.abstained)
