"""Tests for streaming fusion."""

import numpy as np
import pytest

from repro.extensions import StreamingFuser, replay_dataset
from repro.fusion import Observation, object_value_accuracy


class TestStreamingFuserBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StreamingFuser(decay=0.0)
        with pytest.raises(ValueError):
            StreamingFuser(prior_correct=2.0, prior_total=2.0)

    def test_single_observation(self):
        fuser = StreamingFuser()
        fuser.observe(Observation("s", "o", "v"))
        assert fuser.current_value("o") == "v"
        assert fuser.n_processed == 1

    def test_unseen_object_none(self):
        assert StreamingFuser().current_value("ghost") is None

    def test_truth_feedback_updates_source(self):
        fuser = StreamingFuser(self_training=False)
        fuser.reveal_truth("o1", "right")
        fuser.observe(Observation("good", "o1", "right"))
        fuser.observe(Observation("bad", "o1", "wrong"))
        accs = fuser.source_accuracies()
        assert accs["good"] > accs["bad"]

    def test_retrospective_credit(self):
        """Truth revealed after the claims still credits the sources."""
        fuser = StreamingFuser(self_training=False)
        fuser.observe(Observation("good", "o1", "right"))
        fuser.observe(Observation("bad", "o1", "wrong"))
        before = fuser.source_accuracies()
        assert before["good"] == pytest.approx(before["bad"])
        fuser.reveal_truth("o1", "right")
        after = fuser.source_accuracies()
        assert after["good"] > after["bad"]

    def test_truth_clamps_posterior(self):
        fuser = StreamingFuser()
        fuser.reveal_truth("o", "a")
        fuser.observe(Observation("s1", "o", "b"))
        fuser.observe(Observation("s2", "o", "b"))
        assert fuser.current_value("o") == "a"

    def test_decay_shrinks_history(self):
        fuser = StreamingFuser(decay=0.5, self_training=False)
        fuser.reveal_truth("o1", "v")
        for i in range(10):
            fuser.observe(
                Observation("s", f"o1", "v") if i == 0 else Observation("s", f"x{i}", "v")
            )
        state = fuser._sources["s"]
        # decayed totals stay bounded instead of growing linearly
        assert state.total < 5.0


class TestReplayDataset:
    def test_matches_batch_on_easy_instance(self, small_dataset):
        split = small_dataset.split(0.5, seed=0)
        result = replay_dataset(small_dataset, split.train_truth, seed=0)
        accuracy = object_value_accuracy(
            result.values, small_dataset.ground_truth, split.test_objects
        )
        from repro.baselines import MajorityVote

        majority = MajorityVote().fit_predict(small_dataset, split.train_truth)
        majority_accuracy = object_value_accuracy(
            majority.values, small_dataset.ground_truth, split.test_objects
        )
        assert accuracy >= majority_accuracy - 0.08

    def test_result_structure(self, small_dataset):
        result = replay_dataset(small_dataset, {}, seed=1)
        assert result.method == "streaming"
        assert result.diagnostics["n_processed"] == small_dataset.n_observations
        assert set(result.values) == set(small_dataset.objects.items)

    def test_source_accuracies_track_truth(self, small_dataset):
        """With full truth revealed, streaming estimates approach empirical."""
        result = replay_dataset(
            small_dataset,
            dict(small_dataset.ground_truth),
            seed=0,
            self_training=False,
        )
        empirical = small_dataset.empirical_accuracies()
        errors = [
            abs(result.source_accuracies[s] - empirical[s])
            for s in empirical
            if s in result.source_accuracies
        ]
        assert float(np.mean(errors)) < 0.12

    def test_order_invariance_is_soft(self, small_dataset):
        """Different replay orders give similar (not identical) results."""
        split = small_dataset.split(0.5, seed=0)
        a = replay_dataset(small_dataset, split.train_truth, seed=0)
        b = replay_dataset(small_dataset, split.train_truth, seed=99)
        acc_a = object_value_accuracy(a.values, small_dataset.ground_truth, split.test_objects)
        acc_b = object_value_accuracy(b.values, small_dataset.ground_truth, split.test_objects)
        assert abs(acc_a - acc_b) < 0.15
