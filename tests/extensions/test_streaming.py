"""Tests for streaming fusion."""

import numpy as np
import pytest

from repro.extensions import StreamingFuser, replay_dataset
from repro.fusion import Observation, object_value_accuracy


class TestStreamingFuserBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StreamingFuser(decay=0.0)
        with pytest.raises(ValueError):
            StreamingFuser(prior_correct=2.0, prior_total=2.0)

    def test_single_observation(self):
        fuser = StreamingFuser()
        fuser.observe(Observation("s", "o", "v"))
        assert fuser.current_value("o") == "v"
        assert fuser.n_processed == 1

    def test_unseen_object_none(self):
        assert StreamingFuser().current_value("ghost") is None

    def test_truth_feedback_updates_source(self):
        fuser = StreamingFuser(self_training=False)
        fuser.reveal_truth("o1", "right")
        fuser.observe(Observation("good", "o1", "right"))
        fuser.observe(Observation("bad", "o1", "wrong"))
        accs = fuser.source_accuracies()
        assert accs["good"] > accs["bad"]

    def test_retrospective_credit(self):
        """Truth revealed after the claims still credits the sources."""
        fuser = StreamingFuser(self_training=False)
        fuser.observe(Observation("good", "o1", "right"))
        fuser.observe(Observation("bad", "o1", "wrong"))
        before = fuser.source_accuracies()
        assert before["good"] == pytest.approx(before["bad"])
        fuser.reveal_truth("o1", "right")
        after = fuser.source_accuracies()
        assert after["good"] > after["bad"]

    def test_truth_clamps_posterior(self):
        fuser = StreamingFuser()
        fuser.reveal_truth("o", "a")
        fuser.observe(Observation("s1", "o", "b"))
        fuser.observe(Observation("s2", "o", "b"))
        assert fuser.current_value("o") == "a"

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_decay_shrinks_history(self, backend):
        fuser = StreamingFuser(decay=0.5, self_training=False, backend=backend)
        fuser.reveal_truth("o1", "v")
        for i in range(10):
            fuser.observe(
                Observation("s", "o1", "v") if i == 0 else Observation("s", f"x{i}", "v")
            )
        if backend == "reference":
            total = fuser._sources["s"].total
        else:
            total = float(fuser._total[0])
        # decayed totals stay bounded instead of growing linearly
        assert total < 5.0


class TestVectorizedBackend:
    def test_backend_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            StreamingFuser(backend="numba")
        with pytest.raises(ValueError, match="refit_every"):
            StreamingFuser(refit_every=0)
        # The reference engine has no re-fit hook; rejecting the combination
        # beats silently ignoring the requested periodic re-anchoring.
        with pytest.raises(ValueError, match="backend='vectorized'"):
            StreamingFuser(backend="reference", refit_every=100)
        with pytest.raises(ValueError, match="backend='vectorized'"):
            StreamingFuser(backend="reference", source_features={"s": {"year": 2017}})

    def test_observe_batch_bulk(self):
        fuser = StreamingFuser()
        fuser.observe_batch(
            [
                Observation("s1", "o1", "a"),
                Observation("s2", "o1", "b"),
                Observation("s1", "o2", "c"),
            ]
        )
        assert fuser.n_processed == 3
        assert set(fuser.posterior("o1")) == {"a", "b"}
        assert fuser.current_value("o2") == "c"

    def test_empty_batch_is_noop(self):
        fuser = StreamingFuser()
        fuser.observe_batch([])
        assert fuser.n_processed == 0

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_empty_fuser_snapshots_cleanly(self, backend):
        """to_result before any observation returns an empty result."""
        fuser = StreamingFuser(backend=backend)
        fuser.reveal_truth("o", "v")  # truth-only state is still empty
        result = fuser.to_result()
        assert result.values == {}
        assert result.source_accuracies == {}
        assert result.diagnostics["n_processed"] == 0

    def test_duplicate_claim_rejected(self):
        from repro.fusion import DatasetError

        fuser = StreamingFuser()
        fuser.observe(Observation("s", "o", "a"))
        with pytest.raises(DatasetError, match="duplicate"):
            fuser.observe(Observation("s", "o", "b"))

    def test_truth_promoted_when_claimed_later(self):
        """A truth value outside the claimed domain clamps once claimed."""
        fuser = StreamingFuser(self_training=False)
        fuser.observe(Observation("s1", "o", "wrong"))
        fuser.reveal_truth("o", "right")
        accs_before = fuser.source_accuracies()
        fuser.observe(Observation("s2", "o", "right"))
        accs = fuser.source_accuracies()
        assert accs["s2"] > accs_before["s1"]
        assert fuser.current_value("o") == "right"

    def test_periodic_refit_runs(self, small_dataset):
        fuser = StreamingFuser(
            refit_every=40,
            refit_overrides={"max_iterations": 3},
        )
        fuser.run(
            small_dataset.observations,
            truth=dict(small_dataset.ground_truth),
            batch_size=25,
        )
        assert fuser.n_refits >= 1
        result = fuser.to_result()
        assert result.diagnostics["n_refits"] == fuser.n_refits
        assert result.has_arrays
        accs = fuser.source_accuracies()
        assert all(0.0 < acc < 1.0 for acc in accs.values())


class TestReplayDataset:
    def test_matches_batch_on_easy_instance(self, small_dataset):
        split = small_dataset.split(0.5, seed=0)
        result = replay_dataset(small_dataset, split.train_truth, seed=0)
        accuracy = object_value_accuracy(
            result.values, small_dataset.ground_truth, split.test_objects
        )
        from repro.baselines import MajorityVote

        majority = MajorityVote().fit_predict(small_dataset, split.train_truth)
        majority_accuracy = object_value_accuracy(
            majority.values, small_dataset.ground_truth, split.test_objects
        )
        assert accuracy >= majority_accuracy - 0.08

    def test_result_structure(self, small_dataset):
        result = replay_dataset(small_dataset, {}, seed=1)
        assert result.method == "streaming"
        assert result.diagnostics["n_processed"] == small_dataset.n_observations
        assert set(result.values) == set(small_dataset.objects.items)

    def test_source_accuracies_track_truth(self, small_dataset):
        """With full truth revealed, streaming estimates approach empirical."""
        result = replay_dataset(
            small_dataset,
            dict(small_dataset.ground_truth),
            seed=0,
            self_training=False,
        )
        empirical = small_dataset.empirical_accuracies()
        errors = [
            abs(result.source_accuracies[s] - empirical[s])
            for s in empirical
            if s in result.source_accuracies
        ]
        assert float(np.mean(errors)) < 0.12

    def test_order_invariance_is_soft(self, small_dataset):
        """Different replay orders give similar (not identical) results."""
        split = small_dataset.split(0.5, seed=0)
        a = replay_dataset(small_dataset, split.train_truth, seed=0)
        b = replay_dataset(small_dataset, split.train_truth, seed=99)
        acc_a = object_value_accuracy(a.values, small_dataset.ground_truth, split.test_objects)
        acc_b = object_value_accuracy(b.values, small_dataset.ground_truth, split.test_objects)
        assert abs(acc_a - acc_b) < 0.15


class TestRefitReanchorsUnderDrift:
    """A post-drift re-fit pulls the accuracy vector toward the new regime."""

    def _scenario(self):
        from repro.data import DriftSchedule, drift_scenario

        schedules = [DriftSchedule.step(0.95, 0.05, at=0.5) for _ in range(3)]
        schedules += [DriftSchedule.constant(0.7) for _ in range(5)]
        return drift_scenario(
            n_sources=8,
            objects_per_step=10,
            n_steps=12,
            schedules=schedules,
            reveal_fraction=0.6,
            seed=4,
        )

    def _replay(self, fuser, steps):
        for step in steps:
            fuser.observe_batch(step.observations)
            for obj, value in step.reveal.items():
                fuser.reveal_truth(obj, value)

    def test_explicit_refit_after_drift(self):
        scn = self._scenario()
        half = scn.n_steps // 2
        fuser = StreamingFuser(self_training=False, refit_overrides={"max_iterations": 15})
        self._replay(fuser, scn.steps[:half])
        pre_drift = fuser.source_accuracies()
        assert pre_drift["s0"] > 0.85  # drifter looks great before the step

        self._replay(fuser, scn.steps[half:])
        eval_objects = scn.eval_objects(at_step=scn.n_steps - 1, window=half)

        def held_out_accuracy():
            hits = [fuser.current_value(o) == scn.truth[o] for o in eval_objects]
            return float(np.mean(hits))

        acc_before = held_out_accuracy()
        fuser.refit()
        refit = fuser.source_accuracies()

        # the drifted source's estimate drops far below its pre-drift level...
        assert refit["s0"] < pre_drift["s0"] - 0.3
        # ...the stable source overtakes it...
        assert refit["s5"] > refit["s0"]
        assert abs(refit["s5"] - 0.7) < 0.15
        # ...and the rebuilt score table fixes post-drift fused values.
        assert held_out_accuracy() > acc_before

    def test_periodic_refit_tracks_drift_automatically(self):
        scn = self._scenario()
        auto = StreamingFuser(
            self_training=False,
            refit_every=max(scn.n_observations // 3, 1),
            refit_overrides={"max_iterations": 10},
        )
        self._replay(auto, scn.steps)
        assert auto.n_refits >= 2
        accs = auto.source_accuracies()
        assert accs["s5"] > accs["s0"]
