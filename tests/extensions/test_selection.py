"""Tests for budgeted source selection."""

import pytest

from repro.core import SLiMFast
from repro.extensions import (
    coverage_utility,
    evaluate_selection,
    greedy_select,
    rank_sources,
)
from repro.fusion import DatasetError, FusionDataset


class TestRankSources:
    def test_accuracy_ordering_without_coverage(self, small_dataset):
        accuracies = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        ranking = rank_sources(small_dataset, accuracies, coverage_weight=0.0)
        ranked_accs = [accuracies[s] for s in ranking]
        assert ranked_accs == sorted(ranked_accs, reverse=True)

    def test_coverage_breaks_ties(self):
        ds = FusionDataset([("busy", f"o{i}", "v") for i in range(10)] + [("idle", "o0", "w")])
        accuracies = {"busy": 0.7, "idle": 0.7}
        ranking = rank_sources(ds, accuracies, coverage_weight=1.0)
        assert ranking[0] == "busy"


class TestCoverageUtility:
    def test_empty_selection_zero(self, small_dataset):
        accs = small_dataset.true_accuracies
        assert coverage_utility(small_dataset, [], accs) == 0.0

    def test_monotone_in_selection(self, small_dataset):
        accs = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        good_sources = sorted(accs, key=accs.get, reverse=True)
        u1 = coverage_utility(small_dataset, good_sources[:5], accs)
        u2 = coverage_utility(small_dataset, good_sources[:15], accs)
        assert u2 >= u1

    def test_accurate_sources_more_useful(self, small_dataset):
        accs = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        ordered = sorted(accs, key=accs.get)
        worst = ordered[:8]
        best = ordered[-8:]
        assert coverage_utility(small_dataset, best, accs) > coverage_utility(
            small_dataset, worst, accs
        )


class TestGreedySelect:
    def test_budget_respected(self, small_dataset):
        accs = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        trace = greedy_select(small_dataset, accs, budget=5)
        assert len(trace) <= 5

    def test_marginal_gains_positive(self, small_dataset):
        accs = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        trace = greedy_select(small_dataset, accs, budget=4)
        assert all(step.marginal_gain > 0 for step in trace)

    def test_utilities_monotone(self, small_dataset):
        accs = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        trace = greedy_select(small_dataset, accs, budget=6)
        utilities = [step.utility for step in trace]
        assert utilities == sorted(utilities)

    def test_invalid_budget(self, small_dataset):
        with pytest.raises(DatasetError):
            greedy_select(small_dataset, {}, budget=0)

    def test_selected_sources_distinct(self, small_dataset):
        accs = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        trace = greedy_select(small_dataset, accs, budget=8)
        chosen = [step.source for step in trace]
        assert len(chosen) == len(set(chosen))


class TestEvaluateSelection:
    def test_good_selection_beats_bad(self, small_dataset):
        accs = {s: small_dataset.true_accuracies[s] for s in small_dataset.sources}
        ordered = sorted(accs, key=accs.get)
        worst = ordered[:20]
        best = ordered[-20:]
        def factory():
            return SLiMFast(learner="em", use_features=False)

        acc_best = evaluate_selection(small_dataset, best, factory, seed=0)
        acc_worst = evaluate_selection(small_dataset, worst, factory, seed=0)
        assert acc_best > acc_worst
