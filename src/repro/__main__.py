"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``stats``
    Print Table 1-style statistics for the four simulated datasets.
``demo``
    Run a quick end-to-end fusion demo on a chosen simulator.
``fuse``
    Fuse a CSV dataset directory (see :mod:`repro.data.io` for the layout)
    and write the estimated values/accuracies back as CSV.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from .core.slimfast import SLiMFast
from .data import (
    generate_crowd,
    generate_demos,
    generate_genomics,
    generate_stocks,
    load_dataset,
)
from .experiments import table1

GENERATORS = {
    "stocks": generate_stocks,
    "demos": generate_demos,
    "crowd": generate_crowd,
    "genomics": generate_genomics,
}


def _cmd_stats(args: argparse.Namespace) -> int:
    datasets = {name: gen(seed=args.seed) for name, gen in GENERATORS.items()}
    print(table1(datasets))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    generator = GENERATORS[args.dataset]
    dataset = generator(seed=args.seed)
    split = dataset.split(args.train_fraction, seed=args.seed)
    fuser = SLiMFast()
    result = fuser.fit_predict(dataset, split.train_truth)
    accuracy = result.accuracy(dataset, list(split.test_objects))
    print(f"dataset            : {dataset.name}")
    print(f"observations       : {dataset.n_observations}")
    print(f"training fraction  : {args.train_fraction:.1%}")
    print(f"learner chosen     : {fuser.chosen_learner_}")
    if fuser.decision_ is not None:
        print(
            f"optimizer units    : ERM={fuser.decision_.erm_units:.1f} "
            f"EM={fuser.decision_.em_units:.1f}"
        )
    print(f"test accuracy      : {accuracy:.3f}")
    if result.source_accuracies:
        try:
            print(f"source-acc error   : {result.source_error(dataset):.3f}")
        except ValueError:
            pass
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.input, name=Path(args.input).name)
    train_truth = dataset.ground_truth if args.use_truth else {}
    fuser = SLiMFast(learner=args.learner)
    result = fuser.fit_predict(dataset, train_truth)

    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    with open(out_dir / "fused_values.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["object", "value", "confidence"])
        for obj, value in result.values.items():
            confidence = (result.posteriors or {}).get(obj, {}).get(value, "")
            writer.writerow([obj, value, confidence])
    with open(out_dir / "source_accuracies.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "accuracy"])
        for source, accuracy in (result.source_accuracies or {}).items():
            writer.writerow([source, accuracy])
    print(f"wrote {out_dir / 'fused_values.csv'}")
    print(f"wrote {out_dir / 'source_accuracies.csv'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SLiMFast data fusion (SIGMOD 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="print simulated-dataset statistics")
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)

    demo = sub.add_parser("demo", help="run a quick fusion demo")
    demo.add_argument("--dataset", choices=sorted(GENERATORS), default="stocks")
    demo.add_argument("--train-fraction", type=float, default=0.05)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    fuse = sub.add_parser("fuse", help="fuse a CSV dataset directory")
    fuse.add_argument("input", help="directory with observations.csv etc.")
    fuse.add_argument("output", help="directory for the fused output CSVs")
    fuse.add_argument("--learner", choices=["auto", "erm", "em"], default="auto")
    fuse.add_argument(
        "--use-truth",
        action="store_true",
        help="use ground_truth.csv (if present) as training labels",
    )
    fuse.set_defaults(func=_cmd_fuse)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
