"""Optimization substrate: objectives, numerics and solvers."""

from .numerics import log_sigmoid, log_softmax, logit, sigmoid, softmax, soft_threshold
from .objectives import (
    ConditionalObjective,
    CorrectnessObjective,
    ParameterLayout,
    segment_softmax,
)
from .solvers import SolverResult, fista, gradient_descent, minimize_lbfgs, sgd

__all__ = [
    "sigmoid",
    "log_sigmoid",
    "logit",
    "softmax",
    "log_softmax",
    "soft_threshold",
    "CorrectnessObjective",
    "ConditionalObjective",
    "ParameterLayout",
    "segment_softmax",
    "SolverResult",
    "minimize_lbfgs",
    "gradient_descent",
    "fista",
    "sgd",
]
