"""Differentiable training objectives for SLiMFast's logistic model.

Two objectives are provided, matching the two views the paper takes of the
same model:

* :class:`CorrectnessObjective` — the *accuracy-estimate loss* of
  Definition 7: each (source, object) pair is a Bernoulli trial "did the
  source report the true value", and the model predicts its success
  probability ``A_s = sigmoid(w_s + F_s · w_K)``.  This is plain (weighted)
  logistic regression and is what ERM optimizes over ground truth, and what
  the EM M-step optimizes with soft labels.

* :class:`ConditionalObjective` — the object-level conditional likelihood of
  Equation 4: ``P(T_o = d | Ω; w)`` is a softmax over the object's claimed
  values with per-source trust scores as coefficients.  This objective also
  accepts *extra pairwise features* on (object, value) pairs, which is how
  the Appendix D copying extension stays a logistic-regression model.

Both expose ``value(w)``, ``grad(w)`` and ``value_and_grad(w)`` over a
single flat parameter vector ``w = [w_sources | w_features | w_extra]`` and
support optional L2 penalties per block (L1 is handled by the proximal
solver in :mod:`repro.optim.solvers`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .numerics import log_sigmoid, sigmoid


@dataclass(frozen=True)
class ParameterLayout:
    """Block structure of the flat parameter vector.

    ``n_sources`` per-source indicator weights come first, then
    ``n_features`` domain-feature weights, then ``n_extra`` extension
    weights (e.g. copying features).  An optional global ``intercept`` is
    appended last when enabled.
    """

    n_sources: int
    n_features: int
    n_extra: int = 0
    intercept: bool = False

    @property
    def n_params(self) -> int:
        return self.n_sources + self.n_features + self.n_extra + int(self.intercept)

    def split(self, w: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Split ``w`` into (w_sources, w_features, w_extra, intercept)."""
        a = self.n_sources
        b = a + self.n_features
        c = b + self.n_extra
        bias = float(w[c]) if self.intercept else 0.0
        return w[:a], w[a:b], w[b:c], bias

    def l2_vector(self, l2_sources: float, l2_features: float, l2_extra: float = 0.0) -> np.ndarray:
        """Per-parameter L2 strengths; the intercept is never penalized."""
        parts = [
            np.full(self.n_sources, l2_sources),
            np.full(self.n_features, l2_features),
            np.full(self.n_extra, l2_extra),
        ]
        if self.intercept:
            parts.append(np.zeros(1))
        return np.concatenate(parts)

    def l1_mask(
        self, sources: bool = False, features: bool = True, extra: bool = False
    ) -> np.ndarray:
        """Boolean mask of parameters eligible for L1 penalties."""
        parts = [
            np.full(self.n_sources, sources, dtype=bool),
            np.full(self.n_features, features, dtype=bool),
            np.full(self.n_extra, extra, dtype=bool),
        ]
        if self.intercept:
            parts.append(np.zeros(1, dtype=bool))
        return np.concatenate(parts)


def reduce_correctness_samples(
    source_idx: np.ndarray,
    labels: np.ndarray,
    n_sources: int,
    sample_weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse per-observation correctness samples to per-source statistics.

    The correctness loss depends on an observation only through its source's
    score, so the weighted Bernoulli log-loss over ``n`` observations equals
    the loss over one aggregated sample per source with label
    ``Q_s / N_s`` and weight ``N_s``, where ``N_s`` is the source's total
    sample weight and ``Q_s`` its weighted label mass.  This turns every
    solver iteration from ``O(n_observations)`` into ``O(n_sources)`` —
    the vectorized EM M-step and ERM fits batch their gradients this way.

    Returns ``(source_idx, labels, weights)`` restricted to sources with
    positive weight; total weight (and hence the objective's per-sample
    ridge scaling) is preserved exactly.
    """
    source_idx = np.asarray(source_idx, dtype=np.int64)
    labels = np.asarray(labels, dtype=float)
    if sample_weights is None:
        sample_weights = np.ones(source_idx.shape[0])
    totals = np.bincount(source_idx, weights=sample_weights, minlength=n_sources)
    mass = np.bincount(source_idx, weights=sample_weights * labels, minlength=n_sources)
    active = np.flatnonzero(totals > 0)
    return (
        active,
        np.clip(mass[active] / totals[active], 0.0, 1.0),
        totals[active],
    )


class CorrectnessObjective:
    """Weighted Bernoulli log-loss over per-observation correctness.

    Parameters
    ----------
    source_idx:
        Integer array (n,) mapping each training pair to its source index.
    labels:
        Array (n,) of correctness targets in [0, 1]; soft labels are allowed
        (the EM M-step passes posterior correctness probabilities).
    design:
        Dense ``|S| x |K|`` binary feature matrix.
    sample_weights:
        Optional per-pair weights (defaults to 1).
    l2_sources, l2_features:
        L2 penalty strengths for the two parameter blocks.
    intercept:
        Include a shared bias term (useful when predicting accuracies of
        unseen sources, Section 5.3.2).
    """

    def __init__(
        self,
        source_idx: np.ndarray,
        labels: np.ndarray,
        design: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
        l2_sources: float = 0.0,
        l2_features: float = 0.0,
        intercept: bool = False,
    ) -> None:
        self.design = np.asarray(design, dtype=float)
        self.layout = ParameterLayout(
            n_sources=self.design.shape[0],
            n_features=self.design.shape[1],
            intercept=intercept,
        )
        # The data term is weight-normalized (a mean), so the ridge penalty
        # is scaled by 1/total as well: l2 strengths are per-sample, like
        # sklearn's alpha/n convention, and do not dominate small datasets.
        # The unscaled vector is kept so update_samples can rescale when the
        # total sample weight changes.
        self._l2_unscaled = self.layout.l2_vector(l2_sources, l2_features)
        self.update_samples(source_idx, labels, sample_weights)

    def update_samples(
        self,
        source_idx: np.ndarray,
        labels: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "CorrectnessObjective":
        """Re-point the objective at a new sample set, keeping everything else.

        Between EM rounds (and between the fits of a parameter sweep) the
        objective changes only through the soft labels and their per-source
        reduction; the design matrix, parameter layout and penalty strengths
        are invariant.  Re-pointing a cached instance at each round's
        samples avoids re-validating and re-allocating those invariants on
        every M-step.  Returns ``self`` for chaining.
        """
        self.source_idx = np.asarray(source_idx, dtype=np.int64)
        self.labels = np.asarray(labels, dtype=float)
        n = self.source_idx.shape[0]
        if self.labels.shape[0] != n:
            raise ValueError("labels and source_idx must have equal length")
        if np.any((self.labels < 0) | (self.labels > 1)):
            raise ValueError("labels must lie in [0, 1]")
        self.sample_weights = (
            np.ones(n) if sample_weights is None else np.asarray(sample_weights, dtype=float)
        )
        if self.sample_weights.shape[0] != n:
            raise ValueError("sample_weights and source_idx must have equal length")
        self.n_samples = n
        self._weight_total = float(np.sum(self.sample_weights)) or 1.0
        self._l2 = self._l2_unscaled / self._weight_total
        return self

    @property
    def n_params(self) -> int:
        return self.layout.n_params

    def _scores(self, w: np.ndarray) -> np.ndarray:
        w_src, w_feat, _, bias = self.layout.split(w)
        per_source = w_src + self.design @ w_feat + bias
        return per_source[self.source_idx]

    def value(self, w: np.ndarray) -> float:
        z = self._scores(w)
        ll = self.labels * log_sigmoid(z) + (1.0 - self.labels) * log_sigmoid(-z)
        data_term = -float(np.sum(self.sample_weights * ll)) / self._weight_total
        return data_term + 0.5 * float(np.sum(self._l2 * w * w))

    def grad(self, w: np.ndarray) -> np.ndarray:
        return self.value_and_grad(w)[1]

    def value_and_grad(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        z = self._scores(w)
        p = sigmoid(z)
        ll = self.labels * log_sigmoid(z) + (1.0 - self.labels) * log_sigmoid(-z)
        value = -float(np.sum(self.sample_weights * ll)) / self._weight_total
        value += 0.5 * float(np.sum(self._l2 * w * w))

        residual = self.sample_weights * (p - self.labels) / self._weight_total
        per_source = np.bincount(self.source_idx, weights=residual, minlength=self.layout.n_sources)
        grad_feat = self.design.T @ per_source
        parts = [per_source, grad_feat]
        if self.layout.n_extra:
            parts.append(np.zeros(self.layout.n_extra))
        if self.layout.intercept:
            parts.append(np.asarray([float(np.sum(residual))]))
        grad = np.concatenate(parts) + self._l2 * w
        return value, grad

    def batch_grad(self, w: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Stochastic gradient over the sample rows ``rows`` (for SGD)."""
        src = self.source_idx[rows]
        y = self.labels[rows]
        sw = self.sample_weights[rows]
        w_src, w_feat, _, bias = self.layout.split(w)
        z = w_src[src] + self.design[src] @ w_feat + bias
        residual = sw * (sigmoid(z) - y) / max(float(np.sum(sw)), 1e-12)
        per_source = np.bincount(src, weights=residual, minlength=self.layout.n_sources)
        parts = [per_source, self.design.T @ per_source]
        if self.layout.intercept:
            parts.append(np.asarray([float(np.sum(residual))]))
        return np.concatenate(parts) + self._l2 * w

    def newton_direction(self, w: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Exact Newton direction ``-H(w)^{-1} grad`` via block elimination.

        The loss touches the parameters only through one logistic score per
        source, ``z_s = w_s + F_s w_K + b``, so the Hessian has arrowhead
        structure: a diagonal source block ``A = D + l2`` (``D_s`` the
        aggregated ``ω p (1-p)`` curvature of source ``s``) bordered by the
        ``K+1`` shared columns.  Eliminating the source block reduces the
        solve to a dense ``(K+1) x (K+1)`` Schur system — ``O(S K^2)`` total,
        independent of the number of samples.  This is what makes a damped
        Newton M-step cheaper than any first-order solve: two or three of
        these directions reach the convex M-step's optimum to ~1e-12.

        Raises ``np.linalg.LinAlgError`` when the Schur system is singular
        (callers fall back to a gradient-based direction).
        """
        w_src, w_feat, _, bias = self.layout.split(w)
        n_sources = self.layout.n_sources
        z = self._scores(w)
        p = sigmoid(z)
        curvature = self.sample_weights * p * (1.0 - p) / self._weight_total
        d = np.bincount(self.source_idx, weights=curvature, minlength=n_sources)

        a = np.maximum(d + self._l2[:n_sources], 1e-12)
        g_src = grad[:n_sources]
        scaled = d / a  # D A^{-1}
        e = d * (1.0 - scaled)  # D - D^2/A

        features = self.design
        n_shared = self.layout.n_features + int(self.layout.intercept)
        if n_shared == 0:
            return -grad / a
        columns = []
        if self.layout.n_features:
            columns.append(features)
        if self.layout.intercept:
            columns.append(np.ones((n_sources, 1)))
        shared = np.hstack(columns)  # S x (K[+1])
        l2_shared = np.concatenate(
            [
                self._l2[n_sources : n_sources + self.layout.n_features],
                np.zeros(int(self.layout.intercept)),
            ]
        )
        schur = shared.T @ (e[:, None] * shared) + np.diag(l2_shared)
        g_shared_parts = [grad[n_sources : n_sources + self.layout.n_features]]
        if self.layout.intercept:
            g_shared_parts.append(grad[-1:])
        g_shared = np.concatenate(g_shared_parts)
        rhs = -g_shared + shared.T @ (scaled * g_src)
        delta_shared = np.linalg.solve(schur, rhs)
        delta_src = (-g_src - d * (shared @ delta_shared)) / a
        parts = [delta_src]
        if self.layout.n_features:
            parts.append(delta_shared[: self.layout.n_features])
        if self.layout.n_extra:
            parts.append(np.zeros(self.layout.n_extra))
        if self.layout.intercept:
            parts.append(delta_shared[-1:])
        return np.concatenate(parts)


class ConditionalObjective:
    """Negative conditional log-likelihood of labeled objects (Equation 4).

    The objective works over *flattened (object, value) pairs*: each object
    contributes ``|D_o|`` candidate rows, and each observation adds the trust
    score of its source to the row of the value it claims.  Optional extra
    features attach additional weighted contributions to candidate rows; the
    copying extension (Appendix D) uses these for agreeing source pairs.

    Parameters
    ----------
    design:
        Dense ``|S| x |K|`` binary feature matrix.
    obs_source_idx, obs_pair_idx:
        For each observation, the source index and the flattened candidate
        row index of the value it claims.
    pair_object_idx:
        For each flattened candidate row, the index of its object in the
        *labeled-object list* (0..n_labeled-1).
    label_pair_idx:
        For each labeled object, the flattened row index of its true value,
        or -1 when the true value was not claimed by any source (the row is
        then excluded from the likelihood, matching single-truth semantics
        where at least one source provides the truth).
    extra:
        Optional ``(pair_rows, feature_idx, values)`` arrays for extension
        features; ``n_extra`` weights are appended to the parameter vector.
    """

    def __init__(
        self,
        design: np.ndarray,
        obs_source_idx: np.ndarray,
        obs_pair_idx: np.ndarray,
        pair_object_idx: np.ndarray,
        label_pair_idx: np.ndarray,
        n_extra: int = 0,
        extra: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
        l2_sources: float = 0.0,
        l2_features: float = 0.0,
        l2_extra: float = 0.0,
        object_weights: Optional[np.ndarray] = None,
        base_scores: Optional[np.ndarray] = None,
    ) -> None:
        self.design = np.asarray(design, dtype=float)
        self.obs_source_idx = np.asarray(obs_source_idx, dtype=np.int64)
        self.obs_pair_idx = np.asarray(obs_pair_idx, dtype=np.int64)
        self.pair_object_idx = np.asarray(pair_object_idx, dtype=np.int64)
        self.label_pair_idx = np.asarray(label_pair_idx, dtype=np.int64)
        self.n_pairs = self.pair_object_idx.shape[0]
        self.n_objects = self.label_pair_idx.shape[0]
        # Fixed (w-independent) per-row score offsets, e.g. the multi-valued
        # domain correction; they shift the softmax but not the gradient
        # structure.
        self.base_scores = (
            np.zeros(self.n_pairs)
            if base_scores is None
            else np.asarray(base_scores, dtype=float)
        )
        if extra is not None:
            self.extra_rows, self.extra_feature_idx, self.extra_values = (
                np.asarray(extra[0], dtype=np.int64),
                np.asarray(extra[1], dtype=np.int64),
                np.asarray(extra[2], dtype=float),
            )
        else:
            self.extra_rows = np.zeros(0, dtype=np.int64)
            self.extra_feature_idx = np.zeros(0, dtype=np.int64)
            self.extra_values = np.zeros(0)
        self.layout = ParameterLayout(
            n_sources=self.design.shape[0],
            n_features=self.design.shape[1],
            n_extra=n_extra,
        )
        valid = self.label_pair_idx >= 0
        weights = np.ones(self.n_objects) if object_weights is None else np.asarray(
            object_weights, dtype=float
        )
        self.object_weights = np.where(valid, weights, 0.0)
        self._weight_total = float(np.sum(self.object_weights)) or 1.0
        # Per-sample ridge scaling, matching CorrectnessObjective.
        self._l2 = (self.layout.l2_vector(l2_sources, l2_features, l2_extra) / self._weight_total)

    @property
    def n_params(self) -> int:
        return self.layout.n_params

    def _pair_scores(self, w: np.ndarray) -> np.ndarray:
        w_src, w_feat, w_extra, _ = self.layout.split(w)
        trust = w_src + self.design @ w_feat
        scores = self.base_scores + np.bincount(
            self.obs_pair_idx,
            weights=trust[self.obs_source_idx],
            minlength=self.n_pairs,
        )
        if self.extra_rows.size:
            contributions = w_extra[self.extra_feature_idx] * self.extra_values
            scores += np.bincount(self.extra_rows, weights=contributions, minlength=self.n_pairs)
        return scores

    def pair_log_posteriors(self, w: np.ndarray) -> np.ndarray:
        """Log posterior per flattened (object, value) row."""
        scores = self._pair_scores(w)
        return _segment_log_softmax(scores, self.pair_object_idx, self.n_objects)

    def value(self, w: np.ndarray) -> float:
        return self.value_and_grad(w)[0]

    def grad(self, w: np.ndarray) -> np.ndarray:
        return self.value_and_grad(w)[1]

    def value_and_grad(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        log_post = self.pair_log_posteriors(w)
        valid = self.label_pair_idx >= 0
        picked = np.where(valid, self.label_pair_idx, 0)
        ll = np.where(valid, log_post[picked], 0.0)
        value = -float(np.sum(self.object_weights * ll)) / self._weight_total
        value += 0.5 * float(np.sum(self._l2 * w * w))

        # residual per flattened row: weight_o * (posterior - 1[row is truth])
        posteriors = np.exp(log_post)
        residual = posteriors * self.object_weights[self.pair_object_idx]
        np.subtract.at(residual, picked[valid], self.object_weights[valid])
        residual /= self._weight_total

        # chain rule back to trust scores: every observation contributes the
        # residual of the row it voted for.
        obs_residual = residual[self.obs_pair_idx]
        per_source = np.bincount(
            self.obs_source_idx, weights=obs_residual, minlength=self.layout.n_sources
        )
        grad_feat = self.design.T @ per_source
        grad_extra = np.zeros(self.layout.n_extra)
        if self.extra_rows.size:
            grad_extra = np.bincount(
                self.extra_feature_idx,
                weights=residual[self.extra_rows] * self.extra_values,
                minlength=self.layout.n_extra,
            )
        grad = np.concatenate([per_source, grad_feat, grad_extra]) + self._l2 * w
        return value, grad


def _segment_log_softmax(
    scores: np.ndarray, segment_idx: np.ndarray, n_segments: int
) -> np.ndarray:
    """Log-softmax of ``scores`` within segments given by ``segment_idx``.

    Segments correspond to objects; rows of the same object are normalized
    together.  Implemented with bincount-based segment reductions so domains
    of arbitrary (ragged) sizes are supported without padding.

    Segments whose every score is ``-inf`` (all candidate rows masked, e.g.
    by an aggressive clamp plan) yield ``-inf`` log-probabilities instead
    of the NaNs (and ``RuntimeWarning``) a raw max-shift would produce —
    the tier-1 suite runs with ``RuntimeWarning`` promoted to an error.
    """
    seg_max = np.full(n_segments, -np.inf)
    np.maximum.at(seg_max, segment_idx, scores)
    # A non-finite segment max cannot be shifted out without producing
    # inf - inf; empty/fully-masked segments keep their raw -inf scores.
    shift = np.where(np.isfinite(seg_max), seg_max, 0.0)
    shifted = scores - shift[segment_idx]
    seg_sum = np.bincount(segment_idx, weights=np.exp(shifted), minlength=n_segments)
    log_norm = np.log(np.maximum(seg_sum, 1e-300))
    return shifted - log_norm[segment_idx]


def segment_softmax(scores: np.ndarray, segment_idx: np.ndarray, n_segments: int) -> np.ndarray:
    """Softmax within segments; exported for the inference module."""
    return np.exp(_segment_log_softmax(scores, segment_idx, n_segments))
