"""Numerically stable primitives shared by all objectives."""

from __future__ import annotations

import numpy as np

_CLIP = 30.0


def sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    """Stable logistic function ``1 / (1 + exp(-z))``."""
    z = np.clip(z, -_CLIP, _CLIP)
    return 1.0 / (1.0 + np.exp(-z))


def log_sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    """Stable ``log(sigmoid(z))`` computed as ``-log1p(exp(-z))``."""
    z = np.clip(z, -_CLIP, _CLIP)
    return -np.log1p(np.exp(-z))


def logit(p: np.ndarray | float, eps: float = 1e-9) -> np.ndarray | float:
    """Inverse sigmoid with clamping away from {0, 1}."""
    p = np.clip(p, eps, 1.0 - eps)
    return np.log(p / (1.0 - p))


def softmax(scores: np.ndarray) -> np.ndarray:
    """Stable softmax along the last axis."""
    shifted = scores - np.max(scores, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def log_softmax(scores: np.ndarray) -> np.ndarray:
    """Stable log-softmax along the last axis."""
    shifted = scores - np.max(scores, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))


def soft_threshold(x: np.ndarray, threshold: float) -> np.ndarray:
    """Element-wise soft-thresholding operator (the L1 proximal map)."""
    return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)
