"""Optimization algorithms used to fit SLiMFast's parameters.

The paper learns weights with stochastic gradient descent on top of
DeepDive's sampler; we provide SGD (and AdaGrad) for fidelity plus two
deterministic solvers that are better behaved for a library default:

* :func:`minimize_lbfgs` — scipy's L-BFGS-B on the smooth (L2) objective.
* :func:`fista` — accelerated proximal gradient for L1-regularized fits,
  used by the lasso-path analysis (paper Section 5.3.1).

All solvers take any objective exposing ``value_and_grad`` (see
:mod:`repro.optim.objectives`) and return a :class:`SolverResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

import numpy as np
from scipy import optimize

from .._rng import as_generator
from .numerics import soft_threshold


class Objective(Protocol):
    """Minimal protocol solvers rely on."""

    n_params: int

    def value(self, w: np.ndarray) -> float: ...

    def grad(self, w: np.ndarray) -> np.ndarray: ...

    def value_and_grad(self, w: np.ndarray) -> tuple: ...


@dataclass
class SolverResult:
    """Outcome of a fit.

    Attributes
    ----------
    w:
        Final parameter vector.
    value:
        Final objective value (smooth part plus any L1 penalty applied by
        the solver itself).
    n_iterations:
        Iterations (or epochs for SGD) actually performed.
    converged:
        Whether the solver's own stopping rule triggered before the budget
        ran out.
    """

    w: np.ndarray
    value: float
    n_iterations: int
    converged: bool


def minimize_lbfgs(
    objective: Objective,
    w0: Optional[np.ndarray] = None,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
    bounds: Optional[list] = None,
    gtol: float = 1e-8,
) -> SolverResult:
    """Minimize a smooth objective with L-BFGS-B.

    ``bounds`` is an optional per-parameter list of ``(low, high)`` pairs
    (``None`` endpoints = unbounded), e.g. to constrain copying weights to
    be non-negative.  ``tolerance``/``gtol`` map to scipy's ``ftol``/``pgtol``
    stopping rules; tighten both to drive the solve to the exact optimum
    (the solver-equivalence tests do).
    """
    start = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float)
    result = optimize.minimize(
        objective.value_and_grad,
        start,
        jac=True,
        method="L-BFGS-B",
        bounds=bounds,
        options={"maxiter": max_iterations, "ftol": tolerance, "gtol": gtol},
    )
    return SolverResult(
        w=np.asarray(result.x, dtype=float),
        value=float(result.fun),
        n_iterations=int(result.nit),
        converged=bool(result.success),
    )


@dataclass
class LBFGSMemory:
    """Curvature memory carried across warm-started L-BFGS solves.

    Holds the limited-memory ``(s, y)`` displacement/gradient-change pairs
    of :func:`minimize_lbfgs_warm`.  Passing the same instance to a sequence
    of solves on *slowly changing* objectives (the EM M-steps: only the soft
    labels move between rounds, so the Hessian drifts smoothly) lets each
    solve start from the previous inverse-Hessian approximation instead of
    a cold identity scaling — after the first EM rounds the M-step typically
    converges in one or two iterations.
    """

    max_pairs: int = 10
    s: list = None  # type: ignore[assignment]
    y: list = None  # type: ignore[assignment]
    rho: list = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.s is None:
            self.s = []
        if self.y is None:
            self.y = []
        if self.rho is None:
            self.rho = []

    def reset(self) -> None:
        self.s.clear()
        self.y.clear()
        self.rho.clear()

    def push(self, s_vec: np.ndarray, y_vec: np.ndarray) -> None:
        """Store a curvature pair, dropping the oldest beyond ``max_pairs``."""
        curvature = float(s_vec @ y_vec)
        if curvature <= 1e-10 * float(np.linalg.norm(s_vec) * np.linalg.norm(y_vec)):
            return  # skip non-positive curvature (keeps H positive definite)
        self.s.append(s_vec)
        self.y.append(y_vec)
        self.rho.append(1.0 / curvature)
        if len(self.s) > self.max_pairs:
            self.s.pop(0)
            self.y.pop(0)
            self.rho.pop(0)

    def direction(self, grad: np.ndarray) -> np.ndarray:
        """Two-loop recursion: ``-H grad`` under the stored pairs."""
        q = -grad.copy()
        if not self.s:
            return q
        alphas = []
        for s_vec, y_vec, rho in zip(reversed(self.s), reversed(self.y), reversed(self.rho)):
            alpha = rho * float(s_vec @ q)
            alphas.append(alpha)
            q -= alpha * y_vec
        # push() guarantees positive curvature for pairs it stored, but a
        # deserialized or hand-built memory may carry a degenerate last
        # pair; fall back to the identity scaling rather than divide by 0.
        denominator = float(self.y[-1] @ self.y[-1])
        if denominator > 0.0:
            q *= float(self.s[-1] @ self.y[-1]) / denominator
        for s_vec, y_vec, rho, alpha in zip(self.s, self.y, self.rho, reversed(alphas)):
            beta = rho * float(y_vec @ q)
            q += (alpha - beta) * s_vec
        return q

    # ------------------------------------------------------------------
    # Serialization (compact pickling for cross-process/cross-run reuse)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Stack the curvature pairs into dense arrays for pickling.

        The list-of-vectors layout pickles as one object per vector; the
        stacked form is a single buffer per component, which matters when a
        sweep ships many warm states between processes.
        """
        return {
            "max_pairs": self.max_pairs,
            "s": np.stack(self.s) if self.s else np.zeros((0, 0)),
            "y": np.stack(self.y) if self.y else np.zeros((0, 0)),
            "rho": np.asarray(self.rho, dtype=float),
        }

    def __setstate__(self, state: dict) -> None:
        self.max_pairs = int(state["max_pairs"])
        self.s = [np.array(row) for row in state["s"]]
        self.y = [np.array(row) for row in state["y"]]
        self.rho = [float(r) for r in state["rho"]]


@dataclass
class WarmStartState:
    """Solver state handed from one fit to the next in a parameter sweep.

    Bundles the final parameter vector of a completed fit with the L-BFGS
    curvature memory it accumulated.  The sweep engine
    (:class:`repro.experiments.sweeps.SweepRunner`) passes the state of the
    *nearest-config* prior fit into the next fit's first M-step solve: the
    M-step is convex, so a foreign starting point changes only the solve's
    path, never its optimum — batched results stay equivalent to isolated
    fits at the solver's own tolerance while nearby configs converge in
    fewer inner iterations.
    """

    w: np.ndarray
    memory: Optional[LBFGSMemory] = None

    def compatible_with(self, n_params: int) -> bool:
        """Whether the stored vector matches an objective's dimensionality."""
        return self.w.shape[0] == n_params

    def to_state(self) -> dict:
        """Plain-array state dict for explicit serialization.

        Everything is a NumPy array or a scalar (the
        :class:`LBFGSMemory` pairs are stacked), so the dict survives
        pickling, ``np.savez`` archives and cross-process shipping without
        dragging solver classes along.  Round-trips through
        :meth:`from_state`.
        """
        state = {"w": np.asarray(self.w, dtype=float)}
        if self.memory is not None:
            state["memory"] = self.memory.__getstate__()
        return state

    @classmethod
    def from_state(cls, state: dict) -> "WarmStartState":
        """Rebuild a warm-start state from :meth:`to_state` output."""
        memory = None
        if "memory" in state:
            memory = LBFGSMemory.__new__(LBFGSMemory)
            memory.__setstate__(state["memory"])
        return cls(w=np.asarray(state["w"], dtype=float), memory=memory)


def minimize_lbfgs_warm(
    objective: Objective,
    w0: np.ndarray,
    memory: Optional[LBFGSMemory] = None,
    max_iterations: int = 500,
    gtol: float = 1e-8,
    ftol: float = 1e-9,
) -> SolverResult:
    """Warm-startable limited-memory BFGS with Armijo backtracking.

    A dependency-light L-BFGS whose curvature memory is owned by the
    *caller*: pass the same :class:`LBFGSMemory` across a sequence of
    solves (the EM M-steps) and each solve continues from the previous
    inverse-Hessian approximation.  This removes the per-call setup cost of
    ``scipy.optimize.minimize`` — the dominant per-round cost of vectorized
    EM once the sufficient-statistics reduction has shrunk the data term —
    while converging to the same unique minimizer of the convex M-step.

    Stops when ``max|grad| <= gtol`` or the relative objective decrease
    falls below ``ftol`` — the same pair of criteria (and the same defaults)
    as the scipy reference path, so both solvers terminate at comparable
    precision; with both tightened they converge to the identical unique
    minimizer of the convex M-step (asserted at ``atol=1e-8`` in the
    equivalence tests).
    """
    memory = memory if memory is not None else LBFGSMemory()
    w = np.asarray(w0, dtype=float).copy()
    if memory.s and memory.s[-1].shape[0] != w.shape[0]:
        memory.reset()  # objective dimensionality changed; stale memory
    value, grad = objective.value_and_grad(w)
    for iteration in range(max_iterations):
        if float(np.max(np.abs(grad))) <= gtol:
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=True)
        direction = memory.direction(grad)
        descent = float(grad @ direction)
        if descent >= 0.0:
            # Stale curvature from a drifted objective: fall back to the
            # steepest-descent direction for this iteration.
            memory.reset()
            direction = -grad
            descent = float(grad @ direction)
        step = 1.0
        for _ in range(40):
            candidate = w + step * direction
            candidate_value, candidate_grad = objective.value_and_grad(candidate)
            if candidate_value <= value + 1e-4 * step * descent:
                break
            step *= 0.5
        else:  # pragma: no cover - pathological objective
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=False)
        memory.push(candidate - w, candidate_grad - grad)
        improvement = value - candidate_value
        w, value, grad = candidate, candidate_value, candidate_grad
        if improvement <= ftol * max(1.0, abs(value)):
            return SolverResult(w=w, value=value, n_iterations=iteration + 1, converged=True)
    return SolverResult(w=w, value=value, n_iterations=max_iterations, converged=False)


def minimize_newton(
    objective,
    w0: np.ndarray,
    max_iterations: int = 50,
    gtol: float = 1e-10,
    ftol: float = 0.0,
) -> SolverResult:
    """Damped Newton iteration for objectives exposing ``newton_direction``.

    Each iteration asks the objective for the exact Newton direction
    (e.g. :meth:`CorrectnessObjective.newton_direction`, an O(S K^2)
    structured solve) and applies Armijo backtracking for global
    convergence.  Near the optimum the full step is always accepted and
    convergence is quadratic, so warm-started solves (EM M-steps) finish
    in one or two iterations; the stopping rule is *gradient-based*, which
    — unlike objective-decrease rules — keeps making progress below the
    double-precision plateau of the objective value and reaches gradient
    norms around 1e-12.

    A singular structured solve raises ``np.linalg.LinAlgError``; callers
    (the EM M-step) fall back to :func:`minimize_lbfgs_warm`.
    """
    w = np.asarray(w0, dtype=float).copy()
    value, grad = objective.value_and_grad(w)
    for iteration in range(max_iterations):
        if float(np.max(np.abs(grad))) <= gtol:
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=True)
        direction = objective.newton_direction(w, grad)
        descent = float(grad @ direction)
        if descent >= 0.0:  # pragma: no cover - degenerate Hessian
            direction = -grad
            descent = float(grad @ direction)
        step = 1.0
        for _ in range(40):
            candidate = w + step * direction
            candidate_value, candidate_grad = objective.value_and_grad(candidate)
            if candidate_value <= value + 1e-4 * step * descent:
                break
            step *= 0.5
        else:  # pragma: no cover - pathological objective
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=False)
        improvement = value - candidate_value
        w, value, grad = candidate, candidate_value, candidate_grad
        if ftol > 0.0 and improvement <= ftol * max(1.0, abs(value)):
            return SolverResult(w=w, value=value, n_iterations=iteration + 1, converged=True)
    return SolverResult(w=w, value=value, n_iterations=max_iterations, converged=False)


def gradient_descent(
    objective: Objective,
    w0: Optional[np.ndarray] = None,
    learning_rate: float = 1.0,
    max_iterations: int = 1000,
    tolerance: float = 1e-8,
) -> SolverResult:
    """Full-batch gradient descent with backtracking line search.

    Kept as a dependency-light fallback and as a reference implementation
    the tests compare L-BFGS against.
    """
    w = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float).copy()
    value, grad = objective.value_and_grad(w)
    step = learning_rate
    for iteration in range(max_iterations):
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm < tolerance:
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=True)
        # Backtracking: halve the step until the Armijo condition holds.
        for _ in range(50):
            candidate = w - step * grad
            candidate_value = objective.value(candidate)
            if candidate_value <= value - 0.5 * step * grad_norm**2:
                break
            step *= 0.5
        else:  # pragma: no cover - pathological objective
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=False)
        improvement = value - candidate_value
        w = candidate
        value, grad = objective.value_and_grad(w)
        step = min(step * 2.0, learning_rate)
        if improvement < tolerance * max(1.0, abs(value)):
            return SolverResult(w=w, value=value, n_iterations=iteration + 1, converged=True)
    return SolverResult(w=w, value=value, n_iterations=max_iterations, converged=False)


def fista(
    objective: Objective,
    l1_strength: float,
    l1_mask: np.ndarray,
    w0: Optional[np.ndarray] = None,
    learning_rate: float = 1.0,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
) -> SolverResult:
    """Accelerated proximal gradient (FISTA) for smooth + L1 objectives.

    Only parameters with ``l1_mask`` True are soft-thresholded; the others
    (per-source weights, intercept) get the plain gradient step.  Step size
    adapts by backtracking against the smooth part's quadratic upper bound.
    """
    w = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float).copy()
    mask = np.asarray(l1_mask, dtype=bool)
    if mask.shape[0] != objective.n_params:
        raise ValueError("l1_mask length must equal the number of parameters")

    def penalized(vec: np.ndarray) -> float:
        return objective.value(vec) + l1_strength * float(np.sum(np.abs(vec[mask])))

    def prox(vec: np.ndarray, step: float) -> np.ndarray:
        out = vec.copy()
        out[mask] = soft_threshold(vec[mask], step * l1_strength)
        return out

    y = w.copy()
    momentum = 1.0
    step = learning_rate
    previous = penalized(w)
    for iteration in range(max_iterations):
        value_y, grad_y = objective.value_and_grad(y)
        for _ in range(60):
            candidate = prox(y - step * grad_y, step)
            delta = candidate - y
            quadratic_bound = (
                value_y
                + float(grad_y @ delta)
                + float(delta @ delta) / (2.0 * step)
            )
            if objective.value(candidate) <= quadratic_bound + 1e-12:
                break
            step *= 0.5
        next_momentum = (1.0 + np.sqrt(1.0 + 4.0 * momentum**2)) / 2.0
        y = candidate + ((momentum - 1.0) / next_momentum) * (candidate - w)
        w = candidate
        momentum = next_momentum
        current = penalized(w)
        if abs(previous - current) < tolerance * max(1.0, abs(current)):
            return SolverResult(w=w, value=current, n_iterations=iteration + 1, converged=True)
        previous = current
    return SolverResult(w=w, value=penalized(w), n_iterations=max_iterations, converged=False)


def sgd(
    objective,
    n_samples: int,
    w0: Optional[np.ndarray] = None,
    learning_rate: float = 0.5,
    batch_size: int = 64,
    epochs: int = 50,
    seed: int = 0,
    adagrad: bool = True,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> SolverResult:
    """Mini-batch SGD / AdaGrad over an objective exposing ``batch_grad``.

    This mirrors the paper's learning setup ("EM and ERM are implemented on
    top of DeepDive's sampler using SGD").  AdaGrad per-coordinate scaling is
    on by default, which makes the method robust to the very different
    frequencies of source-indicator versus shared domain features.
    """
    rng = as_generator(seed)
    w = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float).copy()
    grad_sq = np.zeros_like(w)
    for epoch in range(epochs):
        order = rng.permutation(n_samples)
        for start in range(0, n_samples, batch_size):
            rows = order[start : start + batch_size]
            grad = objective.batch_grad(w, rows)
            if adagrad:
                grad_sq += grad * grad
                w -= learning_rate * grad / (np.sqrt(grad_sq) + 1e-8)
            else:
                w -= learning_rate / np.sqrt(epoch + 1.0) * grad
        if callback is not None:
            callback(epoch, w)
    return SolverResult(w=w, value=float(objective.value(w)), n_iterations=epochs, converged=True)
