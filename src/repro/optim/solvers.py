"""Optimization algorithms used to fit SLiMFast's parameters.

The paper learns weights with stochastic gradient descent on top of
DeepDive's sampler; we provide SGD (and AdaGrad) for fidelity plus two
deterministic solvers that are better behaved for a library default:

* :func:`minimize_lbfgs` — scipy's L-BFGS-B on the smooth (L2) objective.
* :func:`fista` — accelerated proximal gradient for L1-regularized fits,
  used by the lasso-path analysis (paper Section 5.3.1).

All solvers take any objective exposing ``value_and_grad`` (see
:mod:`repro.optim.objectives`) and return a :class:`SolverResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

import numpy as np
from scipy import optimize

from .numerics import soft_threshold


class Objective(Protocol):
    """Minimal protocol solvers rely on."""

    n_params: int

    def value(self, w: np.ndarray) -> float: ...

    def grad(self, w: np.ndarray) -> np.ndarray: ...

    def value_and_grad(self, w: np.ndarray) -> tuple: ...


@dataclass
class SolverResult:
    """Outcome of a fit.

    Attributes
    ----------
    w:
        Final parameter vector.
    value:
        Final objective value (smooth part plus any L1 penalty applied by
        the solver itself).
    n_iterations:
        Iterations (or epochs for SGD) actually performed.
    converged:
        Whether the solver's own stopping rule triggered before the budget
        ran out.
    """

    w: np.ndarray
    value: float
    n_iterations: int
    converged: bool


def minimize_lbfgs(
    objective: Objective,
    w0: Optional[np.ndarray] = None,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
    bounds: Optional[list] = None,
) -> SolverResult:
    """Minimize a smooth objective with L-BFGS-B.

    ``bounds`` is an optional per-parameter list of ``(low, high)`` pairs
    (``None`` endpoints = unbounded), e.g. to constrain copying weights to
    be non-negative.
    """
    start = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float)
    result = optimize.minimize(
        objective.value_and_grad,
        start,
        jac=True,
        method="L-BFGS-B",
        bounds=bounds,
        options={"maxiter": max_iterations, "ftol": tolerance, "gtol": 1e-8},
    )
    return SolverResult(
        w=np.asarray(result.x, dtype=float),
        value=float(result.fun),
        n_iterations=int(result.nit),
        converged=bool(result.success),
    )


def gradient_descent(
    objective: Objective,
    w0: Optional[np.ndarray] = None,
    learning_rate: float = 1.0,
    max_iterations: int = 1000,
    tolerance: float = 1e-8,
) -> SolverResult:
    """Full-batch gradient descent with backtracking line search.

    Kept as a dependency-light fallback and as a reference implementation
    the tests compare L-BFGS against.
    """
    w = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float).copy()
    value, grad = objective.value_and_grad(w)
    step = learning_rate
    for iteration in range(max_iterations):
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm < tolerance:
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=True)
        # Backtracking: halve the step until the Armijo condition holds.
        for _ in range(50):
            candidate = w - step * grad
            candidate_value = objective.value(candidate)
            if candidate_value <= value - 0.5 * step * grad_norm**2:
                break
            step *= 0.5
        else:  # pragma: no cover - pathological objective
            return SolverResult(w=w, value=value, n_iterations=iteration, converged=False)
        improvement = value - candidate_value
        w = candidate
        value, grad = objective.value_and_grad(w)
        step = min(step * 2.0, learning_rate)
        if improvement < tolerance * max(1.0, abs(value)):
            return SolverResult(w=w, value=value, n_iterations=iteration + 1, converged=True)
    return SolverResult(w=w, value=value, n_iterations=max_iterations, converged=False)


def fista(
    objective: Objective,
    l1_strength: float,
    l1_mask: np.ndarray,
    w0: Optional[np.ndarray] = None,
    learning_rate: float = 1.0,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
) -> SolverResult:
    """Accelerated proximal gradient (FISTA) for smooth + L1 objectives.

    Only parameters with ``l1_mask`` True are soft-thresholded; the others
    (per-source weights, intercept) get the plain gradient step.  Step size
    adapts by backtracking against the smooth part's quadratic upper bound.
    """
    w = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float).copy()
    mask = np.asarray(l1_mask, dtype=bool)
    if mask.shape[0] != objective.n_params:
        raise ValueError("l1_mask length must equal the number of parameters")

    def penalized(vec: np.ndarray) -> float:
        return objective.value(vec) + l1_strength * float(np.sum(np.abs(vec[mask])))

    def prox(vec: np.ndarray, step: float) -> np.ndarray:
        out = vec.copy()
        out[mask] = soft_threshold(vec[mask], step * l1_strength)
        return out

    y = w.copy()
    momentum = 1.0
    step = learning_rate
    previous = penalized(w)
    for iteration in range(max_iterations):
        value_y, grad_y = objective.value_and_grad(y)
        for _ in range(60):
            candidate = prox(y - step * grad_y, step)
            delta = candidate - y
            quadratic_bound = (
                value_y
                + float(grad_y @ delta)
                + float(delta @ delta) / (2.0 * step)
            )
            if objective.value(candidate) <= quadratic_bound + 1e-12:
                break
            step *= 0.5
        next_momentum = (1.0 + np.sqrt(1.0 + 4.0 * momentum**2)) / 2.0
        y = candidate + ((momentum - 1.0) / next_momentum) * (candidate - w)
        w = candidate
        momentum = next_momentum
        current = penalized(w)
        if abs(previous - current) < tolerance * max(1.0, abs(current)):
            return SolverResult(w=w, value=current, n_iterations=iteration + 1, converged=True)
        previous = current
    return SolverResult(w=w, value=penalized(w), n_iterations=max_iterations, converged=False)


def sgd(
    objective,
    n_samples: int,
    w0: Optional[np.ndarray] = None,
    learning_rate: float = 0.5,
    batch_size: int = 64,
    epochs: int = 50,
    seed: int = 0,
    adagrad: bool = True,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> SolverResult:
    """Mini-batch SGD / AdaGrad over an objective exposing ``batch_grad``.

    This mirrors the paper's learning setup ("EM and ERM are implemented on
    top of DeepDive's sampler using SGD").  AdaGrad per-coordinate scaling is
    on by default, which makes the method robust to the very different
    frequencies of source-indicator versus shared domain features.
    """
    rng = np.random.default_rng(seed)
    w = np.zeros(objective.n_params) if w0 is None else np.asarray(w0, dtype=float).copy()
    grad_sq = np.zeros_like(w)
    for epoch in range(epochs):
        order = rng.permutation(n_samples)
        for start in range(0, n_samples, batch_size):
            rows = order[start : start + batch_size]
            grad = objective.batch_grad(w, rows)
            if adagrad:
                grad_sq += grad * grad
                w -= learning_rate * grad / (np.sqrt(grad_sq) + 1e-8)
            else:
                w -= learning_rate / np.sqrt(epoch + 1.0) * grad
        if callback is not None:
            callback(epoch, w)
    return SolverResult(w=w, value=float(objective.value(w)), n_iterations=epochs, converged=True)
