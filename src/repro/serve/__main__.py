"""``python -m repro.serve`` — run a serving demo over a simulated stream.

Simulates sources of varying reliability claiming values for a growing
object population, feeds the stream through a
:class:`~repro.serve.server.FusionServer` writer loop (publishing every
``--publish-every`` batches), then fires concurrent reader threads at
the published snapshots and prints the serving metrics plus the final
top-k conflict queue.  Useful as a smoke test of the full serving path
and as a template for real deployments (swap the simulator for a feed).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._rng import as_generator
from .server import FusionServer

Observation = Tuple[str, str, str]


def simulate_batches(
    n_batches: int,
    objects_per_batch: int,
    n_sources: int,
    domain_size: int = 4,
    seed: int = 0,
) -> Tuple[List[List[Observation]], dict]:
    """Simulated claim stream: every source claims every new object once.

    Each batch introduces ``objects_per_batch`` fresh objects; source
    ``i`` reports the true value with its own fixed accuracy (spread over
    [0.55, 0.95]) and a uniformly wrong value otherwise.  Returns the
    batches plus the ground-truth map (for optional reveals).
    """
    rng = as_generator(seed)
    accuracies = np.linspace(0.55, 0.95, n_sources)
    batches: List[List[Observation]] = []
    truth = {}
    values = [f"v{i}" for i in range(domain_size)]
    for batch_index in range(n_batches):
        batch: List[Observation] = []
        for slot in range(objects_per_batch):
            obj = f"o{batch_index * objects_per_batch + slot}"
            true_value = values[int(rng.integers(domain_size))]
            truth[obj] = true_value
            for source_index in range(n_sources):
                if rng.random() < accuracies[source_index]:
                    claimed = true_value
                else:
                    wrong = [v for v in values if v != true_value]
                    claimed = wrong[int(rng.integers(len(wrong)))]
                batch.append((f"s{source_index}", obj, claimed))
        batches.append(batch)
    return batches, truth


def _run_readers(
    server: FusionServer, n_readers: int, queries_per_reader: int, top_k: int, seed: int
) -> None:
    def reader(reader_seed: int) -> None:
        rng = as_generator(reader_seed)
        with server.read() as snapshot:
            known = snapshot.object_ids
        for i in range(queries_per_reader):
            if known and i % 4 != 3:
                obj = known[int(rng.integers(len(known)))]
                server.posterior(obj)
                server.value(obj)
            else:
                server.top_conflicts(top_k)

    threads = [
        threading.Thread(target=reader, args=(seed + 1000 + i,)) for i in range(n_readers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--batches", type=int, default=8, help="stream batches to ingest")
    parser.add_argument(
        "--objects-per-batch", type=int, default=16, help="fresh objects per batch"
    )
    parser.add_argument("--sources", type=int, default=8, help="simulated source count")
    parser.add_argument(
        "--publish-every", type=int, default=2, help="auto-publish after this many batches"
    )
    parser.add_argument(
        "--reveal-fraction",
        type=float,
        default=0.2,
        help="fraction of objects whose truth is revealed to the fuser",
    )
    parser.add_argument("--readers", type=int, default=2, help="concurrent reader threads")
    parser.add_argument(
        "--queries", type=int, default=200, help="queries issued per reader thread"
    )
    parser.add_argument("--top-k", type=int, default=5, help="conflict queue depth to print")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--json", action="store_true", help="emit a single JSON report instead of text"
    )
    args = parser.parse_args(argv)

    batches, truth = simulate_batches(
        args.batches, args.objects_per_batch, args.sources, seed=args.seed
    )
    rng = as_generator(args.seed + 1)
    server = FusionServer(publish_every=args.publish_every).start()
    for batch in batches:
        server.ingest(batch)
        for _, obj, _ in batch[:: args.sources]:
            if rng.random() < args.reveal_fraction:
                server.ingest_truth(obj, truth[obj])
    server.flush()
    server.stop()
    server.publish()

    _run_readers(server, args.readers, args.queries, args.top_k, args.seed)

    conflicts = server.top_conflicts(args.top_k)
    accuracies = server.source_accuracies()
    report = {
        "snapshot": server.snapshot.stats(),
        "metrics": server.metrics.as_dict(),
        "top_conflicts": [
            {
                "object": entry.object,
                "map_value": entry.map_value,
                "runner_up": entry.runner_up,
                "margin": entry.margin,
                "confidence": entry.confidence,
            }
            for entry in conflicts
        ],
        "source_accuracies": accuracies,
    }
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    stats = report["snapshot"]
    print(
        f"published v{stats['version']}: {stats['n_objects']} objects, "
        f"{stats['n_rows']} posterior rows, {stats['n_sources']} sources, "
        f"{stats['n_conflicted']} conflict-eligible"
    )
    metrics = report["metrics"]
    latency = metrics["query_latency"]
    print(
        f"queries: {metrics['queries']['total']} "
        f"(p50 {latency['p50_seconds'] * 1e6:.0f}us, "
        f"p99 {latency['p99_seconds'] * 1e6:.0f}us); "
        f"swaps: {metrics['snapshots']['swaps']}"
    )
    print(f"top-{args.top_k} conflicts:")
    for entry in conflicts:
        print(
            f"  {entry.object}: {entry.map_value} vs {entry.runner_up} "
            f"(margin {entry.margin:.3f})"
        )
    worst = sorted(accuracies, key=accuracies.get)[:3]
    print("least reliable sources: " + ", ".join(f"{s}={accuracies[s]:.2f}" for s in worst))
    return 0


if __name__ == "__main__":
    sys.exit(main())
