"""Immutable published serving snapshots over the ragged posterior store.

A :class:`Snapshot` freezes one publishable state of a streaming fusion
run — the ragged :class:`~repro.fusion.posterior_store.PosteriorStore`,
the claimed-value layout (``object_ids`` / ``pair_values`` / CSR
offsets), the per-source reliability vector, and the revealed-truth
bookkeeping — and precomputes at publish time everything the query paths
need in O(1)/O(k):

* a position index (object id -> store row span),
* a **conflict index** (:func:`build_conflict_index`): per-object MAP
  margin ``p_max - p_runner_up``, argsorted ascending so
  :meth:`Snapshot.top_conflicts` is a slice — the lowest-margin objects
  are the ones the fused estimate is least sure about, the natural
  curation queue for a live system.

Snapshots never mutate after construction (the store's flat arrays are
frozen via :meth:`~repro.fusion.posterior_store.PosteriorStore.freeze`),
so any number of reader threads can query one concurrently without
locks.  The small amount of *runtime* state a snapshot carries — the
reader-lease refcount used by
:class:`~repro.serve.server.FusionServer` for retirement — is excluded
from pickling and re-initialized on load.

Pickling a snapshot that carries an attached dataset ships the dataset's
compiled :class:`~repro.fusion.encoding.DenseEncoding` explicitly via
``export_state()``: ``FusionDataset.__getstate__`` deliberately drops the
cached encoding (it is a cache, and workers rebuild it), but for a
serving snapshot the frozen encoding *is* part of the published state —
without this, unpickling would silently recompile on first use.
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..fusion.encoding import DenseEncoding
from ..fusion.posterior_store import PosteriorStore, segmented_argmax
from ..fusion.types import ObjectId, SourceId, Value

__all__ = ["Snapshot", "ConflictEntry", "ConflictIndex", "build_conflict_index"]

#: Lock discipline, machine-checked by the ``RA2`` rule of
#: ``tools/repro_analysis``.  Only the lease-refcount runtime is mutable
#: after construction; the published arrays need no locks (immutable).
GUARDED_BY = {
    "_readers": "_lease_lock",
    "_retired": "_lease_lock",
}

_META_FILE = "meta.pkl"
_STORE_DIR = "store"


@dataclass(frozen=True)
class ConflictEntry:
    """One row of a top-k conflict query.

    ``margin`` is the posterior mass gap between the MAP value and the
    runner-up value of the same object; small margins mean the fused
    estimate is nearly a coin flip between ``map_value`` and
    ``runner_up``.
    """

    object: ObjectId
    map_value: Value
    runner_up: Value
    margin: float
    confidence: float


@dataclass(frozen=True)
class ConflictIndex:
    """Publish-time conflict precomputation (see :func:`build_conflict_index`).

    ``margins``/``second_codes`` align with the store's object positions;
    ``order`` sorts positions by ascending margin with the ``n_ranked``
    conflict-eligible objects first (single-candidate and override
    objects carry an infinite margin and sort last).
    """

    margins: np.ndarray
    second_codes: np.ndarray
    order: np.ndarray
    n_ranked: int


def build_conflict_index(store: PosteriorStore) -> ConflictIndex:
    """Precompute per-object MAP margins and their ascending order.

    The margin of object ``o`` is ``p_max - p_second`` over its posterior
    rows — the quantity a curation loop ranks by (lowest margin = most
    conflicting).  Objects that cannot conflict get an infinite margin
    and are excluded from ``n_ranked``: single-candidate domains, empty
    spans, and override objects (code -1: truth clamped outside the
    claimed domain, an exact point mass by construction).  One masked
    segmented max/argmax pass over the flat rows, O(rows) total.
    """
    n_objects = store.n_objects
    offsets = store.offsets
    lengths = store.domain_sizes
    codes = store.value_codes
    seg_max = store.max_probs()
    valid = codes >= 0
    # Writable copy (the store may be frozen or memmapped): mask each
    # object's MAP row so a second reduction finds the runner-up.
    probs = np.array(store.probs, dtype=float)
    best_rows = offsets[:-1] + np.where(valid, codes, 0)
    probs[best_rows[valid]] = -np.inf
    second_codes = segmented_argmax(probs, offsets)
    segment_idx = np.repeat(np.arange(n_objects, dtype=np.int64), lengths)
    second = np.full(n_objects, -np.inf)
    np.maximum.at(second, segment_idx, probs)
    margins = seg_max - second
    margins[lengths <= 1] = np.inf
    margins[~valid] = np.inf
    order = np.argsort(margins, kind="stable")
    n_ranked = int(np.count_nonzero(np.isfinite(margins)))
    for array in (margins, second_codes, order):
        array.setflags(write=False)
    return ConflictIndex(
        margins=margins, second_codes=second_codes, order=order, n_ranked=n_ranked
    )


class Snapshot:
    """One immutable published state of a fusion stream.

    Parameters
    ----------
    store:
        Ragged per-object posteriors; frozen in place at construction.
    object_ids:
        Object ids in store position order.
    pair_values:
        Flat claimed values aligned with the store's CSR rows.
    accuracy_vector, source_ids:
        Per-source reliability estimates (optional, aligned).
    overrides:
        Objects whose truth lies outside the claimed domain (store code
        -1), mapping to the out-of-domain value.
    truth:
        Revealed ground-truth labels at publish time.
    version, n_observations, n_refits:
        Publish bookkeeping surfaced by :meth:`stats`.
    dataset:
        Optional accumulated-stream dataset view with its compiled
        encoding attached (see the module docstring for the pickling
        contract).

    Queries never mutate the snapshot, so readers need no locks.  The
    :meth:`acquire`/:meth:`release` lease refcount exists only for the
    serving layer's retirement protocol; querying a retired snapshot
    remains valid — retirement is bookkeeping, not invalidation.
    """

    def __init__(
        self,
        store: PosteriorStore,
        object_ids: Sequence[ObjectId],
        pair_values: Sequence[Value],
        *,
        accuracy_vector: Optional[np.ndarray] = None,
        source_ids: Optional[Sequence[SourceId]] = None,
        overrides: Optional[Dict[ObjectId, Value]] = None,
        truth: Optional[Dict[ObjectId, Value]] = None,
        version: int = 0,
        n_observations: int = 0,
        n_refits: int = 0,
        dataset=None,
    ) -> None:
        self.store = store.freeze()
        self.object_ids = list(object_ids)
        self.pair_values = list(pair_values)
        if len(self.object_ids) != store.n_objects:
            raise ValueError(
                f"{len(self.object_ids)} object ids for a store of {store.n_objects} objects"
            )
        if len(self.pair_values) != store.n_rows:
            raise ValueError(
                f"{len(self.pair_values)} pair values for a store of {store.n_rows} rows"
            )
        self.accuracy_vector = (
            None if accuracy_vector is None else np.asarray(accuracy_vector, dtype=float)
        )
        self.source_ids = None if source_ids is None else list(source_ids)
        if (self.accuracy_vector is None) != (self.source_ids is None):
            raise ValueError("accuracy_vector and source_ids must be given together")
        self.overrides = dict(overrides or {})
        self.truth = dict(truth or {})
        self.version = int(version)
        self.n_observations = int(n_observations)
        self.n_refits = int(n_refits)
        self.dataset = dataset
        self.conflicts = build_conflict_index(self.store)
        self._build_indexes()
        self._init_runtime()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, version: int = 0) -> "Snapshot":
        """A snapshot with no objects (the server's pre-publish state)."""
        store = PosteriorStore(np.zeros(1, dtype=np.int64), np.zeros(0))
        return cls(store, [], [], version=version)

    @classmethod
    def from_result(
        cls,
        result,
        *,
        version: int = 0,
        n_observations: int = 0,
        n_refits: int = 0,
        truth: Optional[Dict[ObjectId, Value]] = None,
        dataset=None,
    ) -> "Snapshot":
        """Publish an array-backed :class:`~repro.fusion.result.FusionResult`.

        The result's posterior store is frozen **in place** (published
        arrays must never mutate); dict-backed results must go through
        ``attach_dataset`` first.
        """
        if not result.has_arrays:
            raise ValueError(
                "Snapshot requires an array-backed result; call "
                "attach_dataset(dataset) on dict-backed results first"
            )
        return cls(
            result.posterior_store,
            result.object_ids,
            result.pair_values,
            accuracy_vector=result.source_accuracy_vector,
            source_ids=result.source_ids,
            overrides=result.overrides,
            truth=truth,
            version=version,
            n_observations=n_observations,
            n_refits=n_refits,
            dataset=dataset,
        )

    @classmethod
    def from_fuser(
        cls, fuser, *, version: int = 0, with_dataset: bool = False
    ) -> "Snapshot":
        """Publish the current state of a vectorized ``StreamingFuser``.

        Uses :meth:`~repro.extensions.streaming.StreamingFuser.publish_state`;
        an empty stream publishes :meth:`empty`.  ``with_dataset=True``
        additionally exports the accumulated stream as a dataset with its
        frozen compiled encoding attached (an O(n) walk — leave it off on
        hot publish paths).
        """
        state = fuser.publish_state(with_dataset=with_dataset)
        result = state["result"]
        if not result.has_arrays:
            return cls.empty(version=version)
        return cls.from_result(
            result,
            version=version,
            n_observations=state["n_observations"],
            n_refits=state["n_refits"],
            truth=state["truth"],
            dataset=state["dataset"],
        )

    def _build_indexes(self) -> None:
        self._positions = {obj: i for i, obj in enumerate(self.object_ids)}
        self._source_positions = (
            {} if self.source_ids is None else {s: i for i, s in enumerate(self.source_ids)}
        )

    # ------------------------------------------------------------------
    # Shape / bookkeeping
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        """Objects covered by the snapshot."""
        return self.store.n_objects

    @property
    def n_sources(self) -> int:
        """Sources with reliability estimates."""
        return 0 if self.source_ids is None else len(self.source_ids)

    def stats(self) -> Dict[str, object]:
        """Publish bookkeeping: version, sizes, counters, byte footprint."""
        return {
            "version": self.version,
            "n_objects": self.n_objects,
            "n_rows": self.store.n_rows,
            "n_sources": self.n_sources,
            "n_observations": self.n_observations,
            "n_refits": self.n_refits,
            "n_conflicted": self.conflicts.n_ranked,
            "store_nbytes": self.store.nbytes,
        }

    # ------------------------------------------------------------------
    # Queries (lock-free; safe from any number of threads)
    # ------------------------------------------------------------------
    def position(self, obj: ObjectId) -> Optional[int]:
        """Store position of an object (None if unseen)."""
        return self._positions.get(obj)

    def posterior(self, obj: ObjectId) -> Dict[Value, float]:
        """Posterior over the object's claimed values ({} if unseen).

        Truth-clamped objects are exact point masses; objects whose truth
        lies outside the claimed domain report the claimed values at 0.0
        plus the override value at 1.0 — the same dict the streaming
        fuser's live ``posterior`` returns.
        """
        pos = self._positions.get(obj)
        if pos is None:
            return {}
        start = int(self.store.offsets[pos])
        stop = int(self.store.offsets[pos + 1])
        values = self.pair_values[start:stop]
        override = self.overrides.get(obj)
        if override is not None:
            clamped = {value: 0.0 for value in values}
            clamped[override] = 1.0
            return clamped
        return dict(zip(values, self.store.probs[start:stop].tolist()))

    def value(self, obj: ObjectId) -> Optional[Value]:
        """MAP value for an object (None if unseen)."""
        pos = self._positions.get(obj)
        if pos is None:
            return None
        override = self.overrides.get(obj)
        if override is not None:
            return override
        code = int(self.store.value_codes[pos])
        return self.pair_values[int(self.store.offsets[pos]) + code]

    def confidence(self, obj: ObjectId) -> Optional[float]:
        """Posterior mass of the MAP value (1.0 for overrides)."""
        pos = self._positions.get(obj)
        if pos is None:
            return None
        if obj in self.overrides:
            return 1.0
        code = int(self.store.value_codes[pos])
        return float(self.store.probs[int(self.store.offsets[pos]) + code])

    def margin(self, obj: ObjectId) -> Optional[float]:
        """MAP margin of an object (inf when it cannot conflict)."""
        pos = self._positions.get(obj)
        if pos is None:
            return None
        return float(self.conflicts.margins[pos])

    def top_conflicts(self, k: int = 10) -> List[ConflictEntry]:
        """The ``k`` objects with the smallest MAP margin, ascending.

        An O(k) slice of the publish-time conflict index; only
        conflict-eligible objects (finite margin) are returned, so fewer
        than ``k`` entries come back on small or fully-clamped snapshots.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        offsets = self.store.offsets
        codes = self.store.value_codes
        probs = self.store.probs
        conflicts = self.conflicts
        entries = []
        for pos in conflicts.order[: min(k, conflicts.n_ranked)].tolist():
            start = int(offsets[pos])
            code = int(codes[pos])
            entries.append(
                ConflictEntry(
                    object=self.object_ids[pos],
                    map_value=self.pair_values[start + code],
                    runner_up=self.pair_values[start + int(conflicts.second_codes[pos])],
                    margin=float(conflicts.margins[pos]),
                    confidence=float(probs[start + code]),
                )
            )
        return entries

    def source_accuracy(self, source: SourceId) -> Optional[float]:
        """Estimated reliability of one source (None if unseen)."""
        pos = self._source_positions.get(source)
        if pos is None:
            return None
        return float(self.accuracy_vector[pos])

    def source_accuracies(self) -> Dict[SourceId, float]:
        """All per-source reliability estimates."""
        if self.source_ids is None:
            return {}
        return {
            source: float(acc)
            for source, acc in zip(self.source_ids, self.accuracy_vector)
        }

    # ------------------------------------------------------------------
    # Reader-lease runtime (used by FusionServer's retirement protocol)
    # ------------------------------------------------------------------
    # Pre-publication initialization: the snapshot is not visible to any
    # other thread until __init__/__setstate__ returns, so these writes
    # cannot race (the lock they would take is created right here).
    # repro-analysis: ignore[RA2]
    def _init_runtime(self) -> None:
        self._lease_lock = threading.Lock()
        self._readers = 0
        self._retired = False
        self._drained = threading.Event()

    def acquire(self) -> "Snapshot":
        """Take a reader lease; pair with :meth:`release`."""
        with self._lease_lock:
            self._readers += 1
        return self

    def release(self) -> None:
        """Drop a reader lease; the last one out drains a retired snapshot."""
        with self._lease_lock:
            self._readers -= 1
            if self._retired and self._readers == 0:
                self._drained.set()

    def retire(self) -> None:
        """Mark the snapshot superseded (drains immediately if unleased)."""
        with self._lease_lock:
            self._retired = True
            if self._readers == 0:
                self._drained.set()

    @property
    def reader_count(self) -> int:
        """Currently held reader leases."""
        with self._lease_lock:
            return self._readers

    @property
    def retired(self) -> bool:
        """Whether a newer snapshot superseded this one."""
        with self._lease_lock:
            return self._retired

    @property
    def drained(self) -> bool:
        """Whether the snapshot is retired with no remaining leases."""
        return self._drained.is_set()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until retired-and-unleased (True) or ``timeout`` elapses."""
        return self._drained.wait(timeout)

    # ------------------------------------------------------------------
    # Pickling / persistence
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = {
            key: value
            for key, value in self.__dict__.items()
            if key
            not in ("_lease_lock", "_readers", "_retired", "_drained", "_positions", "_source_positions")
        }
        dataset = state.get("dataset")
        if dataset is not None:
            encoding = getattr(dataset, "_dense_encoding", None)
            if encoding is not None:
                # FusionDataset.__getstate__ drops its cached encoding (a
                # cache to workers, published state to us) — ship the
                # compile explicitly so unpickling never recompiles.
                state["_encoding_state"] = encoding.export_state()
        return state

    def __setstate__(self, state: dict) -> None:
        encoding_state = state.pop("_encoding_state", None)
        self.__dict__.update(state)
        self.store.freeze()
        self._build_indexes()
        self._init_runtime()
        if encoding_state is not None and self.dataset is not None:
            self.dataset._dense_encoding = DenseEncoding.from_state(
                self.dataset, encoding_state
            )

    def save(self, directory: str) -> str:
        """Write the snapshot under ``directory`` for a memmapped reload.

        The posterior store lands as ``.npy`` files (``store/``), the rest
        of the published state as a pickle (``meta.pkl``).  Returns the
        directory, ready for :meth:`load`.
        """
        os.makedirs(directory, exist_ok=True)
        self.store.save(os.path.join(directory, _STORE_DIR))
        state = self.__getstate__()
        state.pop("store")
        with open(os.path.join(directory, _META_FILE), "wb") as handle:
            pickle.dump(state, handle)
        return directory

    @classmethod
    def load(cls, directory: str, mmap: bool = False) -> "Snapshot":
        """Read a snapshot saved by :meth:`save`.

        With ``mmap=True`` the store's flat arrays attach as read-only
        ``numpy.memmap`` views — a warm start that serves posteriors from
        the OS page cache instead of loading them wholesale.
        """
        store = PosteriorStore.load(os.path.join(directory, _STORE_DIR), mmap=mmap)
        with open(os.path.join(directory, _META_FILE), "rb") as handle:
            state = pickle.load(handle)
        state["store"] = store
        snapshot = cls.__new__(cls)
        snapshot.__setstate__(state)
        return snapshot
