"""Stdlib-only serving metrics: counters and log-bucketed latency histograms.

The serving layer needs observability without pulling in a metrics
dependency, so this module keeps everything on the standard library:

* :class:`LatencyHistogram` — a thread-safe histogram over geometric
  buckets (default ratio ``2 ** 0.25`` from 1 microsecond to 60 seconds,
  ~105 buckets).  Percentile reads return the *upper bound* of the bucket
  holding the requested rank, so estimates quantize upward by at most the
  bucket ratio (~19% with the default); exact-latency assertions (such as
  the gate in ``benchmarks/bench_serve.py``) must keep raw samples instead.
* :class:`ServeMetrics` — the counters a :class:`~repro.serve.server.FusionServer`
  maintains: per-kind query counts with one shared lookup-latency
  histogram, ingest batch/observation/error counts, snapshot publish/swap
  counts with publish-latency histograms, and the age of the currently
  published snapshot.

All mutators take a lock per call; at serving rates (µs-scale lookups)
the uncontended-lock cost is noise, and readers never hold a metrics lock
while touching a snapshot.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "ServeMetrics"]

#: Lock discipline, machine-checked by the ``RA2`` rule of
#: ``tools/repro_analysis``.  Both classes guard their mutable counters
#: with an instance ``_lock``; the histogram bucket bounds are immutable
#: after construction and deliberately unlisted.
GUARDED_BY = {
    # LatencyHistogram
    "_counts": "_lock",
    "_count": "_lock",
    "_sum": "_lock",
    "_max": "_lock",
    # ServeMetrics
    "_query_counts": "_lock",
    "_ingest_batches": "_lock",
    "_ingest_observations": "_lock",
    "_ingest_errors": "_lock",
    "_swaps": "_lock",
    "_drained": "_lock",
    "_last_publish_monotonic": "_lock",
}


class LatencyHistogram:
    """Thread-safe latency histogram over geometric buckets.

    Parameters
    ----------
    min_seconds, max_seconds:
        Range covered by the geometric buckets; samples below the range
        land in the first bucket, samples above it in a final overflow
        bucket whose percentile reads report the maximum observed value.
    growth:
        Ratio between consecutive bucket bounds.  Percentile estimates
        quantize upward by at most this factor.
    """

    def __init__(
        self,
        min_seconds: float = 1e-6,
        max_seconds: float = 60.0,
        growth: float = 2**0.25,
    ) -> None:
        if not min_seconds > 0 or not max_seconds > min_seconds or not growth > 1.0:
            raise ValueError("need 0 < min_seconds < max_seconds and growth > 1")
        bounds: List[float] = []
        bound = min_seconds
        while bound < max_seconds:
            bounds.append(bound)
            bound *= growth
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one sample (in seconds)."""
        index = bisect.bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        with self._lock:
            return self._count

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded samples."""
        with self._lock:
            return self._sum

    @property
    def max_seconds(self) -> float:
        """Largest recorded sample (0.0 when empty)."""
        with self._lock:
            return self._max

    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (``0 < q <= 1``).

        Returns the upper bound of the bucket containing the requested
        rank — an overestimate by at most the bucket ratio — or the exact
        maximum for ranks landing in the overflow bucket.  0.0 when empty.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            count = self._count
            if count == 0:
                return 0.0
            rank = max(1, int(q * count + 0.999999))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    if index < len(self._bounds):
                        return self._bounds[index]
                    return self._max
            return self._max

    def as_dict(self) -> Dict[str, float]:
        """Summary snapshot: count, mean, max, p50/p90/p99."""
        with self._lock:
            count = self._count
            total = self._sum
            maximum = self._max
        return {
            "count": count,
            "mean_seconds": total / count if count else 0.0,
            "max_seconds": maximum,
            "p50_seconds": self.percentile(0.50),
            "p90_seconds": self.percentile(0.90),
            "p99_seconds": self.percentile(0.99),
        }


class ServeMetrics:
    """Counters and histograms maintained by a serving front-end.

    Tracks per-kind query counts (one shared lookup-latency histogram),
    ingest batches/observations/errors, snapshot publishes (build and
    swap latency histograms, swap count, retired-snapshot drain count)
    and the age of the currently published snapshot.  All methods are
    thread-safe; :meth:`as_dict` returns a plain-dict snapshot suitable
    for JSON export.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.query_latency = LatencyHistogram()
        self.publish_latency = LatencyHistogram()
        self.swap_latency = LatencyHistogram()
        self._query_counts: Dict[str, int] = {}
        self._ingest_batches = 0
        self._ingest_observations = 0
        self._ingest_errors = 0
        self._swaps = 0
        self._drained = 0
        self._last_publish_monotonic: Optional[float] = None

    # ------------------------------------------------------------------
    # Recorders
    # ------------------------------------------------------------------
    def record_query(self, kind: str, seconds: float) -> None:
        """Count one query of ``kind`` and add its latency sample."""
        self.query_latency.record(seconds)
        with self._lock:
            self._query_counts[kind] = self._query_counts.get(kind, 0) + 1

    def record_ingest(self, n_observations: int) -> None:
        """Count one successfully ingested batch."""
        with self._lock:
            self._ingest_batches += 1
            self._ingest_observations += int(n_observations)

    def record_ingest_error(self) -> None:
        """Count one rejected ingest batch (e.g. duplicate claims)."""
        with self._lock:
            self._ingest_errors += 1

    def record_publish(self, build_seconds: float, swap_seconds: float) -> None:
        """Count one snapshot publish (build + reference-swap timings)."""
        self.publish_latency.record(build_seconds)
        self.swap_latency.record(swap_seconds)
        with self._lock:
            self._swaps += 1
            self._last_publish_monotonic = time.monotonic()

    def record_drained(self, n: int = 1) -> None:
        """Count retired snapshots whose readers have drained."""
        with self._lock:
            self._drained += int(n)

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Total queries across all kinds."""
        return self.query_latency.count

    @property
    def query_counts(self) -> Dict[str, int]:
        """Per-kind query counts (a copy)."""
        with self._lock:
            return dict(self._query_counts)

    @property
    def ingest_batches(self) -> int:
        """Successfully ingested batches."""
        with self._lock:
            return self._ingest_batches

    @property
    def ingest_observations(self) -> int:
        """Successfully ingested observations."""
        with self._lock:
            return self._ingest_observations

    @property
    def ingest_errors(self) -> int:
        """Rejected ingest batches."""
        with self._lock:
            return self._ingest_errors

    @property
    def swap_count(self) -> int:
        """Published snapshot swaps."""
        with self._lock:
            return self._swaps

    @property
    def drained_count(self) -> int:
        """Retired snapshots fully drained of readers."""
        with self._lock:
            return self._drained

    def snapshot_age_seconds(self) -> Optional[float]:
        """Seconds since the last publish (None before the first)."""
        with self._lock:
            last = self._last_publish_monotonic
        return None if last is None else time.monotonic() - last

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every counter and histogram summary."""
        age = self.snapshot_age_seconds()
        with self._lock:
            counts = dict(self._query_counts)
            ingest = {
                "batches": self._ingest_batches,
                "observations": self._ingest_observations,
                "errors": self._ingest_errors,
            }
            swaps = self._swaps
            drained = self._drained
        return {
            "queries": {"total": self.query_latency.count, "by_kind": counts},
            "query_latency": self.query_latency.as_dict(),
            "ingest": ingest,
            "snapshots": {
                "swaps": swaps,
                "drained": drained,
                "age_seconds": age,
            },
            "publish_latency": self.publish_latency.as_dict(),
            "swap_latency": self.swap_latency.as_dict(),
        }
