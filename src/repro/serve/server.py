"""Concurrent fusion serving: reader-leased single-reference snapshot swap.

:class:`FusionServer` puts a query front-end over a vectorized
:class:`~repro.extensions.streaming.StreamingFuser`:

* **Readers** take a lease on the currently published
  :class:`~repro.serve.snapshot.Snapshot` (:meth:`FusionServer.read`, a
  context manager) and query it lock-free — snapshots are immutable, so
  a lease is one uncontended refcount increment, never a wait on ingest.
* **The writer** (one thread; either the caller or the built-in queue
  loop started by :meth:`FusionServer.start`) appends batches to the
  fuser's :class:`~repro.fusion.encoding.IncrementalEncoding`, optionally
  re-anchors via the fuser's periodic
  :func:`~repro.core.em.fit_incremental` re-fit, and periodically
  **publishes**: build a fresh snapshot from the live state, then swap
  the single published reference under a microsecond-scale lock.  The
  superseded snapshot is *retired*, not invalidated — readers still
  holding a lease on it finish their queries against consistent data,
  and the snapshot is reaped once its reader count drains.

The contract readers rely on: a snapshot acquired through
:meth:`FusionServer.read` is internally consistent forever (no torn
state, no mutation after publish), and acquiring one costs the same
whether or not an ingest or publish is in flight.  Writer-side work
(encoding appends, EM re-fits, snapshot builds) happens entirely outside
the swap lock.

All mutating entry points serialize on a writer lock, so a single
``FusionServer`` tolerates multiple writer threads — but the intended
topology is one writer (the :meth:`start` queue loop) and many readers.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from ..extensions.streaming import StreamingFuser
from ..fusion.types import ObjectId, Observation, SourceId, Value
from .metrics import ServeMetrics
from .snapshot import ConflictEntry, Snapshot

__all__ = ["FusionServer"]

#: Lock discipline, machine-checked by the ``RA2`` rule of
#: ``tools/repro_analysis``: every read or write of these attributes must
#: happen inside a ``with self.<lock>:`` block (or in ``__init__``, or in
#: a function annotated ``# repro-analysis: holds[<lock>]``).  Keep this
#: table in sync with the concurrency story in the module docstring.
GUARDED_BY = {
    "_snapshot": "_swap_lock",
    "_retiring": "_swap_lock",
    "_version": "_write_lock",
    "_batches_since_publish": "_write_lock",
}

_STOP = object()


class FusionServer:
    """Snapshot-swap serving front-end over a streaming fuser.

    Parameters
    ----------
    fuser:
        A vectorized :class:`~repro.extensions.streaming.StreamingFuser`
        to serve (its ``refit_every``/``decay`` configuration is the
        ingest policy).  Omit it to have one built from
        ``fuser_kwargs``.
    publish_every:
        Auto-publish after this many ingested batches (None = publish
        only on explicit :meth:`publish` calls).
    with_dataset:
        When True every publish also exports the accumulated stream as a
        dataset with its frozen compiled encoding attached (O(n) per
        publish; useful when snapshots feed batch tooling or are
        pickled/shipped elsewhere).
    metrics:
        A :class:`~repro.serve.metrics.ServeMetrics` to record into
        (a fresh one by default).
    """

    def __init__(
        self,
        fuser: Optional[StreamingFuser] = None,
        *,
        publish_every: Optional[int] = None,
        with_dataset: bool = False,
        metrics: Optional[ServeMetrics] = None,
        **fuser_kwargs: object,
    ) -> None:
        if fuser is None:
            fuser = StreamingFuser(**fuser_kwargs)
        elif fuser_kwargs:
            raise ValueError("pass fuser_kwargs only when the server builds the fuser")
        if fuser.backend != "vectorized":
            raise ValueError(
                "FusionServer requires a vectorized StreamingFuser; the "
                "reference engine has no publishable array state"
            )
        if publish_every is not None and publish_every <= 0:
            raise ValueError("publish_every must be a positive batch count")
        self.fuser = fuser
        self.publish_every = publish_every
        self.with_dataset = with_dataset
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._version = 0
        self._snapshot = Snapshot.empty(version=0)
        # _swap_lock guards only the published reference (and the
        # retiring list); writers never hold it while doing real work.
        self._swap_lock = threading.Lock()
        self._write_lock = threading.RLock()
        self._retiring: List[Snapshot] = []
        self._batches_since_publish = 0
        self._queue: Optional[queue.Queue] = None
        self._writer_thread: Optional[threading.Thread] = None
        self.last_ingest_error: Optional[Exception] = None

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    @contextmanager
    def read(self) -> Iterator[Snapshot]:
        """Lease the published snapshot for a block of queries.

        The yielded snapshot stays valid for the whole block even if a
        publish supersedes it mid-read; the lease only delays the old
        snapshot's *drain* bookkeeping, never the swap itself.
        """
        with self._swap_lock:
            snapshot = self._snapshot.acquire()
        try:
            yield snapshot
        finally:
            snapshot.release()
            self._reap_retired()

    @property
    def snapshot(self) -> Snapshot:
        """The published snapshot (un-leased peek; prefer :meth:`read`)."""
        with self._swap_lock:
            return self._snapshot

    @property
    def version(self) -> int:
        """Version of the published snapshot (0 until the first publish)."""
        with self._swap_lock:
            return self._snapshot.version

    @property
    def retiring_count(self) -> int:
        """Retired snapshots still waiting on reader leases."""
        with self._swap_lock:
            return len(self._retiring)

    def _timed(self, kind: str, fn):
        start = time.perf_counter()
        with self.read() as snapshot:
            out = fn(snapshot)
        self.metrics.record_query(kind, time.perf_counter() - start)
        return out

    def posterior(self, obj: ObjectId) -> Dict[Value, float]:
        """Published posterior over one object's claimed values."""
        return self._timed("posterior", lambda snapshot: snapshot.posterior(obj))

    def value(self, obj: ObjectId) -> Optional[Value]:
        """Published MAP value for one object (None if unseen)."""
        return self._timed("value", lambda snapshot: snapshot.value(obj))

    def confidence(self, obj: ObjectId) -> Optional[float]:
        """Published MAP confidence for one object."""
        return self._timed("confidence", lambda snapshot: snapshot.confidence(obj))

    def top_conflicts(self, k: int = 10) -> List[ConflictEntry]:
        """The k most-conflicting objects of the published snapshot."""
        return self._timed("top_conflicts", lambda snapshot: snapshot.top_conflicts(k))

    def source_accuracy(self, source: SourceId) -> Optional[float]:
        """Published reliability estimate of one source."""
        return self._timed("source_accuracy", lambda snapshot: snapshot.source_accuracy(source))

    def source_accuracies(self) -> Dict[SourceId, float]:
        """Published reliability estimates of every source."""
        return self._timed("source_accuracy", lambda snapshot: snapshot.source_accuracies())

    # ------------------------------------------------------------------
    # Writer side (synchronous entry points)
    # ------------------------------------------------------------------
    def append(self, observations: Sequence[Observation]) -> int:
        """Ingest one batch into the live fuser (auto-publishing per policy).

        Returns the number of observations appended.  Raises whatever the
        encoding raises on invalid batches (e.g. duplicate
        ``(source, object)`` claims) — the queue loop catches these and
        counts them instead.
        """
        observations = list(observations)
        with self._write_lock:
            self.fuser.observe_batch(observations)
            self._batches_since_publish += 1
            self.metrics.record_ingest(len(observations))
            if (
                self.publish_every is not None
                and self._batches_since_publish >= self.publish_every
            ):
                self.publish()
        return len(observations)

    def reveal_truth(self, obj: ObjectId, value: Value) -> None:
        """Feed a ground-truth label to the live fuser."""
        with self._write_lock:
            self.fuser.reveal_truth(obj, value)

    def refit(self) -> None:
        """Force a warm-started EM re-anchor of the live fuser."""
        with self._write_lock:
            self.fuser.refit()

    def publish(self) -> Snapshot:
        """Build a snapshot from the live state and swap it in atomically.

        The build (the expensive part: one segmented softmax plus the
        conflict index) runs outside the swap lock; the swap itself is a
        single reference assignment under it.  The superseded snapshot is
        retired and reaped once its readers drain.
        """
        with self._write_lock:
            build_start = time.perf_counter()
            snapshot = Snapshot.from_fuser(
                self.fuser, version=self._version + 1, with_dataset=self.with_dataset
            )
            build_seconds = time.perf_counter() - build_start
            swap_start = time.perf_counter()
            with self._swap_lock:
                old = self._snapshot
                self._snapshot = snapshot
                self._version = snapshot.version
            swap_seconds = time.perf_counter() - swap_start
            old.retire()
            if not old.drained:
                with self._swap_lock:
                    self._retiring.append(old)
            self._batches_since_publish = 0
            self.metrics.record_publish(build_seconds, swap_seconds)
            self._reap_retired()
            return snapshot

    def _reap_retired(self) -> None:
        # Benign racy emptiness peek: a stale read only delays reaping to
        # the next release/publish, and the real walk re-checks under the
        # lock.  Taking the swap lock here would put it on every reader's
        # release path for nothing.
        if not self._retiring:  # repro-analysis: ignore[RA2]
            return
        with self._swap_lock:
            kept = [snapshot for snapshot in self._retiring if not snapshot.drained]
            n_drained = len(self._retiring) - len(kept)
            self._retiring = kept
        if n_drained:
            self.metrics.record_drained(n_drained)

    # ------------------------------------------------------------------
    # Background writer loop
    # ------------------------------------------------------------------
    def start(self) -> "FusionServer":
        """Start the background writer thread draining :meth:`ingest` calls."""
        if self._writer_thread is not None:
            raise RuntimeError("writer loop already running")
        self._queue = queue.Queue()
        self._writer_thread = threading.Thread(
            target=self._drain, name="fusion-serve-writer", daemon=True
        )
        self._writer_thread.start()
        return self

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                kind, payload = item
                try:
                    if kind == "batch":
                        self.append(payload)
                    elif kind == "truth":
                        self.reveal_truth(*payload)
                    elif kind == "publish":
                        self.publish()
                except Exception as error:  # keep draining past bad batches
                    self.last_ingest_error = error
                    self.metrics.record_ingest_error()
            finally:
                self._queue.task_done()

    def _require_writer(self) -> queue.Queue:
        if self._queue is None:
            raise RuntimeError("writer loop not running; call start() first")
        return self._queue

    def ingest(self, observations: Sequence[Observation]) -> None:
        """Enqueue a batch for the writer loop (returns immediately)."""
        self._require_writer().put(("batch", list(observations)))

    def ingest_truth(self, obj: ObjectId, value: Value) -> None:
        """Enqueue a ground-truth reveal for the writer loop."""
        self._require_writer().put(("truth", (obj, value)))

    def request_publish(self) -> None:
        """Enqueue an explicit publish for the writer loop."""
        self._require_writer().put(("publish", None))

    def flush(self) -> None:
        """Block until the writer loop has drained everything enqueued."""
        self._require_writer().join()

    def stop(self, publish: bool = False) -> None:
        """Stop the writer loop (optionally publishing the final state)."""
        if self._writer_thread is None:
            return
        if publish:
            self.request_publish()
        self._queue.put(_STOP)
        self._writer_thread.join()
        self._writer_thread = None
        self._queue = None
