"""Fusion-as-a-service: a concurrent serving layer over published snapshots.

The batch learners and the streaming fuser answer "what are the fused
values right now?" inside one process; this package makes that state
**servable**: an immutable published :class:`Snapshot` (ragged posterior
store + claimed-value layout + per-source reliability + a publish-time
conflict index) behind a :class:`FusionServer` whose readers lease the
current snapshot lock-free while a writer loop ingests batches and
atomically swaps new snapshots in — readers never block on ingest.

Quick tour::

    from repro.serve import FusionServer

    server = FusionServer(publish_every=2)
    server.append([("s1", "obj", "a"), ("s2", "obj", "b")])
    server.publish()
    server.posterior("obj")       # {'a': ..., 'b': ...}
    server.top_conflicts(k=5)     # lowest-MAP-margin objects
    server.metrics.as_dict()      # counters + latency histograms

See ``docs/serving.md`` for the operations guide (snapshot lifecycle,
reader/writer contract, metrics reference, capacity numbers) and
``python -m repro.serve --help`` for the demo entrypoint.
"""

from .metrics import LatencyHistogram, ServeMetrics
from .server import FusionServer
from .snapshot import ConflictEntry, ConflictIndex, Snapshot, build_conflict_index

__all__ = [
    "FusionServer",
    "Snapshot",
    "ConflictEntry",
    "ConflictIndex",
    "build_conflict_index",
    "ServeMetrics",
    "LatencyHistogram",
]
