"""repro — a full reproduction of SLiMFast (SIGMOD 2017).

SLiMFast expresses *data fusion* — resolving conflicting claims from many
sources by estimating source reliability — as statistical learning over a
discriminative probabilistic model (logistic regression), with rigorous
error guarantees and an optimizer that chooses between supervised (ERM)
and unsupervised (EM) learning.

Quickstart::

    from repro import FusionDataset, SLiMFast

    dataset = FusionDataset(
        observations=[("src1", "obj1", "A"), ("src2", "obj1", "B"), ...],
        ground_truth={"obj1": "A"},                 # optional, partial
        source_features={"src1": {"year": 2009}},   # optional
    )
    result = SLiMFast().fit_predict(dataset, train_truth={"obj1": "A"})
    result.values              # estimated true values per object
    result.source_accuracies   # estimated accuracy per source

Package map:

* :mod:`repro.core` — SLiMFast model, ERM/EM learners, the EM-vs-ERM
  optimizer, guarantees, lasso analysis, copying extension.
* :mod:`repro.fusion` — dataset containers, feature encoding, metrics, and
  the dense-encoding layer backing the vectorized engine.
* :mod:`repro.featurize` — versioned reliability feature groups computed
  from the claims themselves (volume, breadth, recency, corroboration,
  contradiction, overlap, entropy), composed by a chunked-parallel,
  content+version-cached :class:`~repro.featurize.FeaturizerPipeline`
  that plugs into every learner via ``featurizer=``.
* :mod:`repro.baselines` — Majority, Counts, ACCU, CATD, SSTF, TruthFinder.
* :mod:`repro.factorgraph` — factor-graph engine (DeepDive substrate).
* :mod:`repro.optim` — objectives and solvers (L-BFGS, FISTA, SGD).
* :mod:`repro.data` — synthetic generators and paper-dataset simulators.
* :mod:`repro.experiments` — harness regenerating every paper table/figure,
  plus the batched multi-fit sweep engine
  (:class:`~repro.experiments.sweeps.SweepRunner`: one dataset compile
  shared by every fit of a parameter sweep, with warm-start handoff).
* :mod:`repro.serve` — fusion as a service: a concurrent query front-end
  (:class:`~repro.serve.server.FusionServer`) over immutable published
  snapshots with atomic swap, so reads never block on ingest.

Execution backends
------------------

Every hot path (posteriors, EM E-step, ERM objectives, Gibbs sweeps) runs
on one of two engines selected by a ``backend`` argument on the learners,
the inference functions and the :class:`~repro.core.slimfast.SLiMFast`
facade:

* ``"vectorized"`` (default) — flat NumPy index arrays compiled once per
  dataset by :mod:`repro.fusion.encoding` (CSR object→observation spans,
  value codes, candidate-pair rows, cached design matrix); inference is a
  single segmented softmax over row spans, and EM/ERM solver iterations
  run on per-source sufficient statistics.
* ``"reference"`` — the original per-object Python loops, kept as the
  machine-checked ground truth.

Append-only workloads use
:class:`~repro.fusion.encoding.IncrementalEncoding` (O(batch) appends
that stay exactly equivalent to a cold compile of the accumulated
dataset) and the array-native streaming fuser
(:class:`~repro.extensions.streaming.StreamingFuser`, with an optional
periodic warm-started EM re-fit) instead of recompiling per change.

``tests/test_vectorized_equivalence.py`` asserts both engines agree to
``atol=1e-8`` across random datasets.  Benchmark the engines and refresh
the CI regression baseline with::

    PYTHONPATH=src python benchmarks/bench_vectorized_engine.py            # full, 10k observations
    PYTHONPATH=src python benchmarks/bench_vectorized_engine.py --smoke \
        --output benchmarks/BENCH_inference.json                           # refresh CI baseline

CI (``.github/workflows/ci.yml``) runs the tier-1 suite on Python
3.9/3.11/3.12, ruff lint + format, a docs build with a README code-block
smoke, and the smoke benchmark gated against the committed
``benchmarks/BENCH_inference.json`` (>20% speedup regression fails).
"""

from .baselines import Accu, Catd, Counts, MajorityVote, Sstf, TruthFinder
from .core import (
    AccuracyModel,
    CopyingSLiMFast,
    EMConfig,
    EMLearner,
    ERMConfig,
    ERMLearner,
    OptimizerDecision,
    SLiMFast,
    estimate_average_accuracy,
    lasso_path,
)
from .featurize import FeatureCache, FeaturizerPipeline
from .fusion import (
    FeatureSpace,
    FeatureSpec,
    FusionDataset,
    FusionResult,
    Observation,
    object_value_accuracy,
    source_accuracy_error,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SLiMFast",
    "AccuracyModel",
    "ERMLearner",
    "ERMConfig",
    "EMLearner",
    "EMConfig",
    "OptimizerDecision",
    "CopyingSLiMFast",
    "estimate_average_accuracy",
    "lasso_path",
    "FusionDataset",
    "FusionResult",
    "FeatureSpace",
    "FeatureSpec",
    "FeaturizerPipeline",
    "FeatureCache",
    "Observation",
    "object_value_accuracy",
    "source_accuracy_error",
    "MajorityVote",
    "Counts",
    "Accu",
    "Catd",
    "Sstf",
    "TruthFinder",
]
