"""Registry of the data-fusion methods under evaluation.

Names follow the paper's Table 2 conventions:

========================  =================================================
Name                      Meaning
========================  =================================================
``slimfast``              full SLiMFast with the EM/ERM optimizer
``slimfast-erm``          SLiMFast always using ERM
``slimfast-em``           SLiMFast always using EM
``sources-erm``           no domain features, ERM
``sources-em``            no domain features, EM (discriminative Zhao et al.)
``counts``                Naive Bayes with ground-truth-counted accuracies
``accu``                  Dong et al. Bayesian fusion
``catd``                  Li et al. confidence-aware truth discovery
``sstf``                  Yin & Tan semi-supervised truth finding
``majority``              unweighted vote
``truthfinder``           Yin et al. iterative trust (extra comparator)
========================  =================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ..baselines import Accu, Catd, Counts, MajorityVote, Sstf, TruthFinder
from ..core.slimfast import SLiMFast
from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import ObjectId, Value

MethodRunner = Callable[[FusionDataset, Optional[Mapping[ObjectId, Value]]], FusionResult]


def _slimfast_runner(**kwargs: object) -> MethodRunner:
    def run(dataset, train_truth):
        return SLiMFast(**kwargs).fit_predict(dataset, train_truth)

    return run


def _baseline_runner(factory: Callable[[], object]) -> MethodRunner:
    def run(dataset, train_truth):
        return factory().fit_predict(dataset, train_truth)

    return run


_REGISTRY: Dict[str, Callable[[], MethodRunner]] = {
    "slimfast": lambda: _slimfast_runner(learner="auto"),
    "slimfast-erm": lambda: _slimfast_runner(learner="erm"),
    "slimfast-em": lambda: _slimfast_runner(learner="em"),
    "sources-erm": lambda: _slimfast_runner(learner="erm", use_features=False),
    "sources-em": lambda: _slimfast_runner(learner="em", use_features=False),
    "sources-auto": lambda: _slimfast_runner(learner="auto", use_features=False),
    "counts": lambda: _baseline_runner(Counts),
    "accu": lambda: _baseline_runner(Accu),
    "catd": lambda: _baseline_runner(Catd),
    "sstf": lambda: _baseline_runner(Sstf),
    "majority": lambda: _baseline_runner(MajorityVote),
    "truthfinder": lambda: _baseline_runner(TruthFinder),
}

#: The method lineup of paper Table 2, in column order.
TABLE2_METHODS: List[str] = [
    "slimfast",
    "slimfast-erm",
    "slimfast-em",
    "sources-erm",
    "sources-em",
    "counts",
    "accu",
    "catd",
    "sstf",
]

#: Methods with probabilistic accuracy estimates (paper Table 3).
TABLE3_METHODS: List[str] = [
    "slimfast",
    "sources-erm",
    "sources-em",
    "counts",
    "accu",
]


#: Feature-consuming SLiMFast variants and their facade arguments — the
#: methods a reliability featurizer can be attached to.
_FEATURIZABLE: Dict[str, Dict[str, object]] = {
    "slimfast": {"learner": "auto"},
    "slimfast-erm": {"learner": "erm"},
    "slimfast-em": {"learner": "em"},
}


def available_methods() -> List[str]:
    """All registered method names."""
    return sorted(_REGISTRY)


def get_method(name: str, featurizer: Optional[object] = None) -> MethodRunner:
    """Instantiate a fresh runner for ``name``.

    ``featurizer`` (a :class:`repro.featurize.FeaturizerPipeline`) is
    accepted by the feature-consuming SLiMFast variants and swaps their
    design matrix for data-derived reliability features.
    """
    if featurizer is not None:
        kwargs = _FEATURIZABLE.get(name)
        if kwargs is None:
            raise ValueError(
                f"method {name!r} does not consume a featurizer; "
                f"supported: {', '.join(sorted(_FEATURIZABLE))}"
            )
        return _slimfast_runner(featurizer=featurizer, **kwargs)
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}; available: {', '.join(available_methods())}"
        ) from None
