"""EM-versus-ERM synthetic sweeps (paper Example 6, Figures 4 and 5).

The paper probes the EM/ERM tradeoff on a 1000-source x 1000-object
synthetic instance, varying

* (a) the amount of ground truth (Figure 4a),
* (b) the observation density (Figure 4b),
* (c) the average source accuracy (Figure 4c),

with EM and ERM corresponding to the Sources-EM / Sources-ERM variants
(paper footnote 4).  Figure 5 summarizes the winner over the
(training data x accuracy x density) grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..data.synthetic import SyntheticConfig, generate
from ..fusion.metrics import object_value_accuracy


@dataclass
class SweepPoint:
    """EM and ERM accuracy at one sweep setting."""

    x: float
    em_accuracy: float
    erm_accuracy: float

    @property
    def winner(self) -> str:
        if abs(self.em_accuracy - self.erm_accuracy) < 1e-9:
            return "tie"
        return "em" if self.em_accuracy > self.erm_accuracy else "erm"


def _em_vs_erm(
    config: SyntheticConfig,
    train_fraction: float,
    seeds: Sequence[int],
    erm_intercept: bool = False,
    n_jobs: int = 1,
) -> Tuple[float, float]:
    """Seed-averaged (EM accuracy, ERM accuracy) for one configuration.

    ``erm_intercept`` adds a shared bias to the ERM accuracy model.  The
    paper's Equation 3 has none (sources with few labeled observations
    shrink toward accuracy 0.5); with the intercept they shrink toward
    the labeled population mean instead, which is how ERM stays
    competitive on very sparse instances.  Both variants are reported by
    the Figure 4 benchmarks.

    Each seed generates its own dataset, which is compiled once by a
    batched :class:`~repro.experiments.sweeps.SweepRunner`; the EM and ERM
    fits of that seed then share the encoding, candidate structure and
    label/clamp plans instead of re-deriving them per fit.  ``n_jobs``
    forwards to the runner, parallelizing each seed's EM/ERM pair across
    processes.
    """
    from .sweeps import FitSpec, SweepRunner

    em_scores: List[float] = []
    erm_scores: List[float] = []
    for seed in seeds:
        dataset = generate(config, seed=seed).dataset
        # Sparse parameterizations can push the computed fraction to a
        # degenerate boundary (figure4b clamps to 1.0 when the training-
        # observation budget exceeds the instance; tiny fractions round to
        # zero revealed objects, which ERM cannot fit).  split() rejects
        # both, so clamp to the nearest non-degenerate reveal count — the
        # same objects are revealed for every in-range fraction.
        n_labeled = len(dataset.ground_truth)
        n_train = min(max(int(round(train_fraction * n_labeled)), 1), n_labeled - 1)
        split = dataset.split(n_train / n_labeled, seed=seed)
        runner = SweepRunner(dataset, mode="batched", n_jobs=n_jobs)
        specs = [
            FitSpec(
                name=f"{learner}@seed={seed}",
                learner=learner,
                train_truth=split.train_truth,
                use_features=False,
                overrides={"intercept": erm_intercept} if learner == "erm" else {},
            )
            for learner in ("em", "erm")
        ]
        for fit, scores in zip(runner.run(specs), (em_scores, erm_scores)):
            accuracy = object_value_accuracy(
                fit.result.values, dataset.ground_truth, split.test_objects
            )
            scores.append(accuracy)
    return float(np.mean(em_scores)), float(np.mean(erm_scores))


def figure4a(
    train_fractions: Sequence[float] = (0.01, 0.10, 0.20, 0.40, 0.60),
    avg_accuracy: float = 0.7,
    density: float = 0.01,
    n_sources: int = 1000,
    n_objects: int = 1000,
    seeds: Sequence[int] = (0, 1, 2),
    erm_intercept: bool = False,
    n_jobs: int = 1,
) -> List[SweepPoint]:
    """Figure 4(a): accuracy vs training-data fraction."""
    config = SyntheticConfig(
        n_sources=n_sources,
        n_objects=n_objects,
        density=density,
        avg_accuracy=avg_accuracy,
        name="fig4a",
    )
    points = []
    for fraction in train_fractions:
        em, erm = _em_vs_erm(config, fraction, seeds, erm_intercept, n_jobs=n_jobs)
        points.append(SweepPoint(x=fraction, em_accuracy=em, erm_accuracy=erm))
    return points


def figure4b(
    densities: Sequence[float] = (0.005, 0.010, 0.015, 0.020),
    avg_accuracy: float = 0.6,
    train_observations: int = 400,
    n_sources: int = 1000,
    n_objects: int = 1000,
    seeds: Sequence[int] = (0, 1, 2),
    erm_intercept: bool = False,
    n_jobs: int = 1,
) -> List[SweepPoint]:
    """Figure 4(b): accuracy vs density at fixed ground-truth *observations*.

    The paper fixes training data at 400 source observations; the object
    fraction revealed therefore shrinks as density grows.
    """
    points = []
    for density in densities:
        config = SyntheticConfig(
            n_sources=n_sources,
            n_objects=n_objects,
            density=density,
            avg_accuracy=avg_accuracy,
            name="fig4b",
        )
        observations_per_object = max(n_sources * density, 1.0)
        fraction = min(train_observations / observations_per_object / n_objects, 1.0)
        em, erm = _em_vs_erm(config, fraction, seeds, erm_intercept, n_jobs=n_jobs)
        points.append(SweepPoint(x=density, em_accuracy=em, erm_accuracy=erm))
    return points


def figure4c(
    accuracies: Sequence[float] = (0.5, 0.6, 0.7, 0.8),
    density: float = 0.005,
    train_fraction: float = 0.05,
    n_sources: int = 1000,
    n_objects: int = 1000,
    seeds: Sequence[int] = (0, 1, 2),
    erm_intercept: bool = False,
    n_jobs: int = 1,
) -> List[SweepPoint]:
    """Figure 4(c): accuracy vs average source accuracy."""
    points = []
    for avg_accuracy in accuracies:
        config = SyntheticConfig(
            n_sources=n_sources,
            n_objects=n_objects,
            density=density,
            avg_accuracy=avg_accuracy,
            name="fig4c",
        )
        em, erm = _em_vs_erm(config, train_fraction, seeds, erm_intercept, n_jobs=n_jobs)
        points.append(SweepPoint(x=avg_accuracy, em_accuracy=em, erm_accuracy=erm))
    return points


@dataclass
class TradeoffCell:
    """One cell of the Figure 5 grid."""

    train_fraction: float
    avg_accuracy: float
    density: float
    winner: str
    em_accuracy: float
    erm_accuracy: float


def figure5_grid(
    train_fractions: Sequence[float] = (0.01, 0.20),
    accuracies: Sequence[float] = (0.55, 0.75),
    densities: Sequence[float] = (0.005, 0.02),
    n_sources: int = 400,
    n_objects: int = 400,
    seeds: Sequence[int] = (0, 1),
    tie_margin: float = 0.005,
    erm_intercept: bool = True,
    n_jobs: int = 1,
) -> List[TradeoffCell]:
    """Figure 5: the EM/ERM winner over the tradeoff grid.

    Cells within ``tie_margin`` accuracy report ``"-"`` (the paper's dash:
    the best algorithm varies).
    """
    cells = []
    for fraction in train_fractions:
        for accuracy in accuracies:
            for density in densities:
                config = SyntheticConfig(
                    n_sources=n_sources,
                    n_objects=n_objects,
                    density=density,
                    avg_accuracy=accuracy,
                    name="fig5",
                )
                em, erm = _em_vs_erm(config, fraction, seeds, erm_intercept, n_jobs=n_jobs)
                if abs(em - erm) <= tie_margin:
                    winner = "-"
                else:
                    winner = "em" if em > erm else "erm"
                cells.append(
                    TradeoffCell(
                        train_fraction=fraction,
                        avg_accuracy=accuracy,
                        density=density,
                        winner=winner,
                        em_accuracy=em,
                        erm_accuracy=erm,
                    )
                )
    return cells
