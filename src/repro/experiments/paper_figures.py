"""Drivers that regenerate the paper's evaluation figures (6-9).

Figure 4 and 5 live in :mod:`repro.experiments.synthetic_sweeps`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.copying import CopyingSLiMFast
from ..core.initialization import initialization_curve
from ..core.lasso import LassoPath, lasso_path
from ..core.slimfast import SLiMFast
from ..fusion.dataset import FusionDataset
from ..fusion.metrics import object_value_accuracy
from ..fusion.types import SourceId
from .reporting import format_table


# ----------------------------------------------------------------------
# Figures 6 and 9 — lasso paths
# ----------------------------------------------------------------------
@dataclass
class LassoReport:
    """A lasso path plus its rendered summary."""

    path: LassoPath
    text: str


def lasso_figure(dataset: FusionDataset, n_penalties: int = 25, top: int = 8) -> LassoReport:
    """Figures 6/9: feature-importance lasso path on a dataset.

    Reports the activation order (earliest = most predictive of source
    accuracy) and the final weights of the top features.
    """
    path = lasso_path(dataset, n_penalties=n_penalties)
    order = path.activation_order()
    final = path.final_weights()
    headers = ["Activation rank", "Feature", "Final weight"]
    rows = [[rank + 1, label, final.get(label, 0.0)] for rank, label in enumerate(order[:top])]
    text = format_table(
        headers, rows, title=f"Lasso path on {dataset.name}: most predictive features"
    )
    return LassoReport(path=path, text=text)


# ----------------------------------------------------------------------
# Figure 7 — source-quality initialization
# ----------------------------------------------------------------------
def figure7(
    datasets: Mapping[str, FusionDataset],
    fractions: Sequence[float] = (0.25, 0.40, 0.50, 0.75),
    seeds: Sequence[int] = (0, 1, 2),
) -> Tuple[Dict[str, Dict[float, float]], str]:
    """Figure 7: unseen-source accuracy error vs fraction of sources used."""
    curves: Dict[str, Dict[float, float]] = {}
    for name, dataset in datasets.items():
        curves[name] = initialization_curve(dataset, fractions, seeds)
    headers = ["Sources used (%)"] + list(curves)
    rows: List[List[object]] = []
    for fraction in fractions:
        rows.append([f"{fraction * 100:g}"] + [curves[name][fraction] for name in curves])
    text = format_table(headers, rows, title="Figure 7: accuracy error for unseen sources")
    return curves, text


# ----------------------------------------------------------------------
# Figure 8 — copying detection
# ----------------------------------------------------------------------
@dataclass
class CopyingReport:
    """Copying-extension comparison plus the top copying pairs."""

    accuracy_with: Dict[float, float]
    accuracy_without: Dict[float, float]
    top_pairs: List[Tuple[SourceId, SourceId, float]]
    text: str


def figure8(
    dataset: FusionDataset,
    fractions: Sequence[float] = (0.01, 0.05, 0.10, 0.20),
    seeds: Sequence[int] = (0, 1),
    top: int = 6,
    **copying_kwargs: object,
) -> CopyingReport:
    """Figure 8: SLiMFast with vs without copying features.

    Both variants run without domain features ("for simplicity, no
    domain-specific features were used"), matching the paper's setup.
    """
    with_copy: Dict[float, float] = {}
    without: Dict[float, float] = {}
    last_model: Optional[CopyingSLiMFast] = None
    for fraction in fractions:
        scores_with, scores_without = [], []
        for seed in seeds:
            split = dataset.split(fraction, seed=seed)
            copying = CopyingSLiMFast(use_features=False, **copying_kwargs)
            copying.fit(dataset, split.train_truth)
            result = copying.predict()
            scores_with.append(
                object_value_accuracy(result.values, dataset.ground_truth, split.test_objects)
            )
            last_model = copying
            plain = SLiMFast(learner="erm", use_features=False).fit_predict(
                dataset, split.train_truth
            )
            scores_without.append(
                object_value_accuracy(plain.values, dataset.ground_truth, split.test_objects)
            )
        with_copy[fraction] = float(np.mean(scores_with))
        without[fraction] = float(np.mean(scores_without))

    pair_weights = last_model.pair_weights() if last_model is not None else {}
    top_pairs = sorted(
        ((a, b, w) for (a, b), w in pair_weights.items()),
        key=lambda item: -item[2],
    )[:top]

    headers = ["TD (%)", "w. Copying", "w.o. Copying"]
    rows = [[f"{f * 100:g}", with_copy[f], without[f]] for f in fractions]
    blocks = [format_table(headers, rows, title="Figure 8: copying detection")]
    pair_rows = [[a, b, w] for a, b, w in top_pairs]
    blocks.append(
        format_table(
            ["Source 1", "Source 2", "Copying weight"],
            pair_rows,
            title="Examples of correlated sources",
        )
    )
    return CopyingReport(
        accuracy_with=with_copy,
        accuracy_without=without,
        top_pairs=top_pairs,
        text="\n\n".join(blocks),
    )
