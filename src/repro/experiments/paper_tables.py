"""Drivers that regenerate the paper's evaluation tables (1-6).

Each function returns structured data plus a ``text`` rendering; the
benchmark modules call these with reduced-scale simulator settings and
print the same rows the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.optimizer import decide
from ..core.slimfast import SLiMFast
from ..fusion.dataset import FusionDataset
from ..fusion.features import build_design_matrix
from ..fusion.metrics import object_value_accuracy
from .harness import CellKey, CellStats, RunResult, aggregate, sweep
from .methods import TABLE2_METHODS, TABLE3_METHODS
from .reporting import accuracy_matrix, format_table

#: The training-data fractions of the paper's evaluation (Section 5.1).
PAPER_FRACTIONS: Tuple[float, ...] = (0.001, 0.01, 0.05, 0.10, 0.20)

DatasetMap = Mapping[str, FusionDataset]


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------
def table1(datasets: DatasetMap) -> str:
    """Render Table 1 for the given datasets."""
    names = list(datasets)
    all_stats = {name: datasets[name].stats() for name in names}
    parameter_rows = [stats.rows() for stats in all_stats.values()]
    headers = ["Parameter"] + names
    rows = []
    for i, (label, _) in enumerate(parameter_rows[0]):
        rows.append([label] + [parameter_rows[j][i][1] for j in range(len(names))])
    return format_table(headers, rows, title="Table 1: dataset parameters")


# ----------------------------------------------------------------------
# Tables 2, 3 and 5 — one shared sweep
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """Shared sweep output feeding Tables 2, 3 and 5."""

    results: List[RunResult]
    cells: Dict[CellKey, CellStats]
    fractions: Tuple[float, ...]
    methods: Tuple[str, ...]
    datasets: Tuple[str, ...]

    def panel(self, metric: str) -> str:
        blocks = [
            accuracy_matrix(self.cells, dataset, self.methods, self.fractions, metric)
            for dataset in self.datasets
        ]
        return "\n\n".join(blocks)


def run_sweep(
    datasets: DatasetMap,
    methods: Sequence[str] = TABLE2_METHODS,
    fractions: Sequence[float] = PAPER_FRACTIONS,
    seeds: Sequence[int] = (0, 1, 2),
    mode: str = "batched",
) -> SweepReport:
    """Run the full evaluation sweep once; reuse for Tables 2/3/5.

    ``mode="batched"`` (default) shares one compiled encoding and
    warm-start state across the SLiMFast-family fits — equivalent
    accuracies, much faster.  Runtime *tables* (Table 5) should pass
    ``mode="isolated"`` so ``runtime_seconds`` keeps the paper's
    independent cold-fit semantics instead of warm amortized timings.
    """
    results: List[RunResult] = []
    for dataset in datasets.values():
        results.extend(sweep(dataset, methods, fractions, seeds, mode=mode))
    return SweepReport(
        results=results,
        cells=aggregate(results),
        fractions=tuple(fractions),
        methods=tuple(methods),
        datasets=tuple(d.name for d in datasets.values()),
    )


def table2(report: SweepReport) -> str:
    """Table 2 Panel A: object-value accuracy per dataset/method/fraction."""
    return "Table 2 (Panel A): object-value accuracy\n\n" + report.panel("object_accuracy")


def table2_panel_b(report: SweepReport, reference: str = "slimfast") -> str:
    """Table 2 Panel B: average relative accuracy difference vs SLiMFast."""
    headers = ["TD (%)", reference] + [m for m in report.methods if m != reference]
    rows: List[List[object]] = []
    for fraction in report.fractions:
        ref_scores = [
            report.cells[CellKey(d, reference, fraction)].object_accuracy
            for d in report.datasets
            if CellKey(d, reference, fraction) in report.cells
        ]
        ref_avg = float(np.mean(ref_scores))
        row: List[object] = [f"{fraction * 100:g}", ref_avg]
        for method in report.methods:
            if method == reference:
                continue
            diffs = []
            for dataset in report.datasets:
                ref = report.cells.get(CellKey(dataset, reference, fraction))
                other = report.cells.get(CellKey(dataset, method, fraction))
                if ref is None or other is None:
                    continue
                diffs.append(
                    100.0
                    * (other.object_accuracy - ref.object_accuracy)
                    / max(ref.object_accuracy, 1e-9)
                )
            row.append(f"{np.mean(diffs):+.2f}%" if diffs else "-")
        rows.append(row)
    return format_table(headers, rows, title="Table 2 (Panel B): relative difference vs SLiMFast")


def table3(report: SweepReport, methods: Sequence[str] = TABLE3_METHODS) -> str:
    """Table 3: weighted source-accuracy estimation error.

    Only methods with probabilistic semantics appear (CATD and SSTF are
    omitted, as in the paper).
    """
    blocks = []
    for dataset in report.datasets:
        blocks.append(
            accuracy_matrix(report.cells, dataset, list(methods), report.fractions, "source_error")
        )
    return "Table 3: source-accuracy estimation error\n\n" + "\n\n".join(blocks)


def table5(report: SweepReport) -> str:
    """Table 5: end-to-end wall-clock runtime per method.

    Reports whatever protocol the sweep ran under; when the report came
    from a batched sweep, the rendered table says so explicitly — batched
    SLiMFast timings share one compile and warm-start state, which is not
    the paper's independent cold-fit protocol (pass
    ``run_sweep(..., mode="isolated")`` for that, as the Table 5 bench
    does).
    """
    caveat = ""
    if any(r.diagnostics.get("sweep_mode") == "batched" for r in report.results):
        caveat = (
            "\n\nNote: SLiMFast-family rows were timed by the batched sweep "
            "engine (shared compile, warm starts); rerun run_sweep(..., "
            'mode="isolated") for independent cold-fit runtimes.'
        )
    return "Table 5: wall-clock runtimes (seconds)\n\n" + report.panel("runtime_seconds") + caveat


# ----------------------------------------------------------------------
# Table 4 — optimizer evaluation
# ----------------------------------------------------------------------
@dataclass
class OptimizerRow:
    """One row of Table 4."""

    dataset: str
    train_fraction: float
    decision: str
    correct: bool
    erm_accuracy: float
    em_accuracy: float

    @property
    def relative_difference(self) -> float:
        low = min(self.erm_accuracy, self.em_accuracy)
        return abs(self.erm_accuracy - self.em_accuracy) / max(low, 1e-9) * 100.0


def table4(
    datasets: DatasetMap,
    fractions: Sequence[float] = PAPER_FRACTIONS,
    seeds: Sequence[int] = (0, 1, 2),
    tau: float = 0.1,
    tie_margin: float = 0.003,
) -> Tuple[List[OptimizerRow], str]:
    """Table 4: does the optimizer pick the better of EM and ERM?

    A decision is "correct" when it selects the seed-averaged winner or
    when the two are within ``tie_margin``.
    """
    rows: List[OptimizerRow] = []
    for dataset in datasets.values():
        design, _ = build_design_matrix(dataset)
        for fraction in fractions:
            erm_scores, em_scores, decisions = [], [], []
            for seed in seeds:
                split = dataset.split(fraction, seed=seed)
                decisions.append(
                    decide(dataset, split.train_truth, design.shape[1], tau=tau).algorithm
                )
                for learner, scores in (("erm", erm_scores), ("em", em_scores)):
                    result = SLiMFast(learner=learner).fit_predict(dataset, split.train_truth)
                    scores.append(
                        object_value_accuracy(
                            result.values, dataset.ground_truth, split.test_objects
                        )
                    )
            erm_avg, em_avg = float(np.mean(erm_scores)), float(np.mean(em_scores))
            decision = max(set(decisions), key=decisions.count)
            if abs(erm_avg - em_avg) <= tie_margin:
                correct = True
            else:
                actual_winner = "erm" if erm_avg > em_avg else "em"
                correct = decision == actual_winner
            rows.append(
                OptimizerRow(
                    dataset=dataset.name,
                    train_fraction=fraction,
                    decision=decision,
                    correct=correct,
                    erm_accuracy=erm_avg,
                    em_accuracy=em_avg,
                )
            )
    headers = ["Dataset", "TD (%)", "Decision", "Correct", "Diff (%)", "ERM", "EM"]
    table_rows = [
        [
            r.dataset,
            f"{r.train_fraction * 100:g}",
            r.decision.upper(),
            "Y" if r.correct else "N",
            f"{r.relative_difference:.1f}",
            r.erm_accuracy,
            r.em_accuracy,
        ]
        for r in rows
    ]
    text = format_table(headers, table_rows, title="Table 4: optimizer evaluation")
    return rows, text


# ----------------------------------------------------------------------
# Table 6 — end-to-end vs learning-and-inference-only runtime
# ----------------------------------------------------------------------
def table6(
    dataset: FusionDataset,
    fractions: Sequence[float] = PAPER_FRACTIONS,
    variants: Sequence[Tuple[str, Callable[[], SLiMFast]]] = (
        ("slimfast", lambda: SLiMFast()),
        ("sources-erm", lambda: SLiMFast(learner="erm", use_features=False)),
        ("sources-em", lambda: SLiMFast(learner="em", use_features=False)),
    ),
    seed: int = 0,
) -> str:
    """Table 6: compilation overhead vs learning-and-inference time."""
    headers = ["TD (%)"]
    for name, _ in variants:
        headers += [f"{name} e2e", f"{name} learn+inf"]
    rows: List[List[object]] = []
    for fraction in fractions:
        split = dataset.split(fraction, seed=seed)
        row: List[object] = [f"{fraction * 100:g}"]
        for _, factory in variants:
            fuser = factory()
            started = time.perf_counter()
            fuser.fit_predict(dataset, split.train_truth)
            total = time.perf_counter() - started
            learn_inf = fuser.timings_.get("learning", 0.0) + fuser.timings_.get("inference", 0.0)
            row += [total, learn_inf]
        rows.append(row)
    return format_table(
        headers, rows, title=f"Table 6: runtime breakdown on {dataset.name} (seconds)"
    )
