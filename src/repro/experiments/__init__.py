"""Experiment harness and drivers for every paper table and figure."""

from .harness import (
    CellKey,
    CellStats,
    RunResult,
    aggregate,
    best_method_per_cell,
    run_method,
    sweep,
)
from .methods import TABLE2_METHODS, TABLE3_METHODS, available_methods, get_method
from .paper_figures import CopyingReport, LassoReport, figure7, figure8, lasso_figure
from .paper_tables import (
    PAPER_FRACTIONS,
    OptimizerRow,
    SweepReport,
    run_sweep,
    table1,
    table2,
    table2_panel_b,
    table3,
    table4,
    table5,
    table6,
)
from .reporting import accuracy_matrix, format_table, series
from .sweeps import (
    FitSpec,
    SweepFitResult,
    SweepRunner,
    leave_one_out_specs,
)
from .synthetic_sweeps import (
    SweepPoint,
    TradeoffCell,
    figure4a,
    figure4b,
    figure4c,
    figure5_grid,
)

__all__ = [
    "run_method",
    "sweep",
    "aggregate",
    "best_method_per_cell",
    "RunResult",
    "CellKey",
    "CellStats",
    "available_methods",
    "get_method",
    "TABLE2_METHODS",
    "TABLE3_METHODS",
    "PAPER_FRACTIONS",
    "SweepReport",
    "run_sweep",
    "table1",
    "table2",
    "table2_panel_b",
    "table3",
    "table4",
    "table5",
    "table6",
    "OptimizerRow",
    "lasso_figure",
    "LassoReport",
    "figure7",
    "figure8",
    "CopyingReport",
    "figure4a",
    "figure4b",
    "figure4c",
    "figure5_grid",
    "SweepPoint",
    "TradeoffCell",
    "accuracy_matrix",
    "format_table",
    "series",
    "SweepRunner",
    "FitSpec",
    "SweepFitResult",
    "leave_one_out_specs",
]
