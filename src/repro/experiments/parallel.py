"""Cross-process plumbing for the parallel sweep engine.

:class:`~repro.experiments.sweeps.SweepRunner` keeps its one-compile-per-
sweep economics across process boundaries by shipping the compiled state
to each worker exactly once (through the pool initializer) and fanning the
independent fits out over the pool.  This module holds the transport
pieces, which are deliberately generic:

* :func:`resolve_n_jobs` / :func:`chunk_indices` — deterministic worker
  count and contiguous, balanced spec chunking.  Chunk membership depends
  only on ``(n_specs, n_jobs)``, never on scheduling order, which is half
  of the engine's determinism story (the other half is that warm-start
  donors are chosen *within* a chunk only).
* :class:`SharedArrayPack` / :func:`attach_shared_arrays` — one
  ``multiprocessing.shared_memory`` block carrying many named arrays, for
  start methods that would otherwise pickle the large index/design arrays
  into every worker (``spawn``/``forkserver``; under ``fork`` the payload
  is inherited copy-on-write and sharing buys nothing).
* :class:`SharedArrayRef` — the picklable marker left in an exported state
  dict where a shared array was extracted.
* :class:`ShardStatPool` — a persistent worker pool computing per-shard
  E-step sufficient statistics for a *single* sharded EM fit
  (:mod:`repro.fusion.sharding`): shard arrays ship to each worker once
  through the initializer (via shared memory when the start method would
  pickle them), and every round only the trust vector crosses the
  process boundary.  Partials reduce in ascending shard index, matching
  the serial sharded path exactly.

Workers receive read-only views: every attached array has its
``writeable`` flag cleared, so a worker that accidentally mutates shared
state fails loudly instead of corrupting its siblings.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

#: Arrays at least this large (bytes) are routed through shared memory
#: when sharing is active; smaller ones ride the pickle stream, where the
#: fixed cost of a segment entry would exceed the copy it avoids.
SHARED_ARRAY_MIN_BYTES = 1 << 16


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` setting to a concrete worker count.

    ``None`` means one worker per available CPU; explicit values must be
    positive integers (there is no sklearn-style ``-1`` spelling — pass
    ``None``).
    """
    if n_jobs is None:
        return max(os.cpu_count() or 1, 1)
    count = int(n_jobs)
    if count < 1:
        raise ValueError(f"n_jobs must be a positive integer or None, got {n_jobs!r}")
    return count


def chunk_indices(n_items: int, n_chunks: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous ranges.

    Chunks are balanced to within one item and returned in order; empty
    chunks are dropped.  Contiguity matters: the sweep engine hands each
    chunk to one worker task, and nearest-config warm-start donors are
    drawn from the chunk's own completed fits, so specs that were adjacent
    in the caller's sweep order stay adjacent in a worker.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    bounds = np.linspace(0, n_items, min(n_chunks, max(n_items, 1)) + 1).astype(int)
    return [
        range(int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]


def sharing_is_worthwhile() -> bool:
    """Whether the current start method pickles worker arguments.

    Under ``fork`` the initializer payload is inherited copy-on-write, so
    shared-memory indirection only adds bookkeeping; ``spawn`` and
    ``forkserver`` pickle the payload per worker, where one shared segment
    replaces ``n_jobs`` copies of the large arrays.
    """
    return multiprocessing.get_start_method(allow_none=False) != "fork"


@dataclass(frozen=True)
class SharedArrayRef:
    """Placeholder for an array extracted into a :class:`SharedArrayPack`."""

    key: str


class SharedArrayPack:
    """Many named arrays packed into one shared-memory segment (owner side).

    The owning process builds the pack, ships :attr:`descriptor` (a small
    picklable dict) to workers, and must call :meth:`release` once the pool
    has shut down.  Workers attach with :func:`attach_shared_arrays`.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        from multiprocessing import shared_memory

        entries: List[Tuple[str, str, tuple, int]] = []
        offset = 0
        contiguous: Dict[str, np.ndarray] = {}
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[key] = array
            offset = (offset + 7) & ~7  # 8-byte alignment per array
            entries.append((key, array.dtype.str, array.shape, offset))
            offset += array.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for key, dtype, shape, start in entries:
            view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=start)
            view[...] = contiguous[key]
        self.descriptor = {"segment": self._shm.name, "entries": entries}

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


def attach_shared_arrays(descriptor: dict):
    """Attach to a :class:`SharedArrayPack` segment (worker side).

    Returns ``(arrays, segment)``: read-only views keyed like the owner's
    mapping, plus the ``SharedMemory`` handle the caller must keep
    referenced for as long as the views are in use.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=descriptor["segment"])
    # No attach-side resource_tracker bookkeeping: parent and workers share
    # one tracker whose per-type cache is a *set*, so the worker's attach
    # registration dedups against the owner's and the owner's unlink-time
    # unregister balances both.  An explicit worker-side unregister would
    # double-remove and crash the tracker at interpreter exit.
    arrays: Dict[str, np.ndarray] = {}
    for key, dtype, shape, offset in descriptor["entries"]:
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        arrays[key] = view
    return arrays, segment


def extract_shared(
    state: Mapping[str, np.ndarray],
    pool: Dict[str, np.ndarray],
    prefix: str,
    min_bytes: int = SHARED_ARRAY_MIN_BYTES,
) -> Dict[str, object]:
    """Move large arrays of ``state`` into ``pool``, leaving refs behind.

    Non-array values and small arrays pass through unchanged; arrays of at
    least ``min_bytes`` are added to ``pool`` under ``"{prefix}:{name}"``
    and replaced by a :class:`SharedArrayRef`.  The caller packs ``pool``
    into one :class:`SharedArrayPack` at the end.
    """
    out: Dict[str, object] = {}
    for name, value in state.items():
        if isinstance(value, np.ndarray) and value.nbytes >= min_bytes:
            key = f"{prefix}:{name}"
            pool[key] = value
            out[name] = SharedArrayRef(key)
        else:
            out[name] = value
    return out


def resolve_shared(state: Mapping[str, object], arrays: Mapping[str, np.ndarray]) -> Dict:
    """Inverse of :func:`extract_shared`: swap refs back for attached views."""
    return {
        name: arrays[value.key] if isinstance(value, SharedArrayRef) else value
        for name, value in state.items()
    }


# ----------------------------------------------------------------------
# Shard E-step fan-out (single-fit parallelism)
# ----------------------------------------------------------------------
# Worker-process globals, installed once by the pool initializer.
_SHARD_STATE: Optional[tuple] = None


def _init_shard_worker(
    shard_states: List[Dict[str, object]],
    blocked_per_shard: List[np.ndarray],
    n_sources: int,
    descriptor: Optional[dict],
) -> None:
    """Pool initializer: rebuild this worker's shard table once."""
    global _SHARD_STATE
    from ..fusion.sharding import StructureShard

    segment = None
    if descriptor is not None:
        arrays, segment = attach_shared_arrays(descriptor)
        shard_states = [resolve_shared(state, arrays) for state in shard_states]
    shards = [StructureShard.from_state(state) for state in shard_states]
    # The segment handle must stay referenced while the views are alive.
    _SHARD_STATE = (shards, blocked_per_shard, n_sources, segment)


def _shard_worker_stats(shard_idx: int, trust: np.ndarray):
    """Compute one shard's (totals, mass) partial statistics."""
    from ..fusion.sharding import shard_expected_stats

    shards, blocked, n_sources, _ = _SHARD_STATE
    return shard_expected_stats(shards[shard_idx], trust, n_sources, blocked[shard_idx])


class ShardStatPool:
    """Process pool evaluating shard E-steps for one sharded EM fit.

    Built once per fit from the fit's
    :class:`~repro.fusion.sharding.StructureShard` list: the shard arrays
    ship to every worker exactly once through the pool initializer
    (routed through one :class:`SharedArrayPack` segment when the start
    method pickles initializer arguments), so each EM round only sends
    the ``(n_sources,)`` trust vector and receives two ``(n_sources,)``
    partial-statistic vectors per shard.  :meth:`stats` reduces partials
    in ascending shard index — the same order as the in-process
    :func:`repro.fusion.sharding.sharded_correctness_stats` — so process
    fan-out never changes the fit.  Call :meth:`shutdown` (or use as a
    context manager) to release the pool and any shared segment.
    """

    def __init__(
        self,
        shards: List,
        blocked_per_shard: List[np.ndarray],
        n_sources: int,
        n_jobs: Optional[int] = None,
    ) -> None:
        from concurrent.futures import ProcessPoolExecutor

        self._n_shards = len(shards)
        self._n_sources = int(n_sources)
        workers = min(resolve_n_jobs(n_jobs), max(self._n_shards, 1))
        states = [shard.to_state() for shard in shards]
        self._pack: Optional[SharedArrayPack] = None
        descriptor = None
        if sharing_is_worthwhile():
            pool_arrays: Dict[str, np.ndarray] = {}
            states = [
                extract_shared(state, pool_arrays, f"shard{i}")
                for i, state in enumerate(states)
            ]
            if pool_arrays:
                self._pack = SharedArrayPack(pool_arrays)
                descriptor = self._pack.descriptor
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_shard_worker,
            initargs=(states, list(blocked_per_shard), self._n_sources, descriptor),
        )

    def stats(self, trust: np.ndarray):
        """Fan one round's shard E-steps out; return summed (totals, mass)."""
        futures = [
            self._executor.submit(_shard_worker_stats, i, trust)
            for i in range(self._n_shards)
        ]
        totals = np.zeros(self._n_sources)
        mass = np.zeros(self._n_sources)
        for future in futures:  # ascending shard index, not completion order
            shard_totals, shard_mass = future.result()
            totals += shard_totals
            mass += shard_mass
        return totals, mass

    def shutdown(self) -> None:
        """Release the pool and any shared-memory segment (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._pack is not None:
            self._pack.release()
            self._pack = None

    def __enter__(self) -> "ShardStatPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
