"""Plain-text rendering of experiment results in the paper's table shapes."""

from __future__ import annotations

from typing import List, Mapping, Sequence

from .harness import CellKey, CellStats


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Monospace table with per-column width fitting."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        (
            max(len(str(headers[i])), *(len(row[i]) for row in str_rows))
            if str_rows
            else len(str(headers[i]))
        )
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def accuracy_matrix(
    cells: Mapping[CellKey, CellStats],
    dataset: str,
    methods: Sequence[str],
    fractions: Sequence[float],
    metric: str = "object_accuracy",
) -> str:
    """Render one dataset block of Table 2/3/5.

    ``metric`` selects ``object_accuracy``, ``source_error`` or
    ``runtime_seconds``.
    """
    headers = ["TD (%)"] + list(methods)
    rows: List[List[object]] = []
    for fraction in fractions:
        row: List[object] = [f"{fraction * 100:g}"]
        for method in methods:
            stats = cells.get(CellKey(dataset, method, fraction))
            row.append(getattr(stats, metric) if stats is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=f"{dataset} — {metric}")


def series(points: Mapping[float, float], x_label: str, y_label: str, title: str = "") -> str:
    """Render an (x, y) series — one paper figure curve — as a table."""
    headers = [x_label, y_label]
    rows = [[f"{x:g}", y] for x, y in sorted(points.items())]
    return format_table(headers, rows, title=title)
