"""Experiment harness: run methods over datasets with the paper's protocol.

The protocol (Section 5.1, "Evaluation Methodology"):

* ground truth for ``train_fraction`` of the objects is revealed at random;
* the method fuses the full dataset using the revealed labels;
* object-value accuracy is measured on the *test* objects only;
* source-accuracy error is measured against empirical accuracies computed
  from all ground truth;
* every configuration is repeated over several seeds and averaged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..data.scenarios import Scenario
from ..fusion.dataset import FusionDataset
from ..fusion.metrics import dataset_source_accuracy_error
from ..fusion.types import ObjectId, Value
from .methods import get_method


@dataclass
class RunResult:
    """Outcome of one (method, dataset, fraction, seed) run."""

    method: str
    dataset: str
    train_fraction: float
    seed: int
    object_accuracy: float
    source_error: float  # nan when the method has no accuracy estimates
    runtime_seconds: float
    diagnostics: Dict[str, object] = field(default_factory=dict)


def run_method(
    dataset: FusionDataset,
    method: str,
    train_fraction: float,
    seed: int = 0,
) -> RunResult:
    """Run one method once under the paper's protocol."""
    split = dataset.split(train_fraction, seed=seed)
    runner = get_method(method)
    started = time.perf_counter()
    result = runner(dataset, split.train_truth)
    runtime = time.perf_counter() - started

    # Score through the array backing: SLiMFast results already carry it,
    # dict-backed baselines are promoted once so the accuracy comparison
    # runs as a value-code reduction instead of a per-object dict scan.
    result.attach_dataset(dataset)
    accuracy = result.accuracy(dataset, list(split.test_objects))
    if result.source_accuracies is not None:
        source_error = dataset_source_accuracy_error(dataset, result.source_accuracies)
    else:
        source_error = float("nan")
    return RunResult(
        method=method,
        dataset=dataset.name,
        train_fraction=train_fraction,
        seed=seed,
        object_accuracy=accuracy,
        source_error=source_error,
        runtime_seconds=runtime,
        diagnostics=dict(result.diagnostics),
    )


def sweep(
    dataset: FusionDataset,
    methods: Sequence[str],
    train_fractions: Sequence[float],
    seeds: Sequence[int] = (0, 1, 2),
    mode: str = "batched",
    n_jobs: int = 1,
    featurizer: Optional[object] = None,
) -> List[RunResult]:
    """Full sweep: every method x fraction x seed.

    SLiMFast-family methods run through the batched
    :class:`~repro.experiments.sweeps.SweepRunner` by default — one dataset
    compile shared by every (fraction, seed) fit, with warm-start handoff
    between nearby configurations, fanned out over ``n_jobs`` worker
    processes when requested (``None`` = one per CPU; parallel results
    equal serial ones at the sweep contract tolerances).  Baselines (and
    every method under ``mode="isolated"``) keep the original per-fit
    :func:`run_method` path, whose equivalence to the batched path is
    pinned in ``tests/experiments/test_sweeps.py``.

    ``featurizer`` (a :class:`repro.featurize.FeaturizerPipeline`) swaps
    the feature-consuming methods' design matrices for data-derived
    reliability features; the runner computes that design once per sweep.
    Sources-* variants and baselines ignore it.
    """
    from .sweeps import METHOD_SPECS, SWEEP_MODES, FitSpec, SweepRunner

    if mode not in SWEEP_MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {SWEEP_MODES}")
    batched = mode == "batched"
    # One pass to lay out the grid: sweep-able combos become FitSpecs (run
    # in one possibly-parallel batch below), baselines keep run_method.
    plan: List[tuple] = []  # ("baseline", ...) or ("spec", spec_index, split)
    specs = []
    splits = []
    for fraction in train_fractions:
        for method in methods:
            for seed in seeds:
                if not batched or method not in METHOD_SPECS:
                    plan.append(("baseline", method, fraction, seed))
                    continue
                split = dataset.split(fraction, seed=seed)
                uses_features = METHOD_SPECS[method][1]
                specs.append(
                    FitSpec.from_method(
                        name=f"{method}@{fraction}#{seed}",
                        method=method,
                        train_truth=split.train_truth,
                        featurizer=featurizer if uses_features else None,
                    )
                )
                splits.append(split)
                plan.append(("spec", len(specs) - 1, method, fraction, seed))

    fits = SweepRunner(dataset, mode="batched", n_jobs=n_jobs).run(specs) if specs else []

    results: List[RunResult] = []
    for entry in plan:
        if entry[0] == "baseline":
            _, method, fraction, seed = entry
            results.append(run_method(dataset, method, fraction, seed))
            continue
        _, index, method, fraction, seed = entry
        fit, split = fits[index], splits[index]
        result = fit.result
        result.attach_dataset(dataset)
        accuracy = result.accuracy(dataset, list(split.test_objects))
        estimated = result.source_accuracies
        if estimated is not None:
            source_error = dataset_source_accuracy_error(dataset, estimated)
        else:
            source_error = float("nan")
        results.append(
            RunResult(
                method=method,
                dataset=dataset.name,
                train_fraction=fraction,
                seed=seed,
                object_accuracy=accuracy,
                source_error=source_error,
                runtime_seconds=fit.runtime_seconds,
                diagnostics=dict(result.diagnostics),
            )
        )
    return results


@dataclass(frozen=True)
class CellKey:
    """Aggregation key: one cell of a paper table."""

    dataset: str
    method: str
    train_fraction: float


@dataclass
class CellStats:
    """Seed-averaged statistics for a table cell."""

    object_accuracy: float
    source_error: float
    runtime_seconds: float
    n_runs: int


def aggregate(results: Iterable[RunResult]) -> Dict[CellKey, CellStats]:
    """Average results over seeds per (dataset, method, fraction) cell."""
    grouped: Dict[CellKey, List[RunResult]] = {}
    for result in results:
        key = CellKey(result.dataset, result.method, result.train_fraction)
        grouped.setdefault(key, []).append(result)
    cells: Dict[CellKey, CellStats] = {}
    for key, runs in grouped.items():
        accuracies = [r.object_accuracy for r in runs]
        errors = [r.source_error for r in runs if not np.isnan(r.source_error)]
        runtimes = [r.runtime_seconds for r in runs]
        cells[key] = CellStats(
            object_accuracy=float(np.mean(accuracies)),
            source_error=float(np.mean(errors)) if errors else float("nan"),
            runtime_seconds=float(np.mean(runtimes)),
            n_runs=len(runs),
        )
    return cells


def best_method_per_cell(
    cells: Dict[CellKey, CellStats],
) -> Dict[tuple, str]:
    """For each (dataset, fraction), the method with the best accuracy."""
    best: Dict[tuple, tuple] = {}
    for key, stats in cells.items():
        group = (key.dataset, key.train_fraction)
        if group not in best or stats.object_accuracy > best[group][1]:
            best[group] = (key.method, stats.object_accuracy)
    return {group: method for group, (method, _) in best.items()}


# ----------------------------------------------------------------------
# Scenario replay driver (drifting / adversarial / open-world streams)
# ----------------------------------------------------------------------

#: Streaming arms understood by :func:`scenario` and their trust policy.
SCENARIO_STREAM_METHODS = ("stream-flat", "stream-decayed", "stream-windowed", "stream-refit")

#: Batch arms and the registry method each one runs on the accumulated stream.
SCENARIO_BATCH_METHODS: Dict[str, str] = {"batch-em": "slimfast", "majority": "majority"}


@dataclass
class ScenarioSeries:
    """One method's trajectory through a scenario replay.

    ``accuracy[i]`` is MAP accuracy over the held-out objects of the
    trailing evaluation window at checkpoint ``steps[i]``;
    ``trust_error[i]`` is the mean absolute gap between estimated and
    *current* true source accuracies (NaN when the method estimates
    none).  ``final_accuracy`` scores every held-out object of the whole
    stream at the end.
    """

    method: str
    steps: List[int]
    times: List[float]
    accuracy: List[float]
    trust_error: List[float]
    final_accuracy: float
    runtime_seconds: float

    def tail(self) -> Dict[str, float]:
        """The last checkpoint's numbers (the post-drift regime)."""
        return {
            "accuracy": self.accuracy[-1] if self.accuracy else float("nan"),
            "trust_error": self.trust_error[-1] if self.trust_error else float("nan"),
        }


@dataclass
class ScenarioReport:
    """Figure-style accuracy-vs-baselines report for one scenario replay."""

    scenario: str
    series: Dict[str, ScenarioSeries]
    eval_window: int
    n_steps: int
    n_observations: int

    def best(self) -> str:
        """Method with the best final held-out accuracy."""
        return max(self.series.values(), key=lambda s: s.final_accuracy).method

    def table(self) -> str:
        """Render the summary comparison as a fixed-width table."""
        from .reporting import format_table

        rows = []
        for name in self.series:
            s = self.series[name]
            tail = s.tail()
            rows.append(
                [
                    name,
                    f"{s.final_accuracy:.3f}",
                    f"{tail['accuracy']:.3f}",
                    f"{tail['trust_error']:.3f}",
                    f"{s.runtime_seconds:.2f}",
                ]
            )
        return format_table(
            ["method", "final acc", "tail acc", "tail trust err", "seconds"],
            rows,
            title=f"Scenario '{self.scenario}' ({self.n_steps} steps, "
            f"{self.n_observations} observations, window={self.eval_window})",
        )


def _value_accuracy(
    value_of: Callable[[ObjectId], Optional[Value]],
    truth: Dict[ObjectId, Value],
    objects: Sequence[ObjectId],
) -> float:
    if not objects:
        return float("nan")
    correct = sum(1 for obj in objects if value_of(obj) == truth[obj])
    return correct / len(objects)


def _trust_error(estimated: Optional[Dict], scn: Scenario, step: int) -> float:
    if not estimated:
        return float("nan")
    errors = [
        abs(float(estimated[source]) - float(scn.true_accuracy[step, i]))
        for i, source in enumerate(scn.source_ids)
        if source in estimated
    ]
    return float(np.mean(errors)) if errors else float("nan")


def scenario(
    scn: Scenario,
    methods: Sequence[str] = (
        "stream-flat",
        "stream-decayed",
        "stream-windowed",
        "stream-refit",
        "batch-em",
        "majority",
    ),
    decay: Optional["DecayConfig"] = None,
    window_decay: Optional["DecayConfig"] = None,
    refit_every: Optional[int] = None,
    refit_overrides: Optional[Dict[str, object]] = None,
    eval_window: int = 5,
    checkpoint_every: int = 1,
    self_training: bool = False,
    featurizer: Optional[object] = None,
) -> ScenarioReport:
    """Replay a :class:`~repro.data.scenarios.Scenario` across fusion arms.

    ``featurizer`` (a :class:`repro.featurize.FeaturizerPipeline`)
    attaches data-derived reliability features to the arms that fit an
    accuracy model: the ``"stream-refit"`` fuser maintains running
    statistics and featurizes every periodic re-fit, and ``"batch-em"``
    fits with the featurized design.  The other arms ignore it.

    Streaming arms ingest the stream step by step (each step's batch,
    then its truth reveals) and are scored at every checkpoint on the
    trailing ``eval_window`` steps' held-out objects — so a regime change
    shows up as a dip whose depth depends on the arm's trust policy:

    * ``"stream-flat"`` — plain Beta counts (all history weighted equally);
    * ``"stream-decayed"`` — ``trust_decay=DecayConfig(half_life=...)``
      exponential forgetting (default half-life: an eighth of the
      per-source observation volume);
    * ``"stream-windowed"`` — ``trust_decay=DecayConfig(window=...)``
      effective-sample-size cap (default: a quarter of the per-source
      volume);
    * ``"stream-refit"`` — flat counts re-anchored by periodic
      warm-started EM re-fits (``refit_every``, default four per stream).

    Batch arms (``"batch-em"`` — the full SLiMFast fit — and
    ``"majority"``) fit once on the accumulated stream with the revealed
    truth and are scored on the same checkpoints with their final values,
    showing what a static model can and cannot track.  The differential
    pins over this report (decay=1.0 equals flat, decayed beats flat on
    step drift) live in ``tests/scenarios/``.
    """
    from ..extensions.streaming import DecayConfig, StreamingFuser

    unknown = [
        m
        for m in methods
        if m not in SCENARIO_STREAM_METHODS and m not in SCENARIO_BATCH_METHODS
    ]
    if unknown:
        raise ValueError(
            f"unknown scenario methods {unknown}; expected stream arms "
            f"{SCENARIO_STREAM_METHODS} or batch arms {tuple(SCENARIO_BATCH_METHODS)}"
        )
    per_source = scn.n_observations / max(scn.n_sources, 1)
    if decay is None:
        decay = DecayConfig(half_life=max(per_source / 8.0, 4.0))
    if window_decay is None:
        window_decay = DecayConfig(window=max(per_source / 4.0, 8.0))
    if refit_every is None:
        refit_every = max(scn.n_observations // 4, 1)
    if refit_overrides is None:
        refit_overrides = {"max_iterations": 10}

    checkpoints = [
        s for s in range(scn.n_steps) if (s + 1) % checkpoint_every == 0 or s == scn.n_steps - 1
    ]
    checkpoint_set = set(checkpoints)
    eval_sets = {s: scn.eval_objects(at_step=s, window=eval_window) for s in checkpoints}
    all_eval = scn.eval_objects()

    stream_configs: Dict[str, Dict[str, object]] = {
        "stream-flat": {},
        "stream-decayed": {"trust_decay": decay},
        "stream-windowed": {"trust_decay": window_decay},
        "stream-refit": {
            "refit_every": refit_every,
            "refit_overrides": refit_overrides,
            "featurizer": featurizer,
        },
    }

    series: Dict[str, ScenarioSeries] = {}
    for method in methods:
        if method in SCENARIO_BATCH_METHODS:
            continue
        fuser = StreamingFuser(self_training=self_training, **stream_configs[method])
        started = time.perf_counter()
        steps_out: List[int] = []
        times: List[float] = []
        accuracy: List[float] = []
        trust_error: List[float] = []
        for step in scn.steps:
            if step.observations:
                fuser.observe_batch(step.observations)
            for obj, value in step.reveal.items():
                fuser.reveal_truth(obj, value)
            if step.index in checkpoint_set:
                steps_out.append(step.index)
                times.append(step.time)
                accuracy.append(
                    _value_accuracy(fuser.current_value, scn.truth, eval_sets[step.index])
                )
                trust_error.append(_trust_error(fuser.source_accuracies(), scn, step.index))
        runtime = time.perf_counter() - started
        series[method] = ScenarioSeries(
            method=method,
            steps=steps_out,
            times=times,
            accuracy=accuracy,
            trust_error=trust_error,
            final_accuracy=_value_accuracy(fuser.current_value, scn.truth, all_eval),
            runtime_seconds=runtime,
        )

    batch_methods = [m for m in methods if m in SCENARIO_BATCH_METHODS]
    if batch_methods:
        dataset = scn.to_dataset()
        revealed = scn.revealed_truth()
        for method in batch_methods:
            runner = get_method(
                SCENARIO_BATCH_METHODS[method],
                featurizer=featurizer if method == "batch-em" else None,
            )
            started = time.perf_counter()
            result = runner(dataset, revealed)
            runtime = time.perf_counter() - started
            value_of = result.values.get
            series[method] = ScenarioSeries(
                method=method,
                steps=list(checkpoints),
                times=[scn.steps[s].time for s in checkpoints],
                accuracy=[
                    _value_accuracy(value_of, scn.truth, eval_sets[s]) for s in checkpoints
                ],
                trust_error=[
                    _trust_error(result.source_accuracies, scn, s) for s in checkpoints
                ],
                final_accuracy=_value_accuracy(value_of, scn.truth, all_eval),
                runtime_seconds=runtime,
            )
    # Preserve the caller's method order in the report.
    ordered = {name: series[name] for name in methods}
    return ScenarioReport(
        scenario=scn.name,
        series=ordered,
        eval_window=eval_window,
        n_steps=scn.n_steps,
        n_observations=scn.n_observations,
    )
