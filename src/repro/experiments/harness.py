"""Experiment harness: run methods over datasets with the paper's protocol.

The protocol (Section 5.1, "Evaluation Methodology"):

* ground truth for ``train_fraction`` of the objects is revealed at random;
* the method fuses the full dataset using the revealed labels;
* object-value accuracy is measured on the *test* objects only;
* source-accuracy error is measured against empirical accuracies computed
  from all ground truth;
* every configuration is repeated over several seeds and averaged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.metrics import dataset_source_accuracy_error
from .methods import get_method


@dataclass
class RunResult:
    """Outcome of one (method, dataset, fraction, seed) run."""

    method: str
    dataset: str
    train_fraction: float
    seed: int
    object_accuracy: float
    source_error: float  # nan when the method has no accuracy estimates
    runtime_seconds: float
    diagnostics: Dict[str, object] = field(default_factory=dict)


def run_method(
    dataset: FusionDataset,
    method: str,
    train_fraction: float,
    seed: int = 0,
) -> RunResult:
    """Run one method once under the paper's protocol."""
    split = dataset.split(train_fraction, seed=seed)
    runner = get_method(method)
    started = time.perf_counter()
    result = runner(dataset, split.train_truth)
    runtime = time.perf_counter() - started

    # Score through the array backing: SLiMFast results already carry it,
    # dict-backed baselines are promoted once so the accuracy comparison
    # runs as a value-code reduction instead of a per-object dict scan.
    result.attach_dataset(dataset)
    accuracy = result.accuracy(dataset, list(split.test_objects))
    if result.source_accuracies is not None:
        source_error = dataset_source_accuracy_error(dataset, result.source_accuracies)
    else:
        source_error = float("nan")
    return RunResult(
        method=method,
        dataset=dataset.name,
        train_fraction=train_fraction,
        seed=seed,
        object_accuracy=accuracy,
        source_error=source_error,
        runtime_seconds=runtime,
        diagnostics=dict(result.diagnostics),
    )


def sweep(
    dataset: FusionDataset,
    methods: Sequence[str],
    train_fractions: Sequence[float],
    seeds: Sequence[int] = (0, 1, 2),
    mode: str = "batched",
    n_jobs: int = 1,
) -> List[RunResult]:
    """Full sweep: every method x fraction x seed.

    SLiMFast-family methods run through the batched
    :class:`~repro.experiments.sweeps.SweepRunner` by default — one dataset
    compile shared by every (fraction, seed) fit, with warm-start handoff
    between nearby configurations, fanned out over ``n_jobs`` worker
    processes when requested (``None`` = one per CPU; parallel results
    equal serial ones at the sweep contract tolerances).  Baselines (and
    every method under ``mode="isolated"``) keep the original per-fit
    :func:`run_method` path, whose equivalence to the batched path is
    pinned in ``tests/experiments/test_sweeps.py``.
    """
    from .sweeps import METHOD_SPECS, SWEEP_MODES, FitSpec, SweepRunner

    if mode not in SWEEP_MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {SWEEP_MODES}")
    batched = mode == "batched"
    # One pass to lay out the grid: sweep-able combos become FitSpecs (run
    # in one possibly-parallel batch below), baselines keep run_method.
    plan: List[tuple] = []  # ("baseline", ...) or ("spec", spec_index, split)
    specs = []
    splits = []
    for fraction in train_fractions:
        for method in methods:
            for seed in seeds:
                if not batched or method not in METHOD_SPECS:
                    plan.append(("baseline", method, fraction, seed))
                    continue
                split = dataset.split(fraction, seed=seed)
                specs.append(
                    FitSpec.from_method(
                        name=f"{method}@{fraction}#{seed}",
                        method=method,
                        train_truth=split.train_truth,
                    )
                )
                splits.append(split)
                plan.append(("spec", len(specs) - 1, method, fraction, seed))

    fits = SweepRunner(dataset, mode="batched", n_jobs=n_jobs).run(specs) if specs else []

    results: List[RunResult] = []
    for entry in plan:
        if entry[0] == "baseline":
            _, method, fraction, seed = entry
            results.append(run_method(dataset, method, fraction, seed))
            continue
        _, index, method, fraction, seed = entry
        fit, split = fits[index], splits[index]
        result = fit.result
        result.attach_dataset(dataset)
        accuracy = result.accuracy(dataset, list(split.test_objects))
        estimated = result.source_accuracies
        if estimated is not None:
            source_error = dataset_source_accuracy_error(dataset, estimated)
        else:
            source_error = float("nan")
        results.append(
            RunResult(
                method=method,
                dataset=dataset.name,
                train_fraction=fraction,
                seed=seed,
                object_accuracy=accuracy,
                source_error=source_error,
                runtime_seconds=fit.runtime_seconds,
                diagnostics=dict(result.diagnostics),
            )
        )
    return results


@dataclass(frozen=True)
class CellKey:
    """Aggregation key: one cell of a paper table."""

    dataset: str
    method: str
    train_fraction: float


@dataclass
class CellStats:
    """Seed-averaged statistics for a table cell."""

    object_accuracy: float
    source_error: float
    runtime_seconds: float
    n_runs: int


def aggregate(results: Iterable[RunResult]) -> Dict[CellKey, CellStats]:
    """Average results over seeds per (dataset, method, fraction) cell."""
    grouped: Dict[CellKey, List[RunResult]] = {}
    for result in results:
        key = CellKey(result.dataset, result.method, result.train_fraction)
        grouped.setdefault(key, []).append(result)
    cells: Dict[CellKey, CellStats] = {}
    for key, runs in grouped.items():
        accuracies = [r.object_accuracy for r in runs]
        errors = [r.source_error for r in runs if not np.isnan(r.source_error)]
        runtimes = [r.runtime_seconds for r in runs]
        cells[key] = CellStats(
            object_accuracy=float(np.mean(accuracies)),
            source_error=float(np.mean(errors)) if errors else float("nan"),
            runtime_seconds=float(np.mean(runtimes)),
            n_runs=len(runs),
        )
    return cells


def best_method_per_cell(
    cells: Dict[CellKey, CellStats],
) -> Dict[tuple, str]:
    """For each (dataset, fraction), the method with the best accuracy."""
    best: Dict[tuple, tuple] = {}
    for key, stats in cells.items():
        group = (key.dataset, key.train_fraction)
        if group not in best or stats.object_accuracy > best[group][1]:
            best[group] = (key.method, stats.object_accuracy)
    return {group: method for group, (method, _) in best.items()}
