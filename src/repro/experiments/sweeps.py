"""Batched multi-fit sweep engine over one shared dense encoding.

Every headline experiment of the paper (Figures 4-9, Tables 2-6) is a
*sweep*: many EM/ERM fits of the same dataset under varying configurations
— training fractions, regularization strengths, learner variants,
leave-one-source-out counterfactuals.  Run naively, each fit pays the full
per-fit setup again: candidate-structure derivation, truth encoding, E-step
clamp planning, per-round objective construction, cold solver starts.

:class:`SweepRunner` amortizes all of it.  A dataset is compiled **once**
into its :class:`~repro.fusion.encoding.DenseEncoding`; every fit of the
sweep then runs against shared, cached artifacts:

* one full :class:`~repro.core.structure.PairStructure` (plus one masked
  structure per distinct ``exclude_sources`` set, derived by array
  filtering — see :func:`~repro.core.structure.build_masked_structure`);
* per-(structure, truth) label rows and fused E-step clamp plans;
* the cached design matrix per ``use_features`` flag;
* a **warm-start registry**: each completed fit publishes its final
  weights and L-BFGS curvature memory
  (:class:`~repro.optim.solvers.WarmStartState`), and each new fit seeds
  its first (convex) M-step solve from the *nearest-config* prior fit.
  Convexity of the M-step means the handoff changes only inner-solver
  paths, never any round's optimum, so batched results remain equivalent
  to isolated fits at the solver tolerance.

Batched mode additionally defaults the EM M-step solver to
``"lbfgs-warm"`` — the warm-started structured-Newton solver whose
equivalence to the scipy reference is contracted at atol=1e-8 in objective
value and ~1e-6 in accuracies (see :mod:`repro.core.em`).

``mode="isolated"`` keeps the existing per-fit path: every spec is fitted
through a fresh :class:`~repro.core.slimfast.SLiMFast`-style pipeline with
the classic ``"lbfgs"`` default and no cross-fit state.  The equivalence
of the two modes is pinned in ``tests/experiments/test_sweeps.py`` at the
same tolerances as the warm-solver contract.

**Cross-process execution** (``n_jobs``): the fits of a sweep are
independent once the shared artifacts exist, so ``SweepRunner(n_jobs=4)``
fans :meth:`SweepRunner.run` out over a ``ProcessPoolExecutor`` while
keeping the one-compile-per-sweep economics — the compiled
:class:`~repro.fusion.encoding.DenseEncoding` arrays, every cached
(masked) structure and every label/clamp plan are shipped to each worker
**once** through the pool initializer (via a picklable encoding export;
large arrays ride ``multiprocessing.shared_memory`` when the start method
would otherwise pickle them per worker).  Specs are split into
contiguous, deterministic chunks — one worker task each — and warm-start
donors are chosen *within* a chunk only, never across a scheduling-
dependent process boundary, so parallel results equal the serial batched
run at the same contract tolerances (and are themselves independent of
worker scheduling).  See :mod:`repro.experiments.parallel` for the
transport layer.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.em import EMConfig, EMLearner
from ..core.erm import ERMConfig, ERMLearner
from ..core.inference import clamp_rows, posterior_rows
from ..core.model import AccuracyModel
from ..core.optimizer import decide, estimate_average_accuracy
from ..core.structure import PairStructure, build_masked_structure, build_pair_structure
from ..fusion.dataset import FusionDataset
from ..fusion.encoding import DenseEncoding, check_backend, encode_dataset
from ..fusion.result import FusionResult
from ..fusion.types import DatasetError, ObjectId, SourceId, Value
from ..optim.solvers import WarmStartState
from . import parallel as _parallel
from .parallel import (
    SharedArrayPack,
    SharedArrayRef,
    attach_shared_arrays,
    chunk_indices,
    extract_shared,
    resolve_n_jobs,
    resolve_shared,
    sharing_is_worthwhile,
)

SWEEP_MODES = ("batched", "isolated")

#: Method names (the Table 2 conventions) the runner can translate into
#: fit specs; baselines stay on the experiment harness's per-fit path.
METHOD_SPECS: Dict[str, Tuple[str, bool]] = {
    "slimfast": ("auto", True),
    "slimfast-erm": ("erm", True),
    "slimfast-em": ("em", True),
    "sources-erm": ("erm", False),
    "sources-em": ("em", False),
    "sources-auto": ("auto", False),
}


@dataclass
class FitSpec:
    """One fit of a sweep.

    Attributes
    ----------
    name:
        Label carried through to the :class:`SweepFitResult`.
    learner:
        ``"em"``, ``"erm"`` or ``"auto"`` (the paper's optimizer picks).
    train_truth:
        Ground truth revealed to this fit (may be empty for EM).
    use_features:
        Consume domain features (``False`` = the Sources-* variants).
    exclude_sources:
        Sources whose observations are masked out — the
        leave-one-source-out counterfactual.  The fit runs on a masked
        structure sharing the full dataset's source indexing, so excluded
        sources keep a (data-free) model slot.
    overrides:
        Extra :class:`~repro.core.em.EMConfig` /
        :class:`~repro.core.erm.ERMConfig` keyword overrides, e.g.
        ``{"l2_sources": 2.0}`` or ``{"intercept": True}``.
    featurizer:
        Optional :class:`repro.featurize.FeaturizerPipeline`: this fit's
        design matrix comes from data-derived reliability features
        instead of the encoding's metadata matrix.  The runner computes
        each distinct pipeline's design once per sweep (keyed by its
        ``version_key``) and shares it across fits; requires
        ``use_features=True``.
    """

    name: str
    learner: str = "em"
    train_truth: Mapping[ObjectId, Value] = field(default_factory=dict)
    use_features: bool = True
    exclude_sources: Tuple[SourceId, ...] = ()
    overrides: Mapping[str, object] = field(default_factory=dict)
    featurizer: Optional[object] = None

    @classmethod
    def from_method(cls, name: str, method: str, train_truth, **kwargs) -> "FitSpec":
        """Build a spec from a Table 2 method name (``METHOD_SPECS``)."""
        try:
            learner, use_features = METHOD_SPECS[method]
        except KeyError:
            raise KeyError(
                f"method {method!r} has no sweep spec; supported: "
                f"{', '.join(sorted(METHOD_SPECS))}"
            ) from None
        return cls(
            name=name,
            learner=learner,
            train_truth=train_truth,
            use_features=use_features,
            **kwargs,
        )


@dataclass
class SweepFitResult:
    """Outcome of one sweep fit.

    ``objective_value`` is the final solver objective (the last EM M-step's
    value, or the ERM solve's value) — the quantity the batched-vs-isolated
    equivalence contract compares at atol=1e-8.  ``warm_started`` names the
    donor fit whose :class:`~repro.optim.solvers.WarmStartState` seeded the
    first inner solve (``None`` for cold starts / isolated mode).
    """

    spec: FitSpec
    result: FusionResult
    model: AccuracyModel
    learner_used: str
    objective_value: float
    runtime_seconds: float
    warm_started: Optional[str] = None


class SweepRunner:
    """Run many EM/ERM fits of one dataset against a shared encoding.

    Parameters
    ----------
    dataset:
        The dataset every fit of the sweep runs on.
    mode:
        ``"batched"`` (default) shares compiled structures, label/clamp
        plans and warm-start state across fits and defaults the EM M-step
        to the contracted ``"lbfgs-warm"`` solver; ``"isolated"`` runs each
        spec through the existing per-fit path (fresh derivations, classic
        ``"lbfgs"`` default, no cross-fit state).
    backend:
        Engine for structure/inference work (``"vectorized"`` or
        ``"reference"``); batched sharing requires ``"vectorized"``.
    warm_start:
        Disable the cross-fit warm-state handoff while keeping the other
        batched sharing (useful for ablation).
    n_jobs:
        Worker processes :meth:`run` fans independent fits out over
        (``None`` = one per CPU, default 1 = serial).  Parallel execution
        requires ``mode="batched"``: the whole point is shipping the
        shared compile to each worker once.  Results are deterministic
        and equal to the serial batched run at the contract tolerances —
        specs are chunked contiguously and warm-start donors never cross
        a chunk boundary — though ``warm_started`` donor *names* reflect
        the per-chunk schedule.  :meth:`run_one` always runs in-process.
    shared_memory:
        How the large encoding/structure arrays reach the workers:
        ``"auto"`` (default) uses ``multiprocessing.shared_memory`` when
        the start method pickles worker state (``spawn``/``forkserver``)
        and plain inheritance under ``fork``; ``True``/``False`` force
        either transport.

    Example::

        runner = SweepRunner(dataset, n_jobs=4)
        fits = runner.run(
            FitSpec(name=f"td={f}", learner="em", train_truth=dataset.split(f, seed=0).train_truth)
            for f in (0.05, 0.1, 0.2, 0.4)
        )
        accuracies = {fit.spec.name: fit.result.accuracy(dataset) for fit in fits}
    """

    def __init__(
        self,
        dataset: FusionDataset,
        mode: str = "batched",
        backend: str = "vectorized",
        warm_start: bool = True,
        n_jobs: Optional[int] = 1,
        shared_memory: object = "auto",
    ) -> None:
        if mode not in SWEEP_MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {SWEEP_MODES}")
        check_backend(backend)
        if mode == "batched" and backend != "vectorized":
            raise ValueError('batched sweeps require backend="vectorized"')
        self.n_jobs = resolve_n_jobs(n_jobs)
        if self.n_jobs > 1 and mode != "batched":
            raise ValueError(
                'parallel sweeps (n_jobs > 1) require mode="batched"; the '
                "isolated path re-derives per-fit state and has nothing to ship"
            )
        if shared_memory not in ("auto", True, False):
            raise ValueError('shared_memory must be "auto", True or False')
        self.shared_memory = shared_memory
        self.dataset = dataset
        self.mode = mode
        self.backend = backend
        self.warm_start = warm_start and mode == "batched"

        self._structures: Dict[Tuple[int, ...], PairStructure] = {}
        self._label_plans: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        # Featurized designs per pipeline version key, shared across fits.
        self._featurized_designs: Dict[str, tuple] = {}
        self._avg_accuracy: Optional[float] = None
        # Warm registry: (spec, learner, truth fingerprint, state) per
        # completed warm-startable fit.
        self._warm_registry: List[Tuple[FitSpec, str, frozenset, WarmStartState]] = []
        if mode == "batched":
            # Compile once; every structure, design matrix and truth
            # encoding of the sweep derives from this.
            self._encoding = encode_dataset(dataset)

    # ------------------------------------------------------------------
    # Shared artifacts (batched mode)
    # ------------------------------------------------------------------
    def _exclude_key(self, exclude_sources: Tuple[SourceId, ...]) -> Tuple[int, ...]:
        """Order- and duplicate-insensitive cache key for a source mask."""
        return tuple(sorted({self.dataset.sources.index(s) for s in exclude_sources}))

    def _structure_for(self, exclude_sources: Tuple[SourceId, ...]) -> PairStructure:
        key = self._exclude_key(exclude_sources)
        cached = self._structures.get(key)
        if cached is None:
            if key:
                cached = build_masked_structure(
                    self.dataset, exclude_sources, backend=self.backend
                )
            else:
                cached = build_pair_structure(self.dataset, backend=self.backend)
            self._structures[key] = cached
        return cached

    def _label_plan_for(
        self, structure: PairStructure, spec: FitSpec
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(label_rows, fused-clamp blocked rows) per (structure, truth)."""
        key = (
            self._exclude_key(tuple(spec.exclude_sources)),
            frozenset(dict(spec.train_truth).items()),
        )
        cached = self._label_plans.get(key)
        if cached is None:
            label_rows = structure.label_rows(dict(spec.train_truth))
            cached = (label_rows, clamp_rows(structure, label_rows))
            self._label_plans[key] = cached
        return cached

    def _design_for_spec(self, spec: FitSpec, cached: bool):
        """``(design, space)`` for a spec, honoring its featurizer.

        Featurized designs are computed once per distinct pipeline
        ``version_key`` and reused by every fit that shares it (the
        pipeline's own content-addressed cache additionally dedupes
        across runners and processes).
        """
        if spec.featurizer is None:
            if cached:
                return self._encoding.design(spec.use_features)
            return encode_dataset(self.dataset).design(spec.use_features)
        if not spec.use_features:
            raise ValueError(f"spec {spec.name!r}: featurizer requires use_features=True")
        key = getattr(spec.featurizer, "version_key", repr(spec.featurizer))
        hit = self._featurized_designs.get(key)
        if hit is None:
            hit = spec.featurizer.design_for(self.dataset)
            self._featurized_designs[key] = hit
        return hit

    @staticmethod
    def _featurizer_key(spec: FitSpec) -> Optional[str]:
        if spec.featurizer is None:
            return None
        return getattr(spec.featurizer, "version_key", repr(spec.featurizer))

    def _average_accuracy(self) -> float:
        """Agreement-based accuracy estimate, computed once per sweep.

        Uses the same ``"domain-corrected"`` estimator :func:`decide`
        defaults to, so caching it cannot flip an auto-learner decision
        between the batched and isolated modes.
        """
        if self._avg_accuracy is None:
            self._avg_accuracy = estimate_average_accuracy(
                self.dataset, method="domain-corrected"
            )
        return self._avg_accuracy

    def _nearest_state(
        self, spec: FitSpec, learner: str
    ) -> Tuple[Optional[str], Optional[WarmStartState]]:
        """Warm state of the most similar completed fit, if any.

        Candidates must match the parameter layout (same learner family and
        ``use_features``); among those, similarity is ranked by matching
        source mask first, then by the symmetric difference of the revealed
        truth sets — the knobs that move the M-step optimum the least.
        """
        if not self.warm_start:
            return None, None
        truth_items = frozenset(dict(spec.train_truth).items())
        best: Optional[Tuple[tuple, str, WarmStartState]] = None
        exclude_key = self._exclude_key(tuple(spec.exclude_sources))
        for prior, prior_learner, prior_truth, state in self._warm_registry:
            if prior_learner != learner or prior.use_features != spec.use_features:
                continue
            # A different featurizer (or none) changes the design's column
            # count, so the flat parameter layouts are incompatible.
            if self._featurizer_key(prior) != self._featurizer_key(spec):
                continue
            distance = (
                self._exclude_key(tuple(prior.exclude_sources)) != exclude_key,
                len(truth_items ^ prior_truth),
            )
            if best is None or distance < best[0]:
                best = (distance, prior.name, state)
        if best is None:
            return None, None
        return best[1], best[2]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, specs) -> List[SweepFitResult]:
        """Run every spec, in order; fans out across processes when
        ``n_jobs > 1`` (single-spec inputs stay in-process — there is
        nothing to parallelize).  Serial runs thread warm state through
        the whole sweep; parallel runs thread it through each contiguous
        chunk."""
        specs = list(specs)
        if self.n_jobs > 1 and len(specs) > 1:
            return self._run_parallel(specs)
        return [self.run_one(spec) for spec in specs]

    def run_one(self, spec: FitSpec) -> SweepFitResult:
        """Run a single spec (batched fits still consult the shared caches)."""
        if spec.learner not in ("em", "erm", "auto"):
            raise ValueError(f"unknown learner {spec.learner!r}")
        started = time.perf_counter()
        truth = dict(spec.train_truth)

        if self.mode == "isolated":
            fit = self._run_isolated(spec, truth)
        else:
            fit = self._run_batched(spec, truth)
        fit.runtime_seconds = time.perf_counter() - started
        return fit

    # ------------------------------------------------------------------
    @staticmethod
    def _config_for(spec: FitSpec, learner_used: str, backend: str, batched: bool):
        """Learner config from a spec's overrides.

        Explicit-learner specs pass overrides through verbatim (typos fail
        loudly).  ``learner="auto"`` specs may carry overrides for either
        learner, so only the fields the chosen config class actually has
        are applied.  Batched EM defaults to the contracted ``lbfgs-warm``
        solver unless the spec overrides it.
        """
        overrides = dict(spec.overrides)
        config_cls = EMConfig if learner_used == "em" else ERMConfig
        if spec.learner == "auto":
            known = {f.name for f in fields(config_cls)}
            overrides = {k: v for k, v in overrides.items() if k in known}
        if batched and learner_used == "em":
            overrides.setdefault("solver", "lbfgs-warm")
        return config_cls(use_features=spec.use_features, backend=backend, **overrides)

    @staticmethod
    def _erm_structure(spec: FitSpec, config: ERMConfig, structure: PairStructure):
        """Structure for a batched ERM fit, or ``None`` when unsupported.

        The structure-based sample path covers the deterministic
        correctness objective; SGD and the conditional objective keep their
        classic dataset-walking derivations (SGD's sample stream is
        bitwise-pinned to the reference engine), which is only impossible
        for source-masked specs.
        """
        if config.objective == "correctness" and config.solver != "sgd":
            return structure
        if spec.exclude_sources:
            raise ValueError(
                "source-masked ERM fits require the correctness objective "
                "and a deterministic solver"
            )
        return None

    def _choose_learner(self, spec: FitSpec, truth, n_features: int, cached: bool):
        """(learner name, OptimizerDecision or None) for a spec."""
        if spec.learner != "auto":
            return spec.learner, None
        decision = decide(
            self.dataset,
            truth,
            n_features=n_features,
            avg_accuracy=self._average_accuracy() if cached else None,
        )
        choice = decision.algorithm
        if choice == "erm" and not truth:
            choice = "em"  # ERM is undefined without labels
        return choice, decision

    def _run_batched(self, spec: FitSpec, truth) -> SweepFitResult:
        structure = self._structure_for(tuple(spec.exclude_sources))
        design, space = self._design_for_spec(spec, cached=True)
        label_rows, blocked = self._label_plan_for(structure, spec)
        learner_used, decision = self._choose_learner(spec, truth, design.shape[1], cached=True)
        # Warm handoff applies to EM only: its inner solver stops on the
        # gradient norm, so a foreign start changes nothing but speed.  A
        # one-shot ERM solve under scipy's decrease-based stop would instead
        # terminate *earlier* from a near-optimal start, trading the
        # equivalence contract for a negligible saving.
        donor, state = (
            self._nearest_state(spec, learner_used) if learner_used == "em" else (None, None)
        )

        config = self._config_for(spec, learner_used, self.backend, batched=True)
        if learner_used == "em":
            learner = EMLearner(config)
            model = learner.fit(
                self.dataset,
                truth,
                design=design,
                feature_space=space,
                structure=structure,
                label_rows=label_rows,
                blocked_rows=blocked,
                warm_state=state,
            )
            final = learner.m_step_result_
            new_state = learner.warm_state_
        else:
            if not truth:
                raise DatasetError("ERM fits require training ground truth")
            learner = ERMLearner(config)
            model = learner.fit(
                self.dataset,
                truth,
                design=design,
                feature_space=space,
                structure=self._erm_structure(spec, config, structure),
            )
            final = learner.solver_result_
            # ERM fits are never warm-started (see above), so registering
            # their state would only accumulate dead weight vectors.
            new_state = None
        if new_state is not None and self.warm_start:
            self._warm_registry.append(
                (spec, learner_used, frozenset(truth.items()), new_state)
            )
        return self._package(spec, structure, model, truth, learner_used, final, donor, decision)

    def _run_isolated(self, spec: FitSpec, truth) -> SweepFitResult:
        """The existing per-fit path: fresh derivations, no shared state.

        Learners receive a prebuilt structure only for source-masked specs
        (which the classic path cannot express); plain specs go through the
        learners' own derivations, exactly as a direct per-fit call would.
        """
        if spec.exclude_sources:
            structure = build_masked_structure(
                self.dataset, spec.exclude_sources, backend=self.backend
            )
            fit_structure = structure
        else:
            structure = build_pair_structure(self.dataset, backend=self.backend)
            fit_structure = None
        design, space = self._design_for_spec(spec, cached=False)
        learner_used, decision = self._choose_learner(spec, truth, design.shape[1], cached=False)

        config = self._config_for(spec, learner_used, self.backend, batched=False)
        if learner_used == "em":
            learner = EMLearner(config)
            model = learner.fit(
                self.dataset,
                truth,
                design=design,
                feature_space=space,
                structure=fit_structure,
            )
            final = learner.m_step_result_
        else:
            if not truth:
                raise DatasetError("ERM fits require training ground truth")
            learner = ERMLearner(config)
            model = learner.fit(
                self.dataset,
                truth,
                design=design,
                feature_space=space,
                structure=fit_structure,
            )
            final = learner.solver_result_
        return self._package(spec, structure, model, truth, learner_used, final, None, decision)

    # ------------------------------------------------------------------
    def _package(
        self, spec, structure, model, truth, learner_used, final, donor=None, decision=None
    ) -> SweepFitResult:
        """Array-native result packaging shared by both modes."""
        probs = posterior_rows(structure, model)
        diagnostics = {"learner": learner_used, "sweep_mode": self.mode}
        if decision is not None:
            # Parity with the SLiMFast facade, which records the optimizer
            # decision for auto-learner runs.
            diagnostics["optimizer"] = decision
        result = FusionResult.from_rows(
            structure,
            probs,
            clamp=truth,
            accuracy_vector=model.accuracies(),
            source_ids=model.source_ids,
            method=self._method_name(spec, learner_used),
            diagnostics=diagnostics,
        )
        return SweepFitResult(
            spec=spec,
            result=result,
            model=model,
            learner_used=learner_used,
            objective_value=float(final.value) if final is not None else float("nan"),
            runtime_seconds=0.0,
            warm_started=donor,
        )

    @staticmethod
    def _method_name(spec: FitSpec, learner_used: str) -> str:
        prefix = "slimfast" if spec.use_features else "sources"
        suffix = learner_used if spec.learner != "auto" else "auto"
        return f"{prefix}-{suffix}"

    # ------------------------------------------------------------------
    # Cross-process execution
    # ------------------------------------------------------------------
    def _run_parallel(self, specs: List[FitSpec]) -> List[SweepFitResult]:
        """Fan the specs out over worker processes, one compile for all.

        The parent derives every shared artifact the sweep needs
        (structures, label/clamp plans, design matrices, the cached
        optimizer accuracy estimate) exactly as the serial path would,
        exports it once, and hands each worker a contiguous chunk of
        specs.  Results come back in spec order regardless of completion
        order.
        """
        for spec in specs:
            if spec.learner not in ("em", "erm", "auto"):
                raise ValueError(f"unknown learner {spec.learner!r}")
            structure = self._structure_for(tuple(spec.exclude_sources))
            self._label_plan_for(structure, spec)
            self._encoding.design(spec.use_features)
        if any(spec.learner == "auto" for spec in specs):
            self._average_accuracy()

        payload, pack = self._export_payload()
        chunks = chunk_indices(len(specs), min(self.n_jobs, len(specs)))
        results: List[Optional[SweepFitResult]] = [None] * len(specs)
        try:
            with ProcessPoolExecutor(
                max_workers=len(chunks),
                initializer=_init_sweep_worker,
                initargs=(payload,),
            ) as executor:
                futures = [
                    (chunk, executor.submit(_run_sweep_chunk, [specs[i] for i in chunk]))
                    for chunk in chunks
                ]
                for chunk, future in futures:
                    for i, fit in zip(chunk, future.result()):
                        results[i] = fit
        finally:
            if pack is not None:
                pack.release()
        return results

    def _export_payload(self) -> Tuple["_SweepPayload", Optional[SharedArrayPack]]:
        """Bundle the shared compile for one-shot transfer to workers."""
        share = self.shared_memory
        if share == "auto":
            share = sharing_is_worthwhile()
        min_bytes = _parallel.SHARED_ARRAY_MIN_BYTES
        pool: Dict[str, np.ndarray] = {}
        state = self._encoding.export_state()

        arrays = state["arrays"]
        if share:
            arrays = extract_shared(arrays, pool, "enc", min_bytes)
        design_cache: Dict[bool, Tuple[object, object]] = {}
        for key, (rows, space) in state["design_cache"].items():
            entry: object = rows
            if share and rows.nbytes >= min_bytes:
                pool[f"design:{key}"] = rows
                entry = SharedArrayRef(f"design:{key}")
            design_cache[key] = (entry, space)
        structures: Dict[Tuple[int, ...], Dict[str, object]] = {}
        for key, structure in self._structures.items():
            if not key:
                continue  # workers re-wrap the full structure from the encoding
            masked_state = {
                f.name: getattr(structure, f.name)
                for f in fields(PairStructure)
                if f.name != "encoding"
            }
            if share:
                masked_state = extract_shared(masked_state, pool, f"mask:{key}", min_bytes)
            structures[key] = masked_state

        payload = _SweepPayload(
            dataset=self.dataset,  # pickles without its cached encoding
            backend=self.backend,
            warm_start=self.warm_start,
            encoding_arrays=arrays,
            encoding_pair_values=state["pair_values"],
            design_cache=design_cache,
            structures=structures,
            label_plans=dict(self._label_plans),
            avg_accuracy=self._avg_accuracy,
        )
        pack: Optional[SharedArrayPack] = None
        if pool:
            pack = SharedArrayPack(pool)
            payload.shared = pack.descriptor
        return payload, pack

    @classmethod
    def _from_payload(cls, payload: "_SweepPayload"):
        """Worker-side rebuild: a batched runner with pre-seeded caches.

        Returns ``(runner, segment)`` where ``segment`` is the attached
        shared-memory handle (or ``None``) the worker must keep alive for
        the runner's lifetime.
        """
        arrays: Dict[str, np.ndarray] = {}
        segment = None
        if payload.shared is not None:
            arrays, segment = attach_shared_arrays(payload.shared)
        dataset = payload.dataset
        dataset._dense_encoding = DenseEncoding.from_state(
            dataset,
            {
                "arrays": resolve_shared(payload.encoding_arrays, arrays),
                "pair_values": payload.encoding_pair_values,
                "design_cache": {
                    key: (
                        arrays[rows.key] if isinstance(rows, SharedArrayRef) else rows,
                        space,
                    )
                    for key, (rows, space) in payload.design_cache.items()
                },
            },
        )
        runner = cls(
            dataset,
            mode="batched",
            backend=payload.backend,
            warm_start=payload.warm_start,
        )
        for key, state in payload.structures.items():
            runner._structures[key] = PairStructure(**resolve_shared(state, arrays))
        runner._structures[()] = build_pair_structure(dataset, backend=payload.backend)
        runner._label_plans = dict(payload.label_plans)
        runner._avg_accuracy = payload.avg_accuracy
        return runner, segment


@dataclass
class _SweepPayload:
    """Everything a sweep worker needs, shipped once per worker.

    ``encoding_arrays`` / ``design_cache`` / ``structures`` may contain
    :class:`~repro.experiments.parallel.SharedArrayRef` markers pointing
    into the ``shared`` segment descriptor; everything else travels by
    pickle (or copy-on-write inheritance under ``fork``).
    """

    dataset: FusionDataset
    backend: str
    warm_start: bool
    encoding_arrays: Dict[str, object]
    encoding_pair_values: List[Value]
    design_cache: Dict[bool, Tuple[object, object]]
    structures: Dict[Tuple[int, ...], Dict[str, object]]
    label_plans: Dict[tuple, Tuple[np.ndarray, np.ndarray]]
    avg_accuracy: Optional[float]
    shared: Optional[dict] = None


#: Per-worker runner (re)built once by the pool initializer, plus the
#: shared-memory handle that must outlive it.
_WORKER_RUNNER: Optional[SweepRunner] = None
_WORKER_SEGMENT = None


def _init_sweep_worker(payload: _SweepPayload) -> None:
    global _WORKER_RUNNER, _WORKER_SEGMENT
    _WORKER_RUNNER, _WORKER_SEGMENT = SweepRunner._from_payload(payload)


def _run_sweep_chunk(specs: List[FitSpec]) -> List[SweepFitResult]:
    """Run one contiguous chunk of specs in this worker, in order.

    The warm registry is reset per chunk: donors are drawn only from the
    chunk's own completed fits, so results depend on the deterministic
    chunking, never on which worker ran which chunk or in what order.
    """
    runner = _WORKER_RUNNER
    runner._warm_registry = []
    return [runner.run_one(spec) for spec in specs]


def leave_one_out_specs(
    dataset: FusionDataset,
    train_truth: Mapping[ObjectId, Value],
    sources: Optional[Sequence[SourceId]] = None,
    learner: str = "em",
    use_features: bool = True,
    overrides: Optional[Mapping[str, object]] = None,
) -> List[FitSpec]:
    """One :class:`FitSpec` per source, each masking that source out.

    The shared-encoding counterpart of rebuilding ``subset_sources``
    datasets in a loop; feed the result to :meth:`SweepRunner.run`.
    """
    pool = list(sources) if sources is not None else dataset.sources.items
    return [
        FitSpec(
            name=f"loo:{source!r}",
            learner=learner,
            train_truth=train_truth,
            use_features=use_features,
            exclude_sources=(source,),
            overrides=dict(overrides or {}),
        )
        for source in pool
    ]
