"""SLiMFast core: model, learners, optimizer, guarantees and extensions."""

from .agreement import (
    AgreementMatrix,
    agreement_matrix,
    average_domain_size,
    estimate_average_accuracy,
    estimate_source_accuracies_rank1,
)
from .copying import CopyingSLiMFast, SourcePair, find_candidate_pairs
from .em import EMConfig, EMLearner, EMTrace
from .erm import ERMConfig, ERMLearner, correctness_training_pairs
from .guarantees import (
    em_accuracy_bound,
    empirical_rademacher_linear,
    erm_generalization_bound,
    erm_sparse_bound,
    expected_observations,
    rademacher_linear,
)
from .inference import (
    expected_correctness,
    map_assignment,
    map_rows,
    package_posteriors,
    pair_scores,
    posterior_rows,
    posteriors,
)
from .initialization import (
    InitializationReport,
    evaluate_initialization,
    initialization_curve,
    predict_unseen_accuracies,
)
from .lasso import LassoPath, lasso_path
from .model import AccuracyModel, model_from_flat
from .optimizer import (
    OptimizerDecision,
    decide,
    em_information_units,
    erm_information_units,
)
from .slimfast import SLiMFast
from .structure import PairStructure, build_pair_structure

__all__ = [
    "SLiMFast",
    "AccuracyModel",
    "model_from_flat",
    "ERMLearner",
    "ERMConfig",
    "correctness_training_pairs",
    "EMLearner",
    "EMConfig",
    "EMTrace",
    "OptimizerDecision",
    "decide",
    "em_information_units",
    "erm_information_units",
    "AgreementMatrix",
    "agreement_matrix",
    "average_domain_size",
    "estimate_average_accuracy",
    "estimate_source_accuracies_rank1",
    "erm_generalization_bound",
    "erm_sparse_bound",
    "em_accuracy_bound",
    "rademacher_linear",
    "empirical_rademacher_linear",
    "expected_observations",
    "LassoPath",
    "lasso_path",
    "InitializationReport",
    "evaluate_initialization",
    "initialization_curve",
    "predict_unseen_accuracies",
    "CopyingSLiMFast",
    "SourcePair",
    "find_candidate_pairs",
    "PairStructure",
    "build_pair_structure",
    "posteriors",
    "posterior_rows",
    "package_posteriors",
    "map_assignment",
    "map_rows",
    "pair_scores",
    "expected_correctness",
]
