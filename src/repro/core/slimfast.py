"""The SLiMFast facade — the library's primary public API.

Wires together compilation (feature encoding), the optimizer (ERM-vs-EM
choice), learning and inference into the three-step pipeline of paper
Figure 3::

    fuser = SLiMFast()                       # optimizer decides ERM vs EM
    result = fuser.fit_predict(dataset, train_truth)
    result.values                            # estimated true values
    result.source_accuracies                 # estimated source accuracies
    fuser.decision_                          # what the optimizer chose, and why

Variants from the paper's evaluation map onto constructor arguments:

=================  ====================================
Paper method       Construction
=================  ====================================
SLiMFast           ``SLiMFast()``
SLiMFast-ERM       ``SLiMFast(learner="erm")``
SLiMFast-EM        ``SLiMFast(learner="em")``
Sources-ERM        ``SLiMFast(learner="erm", use_features=False)``
Sources-EM         ``SLiMFast(learner="em", use_features=False)``
=================  ====================================
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

from ..fusion.dataset import FusionDataset
from ..fusion.encoding import check_backend, encode_dataset
from ..fusion.features import build_design_matrix
from ..fusion.result import FusionResult
from ..fusion.types import DatasetError, NotFittedError, ObjectId, Value
from .em import EMConfig, EMLearner
from .erm import ERMConfig, ERMLearner
from .inference import map_assignment, posterior_rows, posteriors
from .model import AccuracyModel
from .optimizer import OptimizerDecision, decide
from .structure import build_pair_structure


class SLiMFast:
    """Discriminative data fusion with an automatic learner choice.

    Parameters
    ----------
    learner:
        ``"auto"`` (paper's optimizer, Algorithm 2), ``"erm"`` or ``"em"``.
    use_features:
        Consume domain-specific features if the dataset provides them.
    tau:
        Optimizer bound threshold (paper default 0.1).
    objective:
        ERM objective: ``"correctness"`` (Definition 7) or ``"conditional"``
        (Equation 4).
    solver:
        M-step/ERM solver shared by both learner configs: ``"lbfgs"``
        (default), ``"lbfgs-warm"`` (EM reuses second-order state across
        rounds; ERM treats it as ``"lbfgs"``) or ``"sgd"``.  The warm
        solver is contract-equivalent to the scipy reference — objective
        values at atol=1e-8, accuracies near 1e-6 (see
        :class:`~repro.core.em.EMConfig` and the :mod:`repro.core.em`
        docstring) — and is what batched sweeps use by default.
    erm_config / em_config:
        Full learner configuration overrides; built from the scalar
        arguments when omitted.
    optimizer_per_observation / optimizer_accuracy_method:
        Optimizer variants, see :mod:`repro.core.optimizer`.
    backend:
        Inference/learning engine: ``"vectorized"`` (default, dense-array
        reductions over the dataset's cached encoding) or ``"reference"``
        (the original loop implementations).  Ignored for learner configs
        passed explicitly.
    featurizer:
        Optional :class:`repro.featurize.FeaturizerPipeline`: the design
        matrix comes from data-derived reliability features (plus the
        metadata block) instead of metadata alone.  Requires
        ``use_features=True``; ignored for learner configs passed
        explicitly.
    """

    def __init__(
        self,
        learner: str = "auto",
        use_features: bool = True,
        tau: float = 0.1,
        objective: str = "correctness",
        l2_sources: float = 4.0,
        l2_features: float = 1.0,
        solver: str = "lbfgs",
        erm_config: Optional[ERMConfig] = None,
        em_config: Optional[EMConfig] = None,
        optimizer_per_observation: bool = False,
        optimizer_accuracy_method: str = "domain-corrected",
        backend: str = "vectorized",
        seed: int = 0,
        featurizer: Optional[object] = None,
    ) -> None:
        if learner not in ("auto", "erm", "em"):
            raise ValueError(f"unknown learner {learner!r}")
        if featurizer is not None and not use_features:
            raise ValueError("featurizer requires use_features=True")
        self.learner = learner
        self.use_features = use_features
        self.featurizer = featurizer
        self.tau = tau
        self.backend = check_backend(backend)
        self.optimizer_per_observation = optimizer_per_observation
        self.optimizer_accuracy_method = optimizer_accuracy_method
        self.erm_config = erm_config or ERMConfig(
            objective=objective,
            l2_sources=l2_sources,
            l2_features=l2_features,
            solver=solver,
            use_features=use_features,
            backend=backend,
            seed=seed,
            featurizer=featurizer,
        )
        self.em_config = em_config or EMConfig(
            l2_sources=l2_sources,
            l2_features=l2_features,
            use_features=use_features,
            solver=solver,
            backend=backend,
            seed=seed,
            featurizer=featurizer,
        )

        self.model_: Optional[AccuracyModel] = None
        self.decision_: Optional[OptimizerDecision] = None
        self.chosen_learner_: Optional[str] = None
        self.timings_: Dict[str, float] = {}
        self._train_truth: Dict[ObjectId, Value] = {}
        self._dataset: Optional[FusionDataset] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> "SLiMFast":
        """Compile, choose a learner, and fit the accuracy model."""
        truth = dict(train_truth or {})
        self._dataset = dataset
        self._train_truth = truth

        started = time.perf_counter()
        if self.featurizer is not None:
            design, space = self.featurizer.design_for(dataset)
        elif self.backend == "vectorized":
            # One compile covers the index arrays and the design matrix;
            # both are cached on the dataset for every later consumer.
            design, space = encode_dataset(dataset).design(self.use_features)
        else:
            design, space = build_design_matrix(dataset, use_features=self.use_features)
        self.timings_["compile"] = time.perf_counter() - started

        started = time.perf_counter()
        choice = self.learner
        if choice == "auto":
            self.decision_ = decide(
                dataset,
                truth,
                n_features=design.shape[1],
                tau=self.tau,
                per_observation=self.optimizer_per_observation,
                accuracy_method=self.optimizer_accuracy_method,
            )
            choice = self.decision_.algorithm
            if choice == "erm" and not truth:
                # Without any labels ERM is undefined; fall back to EM.
                choice = "em"
        self.timings_["optimizer"] = time.perf_counter() - started

        started = time.perf_counter()
        if choice == "erm":
            if not truth:
                raise DatasetError("ERM learner requires training ground truth")
            self.model_ = ERMLearner(self.erm_config).fit(
                dataset, truth, design=design, feature_space=space
            )
        else:
            self.model_ = EMLearner(self.em_config).fit(
                dataset, truth, design=design, feature_space=space
            )
        self.timings_["learning"] = time.perf_counter() - started
        self.chosen_learner_ = choice
        return self

    def predict(self) -> FusionResult:
        """Infer object values and package the full fusion output.

        Training objects are clamped to their known truth; all other
        objects receive MAP estimates under the learned model.  With the
        vectorized backend the returned :class:`FusionResult` is
        array-backed: no per-object dict is built on the predict path, the
        ``values`` / ``posteriors`` views materialize lazily on demand.
        """
        if self.model_ is None or self._dataset is None:
            raise NotFittedError("call fit() before predict()")
        started = time.perf_counter()
        structure = build_pair_structure(self._dataset, backend=self.backend)
        diagnostics: Dict[str, object] = {"learner": self.chosen_learner_}
        if self.decision_ is not None:
            diagnostics["optimizer"] = self.decision_
        if self.backend == "vectorized":
            probs = posterior_rows(structure, self.model_)
            result = FusionResult.from_rows(
                structure,
                probs,
                clamp=self._train_truth,
                accuracy_vector=self.model_.accuracies(),
                source_ids=self.model_.source_ids,
                method=self._method_name(),
                diagnostics=diagnostics,
            )
        else:
            posterior = posteriors(
                self._dataset,
                self.model_,
                structure=structure,
                clamp=self._train_truth,
                backend="reference",
            )
            result = FusionResult(
                values=map_assignment(posterior),
                posteriors=posterior,
                source_accuracies=self.model_.accuracy_map(),
                method=self._method_name(),
                diagnostics=diagnostics,
            )
        self.timings_["inference"] = time.perf_counter() - started
        diagnostics["timings"] = dict(self.timings_)
        return result

    def fit_predict(
        self,
        dataset: FusionDataset,
        train_truth: Optional[Mapping[ObjectId, Value]] = None,
    ) -> FusionResult:
        """Convenience: :meth:`fit` followed by :meth:`predict`."""
        return self.fit(dataset, train_truth).predict()

    # ------------------------------------------------------------------
    def _method_name(self) -> str:
        prefix = "slimfast" if self.use_features else "sources"
        if self.learner == "auto":
            return prefix if prefix == "slimfast" else f"{prefix}-auto"
        return f"{prefix}-{self.learner}"
