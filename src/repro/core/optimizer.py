"""SLiMFast's optimizer: choose ERM or EM (paper Section 4.3).

The optimizer compares the *units of information* available to each
learning algorithm:

* ERM consumes ground truth: one labeled object contributes one unit
  (Algorithm 2 sets ``totalERMUnits = |G|``).
* EM consumes the E-step's soft labels.  Modeling the E-step as majority
  vote by sources of uniform accuracy ``A``, an object observed by ``m``
  sources with ``|D_o|`` distinct claimed values is resolved correctly with
  probability ``p_e = 1 - BinomCDF(floor(m / |D_o|); m, A)``; it then
  contributes ``1 - H(p_e)`` units (Algorithm 1).

The average accuracy ``A`` is estimated by agreement-matrix completion
(:mod:`repro.core.agreement`).  A fast pre-check returns ERM outright when
the Theorem-1 generalization bound ``sqrt(|K| / |G|) * log|G|`` is already
below the threshold ``tau``.

Two places deviate from the *printed* pseudo-code, in both cases because
the printed form contradicts the decisions the paper's own Table 4
reports (details in EXPERIMENTS.md):

* the majority-vote success criterion defaults to ``m/2`` (the paper's
  Example 8 semantics) rather than Algorithm 1's ``m/|D_o|`` — pass
  ``vote_threshold="paper"`` for the printed form;
* the average-accuracy estimate defaults to the multi-valued
  ``"domain-corrected"`` agreement identity — pass
  ``accuracy_method="paper"`` for the binary identity ``E[X]=(2A-1)^2``.

``per_observation=True`` additionally switches the unit accounting to
per-observation (Example 8's multiplication by ``m``); the ablation
benches exercise all variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np
from scipy import stats

from ..fusion.dataset import FusionDataset
from ..fusion.metrics import binary_entropy
from ..fusion.types import ObjectId, Value
from .agreement import estimate_average_accuracy
from .guarantees import erm_generalization_bound


@dataclass
class OptimizerDecision:
    """Outcome of Algorithm 2 with full diagnostics.

    Attributes
    ----------
    algorithm:
        ``"erm"`` or ``"em"``.
    reason:
        ``"bound"`` when the Theorem-1 pre-check fired, else ``"units"``.
    erm_units / em_units:
        The two sides of the information comparison.
    estimated_accuracy:
        The agreement-based average source-accuracy estimate fed to
        Algorithm 1.
    bound:
        The value of ``sqrt(|K| / |G|) * log|G|`` (``inf`` without labels).
    """

    algorithm: str
    reason: str
    erm_units: float
    em_units: float
    estimated_accuracy: float
    bound: float


def em_information_units(
    dataset: FusionDataset,
    avg_accuracy: float,
    per_observation: bool = False,
    vote_threshold: str = "majority",
) -> float:
    """Algorithm 1 (EMUnits): total units the E-step is expected to yield.

    Objects whose majority-vote success probability ``p_e`` is below 0.5
    contribute nothing — the E-step output for them carries no usable
    signal under the optimizer's model.

    ``vote_threshold`` selects the success criterion of the internal
    majority-vote model:

    * ``"majority"`` (default) — more than ``m/2`` correct votes needed.
      The paper's Example 8 uses this criterion, and it is the only
      reading consistent with the decisions Table 4 reports (e.g. ERM on
      the dense Stocks dataset).
    * ``"paper"`` — more than ``m/|D_o|`` correct votes, the expression
      printed in Algorithm 1 (plurality against evenly-split wrong votes).
      Kept for ablation; on binary domains the two coincide.
    """
    if vote_threshold not in ("majority", "paper"):
        raise ValueError(f"unknown vote_threshold {vote_threshold!r}")
    avg_accuracy = float(np.clip(avg_accuracy, 1e-6, 1.0 - 1e-6))
    total = 0.0
    for o_idx in range(dataset.n_objects):
        m = int(dataset.object_observation_rows(o_idx).shape[0])
        if m == 0:
            continue
        n_distinct = len(dataset.domain_by_index(o_idx))
        if n_distinct <= 1:
            # Unanimous objects: majority vote is trivially "correct" under
            # the optimizer's model; they carry a full unit each.
            p_e = 1.0
        else:
            divisor = 2 if vote_threshold == "majority" else n_distinct
            threshold = m // divisor
            p_e = float(1.0 - stats.binom.cdf(threshold, m, avg_accuracy))
        if p_e >= 0.5:
            units = 1.0 - binary_entropy(p_e)
            total += units * m if per_observation else units
    return total


def erm_information_units(
    dataset: FusionDataset,
    truth: Mapping[ObjectId, Value],
    per_observation: bool = False,
) -> float:
    """Ground-truth units: ``|G|``, or total observations on labeled objects."""
    if not per_observation:
        return float(len(truth))
    total = 0
    for obj in truth:
        if obj in dataset.objects:
            o_idx = dataset.objects.index(obj)
            total += int(dataset.object_observation_rows(o_idx).shape[0])
    return float(total)


def decide(
    dataset: FusionDataset,
    truth: Mapping[ObjectId, Value],
    n_features: int,
    tau: float = 0.1,
    per_observation: bool = False,
    accuracy_method: str = "domain-corrected",
    avg_accuracy: Optional[float] = None,
    vote_threshold: str = "majority",
) -> OptimizerDecision:
    """Algorithm 2: pick the learning algorithm for a fusion instance.

    Parameters
    ----------
    n_features:
        ``|K|``, the number of domain-feature columns in the model.
    tau:
        Bound threshold for the ERM fast path (paper uses 0.1).
    avg_accuracy:
        Override the agreement-based estimate (used by the oracle ablation).
    """
    n_labels = len(truth)
    bound = erm_generalization_bound(n_features, n_labels) if n_labels else float("inf")
    if n_labels and bound < tau:
        accuracy = (
            avg_accuracy
            if avg_accuracy is not None
            else estimate_average_accuracy(dataset, method=accuracy_method)
        )
        return OptimizerDecision(
            algorithm="erm",
            reason="bound",
            erm_units=float(n_labels),
            em_units=float("nan"),
            estimated_accuracy=accuracy,
            bound=bound,
        )

    accuracy = (
        avg_accuracy
        if avg_accuracy is not None
        else estimate_average_accuracy(dataset, method=accuracy_method)
    )
    erm_units = erm_information_units(dataset, truth, per_observation)
    em_units = em_information_units(dataset, accuracy, per_observation, vote_threshold)
    algorithm = "em" if erm_units < em_units else "erm"
    return OptimizerDecision(
        algorithm=algorithm,
        reason="units",
        erm_units=erm_units,
        em_units=em_units,
        estimated_accuracy=accuracy,
        bound=bound,
    )
