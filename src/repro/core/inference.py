"""Exact posterior inference for SLiMFast (paper Equations 1 and 4).

Given fitted trust scores, the objects are conditionally independent, so the
posterior ``P(T_o = d | Ω; w)`` is an exact per-object softmax over the
claimed values — no sampling needed.  (The factor-graph Gibbs sampler in
:mod:`repro.factorgraph` reproduces the paper's DeepDive-based inference and
is validated against these closed forms.)

The hot paths accept a ``backend`` switch: ``"vectorized"`` (default)
computes everything as segmented array reductions over the flattened
(object, value) rows — a single segmented logsumexp per query — while
``"reference"`` keeps the original per-object Python loops as the
machine-checked ground truth (see ``tests/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.encoding import check_backend, expand_spans
from ..fusion.posterior_store import segmented_argmax
from ..fusion.types import ObjectId, Value
from ..optim.objectives import segment_softmax
from .model import AccuracyModel
from .structure import PairStructure, build_pair_structure


def pair_scores(
    structure: PairStructure,
    trust: np.ndarray,
    extra_scores: Optional[np.ndarray] = None,
    domain_correction: bool = True,
) -> np.ndarray:
    """Unnormalized log-scores per flattened (object, value) row.

    ``extra_scores`` lets extensions (copying features, priors) add
    per-row contributions on top of the vote-weighted trust scores.
    ``domain_correction`` adds the ``log(|D_o| - 1)`` per-vote offset (see
    :class:`PairStructure.base_scores`); it is a no-op on binary domains.
    """
    scores = np.bincount(
        structure.obs_pair_idx,
        weights=trust[structure.obs_source_idx],
        minlength=structure.n_pairs,
    )
    if domain_correction:
        scores = scores + structure.base_scores
    if extra_scores is not None:
        if extra_scores.shape[0] != structure.n_pairs:
            raise ValueError("extra_scores must align with flattened rows")
        scores = scores + extra_scores
    return scores


def posterior_rows(
    structure: PairStructure,
    model: AccuracyModel,
    extra_scores: Optional[np.ndarray] = None,
    domain_correction: bool = True,
) -> np.ndarray:
    """Posterior probability of every flattened (object, value) row.

    The array-level entry point of the vectorized engine: one segmented
    softmax over the structure's row spans, no per-object packaging.
    """
    scores = pair_scores(structure, model.trust_scores(), extra_scores, domain_correction)
    return segment_softmax(scores, structure.pair_object_pos, structure.n_objects)


def posteriors(
    dataset: FusionDataset,
    model: AccuracyModel,
    structure: Optional[PairStructure] = None,
    clamp: Optional[Mapping[ObjectId, Value]] = None,
    extra_scores: Optional[np.ndarray] = None,
    domain_correction: bool = True,
    backend: str = "vectorized",
) -> Dict[ObjectId, Dict[Value, float]]:
    """Posterior distributions ``P(T_o = d | Ω)`` for every object.

    Parameters
    ----------
    clamp:
        Objects whose value is known (training ground truth); their
        posterior is a point mass on the known value, mirroring observed
        variables in the compiled factor graph.
    extra_scores:
        Optional per-row additive scores (see :func:`pair_scores`).
    backend:
        ``"vectorized"`` (default) or ``"reference"``.
    """
    check_backend(backend)
    if structure is None:
        structure = build_pair_structure(dataset, backend=backend)
    probs = posterior_rows(structure, model, extra_scores, domain_correction)
    clamp = clamp or {}

    if backend == "reference":
        result: Dict[ObjectId, Dict[Value, float]] = {}
        for position, obj in enumerate(structure.object_ids):
            rows = structure.rows_of(position)
            if obj in clamp:
                known = clamp[obj]
                dist = {structure.pair_values[row]: 0.0 for row in rows}
                dist[known] = 1.0
                result[obj] = dist
            else:
                result[obj] = {structure.pair_values[row]: float(probs[row]) for row in rows}
        return result
    return package_posteriors(structure, probs, clamp)


def package_posteriors(
    structure: PairStructure,
    probs: np.ndarray,
    clamp: Optional[Mapping[ObjectId, Value]] = None,
) -> Dict[ObjectId, Dict[Value, float]]:
    """Package flat row probabilities into per-object value dicts.

    Bulk-converts the probability vector once and slices Python lists,
    which is an order of magnitude cheaper than per-row array indexing.
    """
    offsets = structure.pair_offsets.tolist()
    values = structure.pair_values
    probs_list = probs.tolist()
    result: Dict[ObjectId, Dict[Value, float]] = {}
    for position, obj in enumerate(structure.object_ids):
        start, stop = offsets[position], offsets[position + 1]
        result[obj] = dict(zip(values[start:stop], probs_list[start:stop]))
    if clamp:
        position_of = {obj: i for i, obj in enumerate(structure.object_ids)}
        for obj, known in clamp.items():
            position = position_of.get(obj)
            if position is None:
                continue
            start, stop = offsets[position], offsets[position + 1]
            dist = dict.fromkeys(values[start:stop], 0.0)
            dist[known] = 1.0
            result[obj] = dist
    return result


def map_assignment(posterior: Mapping[ObjectId, Mapping[Value, float]]) -> Dict[ObjectId, Value]:
    """Maximum-a-posteriori value per object (the fusion output ``v_o``).

    Ties break toward the first value in domain order, which is the
    first-seen claimed value — a deterministic rule.
    """
    assignment: Dict[ObjectId, Value] = {}
    for obj, dist in posterior.items():
        best_value = None
        best_prob = -1.0
        for value, prob in dist.items():
            if prob > best_prob:
                best_prob = prob
                best_value = value
        assignment[obj] = best_value
    return assignment


def map_rows(
    structure: PairStructure,
    probs: np.ndarray,
    clamp: Optional[Mapping[ObjectId, Value]] = None,
) -> Dict[ObjectId, Value]:
    """MAP value per object straight from flat row probabilities.

    Segmented argmax with the same tie-breaking rule as
    :func:`map_assignment` (first row of the object's block wins ties),
    shared with the ragged posterior store via
    :func:`repro.fusion.posterior_store.segmented_argmax`.
    """
    offsets = structure.pair_offsets
    best_row = offsets[:-1] + segmented_argmax(probs, offsets)
    values = structure.pair_values
    assignment: Dict[ObjectId, Value] = {
        obj: values[best_row[position]]
        for position, obj in enumerate(structure.object_ids)
    }
    if clamp:
        for obj, known in clamp.items():
            if obj in assignment:
                assignment[obj] = known
    return assignment


def clamp_rows(structure: PairStructure, label_rows: np.ndarray) -> np.ndarray:
    """Candidate rows the E-step clamp must zero out, precomputed once.

    For each labeled object (``label_rows[position] >= 0``) these are the
    rows of its block *except* the row of its true value.  Masking their
    scores to ``-inf`` before the segmented softmax yields the clamped
    posterior (an exact point mass on the label row) in the same pass as
    the softmax itself — no post-hoc scatter per EM round.  The row set
    depends only on (structure, truth), so EM computes it once and reuses
    it across every round (see :func:`expected_correctness`).
    """
    labeled_positions = np.flatnonzero(label_rows >= 0)
    if labeled_positions.size == 0:
        return np.zeros(0, dtype=np.int64)
    starts = structure.pair_offsets[labeled_positions]
    lengths = structure.pair_offsets[labeled_positions + 1] - starts
    blocked = np.zeros(structure.n_pairs, dtype=bool)
    blocked[expand_spans(starts, lengths)] = True
    blocked[label_rows[labeled_positions]] = False
    return np.flatnonzero(blocked)


def expected_correctness(
    structure: PairStructure,
    trust: np.ndarray,
    label_rows: np.ndarray,
    extra_scores: Optional[np.ndarray] = None,
    domain_correction: bool = True,
    backend: str = "vectorized",
    blocked_rows: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-observation posterior probability that the claim is correct.

    This is the E-step quantity of EM: for each observation the posterior
    mass of the value it claims, with ground-truth objects clamped to their
    label row.  Returns ``(q_obs, row_probs)`` where ``q_obs`` aligns with
    ``structure.obs_*`` arrays.

    On the vectorized backend the clamp is *fused* into the segmented
    softmax: the non-label rows of labeled objects (``blocked_rows``,
    precomputed by :func:`clamp_rows` or derived here when omitted) are
    masked to ``-inf`` score, so one softmax pass produces the clamped
    posterior directly.  The result is bit-identical to the reference
    post-hoc scatter: a labeled object's block softmaxes over a single
    finite score, giving exactly 1.0 on the label row and 0.0 elsewhere.
    """
    check_backend(backend)
    scores = pair_scores(structure, trust, extra_scores, domain_correction)

    if backend == "vectorized":
        if blocked_rows is None:
            blocked_rows = clamp_rows(structure, label_rows)
        if blocked_rows.size:
            # pair_scores returns a fresh array; masking in place is safe.
            scores[blocked_rows] = -np.inf
        probs = segment_softmax(scores, structure.pair_object_pos, structure.n_objects)
        return probs[structure.obs_pair_idx], probs

    probs = segment_softmax(scores, structure.pair_object_pos, structure.n_objects)
    labeled = label_rows >= 0
    if np.any(labeled):
        for position in np.flatnonzero(labeled):
            rows = structure.rows_of(int(position))
            probs[rows.start : rows.stop] = 0.0
            probs[label_rows[position]] = 1.0
    return probs[structure.obs_pair_idx], probs
