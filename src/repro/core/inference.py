"""Exact posterior inference for SLiMFast (paper Equations 1 and 4).

Given fitted trust scores, the objects are conditionally independent, so the
posterior ``P(T_o = d | Ω; w)`` is an exact per-object softmax over the
claimed values — no sampling needed.  (The factor-graph Gibbs sampler in
:mod:`repro.factorgraph` reproduces the paper's DeepDive-based inference and
is validated against these closed forms.)
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import ObjectId, Value
from ..optim.objectives import segment_softmax
from .model import AccuracyModel
from .structure import PairStructure, build_pair_structure


def pair_scores(
    structure: PairStructure,
    trust: np.ndarray,
    extra_scores: Optional[np.ndarray] = None,
    domain_correction: bool = True,
) -> np.ndarray:
    """Unnormalized log-scores per flattened (object, value) row.

    ``extra_scores`` lets extensions (copying features, priors) add
    per-row contributions on top of the vote-weighted trust scores.
    ``domain_correction`` adds the ``log(|D_o| - 1)`` per-vote offset (see
    :class:`PairStructure.base_scores`); it is a no-op on binary domains.
    """
    scores = np.bincount(
        structure.obs_pair_idx,
        weights=trust[structure.obs_source_idx],
        minlength=structure.n_pairs,
    )
    if domain_correction:
        scores = scores + structure.base_scores
    if extra_scores is not None:
        if extra_scores.shape[0] != structure.n_pairs:
            raise ValueError("extra_scores must align with flattened rows")
        scores = scores + extra_scores
    return scores


def posteriors(
    dataset: FusionDataset,
    model: AccuracyModel,
    structure: Optional[PairStructure] = None,
    clamp: Optional[Mapping[ObjectId, Value]] = None,
    extra_scores: Optional[np.ndarray] = None,
    domain_correction: bool = True,
) -> Dict[ObjectId, Dict[Value, float]]:
    """Posterior distributions ``P(T_o = d | Ω)`` for every object.

    Parameters
    ----------
    clamp:
        Objects whose value is known (training ground truth); their
        posterior is a point mass on the known value, mirroring observed
        variables in the compiled factor graph.
    extra_scores:
        Optional per-row additive scores (see :func:`pair_scores`).
    """
    structure = structure if structure is not None else build_pair_structure(dataset)
    trust = model.trust_scores()
    scores = pair_scores(structure, trust, extra_scores, domain_correction)
    probs = segment_softmax(scores, structure.pair_object_pos, structure.n_objects)

    clamp = clamp or {}
    result: Dict[ObjectId, Dict[Value, float]] = {}
    for position, obj in enumerate(structure.object_ids):
        rows = structure.rows_of(position)
        if obj in clamp:
            known = clamp[obj]
            dist = {structure.pair_values[row]: 0.0 for row in rows}
            dist[known] = 1.0
            result[obj] = dist
        else:
            result[obj] = {
                structure.pair_values[row]: float(probs[row]) for row in rows
            }
    return result


def map_assignment(
    posterior: Mapping[ObjectId, Mapping[Value, float]]
) -> Dict[ObjectId, Value]:
    """Maximum-a-posteriori value per object (the fusion output ``v_o``).

    Ties break toward the first value in domain order, which is the
    first-seen claimed value — a deterministic rule.
    """
    assignment: Dict[ObjectId, Value] = {}
    for obj, dist in posterior.items():
        best_value = None
        best_prob = -1.0
        for value, prob in dist.items():
            if prob > best_prob:
                best_prob = prob
                best_value = value
        assignment[obj] = best_value
    return assignment


def expected_correctness(
    structure: PairStructure,
    trust: np.ndarray,
    label_rows: np.ndarray,
    extra_scores: Optional[np.ndarray] = None,
    domain_correction: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-observation posterior probability that the claim is correct.

    This is the E-step quantity of EM: for each observation the posterior
    mass of the value it claims, with ground-truth objects clamped to their
    label row.  Returns ``(q_obs, row_probs)`` where ``q_obs`` aligns with
    ``structure.obs_*`` arrays.
    """
    scores = pair_scores(structure, trust, extra_scores, domain_correction)
    probs = segment_softmax(scores, structure.pair_object_pos, structure.n_objects)

    labeled = label_rows >= 0
    if np.any(labeled):
        labeled_positions = np.where(labeled)[0]
        for position in labeled_positions:
            rows = structure.rows_of(int(position))
            probs[rows.start : rows.stop] = 0.0
            probs[label_rows[position]] = 1.0
    return probs[structure.obs_pair_idx], probs
