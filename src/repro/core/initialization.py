"""Source-quality initialization (paper Section 5.3.2).

Newly available sources have no observations, so conflict-based methods
cannot score them.  SLiMFast's domain-feature weights generalize: the
accuracy of an unseen source is predicted from its features alone via
``sigmoid(b + F_new · w_K)``.

:func:`evaluate_initialization` reproduces the paper's experiment: train on
a fraction of the sources, predict the accuracies of the held-out sources,
and report the mean absolute error against their empirical accuracies
(Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .._rng import as_generator
from ..fusion.dataset import FusionDataset, subset_sources
from ..fusion.types import DatasetError, SourceId
from .erm import ERMConfig, ERMLearner
from .model import AccuracyModel


@dataclass
class InitializationReport:
    """Outcome of one unseen-source prediction experiment.

    Attributes
    ----------
    fraction_used:
        Fraction of sources whose observations were available at training.
    predictions:
        Predicted accuracy per held-out source.
    reference:
        Empirical accuracy (from full ground truth) per held-out source.
    error:
        Mean absolute error over held-out sources with a reference value.
    """

    fraction_used: float
    predictions: Dict[SourceId, float]
    reference: Dict[SourceId, float]
    error: float


def predict_unseen_accuracies(
    model: AccuracyModel,
    features_by_source: Mapping[SourceId, Mapping[str, object]],
) -> Dict[SourceId, float]:
    """Predict accuracies for sources absent from the fitted model."""
    return {source: model.predict_accuracy(feats) for source, feats in features_by_source.items()}


def evaluate_initialization(
    dataset: FusionDataset,
    fraction_used: float,
    seed: int = 0,
    train_fraction: float = 1.0,
    erm_config: Optional[ERMConfig] = None,
) -> InitializationReport:
    """Paper Figure 7 protocol for one ``fraction_used`` setting.

    1. Sample ``fraction_used`` of the sources; restrict the dataset to
       their observations.
    2. Fit SLiMFast-ERM (with a shared intercept) on the restricted data
       using ``train_fraction`` of its ground truth.
    3. Predict held-out sources' accuracies from features alone and compare
       with their empirical accuracies on the full dataset.
    """
    if not 0.0 < fraction_used < 1.0:
        raise DatasetError("fraction_used must be in (0, 1)")
    rng = as_generator(seed)
    all_sources: List[SourceId] = dataset.sources.items
    order = rng.permutation(len(all_sources))
    n_used = max(1, int(round(fraction_used * len(all_sources))))
    used = [all_sources[i] for i in order[:n_used]]
    held_out = [all_sources[i] for i in order[n_used:]]
    if not held_out:
        raise DatasetError("fraction_used leaves no held-out sources")

    restricted = subset_sources(dataset, used)
    # Only the revealed (train) side is consumed here — evaluation is on
    # held-out *sources*, not held-out objects — so the split() rule that
    # both sides be non-empty does not apply.  Reveal everything for
    # train_fraction=1.0 (the Figure 7 default) and for fractions that
    # round to every labeled object; clamp fractions that round to zero
    # up to one revealed object (ERM cannot fit on none).
    n_labeled = len(restricted.ground_truth)
    n_train = int(round(train_fraction * n_labeled)) if train_fraction < 1.0 else n_labeled
    if n_train >= n_labeled:
        truth = restricted.ground_truth
    else:
        n_train = max(n_train, 1)
        truth = restricted.split(n_train / n_labeled, seed=seed).train_truth

    config = erm_config if erm_config is not None else ERMConfig(intercept=True)
    if not config.intercept:
        config = ERMConfig(**{**config.__dict__, "intercept": True})
    model = ERMLearner(config).fit(restricted, truth)

    reference_all = dataset.empirical_accuracies()
    features = dataset.source_features
    predictions: Dict[SourceId, float] = {}
    reference: Dict[SourceId, float] = {}
    for source in held_out:
        feats = features.get(source)
        if feats is None or source not in reference_all:
            continue
        predictions[source] = model.predict_accuracy(feats)
        reference[source] = reference_all[source]

    if not predictions:
        raise DatasetError("no held-out source had both features and ground truth")
    error = float(np.mean([abs(predictions[s] - reference[s]) for s in predictions]))
    return InitializationReport(
        fraction_used=fraction_used,
        predictions=predictions,
        reference=reference,
        error=error,
    )


def initialization_curve(
    dataset: FusionDataset,
    fractions: Sequence[float] = (0.25, 0.40, 0.50, 0.75),
    seeds: Sequence[int] = (0, 1, 2),
    erm_config: Optional[ERMConfig] = None,
) -> Dict[float, float]:
    """Mean unseen-source error per fraction (the Figure 7 series)."""
    curve: Dict[float, float] = {}
    for fraction in fractions:
        errors = [
            evaluate_initialization(dataset, fraction, seed=seed, erm_config=erm_config).error
            for seed in seeds
        ]
        curve[fraction] = float(np.mean(errors))
    return curve
