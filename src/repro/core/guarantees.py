"""Theoretical error-bound calculators (paper Section 4.2, Appendix A/B).

These functions evaluate the *rates* the paper proves (constants set to 1,
as the statements are O(...) bounds).  They power the optimizer's fast path
and let EXPERIMENTS.md report measured errors alongside the theory.

* Theorem 1 / 2 (with ground truth): generalization and accuracy-estimation
  error scale as ``sqrt(|K| / |G|) * log|G|``.
* Sparse refinement: with L1 regularization and ``k`` active features the
  rate improves to ``sqrt(k * log|K| / |G|) * log|G|``.
* Theorem 3 (no ground truth): average KL error of EM-style estimation is
  ``log|O| / (|S| * delta) + sqrt(|K| / (|O||S|p)) * log^2(|O||S|) / delta``.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_generator


def rademacher_linear(n_features: int, n_samples: int) -> float:
    """Rademacher-complexity rate for linear losses (Appendix A, Eq. 5)."""
    if n_samples <= 0:
        return float("inf")
    effective = max(n_features, 1)
    return float(np.sqrt(effective / n_samples) * np.log(max(n_samples, 2)))


def erm_generalization_bound(n_features: int, n_labels: int) -> float:
    """Theorem 1/2 rate: ``sqrt(|K|/|G|) log|G|``.

    ``n_features`` counts the domain-feature columns ``|K|``; with zero
    features the model still has a one-dimensional effective class per
    source, so the rate uses ``max(|K|, 1)``.
    """
    return rademacher_linear(n_features, n_labels)


def erm_sparse_bound(k_active: int, n_features: int, n_labels: int) -> float:
    """Sparse (L1) refinement: ``sqrt(k log|K| / |G|) log|G|``."""
    if n_labels <= 0:
        return float("inf")
    k = max(k_active, 1)
    total = max(n_features, 2)
    return float(np.sqrt(k * np.log(total) / n_labels) * np.log(max(n_labels, 2)))


def em_accuracy_bound(
    n_sources: int,
    n_objects: int,
    density: float,
    delta: float,
    n_features: int,
) -> float:
    """Theorem 3 rate on the average KL error of EM accuracy estimates.

    Parameters
    ----------
    density:
        Probability ``p`` of a source observing an object.
    delta:
        Accuracy margin: every source satisfies ``A*_s >= 0.5 + delta/2``.
    """
    if min(n_sources, n_objects) <= 0 or density <= 0.0 or delta <= 0.0:
        return float("inf")
    so = float(n_sources) * float(n_objects)
    first = np.log(max(n_objects, 2)) / (n_sources * delta)
    second = (np.sqrt(max(n_features, 1) / (so * density)) * np.log(max(so, 2)) ** 2 / delta)
    return float(first + second)


def expected_observations(n_sources: int, n_objects: int, density: float) -> float:
    """Expected observation count ``|S||O|p`` under uniform selectivity."""
    return float(n_sources) * float(n_objects) * float(density)


def empirical_rademacher_linear(
    features: np.ndarray,
    weight_bound: float = 1.0,
    n_draws: int = 200,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the empirical Rademacher complexity of the
    norm-bounded linear class over the given sample rows.

    For ``H = {z -> w . z : ||w||_2 <= B}`` the supremum in the Rademacher
    definition has the closed form ``sup_w |sum_i s_i w . z_i| =
    B * ||sum_i s_i z_i||_2``, so the estimate is
    ``(2 B / n) * E_s ||sum_i s_i z_i||``.  This is the data-dependent
    quantity behind the paper's Appendix A bounds; the test suite checks
    it follows the ``sqrt(|K| / n)`` rate the bounds assume.
    """
    rows = np.asarray(features, dtype=float)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ValueError("features must be a non-empty 2-D sample matrix")
    n = rows.shape[0]
    rng = as_generator(seed)
    total = 0.0
    for _ in range(n_draws):
        signs = rng.choice([-1.0, 1.0], size=n)
        total += float(np.linalg.norm(signs @ rows))
    return 2.0 * weight_bound * total / (n_draws * n)
