"""Expectation maximization for SLiMFast (paper Section 3.2).

When ground truth is limited or absent, SLiMFast estimates the weights and
the latent true values jointly:

* **E-step** — with weights fixed, compute posteriors ``P(T_o | Ω; w)``
  (Equation 4).  Objects with ground truth are *clamped* (they correspond to
  observed variables in the compiled factor graph), which makes this a
  semi-supervised procedure exactly as in the paper.
* **M-step** — with posteriors fixed, refit the accuracy model by weighted
  logistic regression: each observation contributes a soft correctness
  label ``q = P(T_o = v_{o,s} | Ω; w)``.

Initialization sets every source's accuracy to ``init_accuracy`` (0.7), so
the first E-step behaves like majority vote; when training labels exist an
ERM warm start is used instead.  The likelihood is non-convex and EM may
converge to local optima — the behaviour the paper's optimizer reasons
about (e.g. label-flipped solutions when average accuracy < 0.5).

**Warm-started M-step contract** (``solver="lbfgs-warm"``): each M-step is
a convex weighted logistic regression whose data only drifts through the
soft labels, so consecutive rounds share second-order information.  The
warm path starts every solve from the previous round's weights, uses a
*tolerance-adaptive* stopping rule (coarse while the outer EM delta is
large, floored at the scipy reference's precision near convergence), and
computes updates as structured Newton directions on the per-source
sufficient statistics (:meth:`CorrectnessObjective.newton_direction`, an
``O(S K^2)`` arrowhead solve) — with a warm-memory L-BFGS
(:func:`repro.optim.solvers.minimize_lbfgs_warm`) as the generic fallback
when the structured solve is unavailable.  Both paths minimize the same
objective as the scipy reference: objective values agree at atol=1e-8,
while parameter/accuracy agreement is bounded near 1e-6 by scipy's own
double-precision stopping plateau (see ``tests/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.encoding import check_backend, encode_dataset
from ..fusion.features import FeatureSpace, build_design_matrix
from ..fusion.types import ObjectId, Value
from ..optim.numerics import logit
from ..optim.objectives import CorrectnessObjective, reduce_correctness_samples
from ..optim.solvers import (
    LBFGSMemory,
    SolverResult,
    WarmStartState,
    minimize_lbfgs,
    minimize_lbfgs_warm,
    minimize_newton,
    sgd,
)
from .erm import ERMConfig, ERMLearner
from .inference import clamp_rows, expected_correctness
from .model import AccuracyModel, model_from_flat
from .structure import PairStructure, build_incremental_structure, build_pair_structure


@dataclass
class EMConfig:
    """Hyper-parameters of the EM learner.

    Attributes
    ----------
    max_iterations:
        EM round budget.
    tolerance:
        Convergence threshold on the mean absolute change in estimated
        source accuracies between rounds.
    init_accuracy:
        Uniform initial accuracy (first E-step = majority vote).
    warm_start_erm:
        When labels exist, initialize from an ERM fit on them.
    l2_sources, l2_features:
        Ridge penalties applied in every M-step.
    use_features:
        When False, reduces to the paper's Sources-EM variant (the
        discriminative equivalent of Zhao et al.'s generative model).
    solver:
        M-step solver: ``"lbfgs"`` (scipy L-BFGS-B, the reference),
        ``"lbfgs-warm"`` (warm-started structured Newton with an L-BFGS
        fallback — same minimizer, no per-round scipy setup cost, ~2.7x
        faster end-to-end EM at 10k observations) or ``"sgd"``.
        **Equivalence contract:** ``"lbfgs-warm"`` and ``"lbfgs"`` minimize
        the same convex M-step; objective values agree at atol=1e-8 and
        accuracies near 1e-6, bounded by scipy's double-precision stopping
        plateau (full statement in the module docstring; pinned in
        ``tests/test_vectorized_equivalence.py``).  Batched sweeps
        (:class:`repro.experiments.sweeps.SweepRunner`) default to
        ``"lbfgs-warm"`` on the strength of this contract.
    m_step_tolerance:
        Convergence tolerance of each M-step solve (scipy ``ftol`` for
        ``"lbfgs"``, the relative-decrease stop for ``"lbfgs-warm"``).
        Tighten to make the two solvers' trajectories coincide exactly;
        the default matches scipy's historical behaviour.
    backend:
        ``"vectorized"`` (default) runs the E-step clamp and the M-step
        sufficient statistics as array reductions over the dataset's dense
        encoding; ``"reference"`` keeps the original per-object loops.
    n_shards:
        When set, every E-step runs shard-by-shard over contiguous object
        ranges (:mod:`repro.fusion.sharding`): each shard computes partial
        per-source sufficient statistics and the M-step reduces them —
        peak E-step memory is bounded by the largest shard instead of the
        whole structure.  **Equivalence contract:** value codes are
        bit-identical to the unsharded fit and probabilities/accuracies
        agree at ``atol=1e-10`` for any shard count (only the cross-shard
        float reduce reorders additions; pinned in
        ``tests/fusion/test_posterior_store.py``).  Requires the
        vectorized backend and a statistics-reducing solver (not
        ``"sgd"``).
    shard_jobs:
        Process fan-out for the shard E-steps *within one fit* (requires
        ``n_shards``): values above 1 evaluate shards on a
        :class:`repro.experiments.parallel.ShardStatPool` built once per
        fit; ``None``/1 keeps the serial in-process loop.  The reduction
        order is fixed (ascending shard index), so the fit is identical
        either way.
    featurizer:
        Optional :class:`repro.featurize.FeaturizerPipeline` (anything
        with a ``design_for(dataset_or_encoding)`` method).  When set,
        the design matrix is produced by the pipeline — data-derived
        reliability features plus the metadata block — instead of the
        plain metadata :class:`FeatureSpace`.  Requires
        ``use_features=True``; explicit ``design=``/``feature_space=``
        arguments to :meth:`EMLearner.fit` still take precedence.
    """

    max_iterations: int = 50
    tolerance: float = 1e-4
    init_accuracy: float = 0.7
    warm_start_erm: bool = True
    l2_sources: float = 4.0
    l2_features: float = 1.0
    use_features: bool = True
    solver: str = "lbfgs"
    backend: str = "vectorized"
    sgd_epochs: int = 10
    seed: int = 0
    m_step_tolerance: float = 1e-8
    n_shards: Optional[int] = None
    shard_jobs: Optional[int] = None
    featurizer: Optional[object] = None


EM_SOLVERS = ("lbfgs", "lbfgs-warm", "sgd")


@dataclass
class EMTrace:
    """Per-round diagnostics of an EM run."""

    accuracy_deltas: List[float]
    n_iterations: int
    converged: bool


class EMLearner:
    """Fits SLiMFast's accuracy model by (semi-supervised) EM."""

    def __init__(self, config: Optional[EMConfig] = None, **overrides: object) -> None:
        base = config if config is not None else EMConfig()
        if overrides:
            base = EMConfig(**{**base.__dict__, **overrides})
        check_backend(base.backend)
        if base.solver not in EM_SOLVERS:
            raise ValueError(f"unknown solver {base.solver!r}; expected one of {EM_SOLVERS}")
        if base.n_shards is not None:
            if int(base.n_shards) < 1:
                raise ValueError(f"n_shards must be a positive integer, got {base.n_shards!r}")
            if base.backend != "vectorized":
                raise ValueError("n_shards requires backend='vectorized'")
            if base.solver == "sgd":
                raise ValueError(
                    "n_shards requires a statistics-reducing solver "
                    "('lbfgs' or 'lbfgs-warm'); sgd consumes per-observation samples"
                )
        elif base.shard_jobs is not None:
            raise ValueError("shard_jobs requires n_shards to be set")
        if base.featurizer is not None:
            if not base.use_features:
                raise ValueError("featurizer requires use_features=True")
            if not hasattr(base.featurizer, "design_for"):
                raise ValueError(
                    "featurizer must provide design_for(dataset) "
                    "(e.g. repro.featurize.FeaturizerPipeline), got "
                    f"{type(base.featurizer).__name__}"
                )
        self.config = base
        self.trace_: Optional[EMTrace] = None
        self.warm_state_: Optional[WarmStartState] = None
        self.m_step_result_: Optional[SolverResult] = None

    def fit(
        self,
        dataset: FusionDataset,
        truth: Optional[Mapping[ObjectId, Value]] = None,
        design: Optional[np.ndarray] = None,
        feature_space: Optional[FeatureSpace] = None,
        structure: Optional[PairStructure] = None,
        label_rows: Optional[np.ndarray] = None,
        blocked_rows: Optional[np.ndarray] = None,
        warm_state: Optional[WarmStartState] = None,
    ) -> AccuracyModel:
        """Run EM until source accuracies stabilize.

        ``truth`` may be empty (fully unsupervised) or partial
        (semi-supervised with clamped evidence variables).

        ``structure`` / ``label_rows`` / ``blocked_rows`` let a sweep engine
        pass a prebuilt (possibly source-masked) candidate structure, its
        per-object truth rows and the fused E-step clamp plan
        (:func:`~repro.core.inference.clamp_rows`), skipping the per-fit
        derivation.  ``warm_state`` seeds the *inner* M-step solver
        (starting point and L-BFGS curvature memory) from a previously
        completed fit; because each M-step is a convex solve this
        accelerates the first rounds without changing any round's optimum,
        so the EM trajectory — and therefore the fitted model — is
        unchanged up to the M-step solver tolerance.  Only
        ``solver="lbfgs-warm"`` honors the seed (its gradient-based stop
        can be pinned to the tolerance floor for the seeded round, keeping
        the round's optimum donor-independent; scipy's decrease-based stop
        cannot), other solvers ignore it.  The learner's own final state is
        published as :attr:`warm_state_` for the next fit in a sweep,
        alongside :attr:`m_step_result_` (the last M-step's
        :class:`~repro.optim.solvers.SolverResult`).
        """
        truth = dict(truth or {})
        vectorized = self.config.backend == "vectorized"
        if design is None or feature_space is None:
            if self.config.featurizer is not None:
                design, feature_space = self.config.featurizer.design_for(dataset)
            elif vectorized:
                design, feature_space = encode_dataset(dataset).design(self.config.use_features)
            else:
                design, feature_space = build_design_matrix(
                    dataset, use_features=self.config.use_features
                )

        if structure is None:
            structure = build_pair_structure(dataset, backend=self.config.backend)
        if label_rows is None:
            label_rows = structure.label_rows(truth)
        # The rows the E-step clamp masks depend only on (structure, truth):
        # computed once here (or passed in), fused into every round's
        # segmented softmax.
        if blocked_rows is None and vectorized:
            blocked_rows = clamp_rows(structure, label_rows)

        # The M-step model carries an unpenalized shared intercept: ridge
        # shrinkage then pulls individual sources toward the *population
        # mean* accuracy instead of toward 0.5.  Without it, sparse
        # instances (few observations per source) collapse to the
        # degenerate all-0.5 fixed point.
        w = np.concatenate(
            [self._initial_weights(dataset, truth, design, feature_space, structure), [0.0]]
        )
        model = model_from_flat(w, dataset, design, feature_space, intercept=True)

        # Sharded E-step: contiguous object-range shards computed once per
        # fit; each round reduces their partial per-source statistics
        # instead of touching the full structure in one pass (identical up
        # to the atol=1e-10 cross-shard reduce; see EMConfig.n_shards).
        shards = None
        shard_blocked = None
        shard_pool = None
        shard_reduce = None
        if vectorized and self.config.n_shards is not None:
            from ..fusion.sharding import (
                shard_blocked_rows,
                shard_structure,
                sharded_correctness_stats,
            )

            shards = shard_structure(structure, int(self.config.n_shards))
            shard_blocked = shard_blocked_rows(shards, blocked_rows)
            shard_reduce = sharded_correctness_stats
            if self.config.shard_jobs is not None and int(self.config.shard_jobs) > 1:
                from ..experiments.parallel import ShardStatPool

                shard_pool = ShardStatPool(
                    shards, shard_blocked, dataset.n_sources, int(self.config.shard_jobs)
                )

        deltas: List[float] = []
        converged = False
        previous_acc = model.accuracies()
        reduce_m_step = vectorized and self.config.solver != "sgd"
        warm = self.config.solver == "lbfgs-warm"
        # A warm-state handoff must match this fit's parameter layout; an
        # incompatible donor (different feature flag or dataset) is ignored
        # entirely — both its starting point and its curvature memory.
        seeded = warm and warm_state is not None and warm_state.compatible_with(w.shape[0])
        # Curvature memory shared across M-steps: the objective only drifts
        # through the soft labels, so the previous round's inverse-Hessian
        # approximation remains a good preconditioner.  A sweep's warm-state
        # handoff continues a *copy* of the donor fit's memory instead of
        # starting cold — copying keeps the donor's published state frozen
        # rather than aliasing one memory across every fit of a sweep.
        if seeded and warm_state.memory is not None:
            donor_memory = warm_state.memory
            warm_memory = LBFGSMemory(
                max_pairs=donor_memory.max_pairs,
                s=list(donor_memory.s),
                y=list(donor_memory.y),
                rho=list(donor_memory.rho),
            )
        else:
            warm_memory = LBFGSMemory() if warm else None
        # Foreign starting point for the first inner solve only; the convex
        # M-step reaches the same optimum from any start.  Restricted to the
        # lbfgs-warm family, whose gradient-based stopping rule we can pin
        # below; scipy's decrease-based stop would terminate a near-optimal
        # foreign start early and break the equivalence contract.
        solve_from = w
        foreign_start = False
        if seeded:
            solve_from = np.asarray(warm_state.w, dtype=float)
            foreign_start = True
        objective: Optional[CorrectnessObjective] = None
        result: Optional[SolverResult] = None
        delta = float("inf")
        try:
            for _ in range(self.config.max_iterations):
                # E-step: soft correctness of each observation, with the
                # ground-truth clamp fused into the segmented softmax.  On
                # the sharded path the per-observation q never materializes
                # globally: each shard reduces its own observations to
                # per-source (totals, mass) partials.
                if shards is not None:
                    trust = model.trust_scores()
                    if shard_pool is not None:
                        totals, mass = shard_pool.stats(trust)
                    else:
                        totals, mass = shard_reduce(
                            shards, trust, dataset.n_sources, shard_blocked
                        )
                    active = np.flatnonzero(totals > 0)
                    source_idx = active
                    labels = np.clip(mass[active] / totals[active], 0.0, 1.0)
                    sample_weights = totals[active]
                else:
                    q_obs, _ = expected_correctness(
                        structure,
                        model.trust_scores(),
                        label_rows,
                        backend=self.config.backend,
                        blocked_rows=blocked_rows,
                    )

                    # M-step samples: the objective is built once and
                    # re-pointed (re-reduced) at each round's samples —
                    # design, layout and penalties never change.
                    if reduce_m_step:
                        source_idx, labels, sample_weights = reduce_correctness_samples(
                            structure.obs_source_idx, q_obs, dataset.n_sources
                        )
                    else:
                        source_idx, labels, sample_weights = (
                            structure.obs_source_idx,
                            q_obs,
                            None,
                        )
                if objective is None:
                    objective = CorrectnessObjective(
                        source_idx=source_idx,
                        labels=labels,
                        design=design,
                        sample_weights=sample_weights,
                        l2_sources=self.config.l2_sources,
                        l2_features=self.config.l2_features,
                        intercept=True,
                    )
                else:
                    objective.update_samples(source_idx, labels, sample_weights)
                if self.config.solver == "sgd":
                    result = sgd(
                        objective,
                        n_samples=structure.obs_source_idx.shape[0],
                        w0=w,
                        epochs=self.config.sgd_epochs,
                        seed=self.config.seed,
                    )
                elif warm:
                    # Tolerance-adaptive stopping: while EM is far from its
                    # fixed point the M-step only needs enough precision to
                    # keep the outer iteration on track; the floor keeps the
                    # final rounds at least as tight as the scipy reference.
                    floor = min(1e-8, 10.0 * self.config.m_step_tolerance)
                    gtol = max(floor, min(1e-6, 1e-2 * delta))
                    if foreign_start:
                        # A donor's weights may already satisfy the coarse
                        # early-round gtol, which would hand them back
                        # verbatim; solving the seeded round to the floor
                        # keeps the round's optimum — and hence the whole EM
                        # trajectory — independent of the donor.
                        gtol = floor
                        foreign_start = False
                    try:
                        # Second-order update on the per-source sufficient
                        # statistics: warm-started from the previous round's
                        # weights, it reaches the M-step optimum in one or
                        # two structured Newton solves.
                        result = minimize_newton(objective, w0=solve_from, gtol=gtol)
                    except np.linalg.LinAlgError:  # pragma: no cover - degenerate
                        result = minimize_lbfgs_warm(
                            objective,
                            w0=solve_from,
                            memory=warm_memory,
                            gtol=gtol,
                            ftol=self.config.m_step_tolerance,
                        )
                else:
                    result = minimize_lbfgs(
                        objective,
                        w0=solve_from,
                        tolerance=self.config.m_step_tolerance,
                        gtol=min(1e-8, 10.0 * self.config.m_step_tolerance),
                    )
                w = result.w
                solve_from = w
                model = model_from_flat(w, dataset, design, feature_space, intercept=True)

                current_acc = model.accuracies()
                delta = float(np.mean(np.abs(current_acc - previous_acc)))
                deltas.append(delta)
                previous_acc = current_acc
                if delta < self.config.tolerance:
                    converged = True
                    break
        finally:
            if shard_pool is not None:
                shard_pool.shutdown()

        self.trace_ = EMTrace(accuracy_deltas=deltas, n_iterations=len(deltas), converged=converged)
        self.m_step_result_ = result
        self.warm_state_ = WarmStartState(w=np.array(w, dtype=float), memory=warm_memory)
        final_space = feature_space if self.config.use_features else None
        return model_from_flat(w, dataset, design, final_space, intercept=True)

    # ------------------------------------------------------------------
    def _initial_weights(
        self,
        dataset: FusionDataset,
        truth: Dict[ObjectId, Value],
        design: np.ndarray,
        feature_space: FeatureSpace,
        structure: Optional[PairStructure] = None,
    ) -> np.ndarray:
        n_params = dataset.n_sources + design.shape[1]
        w = np.zeros(n_params)
        w[: dataset.n_sources] = float(logit(self.config.init_accuracy))
        if truth and self.config.warm_start_erm:
            vectorized = self.config.backend == "vectorized"
            # A masked (leave-source-out) structure must also restrict the
            # warm start — on BOTH backends, or the excluded sources' votes
            # leak into the initialization.  Unmasked reference fits keep
            # the original dataset-walking derivations bit-for-bit.
            masked = structure is not None and (
                structure.n_objects != dataset.n_objects
                or structure.obs_source_idx.shape[0] != dataset.n_observations
            )
            learner = ERMLearner(
                ERMConfig(
                    l2_sources=self.config.l2_sources,
                    l2_features=self.config.l2_features,
                    use_features=self.config.use_features,
                    backend=self.config.backend,
                )
            )
            try:
                warm = learner.fit(
                    dataset,
                    truth,
                    design=design,
                    feature_space=feature_space,
                    structure=structure if (vectorized or masked) else None,
                )
            except Exception:
                return w  # fall back to the uniform init
            # Sources without labeled observations keep the uniform prior so
            # the first E-step still behaves like majority vote for objects
            # the labeled sources do not cover.
            if vectorized or masked:
                # fit() always resolves a structure before calling here.
                if structure.encoding is not None:
                    labeled_all, _ = structure.encoding.truth_codes(truth)
                    labeled_pos = labeled_all[structure.object_dataset_idx]
                else:
                    labeled_pos = np.asarray(
                        [obj in truth for obj in structure.object_ids], dtype=bool
                    )
                obs_positions = structure.pair_object_pos[structure.obs_pair_idx]
                labeled_sources = np.unique(structure.obs_source_idx[labeled_pos[obs_positions]])
            else:
                labeled_sources = {
                    dataset.sources.index(obs.source)
                    for obs in dataset.observations
                    if obs.obj in truth
                }
            for s_idx in labeled_sources:
                w[s_idx] = warm.w_sources[s_idx]
            w[dataset.n_sources :] = warm.w_features
        return w


def fit_incremental(
    encoding,
    truth: Optional[Mapping[ObjectId, Value]] = None,
    warm_state: Optional[WarmStartState] = None,
    config: Optional[EMConfig] = None,
    materialize_dataset: bool = False,
    design: Optional[np.ndarray] = None,
    feature_space: Optional[FeatureSpace] = None,
    **overrides: object,
) -> Tuple[AccuracyModel, "EMLearner"]:
    """Re-fit the EM model over an incrementally-grown stream.

    The batch re-fit entry point for append-only workloads: given an
    :class:`~repro.fusion.encoding.IncrementalEncoding` (and the ground
    truth revealed so far), run a full EM fit against the encoding's
    current snapshot **without recompiling the index arrays** — the
    candidate structure is built directly from the snapshot
    (:func:`~repro.core.structure.build_incremental_structure`) and the
    design matrix comes from the encoding's per-source row cache.

    By default the fit also skips the dataset *container*: the learner
    only needs the sizes, indexers and domains once every derived artifact
    is prebuilt, so it runs over the O(1)
    :meth:`~repro.fusion.encoding.IncrementalEncoding.dataset_view` —
    periodic streaming re-anchors (``StreamingFuser.refit_every``) no
    longer pay the O(n) ``observations()`` walk of
    :meth:`~repro.fusion.encoding.IncrementalEncoding.to_dataset` on every
    re-fit.  ``materialize_dataset=True`` restores the walking path
    (identical fits — the equivalence is pinned in
    ``tests/test_incremental_encoding.py``), useful when the caller wants
    the materialized container afterwards anyway.

    ``warm_state`` seeds the first convex M-step solve from a previous
    re-fit (the PR 3 sweep hook): because each M-step is convex this never
    changes the fit's optimum, only its path, so periodic re-fits over a
    stream converge in fewer inner iterations as the data drifts slowly.
    The solver defaults to the contracted ``"lbfgs-warm"`` path (the only
    one that honors the seed).

    Returns ``(model, learner)``; the learner's :attr:`EMLearner.warm_state_`
    is the hand-off state for the next re-fit.
    """
    if config is None and "solver" not in overrides:
        overrides = {**overrides, "solver": "lbfgs-warm"}
    learner = EMLearner(config, **overrides)
    if learner.config.backend != "vectorized":
        raise ValueError("fit_incremental requires the vectorized backend")
    dataset = encoding.to_dataset() if materialize_dataset else encoding.dataset_view()
    structure = build_incremental_structure(encoding)
    if design is None or feature_space is None:
        if learner.config.featurizer is not None:
            # The pipeline reads the encoding's materialized snapshot; a
            # streaming caller holding RunningSourceStats passes
            # design=/feature_space= directly to stay O(batch).
            design, feature_space = learner.config.featurizer.design_for(encoding)
        else:
            design, feature_space = encoding.design(learner.config.use_features)
    model = learner.fit(
        dataset,
        truth,
        design=design,
        feature_space=feature_space,
        structure=structure,
        warm_state=warm_state,
    )
    return model, learner
