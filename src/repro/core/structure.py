"""Flattened (object, value) candidate structure.

SLiMFast's posterior (Equation 1/4) is a softmax, per object, over the
distinct values claimed for that object.  Both learning (conditional
objective) and inference need the same bookkeeping: a flattened list of
(object, candidate-value) rows, plus the mapping from each observation to
the row of the value it claims.  :class:`PairStructure` builds that once per
dataset and is shared by the ERM/EM learners, the inference routines and the
copying extension.

Two construction backends exist: ``"vectorized"`` (default) derives every
array from the dataset's cached :class:`~repro.fusion.encoding.DenseEncoding`
with pure NumPy indexing, while ``"reference"`` keeps the original
observation-walking loops as the machine-checked ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.encoding import DenseEncoding, check_backend, encode_dataset, expand_spans
from ..fusion.types import ObjectId, Value


@dataclass
class PairStructure:
    """Candidate rows for a subset of objects.

    Attributes
    ----------
    object_ids:
        The objects covered, in listing order.
    object_dataset_idx:
        Dataset object index of each listed object.
    pair_object_pos:
        For each flattened row, the position of its object in ``object_ids``.
    pair_values:
        The candidate value of each flattened row.
    pair_offsets:
        Start row of each object's block; ``pair_offsets[i+1] - pair_offsets[i]``
        is ``|D_o|`` for the i-th object (a trailing sentinel is included).
    obs_source_idx:
        Source index of every observation on a covered object.
    obs_pair_idx:
        Flattened row index each observation votes for.
    base_scores:
        Fixed per-row score offsets ``count_of_votes * log(|D_o| - 1)``.
        This is the multi-valued generalization of Equation 4: a vote for
        value ``d`` contributes ``sigma_s + log(|D_o| - 1)``, the
        discriminative counterpart of spreading a source's error mass
        uniformly over the wrong alternatives.  For binary domains the
        offset is zero and the model is exactly the paper's.
    encoding:
        The dataset encoding this structure was derived from (set by the
        vectorized builder; enables array-based :meth:`label_rows`).
    """

    object_ids: List[ObjectId]
    object_dataset_idx: np.ndarray
    pair_object_pos: np.ndarray
    pair_values: List[Value]
    pair_offsets: np.ndarray
    obs_source_idx: np.ndarray
    obs_pair_idx: np.ndarray
    base_scores: np.ndarray
    encoding: Optional[DenseEncoding] = field(default=None, repr=False)

    @property
    def n_objects(self) -> int:
        return len(self.object_ids)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_values)

    def rows_of(self, position: int) -> range:
        """Flattened row range of the object at ``position``."""
        return range(int(self.pair_offsets[position]), int(self.pair_offsets[position + 1]))

    def label_rows(self, truth: Dict[ObjectId, Value]) -> np.ndarray:
        """Row index of the true value per object; -1 when unclaimed.

        Single-truth semantics assume at least one source provides the true
        value; objects violating that (possible in noisy simulations) are
        flagged with -1 and excluded from likelihoods.
        """
        if self.encoding is not None:
            _, codes = self.encoding.truth_codes(truth)
            selected = codes[self.object_dataset_idx]
            labels = np.full(self.n_objects, -1, dtype=np.int64)
            claimed = selected >= 0
            labels[claimed] = self.pair_offsets[:-1][claimed] + selected[claimed]
            return labels
        labels = np.full(self.n_objects, -1, dtype=np.int64)
        for position, obj in enumerate(self.object_ids):
            if obj not in truth:
                continue
            wanted = truth[obj]
            for row in self.rows_of(position):
                if self.pair_values[row] == wanted:
                    labels[position] = row
                    break
        return labels


def build_pair_structure(
    dataset: FusionDataset,
    objects: Optional[Sequence[ObjectId]] = None,
    backend: str = "vectorized",
) -> PairStructure:
    """Construct the :class:`PairStructure` for ``objects`` (default: all)."""
    if check_backend(backend) == "vectorized":
        return _build_vectorized(dataset, objects)
    return _build_reference(dataset, objects)


def _build_vectorized(
    dataset: FusionDataset, objects: Optional[Sequence[ObjectId]]
) -> PairStructure:
    """Array-only construction from the dataset's dense encoding."""
    encoding = encode_dataset(dataset)
    if objects is None:
        return PairStructure(
            object_ids=dataset.objects.items,
            object_dataset_idx=np.arange(dataset.n_objects, dtype=np.int64),
            pair_object_pos=encoding.pair_object_idx,
            pair_values=encoding.pair_values,
            pair_offsets=encoding.pair_offsets,
            obs_source_idx=encoding.obs_source_idx,
            obs_pair_idx=encoding.obs_pair_idx,
            base_scores=encoding.base_scores,
            encoding=encoding,
        )

    object_ids = list(objects)
    selected = np.asarray([dataset.objects.index(obj) for obj in object_ids], dtype=np.int64)
    domain_sizes = encoding.domain_sizes[selected]
    pair_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(domain_sizes, dtype=np.int64)]
    )
    pair_object_pos = np.repeat(np.arange(len(object_ids), dtype=np.int64), domain_sizes)
    all_values = encoding.pair_values
    pair_values: List[Value] = []
    for o_idx in selected:
        start, stop = encoding.pair_offsets[o_idx], encoding.pair_offsets[o_idx + 1]
        pair_values.extend(all_values[start:stop])

    obs_starts = encoding.obs_offsets[selected]
    obs_lengths = encoding.obs_offsets[selected + 1] - obs_starts
    positions = expand_spans(obs_starts, obs_lengths)
    obs_object_pos = np.repeat(np.arange(len(object_ids), dtype=np.int64), obs_lengths)
    obs_pair_idx = pair_offsets[obs_object_pos] + encoding.obs_value_code[positions]
    base_scores = np.bincount(
        obs_pair_idx,
        weights=encoding.log_alternatives[encoding.obs_object_idx[positions]],
        minlength=int(pair_offsets[-1]),
    )
    return PairStructure(
        object_ids=object_ids,
        object_dataset_idx=selected,
        pair_object_pos=pair_object_pos,
        pair_values=pair_values,
        pair_offsets=pair_offsets,
        obs_source_idx=encoding.obs_source_idx[positions],
        obs_pair_idx=obs_pair_idx,
        base_scores=base_scores,
        encoding=encoding,
    )


def build_incremental_structure(encoding) -> PairStructure:
    """Full-coverage :class:`PairStructure` over an incremental encoding.

    The incremental counterpart of the full-dataset vectorized build: the
    structure's arrays are the :class:`~repro.fusion.encoding.IncrementalEncoding`
    snapshot arrays themselves (no re-walk, no re-derivation), so a
    periodic batch re-fit over a growing stream pays only the snapshot
    materialization — O(dataset) array assembly, never the Python-level
    dataset walk of a cold compile.  The encoding is attached for the
    array-based :meth:`PairStructure.label_rows` fast path
    (``IncrementalEncoding.truth_codes`` is layout-compatible with
    :meth:`~repro.fusion.encoding.DenseEncoding.truth_codes`).
    """
    return PairStructure(
        object_ids=encoding.object_ids,
        object_dataset_idx=np.arange(encoding.n_objects, dtype=np.int64),
        pair_object_pos=encoding.pair_object_idx,
        pair_values=encoding.pair_values,
        pair_offsets=encoding.pair_offsets,
        obs_source_idx=encoding.obs_source_idx,
        obs_pair_idx=encoding.obs_pair_idx,
        base_scores=encoding.base_scores,
        encoding=encoding,
    )


def build_masked_structure(
    dataset: FusionDataset,
    exclude_sources: Sequence[object],
    backend: str = "vectorized",
) -> PairStructure:
    """Candidate structure of ``dataset`` with some sources' votes removed.

    This is the array-level counterpart of
    :func:`repro.fusion.dataset.subset_sources`: observations from
    ``exclude_sources`` are dropped, candidate values that lose every vote
    disappear from their object's block, and objects left with no
    observations are dropped entirely — the same domains and objects a
    rebuilt subset dataset would have, but derived by pure array filtering
    from the dataset's cached :class:`~repro.fusion.encoding.DenseEncoding`
    instead of re-walking and re-encoding the observations.  Source indices
    keep the *full* dataset's indexing, so one design matrix and one
    parameter layout serve every masked fit of a leave-one-source-out
    sweep; excluded sources simply contribute no samples.

    Note the per-object value order may differ from a rebuilt subset
    dataset (first-seen among *all* observations here versus first-seen
    among the remaining ones), which permutes candidate rows within an
    object's block but leaves every posterior unchanged.

    ``backend="reference"`` keeps an observation-walking construction as
    the machine-checked ground truth.
    """
    exclude_idx = {dataset.sources.index(source) for source in exclude_sources}
    if check_backend(backend) == "reference":
        seen = {
            obs.obj
            for obs in dataset.observations
            if dataset.sources.index(obs.source) not in exclude_idx
        }
        # Preserve dataset object order and original domain order.
        kept_objects = [obj for obj in dataset.objects.items if obj in seen]
        structure = _build_reference(dataset, kept_objects)
        return _mask_structure_reference(structure, exclude_idx)

    encoding = encode_dataset(dataset)
    exclude = np.zeros(dataset.n_sources, dtype=bool)
    for s_idx in exclude_idx:
        exclude[s_idx] = True
    keep_obs = ~exclude[encoding.obs_source_idx]
    obs_object = encoding.obs_object_idx[keep_obs]
    obs_source = encoding.obs_source_idx[keep_obs]
    obs_value = encoding.obs_value_code[keep_obs]

    # Remaining votes per original candidate row decide which rows (and
    # hence which domain values) survive.
    voted_rows = encoding.pair_offsets[obs_object] + obs_value
    votes = np.bincount(voted_rows, minlength=encoding.n_pairs)
    keep_row = votes > 0
    rows_per_object = np.bincount(
        encoding.pair_object_idx, weights=keep_row.astype(float), minlength=dataset.n_objects
    ).astype(np.int64)
    kept_object_idx = np.flatnonzero(rows_per_object > 0)

    position_of = np.full(dataset.n_objects, -1, dtype=np.int64)
    position_of[kept_object_idx] = np.arange(kept_object_idx.shape[0], dtype=np.int64)
    new_row_of = np.where(keep_row, np.cumsum(keep_row) - 1, -1).astype(np.int64)

    domain_sizes = rows_per_object[kept_object_idx]
    pair_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(domain_sizes, dtype=np.int64)]
    )
    kept_row_idx = np.flatnonzero(keep_row)
    pair_object_pos = position_of[encoding.pair_object_idx[kept_row_idx]]
    all_values = encoding.pair_values
    pair_values = [all_values[row] for row in kept_row_idx.tolist()]

    obs_pair_idx = new_row_of[voted_rows]
    log_alternatives = np.log(np.maximum(domain_sizes - 1, 1).astype(float))
    base_scores = np.bincount(
        obs_pair_idx,
        weights=log_alternatives[position_of[obs_object]],
        minlength=int(pair_offsets[-1]),
    )
    object_items = dataset.objects.items
    return PairStructure(
        object_ids=[object_items[i] for i in kept_object_idx.tolist()],
        object_dataset_idx=kept_object_idx,
        pair_object_pos=pair_object_pos,
        pair_values=pair_values,
        pair_offsets=pair_offsets,
        obs_source_idx=obs_source,
        obs_pair_idx=obs_pair_idx,
        base_scores=base_scores,
        # The full-dataset encoding is deliberately NOT attached: its value
        # codes index the unmasked blocks, so label_rows must fall back to
        # value matching within the masked blocks.
    )


def _mask_structure_reference(structure: PairStructure, exclude_idx: set) -> PairStructure:
    """Loop-based masking of a reference structure (ground truth)."""
    kept = [int(s) not in exclude_idx for s in structure.obs_source_idx]
    keep_obs = np.asarray(kept, dtype=bool)
    votes = np.bincount(structure.obs_pair_idx[keep_obs], minlength=structure.n_pairs)
    offsets = [0]
    pair_object_pos: List[int] = []
    pair_values: List[Value] = []
    new_row_of: Dict[int, int] = {}
    object_ids: List[ObjectId] = []
    object_dataset_idx: List[int] = []
    for position, obj in enumerate(structure.object_ids):
        rows = [row for row in structure.rows_of(position) if votes[row] > 0]
        if not rows:
            continue
        new_position = len(object_ids)
        object_ids.append(obj)
        object_dataset_idx.append(int(structure.object_dataset_idx[position]))
        for row in rows:
            new_row_of[row] = len(pair_values)
            pair_object_pos.append(new_position)
            pair_values.append(structure.pair_values[row])
        offsets.append(offsets[-1] + len(rows))

    obs_source: List[int] = []
    obs_pair: List[int] = []
    obs_log_alt: List[float] = []
    domain_sizes = np.diff(np.asarray(offsets, dtype=np.int64))
    for i in np.flatnonzero(keep_obs):
        row = int(structure.obs_pair_idx[i])
        new_row = new_row_of[row]
        obs_source.append(int(structure.obs_source_idx[i]))
        obs_pair.append(new_row)
        obs_log_alt.append(float(np.log(max(int(domain_sizes[pair_object_pos[new_row]]) - 1, 1))))
    obs_pair_arr = np.asarray(obs_pair, dtype=np.int64)
    base_scores = np.bincount(
        obs_pair_arr, weights=np.asarray(obs_log_alt, dtype=float), minlength=len(pair_values)
    )
    return PairStructure(
        object_ids=object_ids,
        object_dataset_idx=np.asarray(object_dataset_idx, dtype=np.int64),
        pair_object_pos=np.asarray(pair_object_pos, dtype=np.int64),
        pair_values=pair_values,
        pair_offsets=np.asarray(offsets, dtype=np.int64),
        obs_source_idx=np.asarray(obs_source, dtype=np.int64),
        obs_pair_idx=obs_pair_arr,
        base_scores=base_scores,
    )


def _build_reference(
    dataset: FusionDataset, objects: Optional[Sequence[ObjectId]]
) -> PairStructure:
    """Original loop-based construction (ground truth for the tests)."""
    if objects is None:
        object_ids = dataset.objects.items
    else:
        object_ids = list(objects)

    object_dataset_idx = np.asarray(
        [dataset.objects.index(obj) for obj in object_ids], dtype=np.int64
    )

    pair_object_pos: List[int] = []
    pair_values: List[Value] = []
    offsets = [0]
    row_base: Dict[int, int] = {}
    for position, o_idx in enumerate(object_dataset_idx):
        domain = dataset.domain_by_index(int(o_idx))
        row_base[int(o_idx)] = offsets[-1]
        for value in domain:
            pair_object_pos.append(position)
            pair_values.append(value)
        offsets.append(offsets[-1] + len(domain))

    obs_source: List[int] = []
    obs_pair: List[int] = []
    obs_log_alt: List[float] = []
    for o_idx in object_dataset_idx:
        base = row_base[int(o_idx)]
        domain = dataset.domain_by_index(int(o_idx))
        log_alt = float(np.log(max(len(domain) - 1, 1)))
        for row in dataset.object_observation_rows(int(o_idx)):
            obs = dataset.observations[row]
            obs_source.append(dataset.sources.index(obs.source))
            obs_pair.append(base + domain.index(obs.value))
            obs_log_alt.append(log_alt)

    obs_pair_arr = np.asarray(obs_pair, dtype=np.int64)
    base_scores = np.bincount(
        obs_pair_arr,
        weights=np.asarray(obs_log_alt, dtype=float),
        minlength=len(pair_values),
    )
    return PairStructure(
        object_ids=object_ids,
        object_dataset_idx=object_dataset_idx,
        pair_object_pos=np.asarray(pair_object_pos, dtype=np.int64),
        pair_values=pair_values,
        pair_offsets=np.asarray(offsets, dtype=np.int64),
        obs_source_idx=np.asarray(obs_source, dtype=np.int64),
        obs_pair_idx=obs_pair_arr,
        base_scores=base_scores,
    )
