"""Source-copying extension (paper Appendix D).

Copying is modeled with pairwise Boolean features: for a source pair
``(s1, s2)`` the feature fires when the two sources agree on an object but
the inferred value differs from their common claim — "if two sources make
the same mistakes they have a higher probability of copying from each
other".  In the flattened (object, value) representation this is an extra
score contribution of ``-w_pair`` on the jointly-claimed value's row:
a positive learned weight discounts the duplicated vote (and flags the pair
as copying, cf. the Figure 8 weight table), leaving the model a logistic
regression.

Learning comes in two modes:

* ``learner="em"`` (default, the paper's Figure 8 setting) — semi-
  supervised EM where the E-step posterior includes the copying
  discounts.  This is where copying features genuinely matter: without
  them, EM lets correlated sources inflate each other's estimated
  accuracy (their agreeing claims dominate the posteriors, so each round
  re-credits them); the discounts break that reinforcement loop.
* ``learner="erm"`` — the trust model is fitted on the ground truth and
  frozen; only the pair weights are learned from the labeled objects.
  Supervised correctness labels are immune to cross-source correlation,
  so this mode mostly serves diagnosis (which pairs copy), not accuracy.

Pair weights are constrained non-negative (a discount can be zero but a
candidate pair can never *amplify* the duplicated vote).  Candidate pairs
are selected by an agreement z-score: a pair qualifies when its observed
agreement rate is significantly above the dataset's mean pairwise
agreement — chance agreement on binary domains is common, so a raw
agreement threshold would flood the model with false candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.result import FusionResult
from ..fusion.types import DatasetError, NotFittedError, ObjectId, SourceId, Value
from ..optim.objectives import segment_softmax
from ..optim.solvers import minimize_lbfgs
from .erm import ERMConfig, ERMLearner
from .inference import expected_correctness, pair_scores
from .model import AccuracyModel
from .structure import PairStructure, build_pair_structure


@dataclass(frozen=True)
class SourcePair:
    """A candidate copying pair with its overlap statistics."""

    first: SourceId
    second: SourceId
    overlap: int
    agreement_rate: float
    z_score: float


def find_candidate_pairs(
    dataset: FusionDataset,
    min_overlap: int = 3,
    min_agreement: float = 0.5,
    max_pairs: int = 200,
    z_threshold: float = 0.0,
) -> List[SourcePair]:
    """Source pairs worth a copying feature.

    Pairs must share at least ``min_overlap`` objects, agree on at least
    ``min_agreement`` of them, and (when ``z_threshold`` > 0) exceed the
    mean pairwise agreement by ``z_threshold`` standard errors.  The
    ``max_pairs`` strongest pairs (by z-score, then overlap) are kept so
    the extension stays linear in practice.
    """
    stats: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for o_idx in range(dataset.n_objects):
        rows = dataset.object_observation_rows(o_idx)
        if rows.shape[0] < 2:
            continue
        sources = dataset.obs_source_idx[rows]
        values = dataset.obs_value_idx[rows]
        for a in range(sources.shape[0]):
            for b in range(a + 1, sources.shape[0]):
                key = (int(min(sources[a], sources[b])), int(max(sources[a], sources[b])))
                overlap, agree = stats.get(key, (0, 0))
                stats[key] = (overlap + 1, agree + int(values[a] == values[b]))

    eligible = {
        key: (overlap, agree)
        for key, (overlap, agree) in stats.items()
        if overlap >= min_overlap
    }
    if not eligible:
        return []
    # Baseline: the agreement rate two *independent* sources of average
    # accuracy would show.  Pooling the observed rates instead would be
    # contaminated — at low density the high-overlap pairs are mostly the
    # copiers themselves.
    from .agreement import average_domain_size, estimate_average_accuracy

    avg_accuracy = estimate_average_accuracy(dataset)
    k = max(average_domain_size(dataset), 2.0)
    independent_rate = avg_accuracy**2 + (1.0 - avg_accuracy) ** 2 / (k - 1.0)
    base_rate = min(max(independent_rate, 1e-6), 1.0 - 1e-6)

    candidates = []
    for (sa, sb), (overlap, agree) in eligible.items():
        rate = agree / overlap
        if rate < min_agreement:
            continue
        stderr = float(np.sqrt(base_rate * (1.0 - base_rate) / overlap))
        z_score = (rate - base_rate) / stderr
        if z_score < z_threshold:
            continue
        candidates.append(
            SourcePair(
                first=dataset.sources.item(sa),
                second=dataset.sources.item(sb),
                overlap=overlap,
                agreement_rate=rate,
                z_score=z_score,
            )
        )
    candidates.sort(key=lambda pair: (-pair.z_score, -pair.overlap, repr(pair.first)))
    return candidates[:max_pairs]


def build_extra_features(
    dataset: FusionDataset,
    structure: PairStructure,
    pairs: List[SourcePair],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extra-feature triples ``(rows, feature_idx, values)`` for the objective.

    For pair ``j`` and each covered object where both sources claim the same
    value, the flattened row of that value receives contribution ``-1`` with
    feature index ``j`` (so a positive weight lowers the common value's
    score).
    """
    row_of: Dict[Tuple[int, Value], int] = {}
    for position in range(structure.n_objects):
        o_idx = int(structure.object_dataset_idx[position])
        for row in structure.rows_of(position):
            row_of[(o_idx, structure.pair_values[row])] = row

    claims: Dict[int, Dict[int, Value]] = {}
    for obs in dataset.observations:
        s_idx = dataset.sources.index(obs.source)
        claims.setdefault(s_idx, {})[dataset.objects.index(obs.obj)] = obs.value

    rows: List[int] = []
    feature_idx: List[int] = []
    values: List[float] = []
    for j, pair in enumerate(pairs):
        claims_a = claims.get(dataset.sources.index(pair.first), {})
        claims_b = claims.get(dataset.sources.index(pair.second), {})
        shared = claims_a.keys() & claims_b.keys()
        for o_idx in shared:
            if claims_a[o_idx] != claims_b[o_idx]:
                continue
            row = row_of.get((o_idx, claims_a[o_idx]))
            if row is None:
                continue
            rows.append(row)
            feature_idx.append(j)
            values.append(-1.0)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(feature_idx, dtype=np.int64),
        np.asarray(values, dtype=float),
    )


class _PairWeightObjective:
    """Conditional log-loss of labeled objects as a function of the pair
    weights only (trust-derived scores are fixed).

    Parameters are just ``w_extra``; the fixed part of each row's score
    comes from the frozen trust model.
    """

    def __init__(
        self,
        fixed_scores: np.ndarray,
        pair_object_idx: np.ndarray,
        label_rows: np.ndarray,
        extra: Tuple[np.ndarray, np.ndarray, np.ndarray],
        n_extra: int,
        l2: float,
    ) -> None:
        self.fixed_scores = fixed_scores
        self.pair_object_idx = pair_object_idx
        self.n_objects = label_rows.shape[0]
        self.label_rows = label_rows
        self.extra_rows, self.extra_feature_idx, self.extra_values = extra
        self.n_params = n_extra
        self.valid = label_rows >= 0
        self.n_labeled = max(int(np.sum(self.valid)), 1)
        self._l2 = l2 / self.n_labeled

    def _scores(self, w: np.ndarray) -> np.ndarray:
        scores = self.fixed_scores.copy()
        if self.extra_rows.size:
            scores += np.bincount(
                self.extra_rows,
                weights=w[self.extra_feature_idx] * self.extra_values,
                minlength=scores.shape[0],
            )
        return scores

    def row_posteriors(self, w: np.ndarray) -> np.ndarray:
        return segment_softmax(self._scores(w), self.pair_object_idx, self.n_objects)

    def value(self, w: np.ndarray) -> float:
        return self.value_and_grad(w)[0]

    def grad(self, w: np.ndarray) -> np.ndarray:
        return self.value_and_grad(w)[1]

    def value_and_grad(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        probs = self.row_posteriors(w)
        picked = np.where(self.valid, self.label_rows, 0)
        log_probs = np.log(np.maximum(probs[picked], 1e-300))
        value = -float(np.sum(np.where(self.valid, log_probs, 0.0))) / self.n_labeled
        value += 0.5 * float(np.sum(self._l2 * w * w))

        residual = probs * self.valid[self.pair_object_idx]
        np.subtract.at(residual, picked[self.valid], 1.0)
        residual /= self.n_labeled
        grad = np.zeros(self.n_params)
        if self.extra_rows.size:
            grad = np.bincount(
                self.extra_feature_idx,
                weights=residual[self.extra_rows] * self.extra_values,
                minlength=self.n_params,
            )
        return value, grad + self._l2 * w


class CopyingSLiMFast:
    """SLiMFast with copying features.

    Parameters
    ----------
    learner:
        ``"em"`` (Figure 8 setting: semi-supervised EM with copying-aware
        posteriors) or ``"erm"`` (trust frozen from ground truth; pair
        weights only, for copying diagnosis).
    use_features:
        Include domain features in the trust model (the paper's Figure 8
        experiment uses no domain features "for simplicity"; default False
        to match).
    em_rounds:
        Alternation rounds (EM mode: trust M-step + pair refit per round;
        ERM mode: hard-EM pair-weight refinements on imputed labels).
    min_overlap, min_agreement, max_pairs, z_threshold:
        Candidate-pair selection, see :func:`find_candidate_pairs`.
    l2_sources, l2_pairs:
        Ridge penalties for the trust fit and the pair-weight fit.
    """

    def __init__(
        self,
        learner: str = "em",
        use_features: bool = False,
        em_rounds: int = 10,
        min_overlap: int = 4,
        min_agreement: float = 0.6,
        max_pairs: int = 300,
        z_threshold: float = 2.0,
        l2_sources: float = 4.0,
        l2_pairs: float = 5.0,
    ) -> None:
        if learner not in ("em", "erm"):
            raise ValueError(f"unknown learner {learner!r}")
        self.learner = learner
        self.use_features = use_features
        self.em_rounds = em_rounds
        self.min_overlap = min_overlap
        self.min_agreement = min_agreement
        self.max_pairs = max_pairs
        self.z_threshold = z_threshold
        self.l2_sources = l2_sources
        self.l2_pairs = l2_pairs
        self.model_: Optional[AccuracyModel] = None
        self.pair_weights_: np.ndarray = np.zeros(0)
        self.pairs_: List[SourcePair] = []
        self._dataset: Optional[FusionDataset] = None
        self._structure: Optional[PairStructure] = None
        self._extra: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._truth: Dict[ObjectId, Value] = {}

    # ------------------------------------------------------------------
    def fit(self, dataset: FusionDataset, truth: Mapping[ObjectId, Value]) -> "CopyingSLiMFast":
        """Fit the trust model and the copying weights."""
        if not truth and self.learner == "erm":
            raise DatasetError("CopyingSLiMFast(learner='erm') requires ground truth")
        self._dataset = dataset
        self._truth = dict(truth)

        self.pairs_ = find_candidate_pairs(
            dataset,
            self.min_overlap,
            self.min_agreement,
            self.max_pairs,
            self.z_threshold,
        )
        structure = build_pair_structure(dataset)
        self._structure = structure
        self._extra = build_extra_features(dataset, structure, self.pairs_)
        self.pair_weights_ = np.zeros(len(self.pairs_))

        if self.learner == "erm":
            self._fit_erm(dataset, structure)
        else:
            self._fit_em(dataset, structure)
        return self

    # ------------------------------------------------------------------
    def _fit_pairs(
        self,
        fixed_scores: np.ndarray,
        label_rows: np.ndarray,
        warm: np.ndarray,
    ) -> np.ndarray:
        objective = _PairWeightObjective(
            fixed_scores=fixed_scores,
            pair_object_idx=self._structure.pair_object_pos,
            label_rows=label_rows,
            extra=self._extra,
            n_extra=len(self.pairs_),
            l2=self.l2_pairs,
        )
        # Copying weights are discounts: constrained non-negative, so a
        # spurious candidate pair can be zeroed but never *amplify* the
        # double-counted vote.
        return minimize_lbfgs(objective, w0=warm, bounds=[(0.0, None)] * len(self.pairs_)).w

    def _fit_erm(self, dataset: FusionDataset, structure: PairStructure) -> None:
        """ERM mode: trust frozen from labels, pairs from conditional fit."""
        erm = ERMLearner(ERMConfig(use_features=self.use_features, l2_sources=self.l2_sources))
        self.model_ = erm.fit(dataset, self._truth)
        if not self.pairs_:
            return
        fixed_scores = pair_scores(structure, self.model_.trust_scores())
        clamped_rows = structure.label_rows(self._truth)
        labels = clamped_rows
        self.pair_weights_ = self._fit_pairs(fixed_scores, labels, self.pair_weights_)
        for _ in range(self.em_rounds):
            imputed = self._map_rows(clamped_rows)
            if np.array_equal(imputed, labels):
                break
            labels = imputed
            self.pair_weights_ = self._fit_pairs(fixed_scores, labels, self.pair_weights_)

    def _fit_em(self, dataset: FusionDataset, structure: PairStructure) -> None:
        """EM mode: alternate copying-aware E-steps with trust M-steps.

        The E-step posterior includes the pair discounts, so agreeing
        copier groups stop re-crediting each other; the pair weights are
        refit against the labeled objects after every trust update.
        """
        from ..fusion.features import build_design_matrix
        from ..optim.numerics import logit
        from ..optim.objectives import CorrectnessObjective
        from .model import model_from_flat

        design, space = build_design_matrix(dataset, use_features=self.use_features)
        clamped_rows = structure.label_rows(self._truth)

        # Initialize trust exactly like the plain EM learner.
        w = np.zeros(dataset.n_sources + design.shape[1])
        w[: dataset.n_sources] = float(logit(0.7))
        model = model_from_flat(w, dataset, design, space)

        previous_acc = model.accuracies()
        for _ in range(max(self.em_rounds, 1)):
            extra_scores = self._extra_scores_for(self.pair_weights_)
            # E-step with discounted scores, labeled objects clamped.
            q_obs, _ = expected_correctness(
                structure, model.trust_scores(), clamped_rows, extra_scores
            )
            # M-step on the soft correctness labels.
            objective = CorrectnessObjective(
                source_idx=structure.obs_source_idx,
                labels=q_obs,
                design=design,
                l2_sources=self.l2_sources,
                l2_features=1.0,
            )
            w = minimize_lbfgs(objective, w0=w).w
            model = model_from_flat(w, dataset, design, space)

            # Refit pair weights against the labels under the new trust.
            if self.pairs_ and self._truth:
                fixed_scores = pair_scores(structure, model.trust_scores())
                self.pair_weights_ = self._fit_pairs(fixed_scores, clamped_rows, self.pair_weights_)

            current_acc = model.accuracies()
            if float(np.mean(np.abs(current_acc - previous_acc))) < 1e-4:
                break
            previous_acc = current_acc

        self.model_ = model_from_flat(w, dataset, design, space if self.use_features else None)

    # ------------------------------------------------------------------
    def _extra_scores_for(self, pair_weights: np.ndarray) -> np.ndarray:
        rows, feature_idx, values = self._extra
        scores = np.zeros(self._structure.n_pairs)
        if rows.size and pair_weights.size:
            scores = np.bincount(
                rows,
                weights=pair_weights[feature_idx] * values,
                minlength=self._structure.n_pairs,
            )
        return scores

    def _extra_scores(self) -> np.ndarray:
        return self._extra_scores_for(self.pair_weights_)

    def _row_posteriors(self) -> np.ndarray:
        scores = pair_scores(self._structure, self.model_.trust_scores(), self._extra_scores())
        return segment_softmax(scores, self._structure.pair_object_pos, self._structure.n_objects)

    def _map_rows(self, clamped_rows: np.ndarray) -> np.ndarray:
        probs = self._row_posteriors()
        assignments = np.full(self._structure.n_objects, -1, dtype=np.int64)
        for position in range(self._structure.n_objects):
            if clamped_rows[position] >= 0:
                assignments[position] = clamped_rows[position]
                continue
            rows = self._structure.rows_of(position)
            block = probs[rows.start : rows.stop]
            assignments[position] = rows.start + int(np.argmax(block))
        return assignments

    # ------------------------------------------------------------------
    def predict(self) -> FusionResult:
        """Fusion output with copying-adjusted posteriors (array-backed)."""
        if self.model_ is None or self._structure is None:
            raise NotFittedError("call fit() before predict()")
        return FusionResult.from_rows(
            self._structure,
            self._row_posteriors(),
            clamp=self._truth,
            accuracy_vector=self.model_.accuracies(),
            source_ids=self.model_.source_ids,
            method="slimfast-copying",
            diagnostics={"n_pairs": len(self.pairs_)},
        )

    def pair_weights(self) -> Dict[Tuple[SourceId, SourceId], float]:
        """Learned copying weight per candidate pair (positive = copying)."""
        if self.model_ is None:
            raise NotFittedError("call fit() before pair_weights()")
        return {
            (pair.first, pair.second): float(self.pair_weights_[j])
            for j, pair in enumerate(self.pairs_)
        }
