"""Average source-accuracy estimation via matrix completion (Section 4.3).

The optimizer needs the average source accuracy without ground truth.  The
paper builds the pairwise agreement matrix

    ``X_ij = mean over shared objects of (1[agree] - 1[disagree])``

whose expectation under the uniform-accuracy model is ``mu^2`` with
``mu = 2A - 1``.  The rank-1 matrix completion
``min ||X - mu^2||^2`` has the closed form ``mu_hat = sqrt(mean(X))``, and
``A = (mu_hat + 1) / 2``.

Two refinements are provided beyond the paper's estimator:

* ``method="domain-corrected"`` accounts for multi-valued domains, where
  two wrong sources agree with probability ``1/(|D_o|-1)`` instead of 1.
* :func:`estimate_source_accuracies_rank1` generalizes to a per-source
  ``mu_i`` via alternating rank-1 updates (the "more general matrix
  completion problem" the paper mentions in passing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.types import SourceId


@dataclass
class AgreementMatrix:
    """Pairwise source agreement statistics.

    Attributes
    ----------
    scores:
        ``|S| x |S|`` matrix of ``2 * agree_rate - 1``; ``nan`` where the
        two sources share fewer than ``min_overlap`` objects.
    overlaps:
        ``|S| x |S|`` count of shared objects.
    """

    scores: np.ndarray
    overlaps: np.ndarray

    def observed_pairs(self) -> np.ndarray:
        """Boolean mask of valid off-diagonal entries."""
        mask = ~np.isnan(self.scores)
        np.fill_diagonal(mask, False)
        return mask


def agreement_matrix(dataset: FusionDataset, min_overlap: int = 1) -> AgreementMatrix:
    """Compute the pairwise agreement matrix ``X`` of Section 4.3.

    Complexity is ``O(sum_o m_o^2)`` over per-object observation counts,
    which is fine for the paper-scale datasets (tens of observations per
    object at most).
    """
    n = dataset.n_sources
    agree = np.zeros((n, n))
    overlap = np.zeros((n, n))
    for o_idx in range(dataset.n_objects):
        rows = dataset.object_observation_rows(o_idx)
        if rows.shape[0] < 2:
            continue
        sources = dataset.obs_source_idx[rows]
        values = dataset.obs_value_idx[rows]
        same = values[:, None] == values[None, :]
        for a in range(sources.shape[0]):
            sa = sources[a]
            for b in range(a + 1, sources.shape[0]):
                sb = sources[b]
                overlap[sa, sb] += 1
                overlap[sb, sa] += 1
                if same[a, b]:
                    agree[sa, sb] += 1
                    agree[sb, sa] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        rate = agree / overlap
    scores = 2.0 * rate - 1.0
    scores[overlap < min_overlap] = np.nan
    return AgreementMatrix(scores=scores, overlaps=overlap)


def average_domain_size(dataset: FusionDataset) -> float:
    """Mean number of distinct claimed values over conflicted objects."""
    sizes = [
        len(dataset.domain_by_index(o_idx))
        for o_idx in range(dataset.n_objects)
        if dataset.object_observation_rows(o_idx).shape[0] >= 2
    ]
    if not sizes:
        return 2.0
    return float(np.mean(sizes))


def estimate_average_accuracy(
    dataset: FusionDataset,
    min_overlap: int = 1,
    method: str = "paper",
    fallback: float = 0.7,
    matrix: Optional[AgreementMatrix] = None,
) -> float:
    """Estimate the average source accuracy from agreements alone.

    Parameters
    ----------
    method:
        ``"paper"`` uses the binary-model identity
        ``E[X] = (2A - 1)^2``; ``"domain-corrected"`` solves
        ``agree_rate = A^2 + (1 - A)^2 / (k - 1)`` with ``k`` the average
        conflicted-domain size, which is the right identity for
        multi-valued objects.
    fallback:
        Returned when no source pair has sufficient overlap (e.g. extremely
        sparse datasets such as Genomics).
    """
    matrix = matrix if matrix is not None else agreement_matrix(dataset, min_overlap)
    mask = matrix.observed_pairs()
    if not np.any(mask):
        return fallback
    mean_score = float(np.mean(matrix.scores[mask]))

    if method == "paper":
        mu_sq = max(mean_score, 0.0)
        mu = float(np.sqrt(mu_sq))
        return (mu + 1.0) / 2.0
    if method == "domain-corrected":
        agree_rate = (mean_score + 1.0) / 2.0
        k = max(average_domain_size(dataset), 2.0)
        return _solve_domain_corrected(agree_rate, k)
    raise ValueError(f"unknown estimation method {method!r}")


def _solve_domain_corrected(agree_rate: float, k: float) -> float:
    """Solve ``agree = A^2 + (1-A)^2/(k-1)`` for ``A`` in [1/k, 1].

    The quadratic has two roots; the one at or above the random-guess rate
    ``1/k`` is the meaningful accuracy.  Agreement below the random
    baseline clamps to ``1/k`` (can happen with adversarial sources).
    """
    c = 1.0 / (k - 1.0)
    # (1 + c) A^2 - 2c A + (c - agree) = 0
    a_coef = 1.0 + c
    b_coef = -2.0 * c
    c_coef = c - agree_rate
    disc = b_coef * b_coef - 4.0 * a_coef * c_coef
    if disc < 0.0:
        return 1.0 / k
    root = (-b_coef + np.sqrt(disc)) / (2.0 * a_coef)
    return float(np.clip(root, 1.0 / k, 1.0))


def estimate_source_accuracies_rank1(
    dataset: FusionDataset,
    min_overlap: int = 2,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    matrix: Optional[AgreementMatrix] = None,
) -> Dict[SourceId, float]:
    """Per-source accuracy via the generalized rank-1 completion.

    Fits ``X_ij ~ mu_i * mu_j`` over observed pairs by alternating
    least-squares updates, then maps ``A_i = (mu_i + 1) / 2``.  Sources
    without any sufficiently-overlapping peer keep the global average.
    """
    matrix = matrix if matrix is not None else agreement_matrix(dataset, min_overlap)
    mask = matrix.observed_pairs()
    n = matrix.scores.shape[0]
    global_avg = estimate_average_accuracy(dataset, min_overlap, matrix=matrix)
    mu = np.full(n, max(2.0 * global_avg - 1.0, 0.05))

    scores = np.where(mask, matrix.scores, 0.0)
    for _ in range(max_iterations):
        previous = mu.copy()
        for i in range(n):
            peers = mask[i]
            denom = float(np.sum(mu[peers] ** 2))
            if denom <= 0.0:
                continue
            mu[i] = float(np.clip(scores[i, peers] @ mu[peers] / denom, -1.0, 1.0))
        if float(np.max(np.abs(mu - previous))) < tolerance:
            break

    accuracies = (mu + 1.0) / 2.0
    return {source: float(accuracies[i]) for i, source in enumerate(dataset.sources)}
