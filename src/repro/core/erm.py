"""Empirical risk minimization for SLiMFast (paper Section 3.2).

With ground truth available, learning is a *convex* problem: no latent
variables remain, so the likelihood can be optimized directly and
efficiently ("we can avoid time consuming iterative algorithms entirely").
Two interchangeable objectives are offered:

* ``objective="correctness"`` (default) — the accuracy-estimate loss of
  Definition 7: logistic regression on per-observation correctness labels
  derived from the ground truth.  This is the objective the paper's
  Theorem 2 analyzes.
* ``objective="conditional"`` — the object-level conditional likelihood of
  Equation 4 restricted to labeled objects (the log-loss of Theorem 1).

Both objectives produce an :class:`~repro.core.model.AccuracyModel`; an
ablation bench compares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

import numpy as np

from ..fusion.dataset import FusionDataset
from ..fusion.encoding import check_backend, encode_dataset
from ..fusion.features import FeatureSpace, build_design_matrix
from ..fusion.types import DatasetError, ObjectId, Value
from ..optim.objectives import (
    ConditionalObjective,
    CorrectnessObjective,
    reduce_correctness_samples,
)
from ..optim.solvers import SolverResult, fista, minimize_lbfgs, sgd
from .model import AccuracyModel, model_from_flat
from .structure import PairStructure, build_pair_structure


@dataclass
class ERMConfig:
    """Hyper-parameters of the ERM learner.

    Attributes
    ----------
    objective:
        "correctness" (Definition 7) or "conditional" (Equation 4).
    l2_sources, l2_features:
        Ridge penalties.  Source indicators get a mild default penalty so
        sources with one or two labeled observations do not saturate.
    l1_features:
        Optional lasso penalty on feature weights (enables sparse models;
        the lasso-path module drives this over a grid).
    solver:
        "lbfgs" (default, deterministic) or "sgd" (paper-faithful).
        ``"lbfgs-warm"`` is accepted as an alias of ``"lbfgs"`` so a single
        facade-level solver choice covers both learners; warm-starting only
        pays off across the repeated M-steps of EM, not a one-shot ERM fit.
    intercept:
        Fit a shared bias; required for unseen-source prediction.
    use_features:
        When False, reduces to the paper's Sources-ERM variant.
    backend:
        ``"vectorized"`` (default) derives training pairs from the dataset's
        dense encoding and batches the correctness objective into per-source
        sufficient statistics for the deterministic solvers;
        ``"reference"`` keeps the original observation-walking loops.
    featurizer:
        Optional :class:`repro.featurize.FeaturizerPipeline` (anything
        with ``design_for``) producing the design matrix — data-derived
        reliability features plus the metadata block — instead of the
        plain metadata :class:`FeatureSpace`.  Requires
        ``use_features=True``.
    """

    objective: str = "correctness"
    l2_sources: float = 4.0
    l2_features: float = 1.0
    l1_features: float = 0.0
    solver: str = "lbfgs"
    intercept: bool = False
    use_features: bool = True
    backend: str = "vectorized"
    sgd_epochs: int = 40
    sgd_learning_rate: float = 0.5
    seed: int = 0
    featurizer: Optional[object] = None


def correctness_training_pairs(
    dataset: FusionDataset,
    truth: Mapping[ObjectId, Value],
    backend: str = "vectorized",
) -> Tuple[np.ndarray, np.ndarray]:
    """(source_idx, correctness label) pairs for observations on labeled objects.

    Both backends return identical arrays in dataset observation order; the
    vectorized one gathers them from the dense encoding's index arrays.
    """
    if check_backend(backend) == "reference":
        sources = []
        labels = []
        for obs in dataset.observations:
            expected = truth.get(obs.obj)
            if expected is None:
                continue
            sources.append(dataset.sources.index(obs.source))
            labels.append(1.0 if obs.value == expected else 0.0)
        return np.asarray(sources, dtype=np.int64), np.asarray(labels, dtype=float)

    encoding = encode_dataset(dataset)
    # A truth entry of None means "unlabeled" in the reference semantics.
    labeled, codes = encoding.truth_codes(
        {obj: value for obj, value in truth.items() if value is not None}
    )
    object_idx = dataset.obs_object_idx
    rows = np.flatnonzero(labeled[object_idx])
    source_idx = dataset.obs_source_idx[rows]
    label_values = (dataset.obs_value_idx[rows] == codes[object_idx[rows]]).astype(float)
    return source_idx, label_values


def correctness_pairs_from_structure(
    structure: PairStructure,
    truth: Mapping[ObjectId, Value],
) -> Tuple[np.ndarray, np.ndarray]:
    """Correctness training pairs derived from a prebuilt candidate structure.

    Equivalent to :func:`correctness_training_pairs` restricted to the
    observations the structure covers (up to sample order, which the
    per-source reduction erases): observations on objects present in
    ``truth`` are labeled 1 when they vote for the truth row and 0
    otherwise — including objects whose true value no surviving source
    claims, whose observations are all incorrect.  This is what lets a
    source-masked (leave-one-source-out) structure drive an ERM fit without
    rebuilding a subset dataset.
    """
    truth = {obj: value for obj, value in truth.items() if value is not None}
    label_rows = structure.label_rows(dict(truth))
    if structure.encoding is not None:
        labeled_all, _ = structure.encoding.truth_codes(truth)
        labeled_pos = labeled_all[structure.object_dataset_idx]
    else:
        labeled_pos = np.asarray([obj in truth for obj in structure.object_ids], dtype=bool)
    obs_positions = structure.pair_object_pos[structure.obs_pair_idx]
    take = labeled_pos[obs_positions]
    source_idx = structure.obs_source_idx[take]
    labels = (structure.obs_pair_idx[take] == label_rows[obs_positions[take]]).astype(float)
    return source_idx, labels


class ERMLearner:
    """Fits SLiMFast's accuracy model by empirical risk minimization."""

    def __init__(self, config: Optional[ERMConfig] = None, **overrides: object) -> None:
        base = config if config is not None else ERMConfig()
        if overrides:
            base = ERMConfig(**{**base.__dict__, **overrides})
        if base.objective not in ("correctness", "conditional"):
            raise ValueError(f"unknown objective {base.objective!r}")
        if base.solver not in ("lbfgs", "lbfgs-warm", "sgd"):
            raise ValueError(f"unknown solver {base.solver!r}")
        check_backend(base.backend)
        if base.featurizer is not None:
            if not base.use_features:
                raise ValueError("featurizer requires use_features=True")
            if not hasattr(base.featurizer, "design_for"):
                raise ValueError(
                    "featurizer must provide design_for(dataset) "
                    "(e.g. repro.featurize.FeaturizerPipeline), got "
                    f"{type(base.featurizer).__name__}"
                )
        self.config = base
        self.solver_result_: Optional[SolverResult] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: FusionDataset,
        truth: Mapping[ObjectId, Value],
        design: Optional[np.ndarray] = None,
        feature_space: Optional[FeatureSpace] = None,
        w0: Optional[np.ndarray] = None,
        structure: Optional[PairStructure] = None,
    ) -> AccuracyModel:
        """Learn model weights from ground truth ``truth``.

        ``design``/``feature_space`` may be passed to reuse a pre-built
        feature encoding (the facade does this to share one encoding across
        learners); otherwise they are built from the dataset.  ``structure``
        restricts a correctness-objective fit to the observations of a
        prebuilt (possibly source-masked) candidate structure — the sweep
        engine's leave-one-source-out path; ``w0`` warm-starts the convex
        solve (same optimum, fewer iterations).  The final
        :class:`~repro.optim.solvers.SolverResult` is published as
        :attr:`solver_result_`.
        """
        if not truth:
            raise DatasetError("ERM requires at least one ground-truth label")
        if structure is not None and self.config.objective != "correctness":
            raise ValueError("a prebuilt structure requires the correctness objective")
        if structure is not None and self.config.solver == "sgd":
            # SGD consumes per-observation samples whose order the structure
            # does not preserve; keep the bitwise-reproducible dataset path.
            raise ValueError("a prebuilt structure requires a deterministic solver")
        if design is None or feature_space is None:
            if self.config.featurizer is not None:
                design, feature_space = self.config.featurizer.design_for(dataset)
            elif self.config.backend == "vectorized":
                design, feature_space = encode_dataset(dataset).design(self.config.use_features)
            else:
                design, feature_space = build_design_matrix(
                    dataset, use_features=self.config.use_features
                )

        if self.config.objective == "correctness":
            objective = self._correctness_objective(dataset, truth, design, structure)
            n_samples = objective.n_samples
        else:
            objective = self._conditional_objective(dataset, truth, design)
            n_samples = None

        result = self._solve(objective, n_samples, w0)
        self.solver_result_ = result
        model = model_from_flat(
            result.w,
            dataset,
            design,
            feature_space if self.config.use_features else None,
            intercept=self.config.intercept and self.config.objective == "correctness",
        )
        return model

    # ------------------------------------------------------------------
    def _correctness_objective(
        self,
        dataset: FusionDataset,
        truth: Mapping[ObjectId, Value],
        design: np.ndarray,
        structure: Optional[PairStructure] = None,
    ) -> CorrectnessObjective:
        if structure is not None:
            source_idx, labels = correctness_pairs_from_structure(structure, truth)
        else:
            source_idx, labels = correctness_training_pairs(
                dataset, truth, backend=self.config.backend
            )
        if source_idx.size == 0:
            raise DatasetError("no observations overlap the provided ground truth")
        sample_weights = None
        # Not a backend dispatch but an optional compaction: the reference
        # fallthrough keeps the raw per-observation samples on purpose
        # (SGD consumes them one at a time), so there is no "reference
        # branch" to add here.
        if self.config.backend == "vectorized" and self.config.solver != "sgd":  # repro-analysis: ignore[RA3]
            # Deterministic solvers see the loss only through per-source
            # scores, so batch the samples into sufficient statistics.
            source_idx, labels, sample_weights = reduce_correctness_samples(
                source_idx, labels, dataset.n_sources
            )
        return CorrectnessObjective(
            source_idx=source_idx,
            labels=labels,
            design=design,
            sample_weights=sample_weights,
            l2_sources=self.config.l2_sources,
            l2_features=self.config.l2_features,
            intercept=self.config.intercept,
        )

    def _conditional_objective(
        self,
        dataset: FusionDataset,
        truth: Mapping[ObjectId, Value],
        design: np.ndarray,
    ) -> ConditionalObjective:
        labeled_objects = [obj for obj in dataset.objects if obj in truth]
        if not labeled_objects:
            raise DatasetError("no labeled objects found in the dataset")
        structure = build_pair_structure(dataset, labeled_objects, backend=self.config.backend)
        label_rows = structure.label_rows(dict(truth))
        return ConditionalObjective(
            design=design,
            obs_source_idx=structure.obs_source_idx,
            obs_pair_idx=structure.obs_pair_idx,
            pair_object_idx=structure.pair_object_pos,
            label_pair_idx=label_rows,
            l2_sources=self.config.l2_sources,
            l2_features=self.config.l2_features,
            base_scores=structure.base_scores,
        )

    def _solve(
        self,
        objective,
        n_samples: Optional[int],
        w0: Optional[np.ndarray],
    ) -> SolverResult:
        if self.config.l1_features > 0.0:
            mask = objective.layout.l1_mask(features=True)
            return fista(
                objective,
                l1_strength=self.config.l1_features,
                l1_mask=mask,
                w0=w0,
            )
        if self.config.solver == "sgd":
            if n_samples is None:
                raise ValueError("SGD solver requires the correctness objective")
            return sgd(
                objective,
                n_samples=n_samples,
                w0=w0,
                learning_rate=self.config.sgd_learning_rate,
                epochs=self.config.sgd_epochs,
                seed=self.config.seed,
            )
        return minimize_lbfgs(objective, w0=w0)
